"""Vectorised dataset-wide evaluation of the match / NM measures.

The TrajPattern miner evaluates the NM of thousands of candidate patterns
per iteration; doing that with the scalar reference functions would be
hopeless in Python.  :class:`NMEngine` makes a pattern evaluation a handful
of numpy operations over the whole dataset:

1. **Sparse index** (built once): for every snapshot of every trajectory,
   the exact ``log Prob(l, sigma, cell, delta)`` is computed for every grid
   cell whose probability exceeds the floor ``min_prob``; everything else
   *is* the floor.  Entries are stored per cell as ``(global_row, value)``
   arrays, where global rows concatenate all trajectories along the time
   axis.

2. **Pattern evaluation**: for pattern ``(p_1..p_m)`` the window score of
   the window starting at global row ``r`` is ``sum_j column(p_j)[r + j]``.
   All window sums are computed with ``m`` shifted slice-adds, windows that
   cross a trajectory boundary are masked out, and the per-trajectory maxima
   (Eq. 4) fall out of one ``np.maximum.reduceat``.

Exactness: with the default auto radius the index stores every cell whose
probability can exceed ``min_prob`` (the enumeration radius is derived from
the normal quantile of ``min_prob``), so the engine agrees with the scalar
reference implementation to floating-point accuracy -- the test suite checks
this property directly.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import special

from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.uncertainty.gaussian import ProbModel, prob_within


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of the sparse probability index.

    Parameters
    ----------
    delta:
        The indifference distance of section 3.3.
    prob_model:
        Box (default) or disk geometry for ``Prob``.
    min_prob:
        Per-position probability floor; cells below it collapse onto the
        floor.  Larger values shrink the index and speed up construction at
        the cost of flattening the tail of the measure.
    radius_sigmas:
        Half-width (in sigmas, plus ``delta``) of the neighbourhood
        enumerated around each snapshot mean.  ``None`` (default) derives
        the radius from ``min_prob`` so no above-floor cell is missed.
    max_cells_per_snapshot:
        Memory guard: keep at most this many highest-probability cells per
        snapshot.  The default is high enough to be inactive in ordinary
        configurations.
    column_cache_size:
        Number of materialised per-cell dense columns kept in an LRU cache;
        candidate patterns reuse cells heavily, so this trades memory for a
        large constant-factor win during mining.
    """

    delta: float
    prob_model: ProbModel = ProbModel.BOX
    min_prob: float = 1e-9
    radius_sigmas: float | None = None
    max_cells_per_snapshot: int = 4096
    column_cache_size: int = 256

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if not 0.0 < self.min_prob < 1.0:
            raise ValueError("min_prob must be in (0, 1)")
        if self.radius_sigmas is not None and self.radius_sigmas <= 0:
            raise ValueError("radius_sigmas must be positive")
        if self.max_cells_per_snapshot <= 0:
            raise ValueError("max_cells_per_snapshot must be positive")
        if self.column_cache_size <= 0:
            raise ValueError("column_cache_size must be positive")

    @property
    def min_log_prob(self) -> float:
        """The log-space floor."""
        return float(np.log(self.min_prob))

    def effective_radius_sigmas(self) -> float:
        """Enumeration radius in sigmas: explicit, or the ``min_prob`` quantile."""
        if self.radius_sigmas is not None:
            return self.radius_sigmas
        # P(|X - c| <= delta) <= Phi(-(R - delta)/sigma); force it <= min_prob.
        return float(-special.ndtri(self.min_prob))


class NMEngine:
    """Evaluates NM / match of patterns over a whole dataset (see module docs)."""

    def __init__(
        self, dataset: TrajectoryDataset, grid: Grid, config: EngineConfig
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("cannot build an engine over an empty dataset")
        self.dataset = dataset
        self.grid = grid
        self.config = config
        self._floor = config.min_log_prob

        lengths = np.array([len(t) for t in dataset], dtype=np.int64)
        self._lengths = lengths
        self._starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        self._total_rows = int(lengths.sum())
        self._row_traj = np.repeat(np.arange(len(dataset), dtype=np.int64), lengths)

        self._entries: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._column_cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._valid_cache: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self.n_evaluations = 0  # instrumentation for the scalability benches

        # Flat segment index (filled by _build_index when entries exist).
        self._flat_rows = np.empty(0, dtype=np.int64)
        self._flat_vals = np.empty(0)
        self._seg_starts = np.empty(0, dtype=np.int64)
        self._seg_traj = np.empty(0, dtype=np.int64)
        self._cell_seg_starts = np.empty(0, dtype=np.int64)
        self._flat_cell_order = np.empty(0, dtype=np.int64)

        self._build_index()

    # -- public metadata -------------------------------------------------------

    @property
    def active_cells(self) -> list[int]:
        """Cells with at least one above-floor entry, ascending.

        These are the only cells that can beat an inactive cell's NM; the
        miner seeds its singular patterns from them.
        """
        return sorted(self._entries)

    @property
    def floor_log_prob(self) -> float:
        """The log-space probability floor."""
        return self._floor

    @property
    def n_index_entries(self) -> int:
        """Number of stored (snapshot, cell) probability entries."""
        return sum(len(rows) for rows, _ in self._entries.values())

    # -- index construction ------------------------------------------------------

    def _build_index(self) -> None:
        """Compute above-floor log-probabilities for every (snapshot, cell)."""
        cfg = self.config
        radius_sigmas = cfg.effective_radius_sigmas()
        cells_acc: list[np.ndarray] = []
        rows_acc: list[np.ndarray] = []
        vals_acc: list[np.ndarray] = []

        row = 0
        for traj in self.dataset:
            for mean, sigma in zip(traj.means, traj.sigmas):
                radius = radius_sigmas * sigma + cfg.delta
                cells = self.grid.cells_near(float(mean[0]), float(mean[1]), radius)
                if len(cells):
                    centers = self.grid.cell_centers(cells)
                    probs = prob_within(
                        mean, np.asarray(sigma), centers, cfg.delta, model=cfg.prob_model
                    )
                    keep = probs > cfg.min_prob
                    cells, probs = cells[keep], probs[keep]
                    if len(cells) > cfg.max_cells_per_snapshot:
                        top = np.argpartition(probs, -cfg.max_cells_per_snapshot)[
                            -cfg.max_cells_per_snapshot :
                        ]
                        cells, probs = cells[top], probs[top]
                    if len(cells):
                        cells_acc.append(cells)
                        rows_acc.append(np.full(len(cells), row, dtype=np.int64))
                        vals_acc.append(np.log(probs))
                row += 1

        if not cells_acc:
            return
        all_cells = np.concatenate(cells_acc)
        all_rows = np.concatenate(rows_acc)
        all_vals = np.concatenate(vals_acc)
        order = np.lexsort((all_rows, all_cells))
        all_cells, all_rows, all_vals = all_cells[order], all_rows[order], all_vals[order]
        uniq, first = np.unique(all_cells, return_index=True)
        bounds = np.append(first, len(all_cells))
        for i, cell in enumerate(uniq):
            sl = slice(bounds[i], bounds[i + 1])
            self._entries[int(cell)] = (all_rows[sl].copy(), all_vals[sl].copy())

        # Flat segment index for the vectorised bulk-extension path: entries
        # sorted by (cell, row), segmented at every (cell, trajectory)
        # change.  Pattern-independent, built once.
        self._flat_rows = all_rows
        self._flat_vals = all_vals
        entry_traj = self._row_traj[all_rows]
        if len(all_rows):
            change = np.nonzero(
                (np.diff(all_cells) != 0) | (np.diff(entry_traj) != 0)
            )[0] + 1
            self._seg_starts = np.concatenate([[0], change])
            self._seg_traj = entry_traj[self._seg_starts]
            seg_cells = all_cells[self._seg_starts]
            cell_change = np.nonzero(np.diff(seg_cells))[0] + 1
            self._cell_seg_starts = np.concatenate([[0], cell_change])
            self._flat_cell_order = seg_cells[self._cell_seg_starts]
        else:
            self._seg_starts = np.empty(0, dtype=np.int64)
            self._seg_traj = np.empty(0, dtype=np.int64)
            self._cell_seg_starts = np.empty(0, dtype=np.int64)
            self._flat_cell_order = np.empty(0, dtype=np.int64)

    # -- columns -------------------------------------------------------------------

    def _column(self, cell: int) -> np.ndarray:
        """Dense log-prob column of ``cell`` over all global rows (LRU cached)."""
        cached = self._column_cache.get(cell)
        if cached is not None:
            self._column_cache.move_to_end(cell)
            return cached
        col = np.full(self._total_rows, self._floor)
        entry = self._entries.get(cell)
        if entry is not None:
            rows, vals = entry
            col[rows] = vals
        col.setflags(write=False)
        self._column_cache[cell] = col
        if len(self._column_cache) > self.config.column_cache_size:
            self._column_cache.popitem(last=False)
        return col

    def _window_plumbing(self, m: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-length cached (validity mask, reduceat bounds, eligible trajs)."""
        cached = self._valid_cache.get(m)
        if cached is not None:
            return cached
        n_windows = self._total_rows - m + 1
        if n_windows <= 0:
            plumbing = (
                np.empty(0, dtype=bool),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        else:
            valid = self._row_traj[:n_windows] == self._row_traj[m - 1 :]
            eligible = np.nonzero(self._lengths >= m)[0]
            bounds = self._starts[eligible]
            plumbing = (valid, bounds, eligible)
        self._valid_cache[m] = plumbing
        return plumbing

    def _window_scores(self, pattern: TrajectoryPattern) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Masked window log-sums plus reduceat plumbing for ``pattern``."""
        m = len(pattern)
        valid, bounds, eligible = self._window_plumbing(m)
        if len(eligible) == 0:
            return np.empty(0), bounds, eligible
        n_windows = self._total_rows - m + 1
        scores = np.zeros(n_windows)
        for j, cell in enumerate(pattern.cells):
            if cell == WILDCARD:
                continue  # log 1 contribution
            scores += self._column(cell)[j : j + n_windows]
        scores[~valid] = -np.inf
        return scores, bounds, eligible

    # -- measures ----------------------------------------------------------------------

    def nm_per_trajectory(self, pattern: TrajectoryPattern) -> np.ndarray:
        """Eq. 4 per trajectory: array of ``NM(P, T_i)`` over the dataset."""
        self.n_evaluations += 1
        n_spec = len(pattern.specified_positions())
        out = np.full(len(self.dataset), self._floor)
        scores, bounds, eligible = self._window_scores(pattern)
        if len(eligible) == 0:
            return out
        maxes = np.maximum.reduceat(scores, bounds)
        out[eligible] = maxes / n_spec if n_spec else 0.0
        return out

    def nm(self, pattern: TrajectoryPattern) -> float:
        """``NM(P)`` over the dataset (section 3.3)."""
        return float(self.nm_per_trajectory(pattern).sum())

    def match_per_trajectory(self, pattern: TrajectoryPattern) -> np.ndarray:
        """Un-normalised match of [14] per trajectory."""
        self.n_evaluations += 1
        n_spec = len(pattern.specified_positions())
        out = np.full(len(self.dataset), np.exp(self._floor * n_spec))
        scores, bounds, eligible = self._window_scores(pattern)
        if len(eligible) == 0:
            return out
        maxes = np.maximum.reduceat(scores, bounds)
        out[eligible] = np.exp(maxes)
        return out

    def match(self, pattern: TrajectoryPattern) -> float:
        """Dataset match: sum of per-trajectory max window probabilities."""
        return float(self.match_per_trajectory(pattern).sum())

    def nm_many(self, patterns: Sequence[TrajectoryPattern]) -> np.ndarray:
        """NM of several patterns, in order."""
        return np.array([self.nm(p) for p in patterns])

    # -- bulk singular evaluation ---------------------------------------------------------

    def singular_nm_table(self) -> dict[int, float]:
        """``NM`` of every active singular pattern, without column building.

        For length-1 patterns the per-trajectory max is just the max stored
        entry (or the floor when a trajectory never touches the cell), so
        the whole table comes straight out of the index.
        """
        n_traj = len(self.dataset)
        base = self._floor * n_traj
        table: dict[int, float] = {}
        for cell, (rows, vals) in self._entries.items():
            trajs = self._row_traj[rows]
            # rows are sorted, hence trajs is non-decreasing.
            change = np.nonzero(np.diff(trajs))[0] + 1
            seg_starts = np.concatenate([[0], change])
            seg_max = np.maximum.reduceat(vals, seg_starts)
            # Each touched trajectory swaps its floor term for its max entry,
            # but only when the entry beats the floor (it always does,
            # entries are above min_prob by construction).
            table[cell] = base + float(np.sum(seg_max - self._floor))
        return table

    def singular_match_table(self) -> dict[int, float]:
        """Match of every active singular pattern (used by the match miner)."""
        n_traj = len(self.dataset)
        floor_p = np.exp(self._floor)
        table: dict[int, float] = {}
        for cell, (rows, vals) in self._entries.items():
            trajs = self._row_traj[rows]
            change = np.nonzero(np.diff(trajs))[0] + 1
            seg_starts = np.concatenate([[0], change])
            seg_max = np.maximum.reduceat(vals, seg_starts)
            n_touched = len(seg_starts)
            table[cell] = float(np.exp(seg_max).sum()) + floor_p * (n_traj - n_touched)
        return table

    # -- bulk single-cell extensions --------------------------------------------------------

    def extend_right_tables(
        self, pattern: TrajectoryPattern
    ) -> tuple[dict[int, float], dict[int, float]]:
        """NM and match of ``pattern + (c,)`` for every active cell ``c`` at once.

        The level-wise miners (match/Apriori, PB) extend each frontier
        prefix by the whole alphabet; evaluating those extensions one by one
        costs ``G`` full passes.  This method shares the prefix's window
        scores across all extensions and then visits every index entry once,
        so the whole table costs one prefix evaluation plus ``O(index)``.

        Returns ``(nm_by_cell, match_by_cell)`` over the active alphabet.
        """
        m = len(pattern)
        n_spec = len(pattern.specified_positions())
        ext_len = m + 1
        n_traj = len(self.dataset)
        floor = self._floor

        # Prefix window scores aligned to extended-window starts.
        valid, bounds, eligible = self._window_plumbing(ext_len)
        nm_default = np.full(n_traj, floor)
        match_default = np.full(n_traj, np.exp(floor * (n_spec + 1)))
        if len(eligible) == 0:
            nm_total = float(nm_default.sum())
            match_total = float(match_default.sum())
            return (
                {c: nm_total for c in self._entries},
                {c: match_total for c in self._entries},
            )

        n_windows = self._total_rows - ext_len + 1
        prefix_scores = np.zeros(n_windows)
        for j, cell in enumerate(pattern.cells):
            if cell == WILDCARD:
                continue
            prefix_scores += self._column(cell)[j : j + n_windows]

        # Base case: the new position scores the floor everywhere.
        base = prefix_scores + floor
        base_masked = np.where(valid, base, -np.inf)
        base_max = np.maximum.reduceat(base_masked, bounds)  # per eligible traj

        nm_base = nm_default.copy()
        nm_base[eligible] = base_max / (n_spec + 1)
        match_base = match_default.copy()
        match_base[eligible] = np.exp(base_max)
        nm_base_total = float(nm_base.sum())
        match_base_total = float(match_base.sum())

        if self._seg_starts.size == 0:
            return {}, {}

        # Per-trajectory best base, aligned for comparison with entries.
        best_base_by_traj = np.full(n_traj, -np.inf)
        best_base_by_traj[eligible] = base_max

        # Fully vectorised over the flat segment index: one masked score per
        # entry, one max per (cell, trajectory) segment, one sum per cell.
        starts = self._flat_rows - m
        entry_valid = starts >= 0
        safe_starts = np.where(entry_valid, starts, 0)
        entry_valid &= self._row_traj[safe_starts] == self._row_traj[self._flat_rows]
        scores = np.where(
            entry_valid, prefix_scores[safe_starts] + self._flat_vals, -np.inf
        )
        seg_max = np.maximum.reduceat(scores, self._seg_starts)
        old = best_base_by_traj[self._seg_traj]
        improved = seg_max > old
        # Masked subtraction: unimproved segments may hold -inf on both
        # sides, and (-inf) - (-inf) would poison a plain np.where.
        nm_delta_seg = np.zeros(len(seg_max))
        np.subtract(seg_max, old, out=nm_delta_seg, where=improved)
        match_delta_seg = np.zeros(len(seg_max))
        np.subtract(
            np.exp(seg_max), np.exp(old), out=match_delta_seg, where=improved
        )
        nm_delta = np.add.reduceat(nm_delta_seg, self._cell_seg_starts) / (n_spec + 1)
        match_delta = np.add.reduceat(match_delta_seg, self._cell_seg_starts)

        nm_by_cell = {
            int(cell): nm_base_total + float(d)
            for cell, d in zip(self._flat_cell_order, nm_delta)
        }
        match_by_cell = {
            int(cell): match_base_total + float(d)
            for cell, d in zip(self._flat_cell_order, match_delta)
        }
        self.n_evaluations += len(self._entries)
        return nm_by_cell, match_by_cell

    # -- point queries -----------------------------------------------------------------------

    def log_prob_at(self, traj_index: int, snapshot: int, cell: int) -> float:
        """``log Prob`` of one (trajectory, snapshot, cell) triple."""
        if not 0 <= traj_index < len(self.dataset):
            raise IndexError(f"trajectory index {traj_index} out of range")
        if not 0 <= snapshot < self._lengths[traj_index]:
            raise IndexError(
                f"snapshot {snapshot} out of range for trajectory {traj_index}"
            )
        entry = self._entries.get(int(cell))
        if entry is None:
            return self._floor
        rows, vals = entry
        row = int(self._starts[traj_index] + snapshot)
        pos = int(np.searchsorted(rows, row))
        if pos < len(rows) and rows[pos] == row:
            return float(vals[pos])
        return self._floor

    def best_window(
        self, pattern: TrajectoryPattern, traj_index: int
    ) -> tuple[int, float] | None:
        """Best (start, NM) window of ``pattern`` in one trajectory, or ``None``.

        ``None`` when the trajectory is shorter than the pattern.
        """
        m = len(pattern)
        length = int(self._lengths[traj_index])
        if length < m:
            return None
        start_row = int(self._starts[traj_index])
        scores = np.zeros(length - m + 1)
        for j, cell in enumerate(pattern.cells):
            if cell == WILDCARD:
                continue
            col = self._column(cell)
            scores += col[start_row + j : start_row + j + len(scores)]
        best = int(np.argmax(scores))
        n_spec = len(pattern.specified_positions())
        nm = float(scores[best] / n_spec) if n_spec else 0.0
        return best, nm


def build_engine(
    dataset: TrajectoryDataset,
    cell_size: float,
    delta: float | None = None,
    **config_kwargs,
) -> NMEngine:
    """Convenience constructor: grid covering the dataset + engine in one call.

    ``delta`` defaults to ``cell_size`` (the paper sets ``g_x = g_y = delta``).
    """
    grid = dataset.make_grid(cell_size)
    config = EngineConfig(delta=delta if delta is not None else cell_size, **config_kwargs)
    return NMEngine(dataset, grid, config)
