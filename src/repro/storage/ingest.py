"""Streaming converters that build ``.tjc`` stores from raw files.

Every converter here is single-pass and bounded-memory: rows flow from
the source file straight into a :class:`~repro.storage.columnar.
StoreWriter` (which spools chunks to disk), so converting a file larger
than RAM is routine.  Three sources are supported:

* :func:`convert_jsonl_to_store` -- the repo's canonical ``.jsonl``
  dataset format (synthetic generator output);
* :func:`convert_csv_to_store` -- the flat ``object_id,snapshot,x,y,sigma``
  CSV interchange format, provided rows arrive grouped by object;
* :func:`ingest_porto_csv` -- real-world ingestion in the shape of the
  Porto taxi dump (``TRIP_ID`` + ``POLYLINE`` JSON column, one GPS fix
  every 15 s), attaching a caller-supplied measurement sigma.

All converters return a summary dict (counts, skip statistics, output
path) that the CLI prints and drops into run manifests.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.storage.columnar import StoreWriter
from repro.trajectory.io import iter_dataset_jsonl

#: Porto taxi dumps sample one GPS fix every 15 seconds.
PORTO_DT_SECONDS = 15.0


def convert_jsonl_to_store(
    src: str | Path, dst: str | Path, **writer_kwargs
) -> dict:
    """Convert a ``.jsonl`` dataset to a ``.tjc`` store, streaming.

    Peak memory is one trajectory plus one write chunk regardless of file
    size.  Writer options (``compression=``, ``positions=``, ...) pass
    through; metadata defaults to the JSONL header's.
    """
    src = Path(src)
    stream = iter_dataset_jsonl(src)
    metadata = next(stream)
    writer_kwargs.setdefault("metadata", metadata)
    n_traj = 0
    n_rows = 0
    with StoreWriter(dst, **writer_kwargs) as writer:
        for traj in stream:
            writer.append(traj)
            n_traj += 1
            n_rows += len(traj)
    return _summary(dst, src, n_traj, n_rows)


def convert_csv_to_store(
    src: str | Path, dst: str | Path, *, default_sigma: float | None = None, **writer_kwargs
) -> dict:
    """Convert a flat snapshot CSV (``object_id,snapshot,x,y,sigma``) to ``.tjc``.

    Streams one object at a time, so rows for each ``object_id`` must be
    contiguous (the natural export order); an interleaved file raises with
    the offending line rather than silently splitting an object in two.
    Rows within an object are sorted by snapshot index.  ``default_sigma``
    fills a missing/empty sigma column.
    """
    src = Path(src)
    n_traj = 0
    n_rows = 0
    with src.open("r", encoding="utf-8", newline="") as fh, StoreWriter(
        dst, **writer_kwargs
    ) as writer:
        reader = csv.DictReader(fh)
        required = {"object_id", "snapshot", "x", "y"}
        if reader.fieldnames is None or not required.issubset(reader.fieldnames):
            raise ValueError(f"{src}: expected columns {sorted(required)} (+ sigma)")
        has_sigma = "sigma" in (reader.fieldnames or ())
        if not has_sigma and default_sigma is None:
            raise ValueError(
                f"{src}: no sigma column; pass default_sigma to assign one"
            )

        seen: set[str] = set()
        current_id: str | None = None
        rows: list[tuple[int, float, float, float]] = []

        def _flush() -> int:
            nonlocal n_traj
            if current_id is None:
                return 0
            rows.sort()
            means = np.asarray([[x, y] for _, x, y, _ in rows])
            sigmas = np.asarray([s for _, _, _, s in rows])
            writer.append_arrays(means, sigmas, object_id=current_id)
            n_traj += 1
            count = len(rows)
            rows.clear()
            return count

        for line_no, row in enumerate(reader, start=2):
            try:
                object_id = row["object_id"]
                sigma_field = row.get("sigma") if has_sigma else None
                entry = (
                    int(row["snapshot"]),
                    float(row["x"]),
                    float(row["y"]),
                    float(sigma_field)
                    if sigma_field not in (None, "")
                    else float(default_sigma),
                )
            except (TypeError, ValueError) as exc:
                raise ValueError(f"{src}:{line_no}: bad snapshot row: {exc}") from exc
            if object_id != current_id:
                if object_id in seen:
                    raise ValueError(
                        f"{src}:{line_no}: rows for object {object_id!r} are not "
                        "contiguous; streaming conversion needs the file grouped "
                        "by object_id (use load_dataset_csv + write_store for "
                        "small interleaved files)"
                    )
                n_rows += _flush()
                current_id = object_id
                seen.add(object_id)
            rows.append(entry)
        n_rows += _flush()
    return _summary(dst, src, n_traj, n_rows)


def ingest_porto_csv(
    src: str | Path,
    dst: str | Path,
    *,
    sigma: float,
    dt: float = PORTO_DT_SECONDS,
    skip_malformed: bool = True,
    **writer_kwargs,
) -> dict:
    """Ingest a Porto-taxi-style CSV dump into a ``.tjc`` store.

    Expects a ``POLYLINE`` column holding a JSON array of ``[lon, lat]``
    fixes (and optionally ``TRIP_ID``/``TIMESTAMP`` columns).  GPS fixes
    carry no per-point uncertainty, so the caller supplies one ``sigma``
    (in the same units as the coordinates).  Malformed or empty polylines
    are skipped and counted when ``skip_malformed`` (the dump famously
    contains both), otherwise raised with a ``path:line`` location.
    """
    src = Path(src)
    if not (np.isfinite(sigma) and sigma > 0):
        raise ValueError("sigma must be a positive finite float")
    writer_kwargs.setdefault(
        "metadata",
        {"source": "porto-csv", "source_file": src.name, "sigma": float(sigma), "dt_seconds": float(dt)},
    )
    n_traj = 0
    n_rows = 0
    n_skipped = 0
    with src.open("r", encoding="utf-8", newline="") as fh, StoreWriter(
        dst, **writer_kwargs
    ) as writer:
        reader = csv.DictReader(fh)
        if reader.fieldnames is None or "POLYLINE" not in reader.fieldnames:
            raise ValueError(f"{src}: expected a POLYLINE column")
        for line_no, row in enumerate(reader, start=2):
            try:
                polyline = json.loads(row["POLYLINE"] or "[]")
                means = np.asarray(polyline, dtype=np.float64)
                if means.size == 0:
                    raise ValueError("empty polyline")
                if means.ndim != 2 or means.shape[1] != 2:
                    raise ValueError(f"polyline shape {means.shape} is not (n, 2)")
                start_time = float(row.get("TIMESTAMP") or 0.0)
                writer.append_arrays(
                    means,
                    sigma,
                    object_id=str(row.get("TRIP_ID") or f"trip-{line_no}"),
                    start_time=start_time,
                    dt=dt,
                )
            except (TypeError, ValueError, json.JSONDecodeError) as exc:
                if skip_malformed:
                    n_skipped += 1
                    continue
                raise ValueError(f"{src}:{line_no}: bad trip row: {exc}") from exc
            n_traj += 1
            n_rows += means.shape[0]
    summary = _summary(dst, src, n_traj, n_rows)
    summary["n_skipped"] = n_skipped
    return summary


def _summary(dst: str | Path, src: Path, n_traj: int, n_rows: int) -> dict:
    dst = Path(dst)
    return {
        "source": str(src),
        "path": str(dst),
        "n_trajectories": n_traj,
        "total_snapshots": n_rows,
        "size_bytes": dst.stat().st_size,
        "source_bytes": src.stat().st_size,
    }
