"""Uniform grid discretisation of the 2-D space (paper section 3.3).

The paper discretises the continuous space into small rectangular regions of
size ``g_x x g_y``; only the centres of these regions may serve as positions
in a trajectory pattern.  A :class:`Grid` assigns every cell a stable integer
identifier ``cell = row * nx + col`` so that patterns are plain tuples of
ints and numpy indexing stays cheap.

Coordinates outside the grid extent are clamped to the border cells: the
trajectories that produce them are still usable, they simply map to the
outermost region (the alternative -- raising -- would make every generator
responsible for never overshooting the bounding box by a ULP).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.geometry.point import Point


@dataclass(frozen=True)
class Grid:
    """A uniform ``nx x ny`` grid over a bounding box.

    Parameters
    ----------
    bbox:
        Spatial extent covered by the grid.
    nx, ny:
        Number of cells along x and y.

    >>> grid = Grid(BoundingBox.unit(), nx=10, ny=10)
    >>> grid.locate(0.05, 0.05)
    0
    >>> grid.cell_center(0)
    Point(x=0.05, y=0.05)
    """

    bbox: BoundingBox
    nx: int
    ny: int
    _centers: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.nx <= 0 or self.ny <= 0:
            raise ValueError(f"grid must have positive dimensions, got {self.nx}x{self.ny}")
        if self.bbox.width <= 0 or self.bbox.height <= 0:
            raise ValueError("grid bounding box must have positive area")
        xs = self.bbox.min_x + (np.arange(self.nx) + 0.5) * self.gx
        ys = self.bbox.min_y + (np.arange(self.ny) + 0.5) * self.gy
        cx, cy = np.meshgrid(xs, ys)  # row-major: row = y index
        centers = np.column_stack([cx.ravel(), cy.ravel()])
        centers.setflags(write=False)
        object.__setattr__(self, "_centers", centers)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def cover(cls, bbox: BoundingBox, cell_size: float) -> "Grid":
        """Grid of square cells of side ``cell_size`` covering ``bbox``.

        The extent is padded on the max side so an integer number of cells
        fits; the paper's ``g_x = g_y = delta`` convention maps to
        ``Grid.cover(bbox, delta)``.
        """
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        nx = max(1, int(np.ceil(bbox.width / cell_size)))
        ny = max(1, int(np.ceil(bbox.height / cell_size)))
        padded = BoundingBox(
            bbox.min_x,
            bbox.min_y,
            bbox.min_x + nx * cell_size,
            bbox.min_y + ny * cell_size,
        )
        return cls(padded, nx, ny)

    @classmethod
    def cover_points(cls, points: np.ndarray, cell_size: float, margin: float = 0.0) -> "Grid":
        """Square-celled grid covering an ``(n, 2)`` point cloud."""
        return cls.cover(BoundingBox.of_points(points).expand(margin), cell_size)

    # -- basic properties ------------------------------------------------------

    @property
    def gx(self) -> float:
        """Cell width."""
        return self.bbox.width / self.nx

    @property
    def gy(self) -> float:
        """Cell height."""
        return self.bbox.height / self.ny

    @property
    def n_cells(self) -> int:
        """Total number of cells ``G`` (the paper's grid-count parameter)."""
        return self.nx * self.ny

    def __len__(self) -> int:
        return self.n_cells

    # -- coordinate <-> cell mapping -------------------------------------------

    def locate(self, x: float, y: float) -> int:
        """Cell id containing ``(x, y)``; out-of-extent points clamp to the border."""
        col = int((x - self.bbox.min_x) / self.gx)
        row = int((y - self.bbox.min_y) / self.gy)
        col = min(max(col, 0), self.nx - 1)
        row = min(max(row, 0), self.ny - 1)
        return row * self.nx + col

    def locate_many(self, points: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`locate` for an ``(n, 2)`` array."""
        points = np.asarray(points, dtype=float)
        cols = np.clip(
            ((points[:, 0] - self.bbox.min_x) / self.gx).astype(np.int64), 0, self.nx - 1
        )
        rows = np.clip(
            ((points[:, 1] - self.bbox.min_y) / self.gy).astype(np.int64), 0, self.ny - 1
        )
        return rows * self.nx + cols

    def cell_center(self, cell: int) -> Point:
        """Centre of ``cell`` as a :class:`Point`."""
        self._check_cell(cell)
        x, y = self._centers[cell]
        return Point(float(x), float(y))

    def cell_centers(self, cells: np.ndarray | list[int] | None = None) -> np.ndarray:
        """Centres of ``cells`` (or of every cell) as an ``(n, 2)`` array."""
        if cells is None:
            return self._centers
        return self._centers[np.asarray(cells, dtype=np.int64)]

    def row_col(self, cell: int) -> tuple[int, int]:
        """Decompose a cell id into ``(row, col)``."""
        self._check_cell(cell)
        return divmod(cell, self.nx)

    # -- spatial queries ---------------------------------------------------------

    def cells_in_box(self, min_x: float, min_y: float, max_x: float, max_y: float) -> np.ndarray:
        """Ids of all cells whose *centre* lies in the closed query box.

        Used by the sparse probability index to enumerate cells near a
        snapshot mean; an empty query box yields an empty array.
        """
        half_gx, half_gy = self.gx / 2.0, self.gy / 2.0
        col_lo = int(np.ceil((min_x - self.bbox.min_x - half_gx) / self.gx - 1e-12))
        col_hi = int(np.floor((max_x - self.bbox.min_x - half_gx) / self.gx + 1e-12))
        row_lo = int(np.ceil((min_y - self.bbox.min_y - half_gy) / self.gy - 1e-12))
        row_hi = int(np.floor((max_y - self.bbox.min_y - half_gy) / self.gy + 1e-12))
        col_lo, col_hi = max(col_lo, 0), min(col_hi, self.nx - 1)
        row_lo, row_hi = max(row_lo, 0), min(row_hi, self.ny - 1)
        if col_lo > col_hi or row_lo > row_hi:
            return np.empty(0, dtype=np.int64)
        cols = np.arange(col_lo, col_hi + 1, dtype=np.int64)
        rows = np.arange(row_lo, row_hi + 1, dtype=np.int64)
        return (rows[:, None] * self.nx + cols[None, :]).ravel()

    def cells_near(self, x: float, y: float, radius: float) -> np.ndarray:
        """Ids of cells whose centre is within the square of half-width ``radius``."""
        return self.cells_in_box(x - radius, y - radius, x + radius, y + radius)

    def cells_in_boxes(
        self,
        min_x: np.ndarray,
        min_y: np.ndarray,
        max_x: np.ndarray,
        max_y: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`cells_in_box` over ``n`` query boxes at once.

        Returns ``(cells, owners)``: the concatenated cell ids of every box
        and, aligned with them, the index of the box each id belongs to.
        Within one box the ids come out in the same (row-major) order as
        :meth:`cells_in_box`; empty boxes simply contribute nothing.
        """
        min_x = np.asarray(min_x, dtype=float)
        min_y = np.asarray(min_y, dtype=float)
        max_x = np.asarray(max_x, dtype=float)
        max_y = np.asarray(max_y, dtype=float)
        half_gx, half_gy = self.gx / 2.0, self.gy / 2.0
        col_lo = np.ceil((min_x - self.bbox.min_x - half_gx) / self.gx - 1e-12).astype(np.int64)
        col_hi = np.floor((max_x - self.bbox.min_x - half_gx) / self.gx + 1e-12).astype(np.int64)
        row_lo = np.ceil((min_y - self.bbox.min_y - half_gy) / self.gy - 1e-12).astype(np.int64)
        row_hi = np.floor((max_y - self.bbox.min_y - half_gy) / self.gy + 1e-12).astype(np.int64)
        col_lo, col_hi = np.maximum(col_lo, 0), np.minimum(col_hi, self.nx - 1)
        row_lo, row_hi = np.maximum(row_lo, 0), np.minimum(row_hi, self.ny - 1)
        n_cols = np.maximum(col_hi - col_lo + 1, 0)
        n_rows = np.maximum(row_hi - row_lo + 1, 0)
        counts = n_cols * n_rows
        total = int(counts.sum())
        if total == 0:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        owners = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
        # Rank of each entry within its own box, then row-major (a, b) -> id.
        box_starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
        rank = np.arange(total, dtype=np.int64) - np.repeat(box_starts, counts)
        width = n_cols[owners]
        rows = row_lo[owners] + rank // width
        cols = col_lo[owners] + rank % width
        return rows * self.nx + cols, owners

    def cells_near_many(
        self, points: np.ndarray, radii: np.ndarray | float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised :meth:`cells_near` for ``(n, 2)`` points with per-point radii.

        Returns ``(cells, owners)`` exactly like :meth:`cells_in_boxes`; the
        sparse probability index uses this to enumerate every snapshot's
        candidate neighbourhood in one call.
        """
        points = np.asarray(points, dtype=float)
        radii = np.broadcast_to(np.asarray(radii, dtype=float), len(points))
        xs, ys = points[:, 0], points[:, 1]
        return self.cells_in_boxes(xs - radii, ys - radii, xs + radii, ys + radii)

    def neighbors(self, cell: int, include_diagonal: bool = True) -> list[int]:
        """Adjacent cell ids (4- or 8-neighbourhood), excluding ``cell`` itself."""
        row, col = self.row_col(cell)
        out: list[int] = []
        for dr in (-1, 0, 1):
            for dc in (-1, 0, 1):
                if dr == 0 and dc == 0:
                    continue
                if not include_diagonal and dr != 0 and dc != 0:
                    continue
                r, c = row + dr, col + dc
                if 0 <= r < self.ny and 0 <= c < self.nx:
                    out.append(r * self.nx + c)
        return out

    def cell_distance(self, a: int, b: int) -> float:
        """Euclidean distance between the centres of cells ``a`` and ``b``."""
        self._check_cell(a)
        self._check_cell(b)
        dx = self._centers[a] - self._centers[b]
        return float(np.hypot(dx[0], dx[1]))

    def _check_cell(self, cell: int) -> None:
        if not 0 <= cell < self.n_cells:
            raise IndexError(f"cell {cell} outside grid with {self.n_cells} cells")

    def __repr__(self) -> str:  # compact -- the dataclass default prints the centres
        return (
            f"Grid({self.nx}x{self.ny} cells of {self.gx:.4g}x{self.gy:.4g} "
            f"over [{self.bbox.min_x:.4g},{self.bbox.max_x:.4g}]x"
            f"[{self.bbox.min_y:.4g},{self.bbox.max_y:.4g}])"
        )
