"""Tests for the ASCII visualisation helpers."""

import numpy as np
import pytest

from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.trajectory import UncertainTrajectory
from repro.viz import (
    OVERLAP_GLYPH,
    PATTERN_GLYPH,
    TRAJECTORY_GLYPH,
    render_grid,
    render_misprediction_bars,
    render_pattern,
)

GRID = Grid(BoundingBox.unit(), nx=10, ny=10)


class TestRenderGrid:
    def test_empty_canvas_dimensions(self):
        out = render_grid(GRID, width=10)
        lines = out.splitlines()
        assert lines[0].startswith("+") and lines[-1].endswith("+")
        assert all(line.startswith("|") for line in lines[1:-1])
        assert len(lines[0]) == 12  # 10 columns + borders

    def test_trajectory_plotted(self):
        traj = UncertainTrajectory([[0.05, 0.05], [0.95, 0.95]], 0.05)
        out = render_grid(GRID, trajectories=[traj], width=10)
        assert TRAJECTORY_GLYPH in out

    def test_pattern_plotted(self):
        out = render_grid(GRID, patterns=[TrajectoryPattern((0, 99))], width=10)
        assert out.count(PATTERN_GLYPH) == 2

    def test_wildcards_skipped(self):
        out = render_grid(
            GRID, patterns=[TrajectoryPattern((0, WILDCARD))], width=10
        )
        assert out.count(PATTERN_GLYPH) == 1

    def test_overlap_glyph(self):
        traj = UncertainTrajectory([[0.05, 0.05], [0.05, 0.05]], 0.05)
        out = render_grid(
            GRID, trajectories=[traj], patterns=[TrajectoryPattern((0,))], width=10
        )
        assert OVERLAP_GLYPH in out

    def test_corner_orientation(self):
        """y grows upward: a point at the top-right lands on the first row."""
        out = render_grid(GRID, patterns=[TrajectoryPattern((99,))], width=10)
        first_body_row = out.splitlines()[1]
        assert PATTERN_GLYPH in first_body_row

    def test_width_validation(self):
        with pytest.raises(ValueError):
            render_grid(GRID, width=1)


class TestRenderPattern:
    def test_basic(self):
        text = render_pattern(TrajectoryPattern((0, 11)), GRID)
        assert text == "(0.050,0.050) -> (0.150,0.150)"

    def test_wildcard(self):
        text = render_pattern(TrajectoryPattern((0, WILDCARD)), GRID)
        assert text.endswith("-> *")


class TestRenderBars:
    def test_empty(self):
        assert render_misprediction_bars([]) == "(no rows)"

    def test_positive_and_negative(self):
        out = render_misprediction_bars(
            [("lm", 0.25), ("rmf", -0.10)], width=20
        )
        lines = out.splitlines()
        assert ">" in lines[0] and "<" in lines[1]
        assert "+25.0%" in lines[0] and "-10.0%" in lines[1]

    def test_scaling_longest_bar(self):
        out = render_misprediction_bars([("a", 0.1), ("b", 0.4)], width=20)
        lines = out.splitlines()
        assert lines[1].count(">") == 20
        assert lines[0].count(">") == 5

    def test_zero_rows_no_crash(self):
        out = render_misprediction_bars([("x", 0.0)])
        assert "+0.0%" in out
