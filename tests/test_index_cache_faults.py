"""Index-cache robustness: torn files, bad payloads, crashed and racing writes.

Two invariants under test:

* **no half-written cache**: the write path is temp-file + atomic rename
  inside the cache directory, so a crash at any point leaves either the
  old file, the new file, or a ``*.tmp`` no reader ever opens -- never a
  truncated file under the final name;
* **every bad file is a miss**: zero-byte, truncated, garbage, or
  well-formed-but-out-of-range payloads must all rebuild (and overwrite)
  rather than raise out of engine construction or -- worse -- silently
  score against wrong entries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import index_cache
from repro.core.engine import EngineConfig, NMEngine
from repro.obs import metrics
from repro.testkit import faults
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture
def live_metrics():
    registry = metrics.get_registry()
    was_enabled = registry.enabled
    registry.enable()
    yield registry
    registry.reset()
    if not was_enabled:
        registry.disable()


@pytest.fixture
def dataset():
    rng = np.random.default_rng(7)
    trajectories = []
    for i in range(6):
        means = rng.uniform(0.2, 0.4, 2) + np.cumsum(
            rng.normal(0.02, 0.005, (10, 2)), axis=0
        )
        trajectories.append(UncertainTrajectory(means, 0.02, object_id=f"o{i}"))
    return TrajectoryDataset(trajectories)


@pytest.fixture
def scenario(dataset, tmp_path):
    grid = dataset.make_grid(0.05)
    config = EngineConfig(delta=0.05, min_prob=1e-6, cache_dir=str(tmp_path))
    key = index_cache.cache_key(dataset, grid, config)
    return dataset, grid, config, key, tmp_path


def _corrupt_count() -> int:
    return metrics.counter("index.cache.corrupt").value


class TestBadFilesAreMisses:
    @pytest.mark.parametrize(
        "content",
        [b"", b"PK\x03\x04truncated", b"this is not a zip archive at all"],
        ids=["zero-byte", "truncated", "garbage"],
    )
    def test_unreadable_file_rebuilds_and_overwrites(
        self, scenario, live_metrics, content
    ):
        dataset, grid, config, key, tmp_path = scenario
        path = index_cache.cache_path(tmp_path, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(content)

        before = _corrupt_count()
        engine = NMEngine(dataset, grid, config)
        assert not engine.index_cache_hit
        assert _corrupt_count() == before + 1
        # The bad file was overwritten by the rebuild: next load is a hit.
        warm = NMEngine(dataset, grid, config)
        assert warm.index_cache_hit
        np.testing.assert_array_equal(
            warm.index_arrays()[0], engine.index_arrays()[0]
        )

    def test_truncated_real_payload_is_a_miss(self, scenario):
        dataset, grid, config, key, tmp_path = scenario
        reference = NMEngine(dataset, grid, config)  # builds + persists
        path = index_cache.cache_path(tmp_path, key)
        payload = path.read_bytes()
        path.write_bytes(payload[: len(payload) // 2])
        assert index_cache.load_index(tmp_path, key) is None


class TestPayloadValidation:
    def _save_bogus(self, tmp_path, key, cells, rows, vals):
        index_cache.save_index(
            tmp_path,
            key,
            np.asarray(cells, dtype=np.int64),
            np.asarray(rows, dtype=np.int64),
            np.asarray(vals, dtype=np.float64),
        )

    def test_rows_beyond_dataset_rejected(self, scenario):
        dataset, grid, config, key, tmp_path = scenario
        n_rows = dataset.total_snapshots()
        self._save_bogus(tmp_path, key, [0, 1], [0, n_rows + 5], [-1.0, -2.0])
        assert index_cache.load_index(tmp_path, key, n_rows=n_rows) is None
        # Unbounded load still accepts it: the bounds come from the caller.
        assert index_cache.load_index(tmp_path, key) is not None

    def test_negative_rows_rejected_even_unbounded(self, scenario):
        _, _, _, key, tmp_path = scenario
        self._save_bogus(tmp_path, key, [0, 1], [-3, 0], [-1.0, -2.0])
        assert index_cache.load_index(tmp_path, key) is None

    def test_cells_beyond_grid_rejected(self, scenario):
        dataset, grid, config, key, tmp_path = scenario
        self._save_bogus(tmp_path, key, [grid.n_cells + 7], [0], [-1.0])
        assert index_cache.load_index(tmp_path, key, n_cells=grid.n_cells) is None

    def test_non_finite_vals_rejected(self, scenario):
        _, _, _, key, tmp_path = scenario
        self._save_bogus(tmp_path, key, [0, 1], [0, 1], [np.nan, -1.0])
        assert index_cache.load_index(tmp_path, key) is None

    def test_engine_survives_poisoned_cache_file(self, scenario):
        # Regression: pre-validation, a payload with out-of-range rows
        # under the right key crashed NMEngine construction with an
        # IndexError deep inside _install_index.
        dataset, grid, config, key, tmp_path = scenario
        n_rows = dataset.total_snapshots()
        self._save_bogus(
            tmp_path, key, [0, 1], [n_rows + 100, n_rows + 101], [-1.0, -2.0]
        )
        engine = NMEngine(dataset, grid, config)  # must build, not raise
        assert not engine.index_cache_hit
        warm = NMEngine(dataset, grid, config)
        assert warm.index_cache_hit


class TestInPlaceAppendKeying:
    def test_persist_after_append_never_poisons_the_boot_entry(
        self, dataset, tmp_path
    ):
        # Regression: a live ingest stream that starts from a store-backed
        # snapshot inherits a dataset carrying ``content_fingerprint``.
        # If the indexer persisted under a key derived from that stale
        # fingerprint after appending in place (same identity, new
        # contents), it would overwrite the *original* dataset's cache
        # entry with an index describing more rows -- a poisoned entry
        # every later boot of the original dataset would load.
        from repro.core.incremental import IncrementalIndexer
        from repro.storage import open_store, write_store

        store_path = tmp_path / "boot.tjc"
        write_store(dataset, store_path)
        cache_dir = tmp_path / "cache"
        grid = dataset.make_grid(0.05)
        config = EngineConfig(delta=0.05, min_prob=1e-6, cache_dir=str(cache_dir))
        with open_store(store_path) as store:
            lazy = store.dataset()
            assert lazy.content_fingerprint  # the stale-key ingredient
            engine = NMEngine(lazy, grid, config)
            boot_key = index_cache.cache_key(lazy, grid, config)
            boot_payload = index_cache.cache_path(cache_dir, boot_key).read_bytes()

            live = NMEngine(
                TrajectoryDataset(list(lazy)), grid, config, prebuilt=engine.index_arrays()
            )
        indexer = IncrementalIndexer(live)
        rng = np.random.default_rng(11)
        means = rng.uniform(0.3, 0.5, 2) + np.cumsum(
            rng.normal(0.02, 0.005, (10, 2)), axis=0
        )
        indexer.append([UncertainTrajectory(means, 0.02, object_id="new")])
        persisted = indexer.persist()

        fresh_key = index_cache.cache_key(live.dataset, grid, config)
        assert fresh_key != boot_key
        assert persisted == index_cache.cache_path(cache_dir, fresh_key)
        # The boot dataset's entry is byte-identical: not poisoned.
        assert (
            index_cache.cache_path(cache_dir, boot_key).read_bytes()
            == boot_payload
        )
        loaded = index_cache.load_index(
            cache_dir, boot_key, n_rows=dataset.total_snapshots()
        )
        assert loaded is not None


class TestCrashAndRaceDuringSave:
    def test_temp_file_lives_inside_cache_dir(self, scenario):
        # Pin the EXDEV fix: the temp file must share the target's
        # directory (hence filesystem), keeping os.replace atomic.
        _, _, _, key, tmp_path = scenario
        seen = {}
        faults.arm(
            "index_cache.save",
            "callback",
            callback=lambda point, ctx: seen.update(ctx),
        )
        index_cache.save_index(
            tmp_path, key, np.array([0]), np.array([0]), np.array([-1.0])
        )
        assert seen["tmp"].startswith(str(tmp_path))

    def test_crash_before_rename_leaves_no_file(self, scenario):
        _, _, _, key, tmp_path = scenario
        faults.arm("index_cache.save")  # raises between write and rename
        with pytest.raises(faults.FaultInjected):
            index_cache.save_index(
                tmp_path, key, np.array([0]), np.array([0]), np.array([-1.0])
            )
        assert not index_cache.cache_path(tmp_path, key).exists()
        assert list(tmp_path.glob("*.tmp")) == []  # temp cleaned up too
        assert index_cache.load_index(tmp_path, key) is None  # plain miss

    def test_torn_write_surviving_rename_is_still_a_miss(self, scenario):
        # Even if a torn payload somehow lands under the final name (the
        # callback truncates the temp file before the rename), readers
        # treat it as a miss and the next build overwrites it.
        dataset, grid, config, key, tmp_path = scenario

        def tear(point, ctx):
            with open(ctx["tmp"], "r+b") as fh:
                fh.truncate(20)

        faults.arm("index_cache.save", "callback", callback=tear)
        index_cache.save_index(
            tmp_path, key, np.array([0]), np.array([0]), np.array([-1.0])
        )
        assert index_cache.cache_path(tmp_path, key).exists()
        assert index_cache.load_index(tmp_path, key) is None
        faults.disarm()
        engine = NMEngine(dataset, grid, config)
        assert not engine.index_cache_hit
        assert NMEngine(dataset, grid, config).index_cache_hit

    def test_reader_racing_a_rewrite_sees_old_or_new_never_torn(self, scenario):
        # A load issued while save_index is mid-write (temp written, not
        # yet renamed) must see the *previous* complete file.
        _, _, _, key, tmp_path = scenario
        index_cache.save_index(
            tmp_path, key, np.array([1]), np.array([0]), np.array([-1.5])
        )
        mid_write: list = []
        faults.arm(
            "index_cache.save",
            "callback",
            callback=lambda point, ctx: mid_write.append(
                index_cache.load_index(tmp_path, key)
            ),
        )
        index_cache.save_index(
            tmp_path, key, np.array([2]), np.array([0]), np.array([-2.5])
        )
        (racing,) = mid_write
        assert racing is not None
        np.testing.assert_array_equal(racing[0], [1])  # the old generation
        after = index_cache.load_index(tmp_path, key)
        np.testing.assert_array_equal(after[0], [2])  # the new one

    def test_reader_before_first_write_is_a_clean_miss(self, scenario):
        _, _, _, key, tmp_path = scenario
        mid_write: list = []
        faults.arm(
            "index_cache.save",
            "callback",
            callback=lambda point, ctx: mid_write.append(
                index_cache.load_index(tmp_path, key)
            ),
        )
        index_cache.save_index(
            tmp_path, key, np.array([0]), np.array([0]), np.array([-1.0])
        )
        assert mid_write == [None]
