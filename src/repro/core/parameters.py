"""Parameter selection guidance (paper section 5's discussion).

Section 5 discusses how to choose the model parameters: the snapshot
interval comes from the domain; the indifference distance ``delta`` should
be "a small distance unit ... considered ignorable"; the grid unit lengths
``g_x = g_y`` can be set to ``delta``; and the maximum similar-pattern
distance ``gamma`` follows the normal distribution -- ``3 sigma`` covers
~99.7% of the placement error.

:func:`suggest_parameters` turns those rules into code, deriving a
complete, consistent parameter set from a dataset's own statistics, and
:class:`SuggestedParameters` carries the result with the derivations
spelled out.  The suggestions are starting points -- every knob remains
explicit on :class:`~repro.core.engine.EngineConfig` and the miners.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import EngineConfig
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset


@dataclass(frozen=True)
class SuggestedParameters:
    """A consistent parameter set derived from dataset statistics."""

    delta: float  # indifference distance (section 5: an ignorable unit)
    cell_size: float  # g_x = g_y = delta (section 5)
    gamma: float  # similar-pattern distance = 3 sigma (section 5)
    sigma_typical: float  # median snapshot sigma the derivations used
    step_typical: float  # median per-snapshot displacement
    n_cells_estimate: int  # grid size the suggestion implies

    def make_grid(self, dataset: TrajectoryDataset) -> Grid:
        """Grid over ``dataset`` at the suggested cell size."""
        return dataset.make_grid(self.cell_size)

    def make_engine_config(self, min_prob: float = 1e-6) -> EngineConfig:
        """Engine configuration at the suggested delta."""
        return EngineConfig(delta=self.delta, min_prob=min_prob)

    def render(self) -> str:
        """Human-readable summary with the section 5 derivations."""
        return "\n".join(
            [
                "suggested parameters (paper section 5 rules):",
                f"  delta  = {self.delta:.6g}   "
                f"(ignorable unit: ~1/4 of the typical step {self.step_typical:.6g})",
                f"  g_x=g_y= {self.cell_size:.6g}   (= delta)",
                f"  gamma  = {self.gamma:.6g}   (= 3 sigma, sigma ~ {self.sigma_typical:.6g})",
                f"  => grid of ~{self.n_cells_estimate} cells over the data extent",
            ]
        )


def suggest_parameters(
    dataset: TrajectoryDataset,
    delta_step_fraction: float = 0.25,
    gamma_sigmas: float = 3.0,
    max_cells: int = 1_000_000,
) -> SuggestedParameters:
    """Derive delta / grid / gamma from a dataset per section 5.

    Parameters
    ----------
    dataset:
        The mining input; its displacement and sigma statistics drive the
        derivation.
    delta_step_fraction:
        "Ignorable" distance as a fraction of the typical per-snapshot
        displacement (a quarter step by default: small enough that
        positions within delta are interchangeable for pattern purposes).
    gamma_sigmas:
        Section 5 sets gamma to 3 sigma (the ~99.7% band); override for
        tighter or looser grouping.
    max_cells:
        Safety cap: if delta implies more than this many grid cells over
        the data extent, delta is scaled up to respect the cap (finer
        grids refine results but cost linearly in cells, section 5).
    """
    if len(dataset) == 0:
        raise ValueError("cannot derive parameters from an empty dataset")
    if delta_step_fraction <= 0:
        raise ValueError("delta_step_fraction must be positive")
    if gamma_sigmas <= 0:
        raise ValueError("gamma_sigmas must be positive")
    if max_cells < 1:
        raise ValueError("max_cells must be positive")

    steps = []
    sigmas = []
    for trajectory in dataset:
        if len(trajectory) >= 2:
            diffs = np.diff(trajectory.means, axis=0)
            steps.append(np.hypot(diffs[:, 0], diffs[:, 1]))
        sigmas.append(trajectory.sigmas)
    sigma_typical = float(np.median(np.concatenate(sigmas)))
    if steps:
        step_typical = float(np.median(np.concatenate(steps)))
    else:
        step_typical = 0.0

    # An "ignorable" unit: a fraction of the typical step, but never below
    # a sliver of sigma (data noisier than its motion still needs a
    # non-degenerate grid).
    delta = max(step_typical * delta_step_fraction, sigma_typical / 10.0)
    if delta <= 0:
        raise ValueError(
            "dataset is degenerate (no displacement and no uncertainty)"
        )

    box = dataset.bounding_box(n_sigmas=4.0)
    implied = (box.width / delta) * (box.height / delta)
    if implied > max_cells:
        delta *= float(np.sqrt(implied / max_cells))
        implied = max_cells

    return SuggestedParameters(
        delta=delta,
        cell_size=delta,
        gamma=gamma_sigmas * sigma_typical,
        sigma_typical=sigma_typical,
        step_typical=step_typical,
        n_cells_estimate=int(implied),
    )
