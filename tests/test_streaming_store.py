"""StreamingNMEngine over .tjc stores: parity with JSONL, span-cache reuse."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.core.streaming import StreamingNMEngine
from repro.storage import write_store
from repro.testkit.datasets import seeded_dataset
from repro.trajectory.io import save_dataset_jsonl


@pytest.fixture(scope="module")
def eager():
    return seeded_dataset(4, n_trajectories=11, n_ticks=24)


@pytest.fixture(scope="module")
def paths(eager, tmp_path_factory):
    root = tmp_path_factory.mktemp("streams")
    jsonl = root / "d.jsonl"
    save_dataset_jsonl(eager, jsonl)
    store = write_store(eager, root / "d.tjc", compression="zlib")
    return jsonl, store


@pytest.fixture(scope="module")
def geometry(eager):
    grid = eager.make_grid(0.1)
    config = EngineConfig(delta=0.08, min_prob=1e-6)
    serial = NMEngine(eager, grid, config)
    cells = serial.active_cells
    patterns = [TrajectoryPattern((c,)) for c in cells[:4]] + [
        TrajectoryPattern((cells[0], cells[1])),
    ]
    return grid, config, patterns


@pytest.mark.parametrize("chunk_size", [1, 3, 5, 100])
def test_store_matches_jsonl_streaming(paths, geometry, chunk_size):
    jsonl, store = paths
    grid, config, patterns = geometry
    a = StreamingNMEngine(jsonl, grid, config, chunk_size=chunk_size)
    b = StreamingNMEngine(store, grid, config, chunk_size=chunk_size)
    assert not a.store_backed and b.store_backed
    assert np.array_equal(a.nm_many(patterns), b.nm_many(patterns))
    assert np.array_equal(a.match_many(patterns), b.match_many(patterns))
    assert a.n_chunks_scanned == b.n_chunks_scanned


def test_span_cache_cold_then_warm(paths, geometry, tmp_path):
    _, store = paths
    grid, config, patterns = geometry
    cached = EngineConfig(
        delta=config.delta, min_prob=config.min_prob, cache_dir=tmp_path
    )
    cold = StreamingNMEngine(store, grid, cached, chunk_size=4)
    nm_cold = cold.nm_many(patterns)
    assert cold.span_cache_hits == 0
    assert cold.n_chunks_scanned == 3  # ceil(11 / 4)

    warm = StreamingNMEngine(store, grid, cached, chunk_size=4)
    nm_warm = warm.nm_many(patterns)
    assert warm.span_cache_hits == warm.n_chunks_scanned == 3
    assert np.array_equal(nm_cold, nm_warm)

    # a different chunking misses the span cache (different span bounds)
    other = StreamingNMEngine(store, grid, cached, chunk_size=6)
    other.nm_many(patterns)
    assert other.span_cache_hits == 0


def test_span_cache_is_bit_exact(paths, geometry, tmp_path):
    _, store = paths
    grid, config, patterns = geometry
    plain = StreamingNMEngine(store, grid, config, chunk_size=4)
    cached = EngineConfig(
        delta=config.delta, min_prob=config.min_prob, cache_dir=tmp_path
    )
    first = StreamingNMEngine(store, grid, cached, chunk_size=4)
    second = StreamingNMEngine(store, grid, cached, chunk_size=4)
    expected = plain.nm_many(patterns)
    assert np.array_equal(first.nm_many(patterns), expected)
    assert np.array_equal(second.nm_many(patterns), expected)


def test_empty_store_raises(tmp_path, geometry):
    from repro.storage import StoreWriter

    grid, config, patterns = geometry
    with StoreWriter(tmp_path / "e.tjc"):
        pass
    engine = StreamingNMEngine(tmp_path / "e.tjc", grid, config)
    with pytest.raises(ValueError, match="no trajectories"):
        engine.nm_many(patterns)


def test_rejects_non_dataset_file(tmp_path, geometry):
    grid, config, _ = geometry
    bad = tmp_path / "x.jsonl"
    bad.write_text('{"format": "something-else"}\n')
    with pytest.raises(ValueError, match="not a repro trajectory"):
        StreamingNMEngine(bad, grid, config)
