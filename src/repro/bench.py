"""Perf-trajectory benchmark suite: engine, kernels, mining and serving.

Runs the engine micro-benchmarks (index construction, candidate
evaluation), the kernel-backend comparison (numpy vs compiled, float64 vs
float32, gap-DP throughput), a fig4a-style mining workload, the sharded
parallel-scaling sweep (1/2/4/8 workers), the index-cache cold/warm
comparison and the columnar-store suite (``.tjc`` open/scan/size
economics plus an out-of-core RSS demonstration: a sharded mine over a
store ~4x larger than the parent's resident-set budget), then writes
``BENCH_engine.json`` so subsequent PRs have a recorded perf trajectory.  The ``serve`` section additionally stands up an
in-process :class:`~repro.serve.PatternServer` and drives it with the load
generator, comparing micro-batched against per-request evaluation at
fixed concurrency and recording shedding behaviour under deliberate 2x
overload; its report goes to ``BENCH_serve.json``.  Each run is
*appended* to the file's ``history`` list (keyed by git SHA + timestamp);
the top-level sections always describe the latest run.  Unlike the
pytest-benchmark modules this module needs no plugins and explicitly
compares the batched paths against the scalar reference paths
(per-pattern ``nm`` loop, per-snapshot index collection, one-item
serving batches), reporting throughput ratios.

Usage::

    repro bench [--suite all|engine|kernels|serve]
    PYTHONPATH=src python benchmarks/run_benches.py [--sections engine,serve]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import platform
import subprocess
import tempfile
import time
from dataclasses import replace
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.core import kernels
from repro.core.engine import EngineConfig, NMEngine
from repro.core.parallel import ParallelNMEngine
from repro.core.pattern import TrajectoryPattern
from repro.core.trajpattern import TrajPatternMiner
from repro.core.wildcards import Gap, GapPattern, nm_gap_pattern
from repro.experiments.datasets import grid_with_cells, zebranet_dataset
from repro.obs import metrics as obs_metrics
from repro.obs import tracing


class _capture_metrics:
    """Enable the global registry for a block and keep its final snapshot.

    The benches report instrument values (index-build time, cache hit/miss
    counts, batch sizes) straight from the observability layer instead of
    duplicating hand-rolled timers; the registry is returned to its
    default-off state afterwards so the timed default-path sections stay
    uninstrumented.
    """

    def __enter__(self) -> "_capture_metrics":
        registry = obs_metrics.get_registry()
        registry.reset()
        registry.enable()
        return self

    def __exit__(self, *exc_info) -> None:
        registry = obs_metrics.get_registry()
        self.snapshot = registry.snapshot()
        registry.disable()
        registry.reset()

#: Engine micro-bench workload (mirrors benchmarks/test_bench_engine.py).
ENGINE_WORKLOAD = dict(n_trajectories=50, n_ticks=60, sigma=0.01, seed=7)
ENGINE_CELL_SIZE = 0.02
ENGINE_MIN_PROB = 1e-4

#: Mining workload (mirrors the fig4a bench baseline in conftest.py).
MINING_WORKLOAD = dict(n_trajectories=30, n_ticks=40, sigma=0.01, seed=7)
MINING_TARGET_CELLS = 1024
MINING_K = 5

#: Parallel-scaling workload: larger so the build amortises pool startup.
PARALLEL_WORKLOAD = dict(n_trajectories=120, n_ticks=80, sigma=0.01, seed=7)
PARALLEL_JOBS = (1, 2, 4, 8)
PARALLEL_N_CANDIDATES = 400

#: Kernel-backend comparison: candidate frontier size and gap patterns.
KERNEL_N_CANDIDATES = 400
KERNEL_N_GAP_PATTERNS = 24

#: Serving workload: big enough that per-pattern evaluation dominates the
#: NDJSON framing, so the batched-vs-naive ratio measures the batcher.
SERVE_WORKLOAD = dict(n_trajectories=120, n_ticks=80, sigma=0.01, seed=7)
SERVE_CONCURRENCY = 32
SERVE_REQUESTS = 640
SERVE_OVERLOAD_FACTOR = 2.0
TELEMETRY_PAIRS = 5

#: Columnar-store comparison workload (same scale as the parallel sweep).
STORE_WORKLOAD = dict(n_trajectories=120, n_ticks=80, sigma=0.01, seed=7)

#: Distributed-dispatch comparison: loopback worker pools vs the fork-pool
#: ParallelNMEngine at a fixed span width, so every pool count is compared
#: against the *same-width* parallel engine (bit-identical results by
#: construction) and the measured delta is pure dispatch/wire overhead.
DIST_POOLS = (1, 2, 4)
DIST_JOBS = 4
DIST_N_CANDIDATES = 200

#: Routed-serving comparison: replicas behind one router vs one direct
#: server, both driven at the standard serving concurrency.
ROUTER_REPLICAS = 2

#: Out-of-core demonstration: a sparse-hotspot store several times larger
#: than the parent process's resident-set budget, mined via store-span
#: workers.  95%+ of snapshots are diffuse (sigma chosen so no cell clears
#: the ``min_prob`` floor -> zero index entries) and a thin corridor of
#: precise trajectories carries the signal, so the *index* stays small
#: while the *dataset* dwarfs the budget -- exactly the regime the store
#: exists for.
STORE_RSS_BUDGET_BYTES = 128 * 1024 * 1024
STORE_RSS_ROWS_PER_TRAJ = 16384
STORE_RSS_N_TRAJ = 1376  # ~22.5M rows of f64 columns -> ~540 MB on disk
STORE_RSS_HOTSPOT_EVERY = 50  # every 50th trajectory rides the corridor
STORE_RSS_MINE_ARGS = (
    "--jobs", "2",
    "--cell-size", "0.02",
    "--delta", "0.02",
    "--gamma", "0.05",
    "--min-prob", "0.2",
    "--radius-sigmas", "0.25",
    "-k", "5",
    "--max-length", "3",
)


def _best_of(fn, rounds: int) -> tuple[float, object]:
    """Best wall time over ``rounds`` calls, plus the last return value."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def bench_index_build(dataset, grid, config, rounds: int) -> dict:
    """Vectorised vs scalar (reference) index entry collection."""
    with _capture_metrics() as captured:
        engine = NMEngine(dataset, grid, config)
    vec_s, _ = _best_of(engine._collect_index_entries, rounds)
    scalar_s, _ = _best_of(engine._collect_index_entries_scalar, rounds)
    return {
        "n_snapshots": dataset.total_snapshots(),
        "n_entries": engine.n_index_entries,
        "scalar_s": scalar_s,
        "vectorised_s": vec_s,
        "speedup": scalar_s / vec_s if vec_s > 0 else float("inf"),
        # engine.index_build_ns as observed by the metrics registry.
        "metrics": captured.snapshot["histograms"],
    }


def bench_candidate_eval(engine, rounds: int, n_candidates: int = 400) -> dict:
    """Batched vs scalar evaluation of one mixed-length candidate frontier."""
    rng = np.random.default_rng(11)
    cells = engine.active_cells
    candidates = [
        TrajectoryPattern(
            tuple(int(c) for c in rng.choice(cells, size=rng.integers(2, 6)))
        )
        for _ in range(n_candidates)
    ]
    batched_s, batched_values = _best_of(
        lambda: engine.nm_batch(candidates), rounds
    )
    scalar_s, scalar_values = _best_of(
        lambda: np.array([engine.nm(p) for p in candidates]), rounds
    )
    assert np.allclose(batched_values, scalar_values, atol=1e-9)
    return {
        "n_candidates": n_candidates,
        "scalar_s": scalar_s,
        "scalar_candidates_per_s": n_candidates / scalar_s,
        "batched_s": batched_s,
        "batched_candidates_per_s": n_candidates / batched_s,
        "speedup": scalar_s / batched_s if batched_s > 0 else float("inf"),
    }


def _gap_frontier(engine, n: int, seed: int = 13) -> list[GapPattern]:
    """Seeded two- and three-segment gap patterns over the active alphabet."""
    rng = np.random.default_rng(seed)
    cells = engine.active_cells
    out = []
    for _ in range(n):
        n_segments = int(rng.integers(2, 4))
        segments = []
        gaps = []
        for s in range(n_segments):
            seg_len = int(rng.integers(1, 4))
            segments.append(
                TrajectoryPattern(
                    tuple(int(c) for c in rng.choice(cells, size=seg_len))
                )
            )
            if s < n_segments - 1:
                lo = int(rng.integers(0, 3))
                gaps.append((lo, lo + int(rng.integers(0, 4))))
        out.append(
            GapPattern(tuple(segments), tuple(Gap(lo, hi) for lo, hi in gaps))
        )
    return out


def bench_kernel_backends(rounds: int) -> dict:
    """Throughput of every kernel backend x dtype on the engine workload.

    Three axes per combination, all on the standard engine workload:

    * ``index_build_s`` / ``index_pairs_per_s`` -- the chunked
      ``prob_within`` sweep of index construction (dominated by the Prob
      kernel, so compiled vs numpy here measures libm-vs-scipy ``erf``).
    * ``eval_s`` / ``eval_candidates_per_s`` -- one mixed-length frontier
      of :data:`KERNEL_N_CANDIDATES` candidates through ``nm_batch`` (the
      sort/segment-reduce hot loop).
    * ``gap_s`` / ``gap_evals_per_s`` -- :data:`KERNEL_N_GAP_PATTERNS`
      variable-gap patterns through the wildcard DP.

    ``compiled_vs_numpy_eval_speedup`` (float64 candidate-eval throughput
    ratio) is the acceptance number for the compiled backend; results are
    asserted bitwise-equal across backends before any ratio is reported.
    """
    dataset = zebranet_dataset(**ENGINE_WORKLOAD)
    grid = dataset.make_grid(ENGINE_CELL_SIZE)

    combos = [("numpy", "float64"), ("numpy", "float32")]
    unavailable = kernels.compiled_unavailable_reason()
    if unavailable is None:
        combos += [("compiled", "float64"), ("compiled", "float32")]

    rng = np.random.default_rng(11)
    reference = None
    gap_reference = None
    backends: dict[str, dict] = {}
    for backend, dtype in combos:
        config = EngineConfig(
            delta=ENGINE_CELL_SIZE,
            min_prob=ENGINE_MIN_PROB,
            backend=backend,
            dtype=dtype,
        )
        engine = NMEngine(dataset, grid, config)
        if reference is None:
            cells = engine.active_cells
            candidates = [
                TrajectoryPattern(
                    tuple(int(c) for c in rng.choice(cells, size=rng.integers(2, 6)))
                )
                for _ in range(KERNEL_N_CANDIDATES)
            ]
            gap_frontier = _gap_frontier(engine, KERNEL_N_GAP_PATTERNS)
        build_s, pairs = _best_of(engine._collect_index_entries, rounds)
        n_pairs = int(sum(chunk.size for chunk in pairs[0]))
        eval_s, values = _best_of(lambda: engine.nm_batch(candidates), rounds)
        gap_s, gap_values = _best_of(
            lambda: [nm_gap_pattern(engine, gp) for gp in gap_frontier], rounds
        )
        values = np.asarray(values, dtype=np.float64)
        if dtype == "float64":
            if reference is None:
                reference, gap_reference = values, np.asarray(gap_values)
            else:
                assert np.allclose(values, reference, rtol=1e-12)
                assert np.allclose(gap_values, gap_reference, rtol=1e-12)
        else:
            assert np.allclose(values, reference, rtol=1e-4)
        backends[f"{engine.backend_name}-{dtype}"] = {
            "requested": backend,
            "resolved": engine.backend_name,
            "dtype": dtype,
            "index_build_s": build_s,
            "index_pairs_per_s": n_pairs / build_s if build_s > 0 else float("inf"),
            "eval_s": eval_s,
            "eval_candidates_per_s": (
                KERNEL_N_CANDIDATES / eval_s if eval_s > 0 else float("inf")
            ),
            "gap_s": gap_s,
            "gap_evals_per_s": (
                KERNEL_N_GAP_PATTERNS / gap_s if gap_s > 0 else float("inf")
            ),
        }

    report = {
        "workload": {
            **ENGINE_WORKLOAD,
            "cell_size": ENGINE_CELL_SIZE,
            "min_prob": ENGINE_MIN_PROB,
        },
        "n_candidates": KERNEL_N_CANDIDATES,
        "n_gap_patterns": KERNEL_N_GAP_PATTERNS,
        "available": kernels.available_backends(),
        "backends": backends,
    }
    if unavailable is not None:
        report["compiled_unavailable_reason"] = unavailable
    else:
        numpy64 = backends["numpy-float64"]
        compiled64 = next(
            entry
            for key, entry in backends.items()
            if entry["requested"] == "compiled" and entry["dtype"] == "float64"
        )
        report["compiled_vs_numpy_eval_speedup"] = (
            numpy64["eval_s"] / compiled64["eval_s"]
            if compiled64["eval_s"] > 0
            else float("inf")
        )
        report["compiled_vs_numpy_gap_speedup"] = (
            numpy64["gap_s"] / compiled64["gap_s"]
            if compiled64["gap_s"] > 0
            else float("inf")
        )
    return report


def bench_mining() -> dict:
    """Fig. 4(a)-style mining wall time with batch instrumentation."""
    dataset = zebranet_dataset(**MINING_WORKLOAD)
    grid = grid_with_cells(dataset, MINING_TARGET_CELLS)
    cell = min(grid.gx, grid.gy)
    engine = NMEngine(
        dataset, grid, EngineConfig(delta=cell, min_prob=ENGINE_MIN_PROB)
    )
    result = TrajPatternMiner(engine, k=MINING_K).mine()
    stats = result.stats
    return {
        "k": MINING_K,
        "wall_time_s": stats.wall_time_s,
        "eval_time_s": stats.eval_time_s,
        "candidates_evaluated": stats.candidates_evaluated,
        "candidates_per_s": (
            stats.candidates_evaluated / stats.eval_time_s
            if stats.eval_time_s > 0
            else float("inf")
        ),
        "eval_batches": stats.eval_batches,
        "max_batch_size": stats.max_batch_size,
        "iterations": stats.iterations,
        # The run's own registry: miner.eval_ns / miner.batch_size are the
        # source of truth behind the fields above.
        "metrics": stats.metrics.snapshot(),
    }


def _random_candidates(engine, n: int, seed: int = 11) -> list[TrajectoryPattern]:
    rng = np.random.default_rng(seed)
    cells = engine.active_cells
    return [
        TrajectoryPattern(
            tuple(int(c) for c in rng.choice(cells, size=rng.integers(2, 6)))
        )
        for _ in range(n)
    ]


def bench_parallel_scaling(rounds: int) -> dict:
    """Sharded build + frontier eval at 1/2/4/8 workers vs the serial engine.

    Times are honest wall-clock on this machine; ``cpu_count`` is recorded
    because multi-worker speedups are only physically possible with
    multiple cores (on a 1-core box the sharded paths measure pure
    orchestration overhead).
    """
    dataset = zebranet_dataset(**PARALLEL_WORKLOAD)
    grid = dataset.make_grid(ENGINE_CELL_SIZE)
    config = EngineConfig(delta=ENGINE_CELL_SIZE, min_prob=ENGINE_MIN_PROB)

    t0 = time.perf_counter()
    serial = NMEngine(dataset, grid, config)
    serial_build_s = time.perf_counter() - t0
    candidates = _random_candidates(serial, PARALLEL_N_CANDIDATES)
    serial_eval_s, reference = _best_of(lambda: serial.nm_batch(candidates), rounds)

    workers = {}
    for jobs in PARALLEL_JOBS:
        t0 = time.perf_counter()
        engine = ParallelNMEngine(dataset, grid, config, jobs=jobs)
        build_s = time.perf_counter() - t0
        try:
            eval_s, values = _best_of(lambda: engine.nm_batch(candidates), rounds)
            assert np.allclose(values, reference, atol=1e-9)
            assert engine.n_index_entries == serial.n_index_entries
        finally:
            engine.close()
        workers[str(jobs)] = {"build_s": build_s, "eval_s": eval_s}
    base = workers[str(PARALLEL_JOBS[0])]
    for entry in workers.values():
        entry["build_speedup_vs_1worker"] = base["build_s"] / entry["build_s"]
        entry["eval_speedup_vs_1worker"] = base["eval_s"] / entry["eval_s"]
    return {
        "cpu_count": os.cpu_count(),
        "workload": {**PARALLEL_WORKLOAD, "cell_size": ENGINE_CELL_SIZE},
        "n_candidates": PARALLEL_N_CANDIDATES,
        "serial": {"build_s": serial_build_s, "eval_s": serial_eval_s},
        "workers": workers,
    }


def bench_index_cache(rounds: int) -> dict:
    """Cold index build vs warm start from the on-disk cache.

    Uses the larger parallel workload: the cache pays off proportionally to
    the probability enumeration it skips, so a trivially small index would
    mostly measure ``.npz`` open overhead.
    """
    dataset = zebranet_dataset(**PARALLEL_WORKLOAD)
    grid = dataset.make_grid(ENGINE_CELL_SIZE)
    config = EngineConfig(delta=ENGINE_CELL_SIZE, min_prob=ENGINE_MIN_PROB)
    cold_s = float("inf")
    with _capture_metrics() as captured:
        with tempfile.TemporaryDirectory() as tmp:
            cached = replace(config, cache_dir=tmp)
            for i in range(rounds):
                with tempfile.TemporaryDirectory() as cold_dir:
                    t0 = time.perf_counter()
                    NMEngine(dataset, grid, replace(config, cache_dir=cold_dir))
                    cold_s = min(cold_s, time.perf_counter() - t0)
            NMEngine(dataset, grid, cached)  # populate the warm cache
            warm_s, engine = _best_of(
                lambda: NMEngine(dataset, grid, cached), rounds
            )
            assert engine.index_cache_hit
    counters = captured.snapshot["counters"]
    assert counters.get("index.cache.hit", 0) >= rounds
    return {
        "workload": {**PARALLEL_WORKLOAD, "cell_size": ENGINE_CELL_SIZE},
        "n_entries": engine.n_index_entries,
        "cold_build_s": cold_s,
        "warm_load_s": warm_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        # Cache hit/miss/write counts and per-build timings straight from
        # the observability layer.
        "metrics": {
            "counters": counters,
            "index_build_ns": captured.snapshot["histograms"].get(
                "engine.index_build_ns"
            ),
        },
    }


def bench_columnar_store(rounds: int) -> dict:
    """Open/scan/engine-build economics of the ``.tjc`` columnar store.

    Writes the standard workload as JSONL and as three store variants
    (mmap-able raw float64, zlib-compressed, quantised+zlib), then
    measures what the format buys: O(footer) opens vs a full JSONL parse
    (the ``open_speedup_vs_jsonl`` acceptance number), bounded-``pread``
    sequential scan throughput, and an engine build over the lazy
    store-backed dataset vs the in-RAM dataset (entry counts asserted
    equal -- the store path must not change results).
    """
    from repro.storage import open_store, write_store
    from repro.trajectory.io import load_dataset_jsonl, save_dataset_jsonl

    dataset = zebranet_dataset(**STORE_WORKLOAD)
    grid = dataset.make_grid(ENGINE_CELL_SIZE)
    config = EngineConfig(delta=ENGINE_CELL_SIZE, min_prob=ENGINE_MIN_PROB)

    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as tmp:
        tmp = Path(tmp)
        jsonl = tmp / "dataset.jsonl"
        save_dataset_jsonl(dataset, jsonl)
        jsonl_bytes = jsonl.stat().st_size
        variants = {
            "f64-none": dict(compression="none", positions="f64"),
            "f64-zlib": dict(compression="zlib", positions="f64"),
            "q32-zlib": dict(
                compression="zlib", positions="q32", quant_scale=1e-7
            ),
        }
        formats = {}
        for name, kwargs in variants.items():
            path = tmp / f"dataset-{name}.tjc"
            write_store(dataset, path, **kwargs)
            with open_store(path) as store:
                formats[name] = {
                    "size_bytes": store.size_bytes,
                    "bytes_per_row": store.size_bytes / store.total_snapshots,
                    "supports_mmap": store.supports_mmap,
                }
        main = tmp / "dataset-f64-none.tjc"

        jsonl_load_s, _ = _best_of(lambda: load_dataset_jsonl(jsonl), rounds)
        t0 = time.perf_counter()
        open_store(main).close()
        cold_open_s = time.perf_counter() - t0
        warm_open_s, _ = _best_of(lambda: open_store(main).close(), rounds)

        def _scan() -> int:
            with open_store(main) as store:
                return sum(
                    hi - lo
                    for lo, hi, _, _ in store.iter_row_chunks(mode="read")
                )

        scan_s, n_rows = _best_of(_scan, rounds)

        t0 = time.perf_counter()
        ram_engine = NMEngine(dataset, grid, config)
        ram_build_s = time.perf_counter() - t0
        with open_store(main) as store:
            t0 = time.perf_counter()
            store_engine = NMEngine(store.dataset(), grid, config)
            store_build_s = time.perf_counter() - t0
            assert store_engine.n_index_entries == ram_engine.n_index_entries

    return {
        "workload": {**STORE_WORKLOAD, "cell_size": ENGINE_CELL_SIZE},
        "jsonl_bytes": jsonl_bytes,
        "formats": formats,
        "jsonl_load_s": jsonl_load_s,
        "cold_open_s": cold_open_s,
        "warm_open_s": warm_open_s,
        "open_speedup_vs_jsonl": (
            jsonl_load_s / warm_open_s if warm_open_s > 0 else float("inf")
        ),
        "sequential_scan_s": scan_s,
        "scan_rows_per_s": n_rows / scan_s if scan_s > 0 else float("inf"),
        "engine_build_ram_s": ram_build_s,
        "engine_build_store_s": store_build_s,
        "n_index_entries": store_engine.n_index_entries,
    }


def _write_sparse_hotspot_store(path: Path) -> dict:
    """Stream the RSS-demo dataset straight to ``path`` (never in RAM whole)."""
    from repro.storage import StoreWriter, open_store

    rng = np.random.default_rng(7)
    n_rows = STORE_RSS_ROWS_PER_TRAJ
    with StoreWriter(
        path, metadata={"generator": "bench.sparse-hotspot", "seed": 7}
    ) as writer:
        for i in range(STORE_RSS_N_TRAJ):
            if i % STORE_RSS_HOTSPOT_EVERY == 0:
                # Corridor trajectory: precise fixes along y=0.5.
                x = np.linspace(0.3, 0.7, n_rows)
                y = 0.5 + rng.normal(0.0, 0.002, n_rows)
                sigmas = np.full(n_rows, 0.008)
            else:
                # Diffuse trajectory: a clipped random walk whose sigma is
                # large enough that no single cell clears the floor.
                steps = rng.normal(0.0, 0.004, size=(n_rows, 2))
                walk = np.clip(
                    rng.uniform(0.1, 0.9, size=2) + np.cumsum(steps, axis=0),
                    0.0,
                    1.0,
                )
                x, y = walk[:, 0], walk[:, 1]
                sigmas = np.full(n_rows, 0.06)
            writer.append_arrays(
                np.column_stack([x, y]), sigmas, object_id=f"rss-{i}"
            )
    with open_store(path) as store:
        return {
            "dataset_bytes": store.size_bytes,
            "n_trajectories": store.n_trajectories,
            "total_snapshots": store.total_snapshots,
        }


def bench_store_rss() -> dict:
    """Sharded mine over a store several times larger than the RSS budget.

    The mine runs as a subprocess (so its ``ru_maxrss`` is untainted by
    the bench's own allocations) with suggestion scanning disabled via
    explicit ``--cell-size/--delta/--gamma``; the parent process hands
    workers file-range spans instead of /dev/shm copies, so its peak RSS
    must stay under :data:`STORE_RSS_BUDGET_BYTES` even though the store
    is ~4x larger.  Worker (child) peak RSS is recorded separately --
    children map their own span, which is the point of the split.
    """
    import sys

    import repro
    from repro.obs.manifest import load_manifest

    src_root = Path(repro.__file__).resolve().parents[1]
    with tempfile.TemporaryDirectory(prefix="repro-bench-rss-") as tmp:
        tmp = Path(tmp)
        store_path = tmp / "sparse-hotspot.tjc"
        t0 = time.perf_counter()
        info = _write_sparse_hotspot_store(store_path)
        write_s = time.perf_counter() - t0
        manifest_path = tmp / "mine.manifest.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_root)] + [p for p in [env.get("PYTHONPATH")] if p]
        )
        t0 = time.perf_counter()
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "mine",
                str(store_path),
                *STORE_RSS_MINE_ARGS,
                "--output",
                str(tmp / "patterns.json"),
                "--manifest-out",
                str(manifest_path),
            ],
            capture_output=True,
            text=True,
            env=env,
        )
        mine_wall_s = time.perf_counter() - t0
        if proc.returncode != 0:
            raise RuntimeError(
                f"store RSS mine failed ({proc.returncode}):\n{proc.stderr[-2000:]}"
            )
        manifest = load_manifest(manifest_path)

    runtime = manifest["runtime"]
    peak = int(runtime["peak_rss_bytes"])
    report = {
        **info,
        "budget_bytes": STORE_RSS_BUDGET_BYTES,
        "dataset_to_budget_ratio": info["dataset_bytes"] / STORE_RSS_BUDGET_BYTES,
        "store_write_s": write_s,
        "mine_args": list(STORE_RSS_MINE_ARGS),
        "mine_wall_s": mine_wall_s,
        "peak_rss_bytes": peak,
        "peak_rss_children_bytes": int(
            runtime.get("peak_rss_children_bytes") or 0
        ),
        "under_budget": peak <= STORE_RSS_BUDGET_BYTES,
    }
    assert report["dataset_to_budget_ratio"] >= 4.0, report
    assert report["under_budget"], (
        f"parent peak RSS {peak} exceeds budget {STORE_RSS_BUDGET_BYTES}"
    )
    return report


def bench_distributed(rounds: int) -> dict:
    """Loopback worker-pool dispatch overhead vs the fork-pool engine.

    Writes the parallel workload as a ``.tjc`` store, starts
    :data:`DIST_POOLS` loopback ``WorkerPoolServer`` processes per leg and
    evaluates one frontier through :class:`DistNMEngine` at a fixed
    :data:`DIST_JOBS`-span width.  The baseline is a
    :class:`ParallelNMEngine` at the same width, so results are asserted
    *bit-identical* and ``dispatch_overhead_vs_parallel`` isolates what
    the NDJSON socket hop costs over fork pipes.  On a 1-core box every
    configuration shares the core, so the numbers measure orchestration
    overhead, not scaling -- ``cpu_count`` is recorded for that reason.
    """
    from contextlib import ExitStack

    from repro.dist.coordinator import DistNMEngine
    from repro.dist.worker import WorkerPoolConfig, WorkerPoolServer
    from repro.storage import open_store, write_store

    dataset = zebranet_dataset(**PARALLEL_WORKLOAD)
    grid = dataset.make_grid(ENGINE_CELL_SIZE)
    config = EngineConfig(delta=ENGINE_CELL_SIZE, min_prob=ENGINE_MIN_PROB)

    with tempfile.TemporaryDirectory(prefix="repro-bench-dist-") as tmp:
        store_path = Path(tmp) / "dataset.tjc"
        write_store(dataset, store_path)
        with open_store(store_path) as store:
            store_dataset = store.dataset()

            t0 = time.perf_counter()
            par = ParallelNMEngine(dataset, grid, config, jobs=DIST_JOBS)
            par_build_s = time.perf_counter() - t0
            try:
                candidates = _random_candidates(par, DIST_N_CANDIDATES)
                par_eval_s, reference = _best_of(
                    lambda: par.nm_batch(candidates), rounds
                )
            finally:
                par.close()

            pools = {}
            for n_pools in DIST_POOLS:
                with ExitStack() as stack:
                    specs = []
                    for i in range(n_pools):
                        server = stack.enter_context(
                            WorkerPoolServer(
                                WorkerPoolConfig(
                                    store_path=str(store_path),
                                    name=f"bench-{i}",
                                )
                            )
                        )
                        specs.append(f"{server.config.host}:{server.port}")
                    t0 = time.perf_counter()
                    engine = stack.enter_context(
                        DistNMEngine(
                            store_dataset, grid, config,
                            pools=specs, jobs=DIST_JOBS,
                        )
                    )
                    build_s = time.perf_counter() - t0
                    eval_s, values = _best_of(
                        lambda: engine.nm_batch(candidates), rounds
                    )
                    assert np.array_equal(values, reference), (
                        "distributed evaluation must be bit-identical to the "
                        "same-width parallel engine"
                    )
                pools[str(n_pools)] = {
                    "build_s": build_s,
                    "eval_s": eval_s,
                    "eval_candidates_per_s": (
                        DIST_N_CANDIDATES / eval_s if eval_s > 0 else float("inf")
                    ),
                    "dispatch_overhead_vs_parallel": (
                        eval_s / par_eval_s if par_eval_s > 0 else float("inf")
                    ),
                }

    return {
        "cpu_count": os.cpu_count(),
        "workload": {**PARALLEL_WORKLOAD, "cell_size": ENGINE_CELL_SIZE},
        "jobs": DIST_JOBS,
        "n_candidates": DIST_N_CANDIDATES,
        "parallel_baseline": {"build_s": par_build_s, "eval_s": par_eval_s},
        "bit_identical_to_parallel": True,
        "pools": pools,
    }


def run_dist(rounds: int = 3) -> dict:
    """The ``distributed`` report section (suite ``dist``)."""
    return {"distributed": bench_distributed(rounds)}


#: Incremental-maintenance workload: dataset size and the delta fraction
#: the acceptance target speaks about (appends of <= 5% of the rows should
#: beat a full rebuild by >= 5x).
INCREMENTAL_WORKLOAD = dict(n_trajectories=200, n_ticks=60, sigma=0.01, seed=13)
INCREMENTAL_DELTA_FRACTION = 0.05
INCREMENTAL_MINE_K = 8


def bench_incremental(rounds: int) -> dict:
    """Append-vs-rebuild cost of the incremental index, plus warm mining.

    One engine is built over all but the last ~5% of trajectories; each
    round re-installs that base index from its prebuilt arrays (cheap,
    array-speed) and times a single :meth:`IncrementalIndexer.append` of
    the held-out tail, against the cost of rebuilding the full index from
    scratch.  The folded result is asserted bit-identical to the rebuild.
    The mining leg compares a cold top-k run with one warm-started from the
    base dataset's converged frontier.
    """
    from repro.core.incremental import IncrementalIndexer
    from repro.trajectory.dataset import TrajectoryDataset

    dataset = zebranet_dataset(**INCREMENTAL_WORKLOAD)
    grid = dataset.make_grid(ENGINE_CELL_SIZE)
    config = EngineConfig(delta=ENGINE_CELL_SIZE, min_prob=ENGINE_MIN_PROB)
    trajs = list(dataset)
    n_delta = max(1, int(len(trajs) * INCREMENTAL_DELTA_FRACTION))
    base_dataset = TrajectoryDataset(trajs[:-n_delta])
    delta_trajs = trajs[-n_delta:]

    base = NMEngine(base_dataset, grid, config)
    base_arrays = base.index_arrays()
    rebuild_s, full_engine = _best_of(
        lambda: NMEngine(dataset, grid, config), rounds
    )

    append_s = float("inf")
    evict_s = float("inf")
    indexer = None
    for _ in range(rounds):
        engine = NMEngine(base_dataset, grid, config, prebuilt=base_arrays)
        indexer = IncrementalIndexer(engine)
        t0 = time.perf_counter()
        indexer.append(delta_trajs)
        append_s = min(append_s, time.perf_counter() - t0)
        t0 = time.perf_counter()
        indexer.evict(n_delta)
        evict_s = min(evict_s, time.perf_counter() - t0)
    # Correctness guard on the timed artefact itself: re-fold once and
    # compare against the from-scratch build.
    engine = NMEngine(base_dataset, grid, config, prebuilt=base_arrays)
    IncrementalIndexer(engine).append(delta_trajs)
    bit_identical = all(
        np.array_equal(a, b)
        for a, b in zip(engine.index_arrays(), full_engine.index_arrays())
    )

    previous = TrajPatternMiner(base, k=INCREMENTAL_MINE_K).mine()
    t0 = time.perf_counter()
    cold = TrajPatternMiner(full_engine, k=INCREMENTAL_MINE_K).mine()
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = TrajPatternMiner(
        full_engine, k=INCREMENTAL_MINE_K, warm_state=previous.warm_state
    ).mine()
    warm_s = time.perf_counter() - t0
    topk_identical = [
        (p.cells, nm) for p, nm in cold.as_pairs()
    ] == [(p.cells, nm) for p, nm in warm.as_pairs()]

    delta_rows = sum(len(t) for t in delta_trajs)
    return {
        "n_trajectories": len(trajs),
        "total_rows": dataset.total_snapshots(),
        "delta_trajectories": n_delta,
        "delta_rows": delta_rows,
        "delta_fraction": delta_rows / dataset.total_snapshots(),
        "full_rebuild_s": rebuild_s,
        "append_s": append_s,
        "evict_s": evict_s,
        "append_speedup": rebuild_s / append_s if append_s > 0 else float("inf"),
        "bit_identical": bit_identical,
        "mining": {
            "k": INCREMENTAL_MINE_K,
            "cold_s": cold_s,
            "warm_s": warm_s,
            "cold_iterations": cold.stats.iterations,
            "warm_iterations": warm.stats.iterations,
            "warm_seeds": len(previous.warm_state),
            "topk_identical": topk_identical,
        },
    }


def run_incremental(rounds: int = 3) -> dict:
    """The ``incremental`` report section (suite ``incremental``)."""
    return {"incremental": bench_incremental(rounds)}


def _print_incremental(section: dict) -> None:
    mining = section["mining"]
    print(
        f"incremental:    append {section['append_s'] * 1e3:.1f}ms vs rebuild "
        f"{section['full_rebuild_s'] * 1e3:.0f}ms "
        f"({section['append_speedup']:.1f}x, "
        f"{section['delta_fraction'] * 100:.1f}% delta, "
        f"bit-identical={section['bit_identical']}); "
        f"warm mine {mining['warm_s'] * 1e3:.0f}ms/"
        f"{mining['warm_iterations']}it vs cold "
        f"{mining['cold_s'] * 1e3:.0f}ms/{mining['cold_iterations']}it"
    )


def run_store(rounds: int = 3) -> dict:
    """The ``columnar_store`` report section (suite ``store``)."""
    return {
        "columnar_store": {
            **bench_columnar_store(rounds),
            "rss": bench_store_rss(),
        }
    }


def bench_obs_overhead(engine, rounds: int, n_candidates: int = 400) -> dict:
    """Batched-evaluation throughput with observability off vs fully on.

    ``disabled`` is the default state every other bench runs in (no
    registry, no tracer: hot paths pay one global read per instrumentation
    point); ``enabled`` turns on both the metrics registry and an
    in-memory tracer.  The acceptance bar for the instrumentation layer is
    that ``disabled`` throughput stays within a few percent of the
    pre-instrumentation history entries.
    """
    candidates = _random_candidates(engine, n_candidates)
    disabled_s, _ = _best_of(lambda: engine.nm_batch(candidates), rounds)

    registry = obs_metrics.get_registry()
    sink = tracing.BufferSink()
    tracing.configure_tracing(sink=sink)
    registry.reset()
    registry.enable()
    try:
        enabled_s, _ = _best_of(lambda: engine.nm_batch(candidates), rounds)
    finally:
        tracing.disable_tracing()
        registry.disable()
        registry.reset()
    return {
        "n_candidates": n_candidates,
        "disabled_s": disabled_s,
        "disabled_candidates_per_s": n_candidates / disabled_s,
        "enabled_s": enabled_s,
        "enabled_candidates_per_s": n_candidates / enabled_s,
        "enabled_overhead_pct": (
            (enabled_s / disabled_s - 1.0) * 100.0 if disabled_s > 0 else 0.0
        ),
        "spans_emitted": len(sink.records),
    }


async def _serve_leg(
    snapshot, serve_kwargs: dict, loadgen_kwargs: dict
) -> tuple[dict, dict]:
    """One server lifetime driven by one loadgen run.

    Returns ``(loadgen_report, server_stats)``; the server is stopped
    before returning so legs never share an event-loop or a port.
    """
    from repro.serve import LoadgenConfig, PatternServer, ServeConfig, SnapshotStore
    from repro.serve.loadgen import run_loadgen

    server = PatternServer(SnapshotStore(snapshot), ServeConfig(port=0, **serve_kwargs))
    host, port = await server.start()
    try:
        report = await run_loadgen(
            LoadgenConfig(host=host, port=port, **loadgen_kwargs)
        )
        stats = server.stats()
    finally:
        await server.stop()
    return report, stats


def bench_serve() -> dict:
    """Micro-batched vs per-request serving throughput, plus overload.

    Three legs against the same snapshot:

    * ``batched``  -- closed loop at ``SERVE_CONCURRENCY`` with the default
      micro-batcher (coalesces concurrent requests into one
      ``nm_batch`` call).
    * ``naive``    -- identical load, ``max_batch=1``: every request pays
      its own executor hop and single-pattern evaluation.  The
      ``batching_speedup`` ratio is the acceptance number.
    * ``overload`` -- open loop at ``SERVE_OVERLOAD_FACTOR`` x the batched
      throughput with a small queue and tight deadline: the server must
      shed explicitly (``overloaded`` responses) while the admitted
      requests keep a bounded p99.
    * ``telemetry`` -- the batched leg rerun with the full server-side
      observability stack on: metrics registry, in-memory tracer and a
      running :class:`~repro.obs.export.TelemetryExporter`.
      ``telemetry_overhead_pct`` is the acceptance number (bar: <= 5%);
      the ``batched`` leg doubles as proof the disabled path is untouched.
      Methodology: this box's throughput drifts +-10% between runs (far
      more than the overhead being measured), so the leg runs
      ``TELEMETRY_PAIRS`` ABBA blocks (off, on, on, off) at 2x request
      count and reports the *median of per-block ratios* -- the ABBA
      order cancels linear drift inside a block exactly, the median
      cancels outlier blocks hit by contention bursts.  The
      loadgen stays untraced here: client and server share one core in
      this bench, so a traced client would double-count its own span
      cost into server throughput.  A final ``wire_traced`` leg (traced
      loadgen, spans propagated over the wire and joined server-side) is
      recorded for information only -- its cost is dominated by the
      colocated client instrumentation, not the server.
    """
    from repro.serve import ServingSnapshot

    dataset = zebranet_dataset(**SERVE_WORKLOAD)
    with tempfile.TemporaryDirectory() as cache_dir:
        snapshot = ServingSnapshot.from_dataset(
            dataset,
            min_prob=ENGINE_MIN_PROB,
            cache_dir=cache_dir,
            source="bench",
        )
        load = dict(
            requests=SERVE_REQUESTS,
            concurrency=SERVE_CONCURRENCY,
            op="score",
            measure="nm",
            patterns_per_request=1,
            seed=0,
        )

        def best_leg(serve_kwargs: dict, loadgen_kwargs: dict, n: int = 3):
            """Best-of-n runs of one leg (single runs see ~±7% scheduler
            noise at these request sizes, swamping small overheads)."""
            best = None
            for _ in range(n):
                report, stats = asyncio.run(
                    _serve_leg(snapshot, serve_kwargs, loadgen_kwargs)
                )
                if best is None or report["achieved_qps"] > best[0]["achieved_qps"]:
                    best = (report, stats)
            return best

        batched_kwargs = dict(max_batch=64, max_delay_ms=2.0, max_queue=2048,
                              default_timeout_ms=60_000.0)
        batched, batched_stats = best_leg(batched_kwargs, load)
        naive, _ = asyncio.run(
            _serve_leg(
                snapshot,
                dict(max_batch=1, max_delay_ms=0.0, max_queue=2048,
                     default_timeout_ms=60_000.0),
                load,
            )
        )
        overload_qps = SERVE_OVERLOAD_FACTOR * batched["achieved_qps"]
        overload, overload_stats = asyncio.run(
            _serve_leg(
                snapshot,
                dict(max_batch=64, max_delay_ms=2.0, max_queue=128,
                     default_timeout_ms=250.0),
                {**load, "qps": overload_qps,
                 "requests": max(SERVE_REQUESTS, int(overload_qps * 2.0))},
            )
        )

        # Telemetry leg: interleaved ABBA blocks -- see the docstring for
        # why block medians instead of best-of-n.
        from statistics import median

        from repro.obs.export import TelemetryExporter

        registry = obs_metrics.get_registry()
        sink = tracing.BufferSink()
        pair_load = {**load, "requests": SERVE_REQUESTS * 2}
        block_ratios: list[float] = []
        telemetry = None
        with tempfile.TemporaryDirectory() as export_dir:
            exporter = TelemetryExporter(export_dir, interval_s=0.5)
            exporter.start()
            def off_leg() -> dict:
                report, _ = asyncio.run(
                    _serve_leg(snapshot, batched_kwargs, pair_load)
                )
                assert report["errors"] == 0
                return report

            def on_leg() -> dict:
                tracing.configure_tracing(sink=sink)
                registry.enable()
                try:
                    report, _ = asyncio.run(
                        _serve_leg(snapshot, batched_kwargs, pair_load)
                    )
                finally:
                    tracing.disable_tracing()
                    registry.disable()
                assert report["errors"] == 0
                return report

            try:
                for _ in range(TELEMETRY_PAIRS):
                    a1, b1, b2, a2 = off_leg(), on_leg(), on_leg(), off_leg()
                    block_ratios.append(
                        (a1["achieved_qps"] + a2["achieved_qps"])
                        / (b1["achieved_qps"] + b2["achieved_qps"])
                        - 1.0
                    )
                    for on_report in (b1, b2):
                        if (
                            telemetry is None
                            or on_report["achieved_qps"]
                            > telemetry["achieved_qps"]
                        ):
                            telemetry = on_report
                server_spans = len(sink.records)
                # Informational: loadgen originates traces and propagates
                # them over the wire.  Client spans are recorded in the
                # same process, so this is not held to the overhead bar.
                tracing.configure_tracing(sink=sink)
                registry.enable()
                try:
                    wire_traced, _ = asyncio.run(
                        _serve_leg(
                            snapshot, batched_kwargs, {**load, "trace": True}
                        )
                    )
                finally:
                    tracing.disable_tracing()
                    registry.disable()
            finally:
                exporter.stop()
                registry.reset()

    assert batched["errors"] == 0 and naive["errors"] == 0
    assert overload["errors"] == 0 and wire_traced["errors"] == 0
    telemetry_overhead_pct = median(block_ratios) * 100.0
    speedup = (
        batched["achieved_qps"] / naive["achieved_qps"]
        if naive["achieved_qps"] > 0
        else float("inf")
    )
    shed_fraction = (
        overload["overloaded"] / overload["completed"]
        if overload["completed"]
        else 0.0
    )
    return {
        "workload": dict(SERVE_WORKLOAD),
        "snapshot": snapshot.describe(),
        "concurrency": SERVE_CONCURRENCY,
        "requests": SERVE_REQUESTS,
        "batched": {**batched, "batcher": batched_stats.get("batcher")},
        "naive": naive,
        "batching_speedup": speedup,
        "overload": {
            **overload,
            "target_qps": overload_qps,
            "shed_fraction": shed_fraction,
            "batcher": overload_stats.get("batcher"),
        },
        "telemetry": {
            **{k: v for k, v in telemetry.items() if k != "requests"},
            "abba_blocks": TELEMETRY_PAIRS,
            "block_overhead_pcts": [r * 100.0 for r in block_ratios],
            "spans_emitted": server_spans,
            "exported_records": exporter.exported_records,
        },
        "telemetry_overhead_pct": telemetry_overhead_pct,
        "wire_traced": {
            **{k: v for k, v in wire_traced.items() if k != "requests"},
            "spans_emitted": len(sink.records) - server_spans,
        },
    }


async def _routed_leg(
    snapshot, n_replicas: int, serve_kwargs: dict, loadgen_kwargs: dict
) -> tuple[dict, dict]:
    """One router lifetime over ``n_replicas`` fresh replicas."""
    from repro.dist.router import PatternRouter, RouterConfig
    from repro.serve import LoadgenConfig, PatternServer, ServeConfig, SnapshotStore
    from repro.serve.loadgen import run_loadgen

    servers = []
    addresses = []
    router = None
    try:
        for _ in range(n_replicas):
            server = PatternServer(
                SnapshotStore(snapshot), ServeConfig(port=0, **serve_kwargs)
            )
            addresses.append(await server.start())
            servers.append(server)
        router = PatternRouter(RouterConfig(replicas=tuple(addresses)))
        host, port = await router.start()
        report = await run_loadgen(
            LoadgenConfig(host=host, port=port, **loadgen_kwargs)
        )
        stats = router.stats()
    finally:
        if router is not None:
            await router.stop()
        for server in servers:
            await server.stop()
    return report, stats


def bench_routed_serving() -> dict:
    """Replica fan-out behind the router vs one direct server.

    ``ROUTER_REPLICAS`` replicas behind a :class:`PatternRouter` against a
    single direct server, identical load at :data:`SERVE_CONCURRENCY`.
    With spare cores, two replicas must beat one server (the >=1.5x
    acceptance bar); on a 1-core box all replicas and the router time-share
    the core, so the ratio measures pure router dispatch overhead instead
    and ``note`` explains the gap.  Router sheds must all be explained
    (zero with healthy replicas and an adequate queue).
    """
    from repro.serve import ServingSnapshot

    dataset = zebranet_dataset(**SERVE_WORKLOAD)
    with tempfile.TemporaryDirectory() as cache_dir:
        snapshot = ServingSnapshot.from_dataset(
            dataset,
            min_prob=ENGINE_MIN_PROB,
            cache_dir=cache_dir,
            source="bench",
        )
        serve_kwargs = dict(
            max_batch=64, max_delay_ms=2.0, max_queue=2048,
            default_timeout_ms=60_000.0,
        )
        load = dict(
            requests=SERVE_REQUESTS,
            concurrency=SERVE_CONCURRENCY,
            op="score",
            measure="nm",
            patterns_per_request=1,
            seed=0,
        )
        single, _ = asyncio.run(_serve_leg(snapshot, serve_kwargs, load))
        routed, router_stats = asyncio.run(
            _routed_leg(snapshot, ROUTER_REPLICAS, serve_kwargs, load)
        )

    assert single["errors"] == 0 and routed["errors"] == 0
    assert routed.get("overloaded", 0) == 0, (
        f"unexplained sheds through the router: {routed}"
    )
    speedup = (
        routed["achieved_qps"] / single["achieved_qps"]
        if single["achieved_qps"] > 0
        else float("inf")
    )
    router = router_stats.get("router", {})
    report = {
        "replicas": ROUTER_REPLICAS,
        "concurrency": SERVE_CONCURRENCY,
        "requests": SERVE_REQUESTS,
        "cpu_count": os.cpu_count(),
        "single": single,
        "routed": routed,
        "throughput_vs_single": speedup,
        "router_overhead_pct": (1.0 / speedup - 1.0) * 100.0 if speedup else 0.0,
        "router": {
            "requests_routed": router.get("requests_routed"),
            "retries": router.get("retries"),
            "sheds": router.get("sheds"),
            "replicas_up": router.get("replicas_up"),
            "per_replica_forwarded": {
                name: entry.get("forwarded")
                for name, entry in (router.get("replicas") or {}).items()
            },
        },
    }
    if speedup < 1.5:
        report["note"] = (
            f"{ROUTER_REPLICAS} replicas reached only {speedup:.2f}x a single "
            f"server: this box has {os.cpu_count()} core(s), so replicas, "
            "router and loadgen time-share the CPU and the ratio measures "
            "router dispatch overhead, not parallel serving capacity"
        )
    return report


def run_serve() -> dict:
    return {
        "generated_by": "repro.bench",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "serve": bench_serve(),
        "routed_serving": bench_routed_serving(),
    }


def run(rounds: int = 3) -> dict:
    dataset = zebranet_dataset(**ENGINE_WORKLOAD)
    grid = dataset.make_grid(ENGINE_CELL_SIZE)
    config = EngineConfig(delta=ENGINE_CELL_SIZE, min_prob=ENGINE_MIN_PROB)

    index_build = bench_index_build(dataset, grid, config, rounds)
    engine = NMEngine(dataset, grid, config)
    candidate_eval = bench_candidate_eval(engine, rounds)
    kernel_backends = bench_kernel_backends(rounds)
    obs_overhead = bench_obs_overhead(engine, rounds)
    mining = bench_mining()
    parallel_scaling = bench_parallel_scaling(rounds)
    index_cache = bench_index_cache(rounds)
    distributed = bench_distributed(rounds)

    return {
        "generated_by": "repro.bench",
        "python": platform.python_version(),
        "numpy": np.__version__,
        "rounds": rounds,
        "engine_workload": {
            **ENGINE_WORKLOAD,
            "cell_size": ENGINE_CELL_SIZE,
            "min_prob": ENGINE_MIN_PROB,
        },
        "mining_workload": {
            **MINING_WORKLOAD,
            "target_cells": MINING_TARGET_CELLS,
            "k": MINING_K,
        },
        "index_build": index_build,
        "candidate_eval": candidate_eval,
        "kernel_backends": kernel_backends,
        "obs_overhead": obs_overhead,
        "mining": mining,
        "parallel_scaling": parallel_scaling,
        "index_cache": index_cache,
        "distributed": distributed,
    }


def _repo_root() -> Path:
    """Nearest ancestor with a pyproject.toml (fallback: the working dir)."""
    for parent in Path(__file__).resolve().parents:
        if (parent / "pyproject.toml").is_file():
            return parent
    return Path.cwd()


def _git_sha() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=_repo_root(),
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def _load_history(output: Path) -> list:
    """History entries from a previous report file, tolerating old formats."""
    if not output.exists():
        return []
    try:
        previous = json.loads(output.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return []
    history = previous.get("history")
    if isinstance(history, list):
        return history
    # Pre-history report: preserve it as the first entry rather than drop it.
    previous.pop("history", None)
    return [{"git_sha": "unknown", "timestamp": None, "report": previous}]


def _host_fingerprint() -> dict:
    """What makes perf numbers comparable: the machine and the runtime."""
    return {
        "cpu_count": os.cpu_count(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _write_report(output: Path, report: dict) -> int:
    """Append ``report`` to ``output``'s history and rewrite the file.

    History entries carry the bench process's own ``peak_rss_bytes``, a
    ``host`` fingerprint (cpu count, platform, python version -- perf
    deltas against an entry from a different machine are noise, and the
    bench warns when the newest entries straddle hosts), and -- when the
    report has a ``columnar_store`` section -- the RSS-demo
    ``dataset_bytes``.  All keys are additive: old entries without them
    stay valid.
    """
    from repro.obs.manifest import peak_rss_bytes

    history = _load_history(output)
    entry = {
        "git_sha": _git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "peak_rss_bytes": peak_rss_bytes(),
        "host": _host_fingerprint(),
        "report": report,
    }
    if history:
        previous_host = history[-1].get("host")
        if previous_host is not None and previous_host != entry["host"]:
            print(
                f"warning: previous {output.name} entry was recorded on a "
                f"different host ({previous_host}); numbers are not "
                f"comparable with this run's ({entry['host']})"
            )
    rss = report.get("columnar_store", {}).get("rss") if isinstance(
        report.get("columnar_store"), dict
    ) else None
    if rss:
        entry["dataset_bytes"] = rss.get("dataset_bytes")
    history.append(entry)
    output.write_text(
        json.dumps({**report, "history": history}, indent=2) + "\n",
        encoding="utf-8",
    )
    return len(history)


def _print_serve(sv: dict) -> None:
    batched, naive, overload = sv["batched"], sv["naive"], sv["overload"]
    print(f"serve batched:  {batched['achieved_qps']:.0f} req/s "
          f"p99 {batched['latency']['p99_ms']:.1f}ms  "
          f"(batches of up to {batched['batcher']['max_batch_size']})")
    print(f"serve naive:    {naive['achieved_qps']:.0f} req/s "
          f"p99 {naive['latency']['p99_ms']:.1f}ms  "
          f"-> batching {sv['batching_speedup']:.1f}x")
    print(f"serve overload: {overload['target_qps']:.0f} req/s offered, "
          f"{overload['ok']} ok / {overload['overloaded']} shed "
          f"({overload['shed_fraction']:.0%}), "
          f"admitted p99 {overload['latency']['p99_ms']:.1f}ms")
    telemetry = sv.get("telemetry")
    if telemetry:
        print(f"serve telemetry: {telemetry['achieved_qps']:.0f} req/s "
              f"with tracing+metrics+exporter "
              f"({sv['telemetry_overhead_pct']:+.1f}% median of "
              f"{telemetry['abba_blocks']} ABBA blocks, "
              f"{telemetry['spans_emitted']} spans, "
              f"{telemetry['exported_records']} exports)")
    wire = sv.get("wire_traced")
    if wire:
        print(f"serve wire-traced: {wire['achieved_qps']:.0f} req/s "
              f"with a trace-propagating loadgen in-process "
              f"({wire['spans_emitted']} client+server spans, "
              f"informational)")


def _print_kernels(kb: dict) -> None:
    for key, entry in kb["backends"].items():
        print(
            f"kernels {key:>16s}: build {entry['index_build_s']:.3f}s  "
            f"eval {entry['eval_candidates_per_s']:.0f}/s  "
            f"gap {entry['gap_evals_per_s']:.0f}/s"
        )
    if "compiled_vs_numpy_eval_speedup" in kb:
        print(
            f"kernels compiled vs numpy (f64): "
            f"eval {kb['compiled_vs_numpy_eval_speedup']:.1f}x  "
            f"gap {kb['compiled_vs_numpy_gap_speedup']:.1f}x"
        )
    else:
        print(f"kernels compiled: unavailable "
              f"({kb.get('compiled_unavailable_reason', 'unknown')})")


def _print_store(cs: dict) -> None:
    print(
        f"store open:     jsonl load {cs['jsonl_load_s'] * 1e3:.1f}ms  "
        f"warm open {cs['warm_open_s'] * 1e3:.2f}ms  "
        f"({cs['open_speedup_vs_jsonl']:.0f}x)"
    )
    sizes = "  ".join(
        f"{name} {entry['size_bytes'] / 1024:.0f}KiB"
        for name, entry in cs["formats"].items()
    )
    print(f"store sizes:    jsonl {cs['jsonl_bytes'] / 1024:.0f}KiB  {sizes}")
    print(
        f"store scan:     {cs['scan_rows_per_s']:.0f} rows/s  "
        f"engine build ram {cs['engine_build_ram_s']:.3f}s / "
        f"store {cs['engine_build_store_s']:.3f}s"
    )
    rss = cs["rss"]
    print(
        f"store rss:      {rss['dataset_bytes'] / 2**20:.0f}MiB dataset "
        f"({rss['dataset_to_budget_ratio']:.1f}x budget), sharded mine "
        f"parent peak {rss['peak_rss_bytes'] / 2**20:.0f}MiB "
        f"(children {rss['peak_rss_children_bytes'] / 2**20:.0f}MiB) "
        f"{'UNDER' if rss['under_budget'] else 'OVER'} "
        f"{rss['budget_bytes'] / 2**20:.0f}MiB budget, "
        f"{rss['mine_wall_s']:.0f}s wall"
    )


def _print_dist(dist: dict) -> None:
    base = dist["parallel_baseline"]
    legs = "  ".join(
        f"{n}p {entry['eval_s'] * 1e3:.0f}ms"
        f" ({entry['dispatch_overhead_vs_parallel']:.2f}x)"
        for n, entry in dist["pools"].items()
    )
    print(
        f"distributed:    parallel[{dist['jobs']}] eval "
        f"{base['eval_s'] * 1e3:.0f}ms; loopback pools eval/overhead: {legs}"
        f"  (bit-identical)"
    )


def _print_routed(rs: dict) -> None:
    print(
        f"routed serving: {rs['replicas']} replicas "
        f"{rs['routed']['achieved_qps']:.0f} req/s vs single "
        f"{rs['single']['achieved_qps']:.0f} req/s "
        f"({rs['throughput_vs_single']:.2f}x, cpus {rs['cpu_count']})"
    )
    if rs.get("note"):
        print(f"                note: {rs['note']}")


def _print_engine(report: dict) -> None:
    ib, ce, mi = report["index_build"], report["candidate_eval"], report["mining"]
    print(f"index build:    scalar {ib['scalar_s']:.3f}s  "
          f"vectorised {ib['vectorised_s']:.3f}s  ({ib['speedup']:.1f}x)")
    print(f"candidate eval: scalar {ce['scalar_candidates_per_s']:.0f}/s  "
          f"batched {ce['batched_candidates_per_s']:.0f}/s  ({ce['speedup']:.1f}x)")
    _print_kernels(report["kernel_backends"])
    print(f"mining:         {mi['wall_time_s']:.3f}s wall, "
          f"{mi['candidates_evaluated']} candidates in {mi['eval_batches']} batches")
    oo = report["obs_overhead"]
    print(f"obs overhead:   off {oo['disabled_candidates_per_s']:.0f}/s  "
          f"on {oo['enabled_candidates_per_s']:.0f}/s  "
          f"({oo['enabled_overhead_pct']:+.1f}%)")
    ps, ic = report["parallel_scaling"], report["index_cache"]
    scaling = "  ".join(
        f"{jobs}w {entry['build_s']:.2f}s/{entry['eval_s'] * 1e3:.0f}ms"
        for jobs, entry in ps["workers"].items()
    )
    print(f"parallel:       cpus {ps['cpu_count']}, serial build "
          f"{ps['serial']['build_s']:.2f}s, build/eval per workers: {scaling}")
    print(f"index cache:    cold {ic['cold_build_s']:.3f}s  "
          f"warm {ic['warm_load_s']:.3f}s  ({ic['speedup']:.1f}x)")
    if "distributed" in report:
        _print_dist(report["distributed"])


def _existing_sections(output: Path) -> dict:
    """The top-level sections of a previous report file, minus history."""
    if not output.exists():
        return {}
    try:
        loaded = json.loads(output.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(loaded, dict):
        return {}
    return {k: v for k, v in loaded.items() if k != "history"}


def run_suites(
    suite: str = "all",
    output_dir: str | Path | None = None,
    rounds: int = 3,
) -> int:
    """The ``repro bench`` entry point; returns a process exit code.

    ``engine`` runs the full engine report (kernel backends included) into
    ``BENCH_engine.json``; ``kernels`` runs only the backend comparison
    into ``BENCH_kernels.json`` (fast iteration loop); ``serve`` writes
    ``BENCH_serve.json``; ``store`` runs the columnar-store suite (format
    economics + the out-of-core RSS demonstration) and merges its
    ``columnar_store`` section into ``BENCH_engine.json`` without
    re-running the engine benches; ``dist`` likewise runs only the
    distributed-dispatch comparison (merged into ``BENCH_engine.json``)
    plus the routed-serving leg (merged into ``BENCH_serve.json``);
    ``incremental`` runs the append-vs-rebuild and warm-mining comparison
    and merges its ``incremental`` section into ``BENCH_engine.json``;
    ``all`` = engine + store + serve (both of which now include the
    distributed sections).
    """
    valid = ("all", "engine", "kernels", "serve", "store", "dist", "incremental")
    if suite not in valid:
        raise ValueError(f"unknown bench suite {suite!r}")
    base = Path(output_dir) if output_dir is not None else _repo_root()
    base.mkdir(parents=True, exist_ok=True)

    if suite == "kernels":
        report = {
            "generated_by": "repro.bench",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "rounds": rounds,
            "kernel_backends": bench_kernel_backends(rounds),
        }
        output = base / "BENCH_kernels.json"
        n = _write_report(output, report)
        _print_kernels(report["kernel_backends"])
        print(f"wrote {output} ({n} history entries)")
        return 0

    if suite in ("all", "serve"):
        serve_report = run_serve()
        output = base / "BENCH_serve.json"
        n = _write_report(output, serve_report)
        _print_serve(serve_report["serve"])
        _print_routed(serve_report["routed_serving"])
        print(f"wrote {output} ({n} history entries)")
    store_section = run_store(rounds) if suite in ("all", "store") else None
    if suite in ("all", "engine"):
        report = run(rounds=rounds)
        if store_section is not None:
            report.update(store_section)
        output = base / "BENCH_engine.json"
        n = _write_report(output, report)
        _print_engine(report)
        if store_section is not None:
            _print_store(report["columnar_store"])
        print(f"wrote {output} ({n} history entries)")
    elif suite == "store":
        # Merge into the existing engine report's top level so the file
        # keeps describing the latest state of every section.
        output = base / "BENCH_engine.json"
        report = {
            **_existing_sections(output),
            "generated_by": "repro.bench",
            "python": platform.python_version(),
            "numpy": np.__version__,
            **store_section,
        }
        n = _write_report(output, report)
        _print_store(report["columnar_store"])
        print(f"wrote {output} ({n} history entries)")
    elif suite == "incremental":
        # Same merge discipline as ``store``/``dist``: refresh only this
        # section of the engine report.
        inc_section = run_incremental(rounds)
        output = base / "BENCH_engine.json"
        report = {
            **_existing_sections(output),
            "generated_by": "repro.bench",
            "python": platform.python_version(),
            "numpy": np.__version__,
            **inc_section,
        }
        n = _write_report(output, report)
        _print_incremental(report["incremental"])
        print(f"wrote {output} ({n} history entries)")
    elif suite == "dist":
        # Fast iteration on the distributed sections alone: merge the
        # dispatch comparison into the engine report and the routed leg
        # into the serving report, re-running neither full suite.
        dist_section = run_dist(rounds)
        output = base / "BENCH_engine.json"
        report = {
            **_existing_sections(output),
            "generated_by": "repro.bench",
            "python": platform.python_version(),
            "numpy": np.__version__,
            **dist_section,
        }
        n = _write_report(output, report)
        _print_dist(report["distributed"])
        print(f"wrote {output} ({n} history entries)")

        routed = bench_routed_serving()
        output = base / "BENCH_serve.json"
        report = {
            **_existing_sections(output),
            "generated_by": "repro.bench",
            "python": platform.python_version(),
            "numpy": np.__version__,
            "routed_serving": routed,
        }
        n = _write_report(output, report)
        _print_routed(routed)
        print(f"wrote {output} ({n} history entries)")
    return 0


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=_repo_root() / "BENCH_engine.json",
        help="where to write the engine JSON report (default: repo root)",
    )
    parser.add_argument(
        "--serve-output",
        type=Path,
        default=_repo_root() / "BENCH_serve.json",
        help="where to write the serving JSON report (default: repo root)",
    )
    parser.add_argument(
        "--sections",
        default="engine,serve",
        help="comma-separated sections to run: engine, serve, store, dist",
    )
    parser.add_argument(
        "--rounds", type=int, default=3, help="timing rounds per measurement"
    )
    args = parser.parse_args()
    sections = {s.strip() for s in args.sections.split(",") if s.strip()}
    unknown = sections - {"engine", "serve", "store", "dist"}
    if unknown:
        parser.error(f"unknown sections: {sorted(unknown)}")

    if "serve" in sections:
        serve_report = run_serve()
        n = _write_report(args.serve_output, serve_report)
        _print_serve(serve_report["serve"])
        _print_routed(serve_report["routed_serving"])
        print(f"wrote {args.serve_output} ({n} history entries)")
    if "engine" in sections:
        report = run(rounds=args.rounds)
        n_entries = _write_report(args.output, report)
        _print_engine(report)
        print(f"wrote {args.output} ({n_entries} history entries)")
    if "store" in sections:
        # Runs after (or without) the engine section; merges the
        # ``columnar_store`` section into the same report file.
        run_suites(
            suite="store", output_dir=args.output.parent, rounds=args.rounds
        )
    if "dist" in sections and "engine" not in sections:
        # The engine section already includes the distributed comparison;
        # standalone, merge it (and the routed leg) into the reports.
        run_suites(
            suite="dist", output_dir=args.output.parent, rounds=args.rounds
        )


if __name__ == "__main__":
    main()
