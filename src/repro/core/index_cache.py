"""Persistent on-disk cache of the engine's sparse probability index.

Building the index is the expensive part of engine construction: every
snapshot neighbourhood is enumerated and ``Prob`` evaluated per (snapshot,
cell) pair.  The *result* however is three flat arrays -- ``(cell, row,
log-prob)`` triples sorted by (cell, row) -- that depend only on the
dataset geometry, the grid and the index-affecting knobs of
:class:`~repro.core.engine.EngineConfig`.  This module persists those
arrays as one ``.npz`` per configuration under a cache directory, so
repeated mining/experiment runs skip the build entirely.

Cache key
---------
The file name is a SHA-256 over

* a format-version tag (bump :data:`CACHE_FORMAT_VERSION` when the stored
  layout changes),
* every trajectory's means and sigmas (raw little-endian float64 bytes)
  plus the trajectory lengths -- so *any* change to the dataset, including
  reordering, invalidates the key,
* the grid extent and resolution,
* the index-affecting config fields: ``delta``, ``prob_model``,
  ``min_prob``, ``radius_sigmas`` and ``max_cells_per_snapshot``,
* the ``Prob`` kernel identity when it is not the scipy reference
  (compiled libm-``erf`` builds differ by a couple of ULPs; see
  :func:`cache_key`).

Knobs that do not change the stored entries (``column_cache_size``,
``jobs``, ``cache_dir`` itself, evaluation ``backend``/``dtype``) are
deliberately excluded, so serial and parallel runs share one cache file.

Robustness: files are written atomically (temp file + ``os.replace``) and
:func:`load_index` treats *any* unreadable, truncated or
wrong-format file as a miss -- the engine then falls back to a fresh
build and overwrites the bad file.

Observability: every load outcome is logged on the ``repro.index_cache``
logger and counted on the global metrics registry -- ``index.cache.hit``,
``index.cache.miss`` (file absent) and ``index.cache.corrupt`` (file
present but rejected, logged as a warning because it means a rebuild the
operator probably did not expect).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import zipfile
from pathlib import Path

import numpy as np

from repro.obs import logs, metrics
from repro.testkit import faults

_log = logs.get_logger("index_cache")

#: Bump when the stored array layout changes; part of the cache key.
CACHE_FORMAT_VERSION = 1

#: Arrays stored in the ``.npz`` payload, in order.
_PAYLOAD_KEYS = ("cells", "rows", "vals")


def _hash_update_array(h: "hashlib._Hash", array: np.ndarray) -> None:
    """Feed an array into the hash in a layout-independent way."""
    arr = np.ascontiguousarray(array, dtype=np.float64)
    h.update(np.asarray(arr.shape, dtype=np.int64).tobytes())
    h.update(arr.astype("<f8", copy=False).tobytes())


def dataset_fingerprint(dataset) -> str:
    """SHA-256 hex digest of every trajectory's means, sigmas and length.

    A dataset may pre-compute this and expose it as a
    ``content_fingerprint`` attribute -- full-span
    :class:`~repro.storage.dataset.StoreDataset` views do, carrying the
    ``.tjc`` footer's ``content_hash``, which the writer computed with
    exactly this algorithm.  The short-circuit is what makes opening a
    multi-gigabyte store and hitting a warm index cache O(footer) instead
    of O(dataset).
    """
    precomputed = getattr(dataset, "content_fingerprint", None)
    if precomputed is not None:
        return str(precomputed)
    h = hashlib.sha256()
    h.update(f"n={len(dataset)}".encode())
    for traj in dataset:
        _hash_update_array(h, traj.means)
        _hash_update_array(h, traj.sigmas)
    return h.hexdigest()


def cache_key(dataset, grid, config, *, kernel_tag: str = "ref") -> str:
    """Cache key of one (dataset, grid, index configuration) combination.

    ``kernel_tag`` identifies the ``Prob`` kernel that builds the entries
    (:func:`repro.core.kernels.prob_kernel_tag`): the reference scipy path
    is ``"ref"`` and -- for compatibility with files written before kernel
    backends existed -- contributes nothing to the key, while compiled
    kernels (libm ``erf``, within ~2 ULPs of scipy but not bit-identical)
    are mixed in so the two builds never alias one cache file.  Evaluation
    dtype and backend do *not* affect the stored entries and stay excluded.
    """
    h = hashlib.sha256()
    h.update(f"format={CACHE_FORMAT_VERSION}".encode())
    h.update(dataset_fingerprint(dataset).encode())
    bbox = grid.bbox
    h.update(
        (
            f"grid={bbox.min_x!r},{bbox.min_y!r},{bbox.max_x!r},{bbox.max_y!r},"
            f"{grid.nx},{grid.ny}"
        ).encode()
    )
    h.update(
        (
            f"config=delta:{config.delta!r},model:{config.prob_model.value},"
            f"min_prob:{config.min_prob!r},radius:{config.radius_sigmas!r},"
            f"cap:{config.max_cells_per_snapshot}"
        ).encode()
    )
    if kernel_tag != "ref":
        h.update(f"kernel={kernel_tag}".encode())
    return h.hexdigest()


def span_cache_key(
    store_hash: str,
    traj_lo: int,
    traj_hi: int,
    grid,
    config,
    *,
    kernel_tag: str = "ref",
) -> str:
    """Cache key of one trajectory *span* of a content-addressed store.

    Same ingredients as :func:`cache_key` except the dataset contribution
    is the store's ``content_hash`` plus the span bounds -- no data needs
    to be read to name the cache entry, which is what lets the streaming
    engine and span workers warm their per-chunk indices incrementally.
    Row indices inside a span cache file are *span-local* (relative to the
    span's first row); the loader re-bases them.
    """
    h = hashlib.sha256()
    h.update(f"format={CACHE_FORMAT_VERSION}".encode())
    h.update(f"store={store_hash}/span={traj_lo}:{traj_hi}".encode())
    bbox = grid.bbox
    h.update(
        (
            f"grid={bbox.min_x!r},{bbox.min_y!r},{bbox.max_x!r},{bbox.max_y!r},"
            f"{grid.nx},{grid.ny}"
        ).encode()
    )
    h.update(
        (
            f"config=delta:{config.delta!r},model:{config.prob_model.value},"
            f"min_prob:{config.min_prob!r},radius:{config.radius_sigmas!r},"
            f"cap:{config.max_cells_per_snapshot}"
        ).encode()
    )
    if kernel_tag != "ref":
        h.update(f"kernel={kernel_tag}".encode())
    return h.hexdigest()


def cache_path(cache_dir: str | Path, key: str) -> Path:
    """Path of the cache file for ``key`` under ``cache_dir``."""
    return Path(cache_dir) / f"index-{key}.npz"


def save_index(
    cache_dir: str | Path,
    key: str,
    cells: np.ndarray,
    rows: np.ndarray,
    vals: np.ndarray,
) -> Path:
    """Atomically persist the flat index arrays under ``cache_dir``.

    The write goes to a temp file *inside the cache directory* first --
    same filesystem by construction, so ``os.replace`` is an atomic rename
    (never the cross-device ``EXDEV`` a ``TMPDIR`` temp file could hit) and
    a crash mid-write can never leave a half-written file under the final
    name.  A crash between write and rename leaves only a ``*.tmp`` file,
    which no reader ever opens.
    """
    target = cache_path(cache_dir, key)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=target.stem + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(
                fh,
                cells=np.ascontiguousarray(cells, dtype=np.int64),
                rows=np.ascontiguousarray(rows, dtype=np.int64),
                vals=np.ascontiguousarray(vals, dtype=np.float64),
            )
        faults.fire("index_cache.save", tmp=tmp_name, target=str(target))
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    metrics.counter("index.cache.write").inc()
    _log.debug(
        "index cache write",
        extra={"path": str(target), "n_entries": int(len(cells))},
    )
    return target


def load_index(
    cache_dir: str | Path,
    key: str,
    *,
    n_rows: int | None = None,
    n_cells: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
    """Load the flat index arrays for ``key``, or ``None`` on any failure.

    Missing, truncated, corrupted or wrong-shape files are all treated as
    cache misses; the caller rebuilds and overwrites.  ``n_rows`` /
    ``n_cells`` optionally bound the valid row / cell ranges: a file whose
    payload parses but points outside the dataset or grid (a key collision
    or bit rot that survived the zip CRC) is rejected as corrupt rather
    than handed to the engine, where an out-of-range row would raise an
    ``IndexError`` deep inside index installation -- or worse, silently
    score against the wrong trajectories.
    """
    target = cache_path(cache_dir, key)
    try:
        with np.load(target) as payload:
            arrays = tuple(np.asarray(payload[k]) for k in _PAYLOAD_KEYS)
    except FileNotFoundError:
        metrics.counter("index.cache.miss").inc()
        _log.debug("index cache miss", extra={"path": str(target)})
        return None
    except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile) as exc:
        return _corrupt(target, f"unreadable: {exc}")
    cells, rows, vals = arrays
    if not (cells.ndim == rows.ndim == vals.ndim == 1):
        return _corrupt(target, "arrays are not one-dimensional")
    if not (len(cells) == len(rows) == len(vals)):
        return _corrupt(target, "array lengths disagree")
    if cells.dtype.kind != "i" or rows.dtype.kind != "i" or vals.dtype.kind != "f":
        return _corrupt(target, "unexpected array dtypes")
    if len(cells):
        if cells.min() < 0 or (n_cells is not None and cells.max() >= n_cells):
            return _corrupt(target, "cell ids out of range")
        if rows.min() < 0 or (n_rows is not None and rows.max() >= n_rows):
            return _corrupt(target, "row indices out of range")
        if not np.isfinite(vals).all():
            return _corrupt(target, "non-finite log-probabilities")
    metrics.counter("index.cache.hit").inc()
    _log.info(
        "index cache hit",
        extra={"path": str(target), "n_entries": int(len(cells))},
    )
    return cells, rows, vals


def ensure_index(
    dataset, grid, config
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat index arrays for ``(dataset, grid, config)``, cached when possible.

    The snapshot-loading hook of the serving layer
    (:mod:`repro.serve.snapshot`): returns ``(cells, rows, vals)`` sorted by
    (cell, row) -- exactly what :class:`~repro.core.engine.NMEngine` accepts
    as ``prebuilt`` -- loading from ``config.cache_dir`` when the file
    exists and building (then persisting) otherwise.  Because the key is
    content-hashed, offline mining runs and serving snapshots over the same
    dataset share one cache file in both directions: whoever builds first,
    the other side warm-starts.

    With ``config.cache_dir`` unset this degrades to a plain build (no
    persistence).
    """
    from repro.core.engine import NMEngine  # deferred: engine imports us

    engine = NMEngine(dataset, grid, config)
    return engine.index_arrays()


def warm_cache(dataset, grid, config) -> bool:
    """Pre-populate the cache for ``(dataset, grid, config)``; True on a build.

    Used by ``repro serve`` snapshot preparation to pay the index build
    before a snapshot swap is requested, so the swap itself is a pure load.
    Returns ``False`` when the cache file already existed.
    """
    from repro.core import kernels  # deferred: kernels has no cycle, stay lazy

    if config.cache_dir is None:
        raise ValueError("warm_cache requires config.cache_dir to be set")
    key = cache_key(
        dataset, grid, config, kernel_tag=kernels.prob_kernel_tag(config)
    )
    if cache_path(config.cache_dir, key).exists():
        return False
    ensure_index(dataset, grid, config)
    return True


def _corrupt(target: Path, reason: str) -> None:
    """Count and log a present-but-rejected cache file, returning a miss."""
    metrics.counter("index.cache.corrupt").inc()
    _log.warning(
        "index cache file rejected; falling back to a fresh build",
        extra={"path": str(target), "reason": reason},
    )
    return None
