"""Unit and equivalence tests for the vectorised NM engine.

The central claim: :class:`NMEngine` computes exactly the same NM / match
values as the scalar reference implementation in
:mod:`repro.core.measures`, for every pattern, at floating-point accuracy.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineConfig, NMEngine, build_engine
from repro.core.measures import (
    match_pattern_dataset,
    nm_pattern_dataset,
    nm_pattern_trajectory,
)
from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory
from repro.uncertainty.gaussian import ProbModel


class TestEngineConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            EngineConfig(delta=0.0)
        with pytest.raises(ValueError):
            EngineConfig(delta=0.1, min_prob=0.0)
        with pytest.raises(ValueError):
            EngineConfig(delta=0.1, min_prob=2.0)
        with pytest.raises(ValueError):
            EngineConfig(delta=0.1, radius_sigmas=-1.0)

    def test_auto_radius_covers_min_prob(self):
        config = EngineConfig(delta=0.1, min_prob=1e-6)
        from scipy.stats import norm

        assert norm.cdf(-config.effective_radius_sigmas()) == pytest.approx(
            1e-6, rel=1e-6
        )

    def test_explicit_radius_respected(self):
        config = EngineConfig(delta=0.1, radius_sigmas=3.0)
        assert config.effective_radius_sigmas() == 3.0

    def test_min_log_prob(self):
        config = EngineConfig(delta=0.1, min_prob=1e-4)
        assert config.min_log_prob == pytest.approx(np.log(1e-4))


class TestEngineBasics:
    def test_empty_dataset_rejected(self, unit_grid):
        with pytest.raises(ValueError):
            NMEngine(TrajectoryDataset([]), unit_grid, EngineConfig(delta=0.1))

    def test_active_cells_sorted_and_touched(self, small_engine, small_dataset):
        cells = small_engine.active_cells
        assert cells == sorted(cells)
        # Every cell that contains a snapshot mean must be active.
        for traj in small_dataset:
            for located in small_engine.grid.locate_many(traj.means):
                assert int(located) in set(cells)

    def test_build_engine_defaults(self, small_dataset):
        engine = build_engine(small_dataset, cell_size=0.05)
        assert engine.config.delta == 0.05

    def test_log_prob_at_point_query(self, small_engine, small_dataset):
        from repro.core.measures import position_log_probs

        traj = small_dataset[0]
        cell = int(small_engine.grid.locate(*traj.means[3]))
        got = small_engine.log_prob_at(0, 3, cell)
        expected = position_log_probs(
            TrajectoryPattern((cell,)),
            traj.window(3, 1),
            small_engine.grid,
            small_engine.config.delta,
            min_log_prob=small_engine.floor_log_prob,
        )[0]
        assert got == pytest.approx(float(expected))

    def test_log_prob_at_bounds(self, small_engine):
        with pytest.raises(IndexError):
            small_engine.log_prob_at(99, 0, 0)
        with pytest.raises(IndexError):
            small_engine.log_prob_at(0, 99, 0)

    def test_log_prob_at_inactive_cell_is_floor(self, small_engine):
        inactive = set(range(small_engine.grid.n_cells)) - set(
            small_engine.active_cells
        )
        cell = next(iter(inactive))
        assert small_engine.log_prob_at(0, 0, cell) == small_engine.floor_log_prob


class TestScalarEquivalence:
    """Engine == scalar oracle, exactly."""

    def _check(self, engine, dataset, pattern):
        floor = engine.floor_log_prob
        nm_engine = engine.nm(pattern)
        nm_scalar = nm_pattern_dataset(
            pattern,
            dataset,
            engine.grid,
            engine.config.delta,
            model=engine.config.prob_model,
            min_log_prob=floor,
        )
        assert nm_engine == pytest.approx(nm_scalar, abs=1e-9)
        m_engine = engine.match(pattern)
        m_scalar = match_pattern_dataset(
            pattern,
            dataset,
            engine.grid,
            engine.config.delta,
            model=engine.config.prob_model,
            min_log_prob=floor,
        )
        assert m_engine == pytest.approx(m_scalar, rel=1e-9, abs=1e-300)

    def test_singular_patterns(self, small_engine, small_dataset):
        for cell in small_engine.active_cells[::37]:
            self._check(small_engine, small_dataset, TrajectoryPattern((cell,)))

    def test_random_patterns(self, small_engine, small_dataset, rng):
        cells = small_engine.active_cells
        for length in (2, 3, 5):
            for _ in range(5):
                pattern = TrajectoryPattern(
                    tuple(int(c) for c in rng.choice(cells, size=length))
                )
                self._check(small_engine, small_dataset, pattern)

    def test_pattern_with_inactive_cells(self, small_engine, small_dataset):
        inactive = sorted(
            set(range(small_engine.grid.n_cells)) - set(small_engine.active_cells)
        )
        pattern = TrajectoryPattern((small_engine.active_cells[0], inactive[0]))
        self._check(small_engine, small_dataset, pattern)

    def test_pattern_longer_than_some_trajectories(self, rng):
        trajs = [
            UncertainTrajectory(rng.normal(0.5, 0.05, (n, 2)), 0.05)
            for n in (2, 3, 8)
        ]
        dataset = TrajectoryDataset(trajs)
        engine = build_engine(dataset, cell_size=0.05, min_prob=1e-5)
        cells = engine.active_cells
        pattern = TrajectoryPattern(tuple(cells[:4]))
        self._check(engine, dataset, pattern)

    def test_wildcard_patterns(self, small_engine, small_dataset):
        cells = small_engine.active_cells
        pattern = TrajectoryPattern((cells[0], WILDCARD, cells[1]))
        floor = small_engine.floor_log_prob
        nm_engine = small_engine.nm(pattern)
        nm_scalar = nm_pattern_dataset(
            pattern, small_dataset, small_engine.grid,
            small_engine.config.delta, min_log_prob=floor,
        )
        assert nm_engine == pytest.approx(nm_scalar, abs=1e-9)

    def test_disk_model_equivalence(self, small_dataset):
        grid = small_dataset.make_grid(0.04)
        engine = NMEngine(
            small_dataset,
            grid,
            EngineConfig(delta=0.04, min_prob=1e-5, prob_model=ProbModel.DISK),
        )
        cells = engine.active_cells
        self._check(engine, small_dataset, TrajectoryPattern((cells[3], cells[5])))

    def test_per_trajectory_values(self, small_engine, small_dataset):
        cells = small_engine.active_cells
        pattern = TrajectoryPattern((cells[2], cells[3]))
        per_traj = small_engine.nm_per_trajectory(pattern)
        for i, traj in enumerate(small_dataset):
            expected = nm_pattern_trajectory(
                pattern,
                traj,
                small_engine.grid,
                small_engine.config.delta,
                min_log_prob=small_engine.floor_log_prob,
            )
            assert per_traj[i] == pytest.approx(expected, abs=1e-9)


class TestSingularTables:
    def test_nm_table_matches_direct(self, small_engine):
        table = small_engine.singular_nm_table()
        for cell in list(table)[::53]:
            assert table[cell] == pytest.approx(
                small_engine.nm(TrajectoryPattern((cell,))), abs=1e-9
            )

    def test_match_table_matches_direct(self, small_engine):
        table = small_engine.singular_match_table()
        for cell in list(table)[::53]:
            assert table[cell] == pytest.approx(
                small_engine.match(TrajectoryPattern((cell,))), rel=1e-9
            )

    def test_tables_cover_active_cells(self, small_engine):
        assert set(small_engine.singular_nm_table()) == set(small_engine.active_cells)


class TestExtensionTables:
    def test_right_extensions_match_direct(self, small_engine, rng):
        cells = small_engine.active_cells
        for length in (1, 2, 3):
            base = TrajectoryPattern(
                tuple(int(c) for c in rng.choice(cells, size=length))
            )
            nm_table, match_table = small_engine.extend_right_tables(base)
            assert set(nm_table) == set(cells)
            for cell in rng.choice(cells, size=8):
                ext = TrajectoryPattern(base.cells + (int(cell),))
                assert nm_table[int(cell)] == pytest.approx(
                    small_engine.nm(ext), abs=1e-9
                )
                assert match_table[int(cell)] == pytest.approx(
                    small_engine.match(ext), rel=1e-9, abs=1e-300
                )

    def test_extension_with_short_trajectories(self, rng):
        trajs = [
            UncertainTrajectory(rng.normal(0.5, 0.03, (n, 2)), 0.05) for n in (2, 6)
        ]
        dataset = TrajectoryDataset(trajs)
        engine = build_engine(dataset, cell_size=0.05, min_prob=1e-4)
        base = TrajectoryPattern(tuple(engine.active_cells[:2]))
        nm_table, _ = engine.extend_right_tables(base)
        for cell in list(nm_table)[:5]:
            ext = TrajectoryPattern(base.cells + (cell,))
            assert nm_table[cell] == pytest.approx(engine.nm(ext), abs=1e-9)


class TestBestWindow:
    def test_best_window_position(self, small_engine, small_dataset):
        traj = small_dataset[0]
        grid = small_engine.grid
        # Pattern traced from snapshots 4..6 of trajectory 0.
        pattern = TrajectoryPattern.from_points(traj.means[4:7], grid)
        start, nm = small_engine.best_window(pattern, 0)
        direct = [
            nm_pattern_trajectory(
                pattern,
                traj.window(s, 3),
                grid,
                small_engine.config.delta,
                min_log_prob=small_engine.floor_log_prob,
            )
            for s in range(len(traj) - 2)
        ]
        assert nm == pytest.approx(max(direct), abs=1e-9)
        assert start == int(np.argmax(direct))

    def test_best_window_too_short(self, small_engine):
        pattern = TrajectoryPattern(tuple(small_engine.active_cells[:25]))
        assert small_engine.best_window(pattern, 0) is None


class TestPropertyEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 24), min_size=1, max_size=4), st.integers(0, 10_000))
    def test_engine_equals_scalar_on_random_instances(self, cell_idx, seed):
        rng = np.random.default_rng(seed)
        trajs = [
            UncertainTrajectory(
                np.cumsum(rng.normal(0.02, 0.01, (rng.integers(2, 9), 2)), axis=0)
                + rng.uniform(0, 0.3, 2),
                rng.uniform(0.02, 0.08),
            )
            for _ in range(3)
        ]
        dataset = TrajectoryDataset(trajs)
        grid = Grid(BoundingBox(-0.5, -0.5, 1.0, 1.0), nx=5, ny=5)
        engine = NMEngine(dataset, grid, EngineConfig(delta=0.1, min_prob=1e-5))
        pattern = TrajectoryPattern(tuple(c % grid.n_cells for c in cell_idx))
        expected = nm_pattern_dataset(
            pattern, dataset, grid, 0.1, min_log_prob=engine.floor_log_prob
        )
        assert engine.nm(pattern) == pytest.approx(expected, abs=1e-9)
