"""Synthetic data generators replacing the paper's datasets (section 6).

* :class:`~repro.datagen.bus.BusFleetGenerator` -- the bus-route fleet of
  section 6.1 (5 routes, 50 buses, 10 weekdays, 100 snapshots): buses
  follow fixed closed routes with stops and speed noise, producing the
  recurring velocity motifs the prediction experiment exploits.
* :class:`~repro.datagen.zebranet.ZebraNetGenerator` -- the ZebraNet-style
  herd data of section 6.2: group-structured movement with heavy-tailed
  step lengths, persistent headings, per-animal jitter and group-leaving
  events, following the paper's own synthesis procedure.
* :class:`~repro.datagen.network.RoadNetworkGenerator` -- objects routed
  over a road graph, the "generator similar to [9]" alternative.
* :class:`~repro.datagen.posture.PostureGenerator` -- regime-switching
  pose trajectories, standing in for the paper's second (human posture)
  dataset.
* :func:`~repro.datagen.random_walk.correlated_random_walks` -- plain
  correlated random walks for tests and micro-benchmarks.
* :class:`~repro.datagen.movement_stats.MovementStats` -- step-length /
  turning-angle statistics extraction (the "extract the movement of zebras
  from the real traces" step).
"""

from repro.datagen.bus import BusFleetConfig, BusFleetGenerator, BusRoute
from repro.datagen.movement_stats import MovementStats
from repro.datagen.network import RoadNetworkConfig, RoadNetworkGenerator
from repro.datagen.posture import PostureConfig, PostureGenerator
from repro.datagen.random_walk import correlated_random_walks
from repro.datagen.zebranet import ZebraNetConfig, ZebraNetGenerator
from repro.datagen.observe import observe_paths

__all__ = [
    "BusRoute",
    "BusFleetConfig",
    "BusFleetGenerator",
    "ZebraNetConfig",
    "ZebraNetGenerator",
    "RoadNetworkConfig",
    "RoadNetworkGenerator",
    "PostureConfig",
    "PostureGenerator",
    "correlated_random_walks",
    "MovementStats",
    "observe_paths",
]
