"""Observability for the mining stack: metrics, spans, logs, manifests.

One import point for the four instruments this package provides:

* :mod:`repro.obs.metrics` -- process-wide counters/gauges/histograms with
  a disabled no-op fast path (hot loops pay one attribute check when off);
* :mod:`repro.obs.tracing` -- context-manager spans emitting a JSONL event
  log, propagated across :class:`~repro.core.parallel.ParallelNMEngine`
  workers so shard spans appear in the parent trace;
* :mod:`repro.obs.logs` -- stdlib ``logging`` under the ``repro.*``
  hierarchy with a JSON formatter;
* :mod:`repro.obs.manifest` / :mod:`repro.obs.report` -- run manifests and
  the ``trajpattern report`` renderer;
* :mod:`repro.obs.export` / :mod:`repro.obs.slo` -- periodic telemetry
  export (JSONL series + Prometheus text) and SLO burn-rate evaluation
  over the exported series.

Everything is off by default: no handlers installed, metrics registry
disabled, no tracer.  :func:`configure` (or :func:`apply_config` with an
:class:`~repro.core.engine.EngineConfig`) switches the pieces on; the CLI
drives it from ``--log-level`` / ``--trace-out`` / ``--metrics-out``.
This package deliberately imports nothing from :mod:`repro.core`, so any
layer of the stack can instrument itself without import cycles.
"""

from __future__ import annotations

from repro.obs import logs, metrics, tracing
from repro.obs.logs import configure_logging, get_logger
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracing import (
    BufferSink,
    SpanContext,
    begin,
    configure_tracing,
    current_context,
    disable_tracing,
    record_span,
    span,
    span_at,
)

__all__ = [
    "BufferSink",
    "MetricsRegistry",
    "SpanContext",
    "apply_config",
    "begin",
    "configure",
    "configure_logging",
    "configure_tracing",
    "current_context",
    "disable_tracing",
    "get_logger",
    "get_registry",
    "logs",
    "metrics",
    "record_span",
    "shutdown",
    "span",
    "span_at",
    "tracing",
]


def configure(
    log_level: str | None = None,
    trace_out=None,
    enable_metrics: bool = False,
) -> None:
    """Switch on the requested observability pieces (idempotent).

    ``enable_metrics`` resets the global registry before enabling it, so
    consecutive runs in one process report clean numbers.
    """
    if log_level:
        configure_logging(log_level)
    if trace_out:
        configure_tracing(path=trace_out)
    if enable_metrics:
        registry = get_registry()
        registry.reset()
        registry.enable()


def apply_config(config) -> None:
    """Apply the observability fields of an engine config, if any are set.

    Reads ``log_level`` / ``trace_out`` / ``metrics_out`` by attribute so
    this package never imports :mod:`repro.core.engine`.  Called by
    :func:`repro.core.engine.build_engine` and the CLI commands.
    """
    configure(
        log_level=getattr(config, "log_level", None),
        trace_out=getattr(config, "trace_out", None),
        enable_metrics=getattr(config, "metrics_out", None) is not None,
    )


def shutdown() -> None:
    """Close the tracer and disable metrics (end-of-command hygiene).

    Log handlers stay installed -- they are harmless and replaceable --
    but the trace file is flushed/closed and the registry disabled so a
    following run (or test) starts from the default-off state.
    """
    disable_tracing()
    registry = get_registry()
    registry.disable()
    registry.reset()
