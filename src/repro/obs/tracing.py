"""Span tracing: context-manager spans emitting a JSONL event log.

A *span* is a named, timed region of the run (``index.build``,
``miner.iteration``, ``engine.nm_batch``).  Spans nest: the tracer keeps a
stack, so a span opened inside another records the outer span's id as its
parent, and a whole run reconstructs into a tree from the flat JSONL file.
One record is emitted per span when it closes:

.. code-block:: json

    {"kind": "span", "trace": "…", "span": "1a2b.3", "parent": "1a2b.2",
     "name": "engine.nm_batch", "ts_ns": 1712…, "dur_ns": 48211,
     "pid": 4711, "attrs": {"n_patterns": 443, "shard": 1}}

``ts_ns`` is wall-clock (``time.time_ns``, comparable across processes);
``dur_ns`` is measured with ``time.perf_counter_ns``.

Cross-process propagation
-------------------------
:class:`~repro.core.parallel.ParallelNMEngine` workers trace into a
:class:`BufferSink` configured with the parent's trace id and the span
that was current when the engine was constructed as *ambient parent*
(:func:`current_context`).  The parent drains the buffers over the
existing pipe protocol and writes the records into its own sink
(:func:`emit_foreign`), so shard-side index builds and batch evaluations
appear in the one trace file as children of the parent run span.

Disabled fast path: with no tracer configured (the default)
:func:`span` returns a shared no-op context manager -- one global read
per call, no clock access, no allocation.
"""

from __future__ import annotations

import itertools
import json
import os
import secrets
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any

#: Keys every span record carries; ``repro report`` validates against this.
SPAN_RECORD_KEYS = ("kind", "trace", "span", "name", "ts_ns", "dur_ns", "pid")


@dataclass(frozen=True)
class SpanContext:
    """Portable (trace id, parent span id) pair for worker propagation."""

    trace_id: str
    span_id: str | None


class FileSink:
    """Append-only JSONL writer (one record per line, flushed per emit)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")

    def emit(self, record: dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - defensive
            pass


class BufferSink:
    """In-memory record list; workers drain it over the pipe protocol."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def drain(self) -> list[dict]:
        records, self.records = self.records, []
        return records

    def close(self) -> None:
        # Keep the records: closing must not lose spans that have not been
        # drained yet (tests and the worker exit path read them afterwards).
        pass


class Span:
    """One traced region; use as a context manager."""

    __slots__ = ("name", "span_id", "parent_id", "attrs", "_tracer", "_ts_ns", "_t0")

    def __init__(
        self, tracer: "Tracer", name: str, parent_id: str | None, attrs: dict
    ) -> None:
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id = parent_id
        self.attrs = attrs
        self._tracer = tracer

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def __enter__(self) -> "Span":
        self._ts_ns = time.time_ns()
        self._t0 = time.perf_counter_ns()
        self._tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur_ns = time.perf_counter_ns() - self._t0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._end(self, dur_ns)


class _NoopSpan:
    """Shared do-nothing span returned when tracing is off."""

    __slots__ = ()
    span_id = None
    parent_id = None

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Emits span records to a sink; tracks the current span stack."""

    def __init__(
        self,
        sink,
        trace_id: str | None = None,
        ambient_parent: str | None = None,
        base_attrs: dict | None = None,
    ) -> None:
        self.sink = sink
        self.trace_id = trace_id or secrets.token_hex(8)
        self.ambient_parent = ambient_parent
        self.base_attrs = dict(base_attrs or {})
        self._stack: list[Span] = []
        # pid prefix keeps ids unique across forked shard workers.
        self._ids = itertools.count(1)
        self._pid = os.getpid()

    def _next_id(self) -> str:
        return f"{self._pid:x}.{next(self._ids)}"

    def span(self, name: str, **attrs: Any) -> Span:
        parent = self._stack[-1].span_id if self._stack else self.ambient_parent
        return Span(self, name, parent, attrs)

    def _end(self, span: Span, dur_ns: int) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - out-of-order exits
            self._stack.remove(span)
        record = {
            "kind": "span",
            "trace": self.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "ts_ns": span._ts_ns,
            "dur_ns": int(dur_ns),
            "pid": self._pid,
        }
        attrs = {**self.base_attrs, **span.attrs}
        if attrs:
            record["attrs"] = attrs
        self.sink.emit(record)

    def current_context(self) -> SpanContext:
        """Propagation handle: the trace id plus the innermost open span."""
        span_id = self._stack[-1].span_id if self._stack else self.ambient_parent
        return SpanContext(self.trace_id, span_id)

    def emit_foreign(self, records: list[dict]) -> None:
        """Write already-formed records (drained worker buffers) verbatim."""
        for record in records:
            self.sink.emit(record)

    def close(self) -> None:
        self._stack.clear()
        self.sink.close()


#: Process-global tracer; ``None`` means tracing is off (the default).
_TRACER: Tracer | None = None


def configure_tracing(
    path: str | Path | None = None,
    sink=None,
    trace_id: str | None = None,
    ambient_parent: str | None = None,
    base_attrs: dict | None = None,
) -> Tracer:
    """Install the process-global tracer (replacing any previous one).

    Exactly one of ``path`` (JSONL file) or ``sink`` must be given.
    """
    global _TRACER
    if (path is None) == (sink is None):
        raise ValueError("exactly one of path or sink is required")
    if _TRACER is not None:
        _TRACER.close()
    if sink is None:
        sink = FileSink(path)
    _TRACER = Tracer(
        sink, trace_id=trace_id, ambient_parent=ambient_parent, base_attrs=base_attrs
    )
    return _TRACER


def disable_tracing() -> None:
    """Close and remove the process-global tracer (idempotent)."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
        _TRACER = None


def forget_tracer() -> None:
    """Drop the global tracer WITHOUT closing its sink.

    For forked worker processes that inherit the parent's tracer: the
    sink's file handle is shared with the parent, so the child must not
    flush or close it -- it just forgets the object and reconfigures.
    """
    global _TRACER
    _TRACER = None


def get_tracer() -> Tracer | None:
    return _TRACER


def span(name: str, **attrs: Any):
    """A span under the global tracer, or the shared no-op when off."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def current_context() -> SpanContext | None:
    """Propagation context of the global tracer (``None`` when off)."""
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.current_context()


def emit_foreign(records: list[dict]) -> None:
    """Write drained worker records into the global tracer, if any."""
    tracer = _TRACER
    if tracer is not None and records:
        tracer.emit_foreign(records)
