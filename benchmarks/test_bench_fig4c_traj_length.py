"""Fig. 4(c): runtime vs the average trajectory length L.

Paper: both algorithms scale linearly with L -- the data scan dominates.
"""

import pytest

from repro.baselines.pb import PBMiner
from repro.core.trajpattern import TrajPatternMiner

from benchmarks.conftest import BENCH_FIG4


@pytest.mark.parametrize("length", [20, 40, 80])
def test_bench_fig4c_trajpattern(benchmark, length):
    benchmark.group = "fig4c-trajpattern"
    engine = BENCH_FIG4.make_engine(n_ticks=length)
    result = benchmark.pedantic(
        lambda: TrajPatternMiner(engine, k=BENCH_FIG4.k).mine(),
        rounds=2,
        iterations=1,
    )
    assert len(result) == BENCH_FIG4.k


@pytest.mark.parametrize("length", [20, 40, 80])
def test_bench_fig4c_pb(benchmark, length):
    benchmark.group = "fig4c-pb"
    engine = BENCH_FIG4.make_engine(n_ticks=length)
    result, _ = benchmark.pedantic(
        lambda: PBMiner(
            engine, k=BENCH_FIG4.k, max_length=BENCH_FIG4.pb_max_length
        ).mine(),
        rounds=1,
        iterations=1,
    )
    assert len(result) == BENCH_FIG4.k
