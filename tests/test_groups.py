"""Tests for pattern-group discovery (sections 3.4 / 4.2)."""

import pytest

from repro.core.groups import PatternGroup, discover_pattern_groups
from repro.core.pattern import TrajectoryPattern
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid


@pytest.fixture
def grid():
    return Grid(BoundingBox.unit(), nx=10, ny=10)


def cells(*pairs):
    """Patterns from (col, row) pairs on the 10x10 grid."""
    return TrajectoryPattern(tuple(r * 10 + c for c, r in pairs))


class TestPatternGroup:
    def test_validation(self):
        with pytest.raises(ValueError):
            PatternGroup(())
        with pytest.raises(ValueError):
            PatternGroup((TrajectoryPattern((1,)), TrajectoryPattern((1, 2))))

    def test_length_property(self):
        g = PatternGroup((TrajectoryPattern((1, 2)),))
        assert g.length == 2
        assert len(g) == 1

    def test_representative_of_singleton(self, grid):
        p = TrajectoryPattern((1, 2))
        assert PatternGroup((p,)).representative(grid) == p

    def test_representative_is_medoid(self, grid):
        # Three collinear patterns: the middle one is the medoid.
        left, mid, right = cells((0, 0)), cells((1, 0)), cells((2, 0))
        group = PatternGroup((left, mid, right))
        assert group.representative(grid) == mid

    def test_is_mutually_similar(self, grid):
        a, b = cells((0, 0)), cells((1, 0))
        group = PatternGroup((a, b))
        assert group.is_mutually_similar(grid, gamma=0.1)
        assert not group.is_mutually_similar(grid, gamma=0.01)


class TestDiscovery:
    def test_gamma_validation(self, grid):
        with pytest.raises(ValueError):
            discover_pattern_groups([TrajectoryPattern((0,))], grid, gamma=-1.0)

    def test_single_pattern(self, grid):
        groups = discover_pattern_groups([TrajectoryPattern((0, 1))], grid, 0.1)
        assert len(groups) == 1 and len(groups[0]) == 1

    def test_duplicates_collapse(self, grid):
        p = TrajectoryPattern((0, 1))
        groups = discover_pattern_groups([p, p], grid, 0.1)
        assert len(groups) == 1 and len(groups[0]) == 1

    def test_different_lengths_never_group(self, grid):
        groups = discover_pattern_groups(
            [TrajectoryPattern((0,)), TrajectoryPattern((0, 1))], grid, 10.0
        )
        assert len(groups) == 2

    def test_partition_property(self, grid, rng):
        patterns = [
            TrajectoryPattern(tuple(int(c) for c in rng.integers(0, 100, size=2)))
            for _ in range(20)
        ]
        unique = list(dict.fromkeys(patterns))
        groups = discover_pattern_groups(patterns, grid, gamma=0.15)
        members = [p for g in groups for p in g.patterns]
        assert sorted(p.cells for p in members) == sorted(p.cells for p in unique)

    @pytest.mark.parametrize("gamma", [0.0, 0.1, 0.25, 0.5])
    def test_groups_are_mutually_similar(self, grid, rng, gamma):
        """Every emitted group satisfies Definition 1 pairwise."""
        patterns = [
            TrajectoryPattern(tuple(int(c) for c in rng.integers(0, 100, size=3)))
            for _ in range(25)
        ]
        groups = discover_pattern_groups(patterns, grid, gamma=gamma)
        for group in groups:
            assert group.is_mutually_similar(grid, gamma * (1 + 1e-9) + 1e-12)

    def test_close_patterns_grouped(self, grid):
        # Two tight bundles far apart.
        bundle_a = [cells((0, 0), (0, 1)), cells((1, 0), (1, 1))]
        bundle_b = [cells((8, 8), (8, 9)), cells((9, 8), (9, 9))]
        groups = discover_pattern_groups(bundle_a + bundle_b, grid, gamma=0.15)
        sizes = sorted(len(g) for g in groups)
        assert sizes == [2, 2]

    def test_gamma_zero_groups_only_identical(self, grid):
        a, b = cells((0, 0)), cells((1, 0))
        groups = discover_pattern_groups([a, b], grid, gamma=0.0)
        assert len(groups) == 2

    def test_huge_gamma_single_group_per_length(self, grid, rng):
        patterns = [
            TrajectoryPattern(tuple(int(c) for c in rng.integers(0, 100, size=2)))
            for _ in range(10)
        ]
        unique = list(dict.fromkeys(patterns))
        groups = discover_pattern_groups(patterns, grid, gamma=10.0)
        assert len(groups) == 1
        assert len(groups[0]) == len(unique)

    def test_paper_worked_example_shape(self, grid):
        """The section 4.2 example: six length-2 patterns ending in the
        groups (P2), (P4), (P5), (P6), (P1, P3)."""
        # First snapshot: {P1, P3, P4, P5} cluster at left, {P2, P6} right.
        # Second snapshot: {P1', P3', P6'} top, {P2', P4'} mid, {P5'} alone.
        p1 = cells((0, 0), (0, 9))
        p3 = cells((0, 1), (0, 8))  # near p1 at both snapshots
        p4 = cells((1, 0), (5, 5))  # left cluster, mid cluster
        p5 = cells((1, 1), (9, 0))  # left cluster, alone at snapshot 2
        p2 = cells((8, 0), (5, 6))  # right cluster, mid cluster
        p6 = cells((9, 0), (1, 9))  # right cluster, top cluster
        groups = discover_pattern_groups([p1, p2, p3, p4, p5, p6], grid, gamma=0.25)
        group_sets = sorted(tuple(sorted(p.cells for p in g.patterns)) for g in groups)
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 1, 1, 1, 2]
        pair = next(g for g in groups if len(g) == 2)
        assert {p.cells for p in pair.patterns} == {p1.cells, p3.cells}

    def test_longer_lengths_emitted_first(self, grid):
        short = TrajectoryPattern((0,))
        long = TrajectoryPattern((0, 1, 2))
        groups = discover_pattern_groups([short, long], grid, 0.1)
        assert groups[0].length == 3
        assert groups[1].length == 1
