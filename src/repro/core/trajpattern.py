"""The TrajPattern algorithm (paper section 4).

Mines the ``k`` trajectory patterns with the largest normalised match from a
set of imprecise trajectories.  The Apriori property does not hold for NM,
so the miner is built on the weaker **min-max** property (Property 1):

    ``NM(P1 + P2) <= (|P1| NM(P1) + |P2| NM(P2)) / (|P1| + |P2|)
                  <= max(NM(P1), NM(P2))``

Outline (section 4, observations 1-3):

1. Seed ``Q`` with all singular patterns over the active grid alphabet and
   set the threshold ``omega`` to the k-th largest NM.
2. Repeatedly extend every *high* pattern (NM >= omega) with every pattern
   in ``Q`` on both sides, score the new candidates, update ``omega`` and
   the high/low split, and prune low patterns that do not satisfy the
   1-extension property (section 4.1).
3. Stop when neither the high set nor the set of *relevant* extension
   partners (high patterns plus lows satisfying the 1-extension property,
   the only partners Lemma 1 allows in an answer) changes.  High-set
   stability alone is not enough: a low added in the final iteration is a
   new extension partner, and by the min-max property a top-k pattern may
   decompose as high + low.  Report the top-k and cluster them into
   pattern groups (section 4.2).

Lazy bound-based scoring (``use_bound_pruning``, on by default): a candidate
whose min-max weighted-mean upper bound falls below ``omega`` is *provably*
low, so its exact NM is never needed -- it is kept in ``Q`` with its bound
when it satisfies the 1-extension property (Lemma 1 requires those to stay
available as extension partners) and discarded otherwise.  Every pattern
that can influence ``omega`` or the answer is evaluated exactly, so the
mined top-k is unchanged; the test suite checks both modes against a
brute-force oracle.  Partner scanning uses the same bound: for a high
pattern ``P`` only partners whose value can lift the concatenation bound to
``omega`` are considered, found by binary search over per-length sorted
partner lists.  Discarded combinations are regenerated automatically if an
end sub-pattern later turns high (every 1-extension of a high pattern is
re-emitted each iteration the pattern stays high).

Both pruning mechanisms are independently switchable for the ablation
benchmarks: ``use_extension_pruning`` (section 4.1) and
``use_bound_pruning`` (above; disabling it reproduces the paper's literal
evaluate-everything loop).

Candidate scoring is batched: every iteration's exact-evaluation list is
scored in one :meth:`~repro.core.engine.NMEngine.nm_batch` call (shared
column slices across the whole frontier) instead of one engine pass per
candidate.  :class:`MinerStats` records the batch sizes and the evaluation
wall time (``eval_batches``, ``max_batch_size``, ``eval_time_s``) and
:class:`IterationTrace` carries the per-iteration ``batch_size`` /
``eval_time_s`` so the speedup is observable in the benches.

Observability: :class:`MinerStats` keeps its evaluation bookkeeping on a
private always-enabled :class:`~repro.obs.metrics.MetricsRegistry`
(``stats.metrics``) -- ``eval_batches`` / ``max_batch_size`` /
``eval_time_s`` are thin read-only views over it -- and the run is folded
into the process-global registry when mining finishes.  Each main-loop
round runs inside a ``miner.iteration`` span, candidate scoring inside
``miner.evaluate``, and convergence / pruning decisions are logged on the
``repro.miner`` logger.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.core.engine import NMEngine
from repro.core.groups import PatternGroup, discover_pattern_groups
from repro.core.pattern import TrajectoryPattern
from repro.core.pruning import prune_low_patterns, satisfies_one_extension
from repro.core.topk import Cells, PatternBook, sort_key
from repro.obs import logs, metrics, tracing
from repro.obs.metrics import MetricsRegistry

_log = logs.get_logger("miner")


@dataclass
class IterationTrace:
    """Snapshot of the miner's state after one main-loop iteration.

    ``batch_size`` is the number of candidates the iteration scored through
    the engine's batched path in one call, and ``eval_time_s`` the wall time
    that evaluation took -- together they make the batching speedup visible
    per iteration.
    """

    iteration: int
    omega: float
    n_high: int
    n_exact: int
    n_bounded: int
    candidates_evaluated: int
    patterns_pruned: int
    batch_size: int = 0
    eval_time_s: float = 0.0


@dataclass
class MinerStats:
    """Instrumentation collected during a mining run (used by the benches).

    Evaluation bookkeeping lives on ``metrics``, a private always-enabled
    :class:`~repro.obs.metrics.MetricsRegistry` owned by the run (the
    process-global registry stays disabled by default, and a miner must
    keep exact numbers regardless).  The historical dataclass API is a
    thin view over it: ``eval_batches`` counts calls into the engine's
    batched evaluation, ``max_batch_size`` is the largest candidate batch
    scored in one call, and ``eval_time_s`` the total wall time spent
    inside candidate evaluation (a subset of ``wall_time_s``).
    """

    iterations: int = 0
    candidates_generated: int = 0
    candidates_evaluated: int = 0
    candidates_bounded: int = 0
    candidates_bound_pruned: int = 0
    candidates_cached: int = 0
    patterns_pruned: int = 0
    final_q_size: int = 0
    wall_time_s: float = 0.0
    trace: list[IterationTrace] = field(default_factory=list)
    metrics: MetricsRegistry = field(
        default_factory=lambda: MetricsRegistry(enabled=True),
        repr=False,
        compare=False,
    )

    @property
    def eval_batches(self) -> int:
        """Calls into the engine's batched evaluation path."""
        return self.metrics.counter("miner.eval_batches").value

    @property
    def max_batch_size(self) -> int:
        """Largest candidate batch scored in one engine call."""
        histogram = self.metrics.histogram("miner.batch_size")
        return int(histogram.max) if histogram.count else 0

    @property
    def eval_time_s(self) -> float:
        """Total wall time inside candidate evaluation, in seconds."""
        return self.metrics.histogram("miner.eval_ns", unit="ns").total_seconds


@dataclass(frozen=True)
class WarmStartState:
    """Converged frontier of a previous run, reusable as mining seeds.

    ``seeds`` are the cell sequences (length >= 2; singulars are re-seeded
    from the alphabet anyway) that were live in the previous run's book --
    the high set plus the surviving lows.  Seeding is answer-preserving by
    construction: every seed is *evaluated exactly* before the main loop, so
    ``omega`` starts as a valid lower bound on the true k-th best NM and
    bound pruning stays provably safe.  On a lightly-changed dataset the
    previous winners land near their old scores, the threshold starts high,
    and convergence takes a fraction of the cold iterations.
    """

    seeds: tuple[Cells, ...]

    def __len__(self) -> int:
        return len(self.seeds)


@dataclass
class MiningResult:
    """Outcome of a mining run: ranked patterns, optional groups, stats."""

    patterns: list[TrajectoryPattern]
    nm_values: list[float]
    omega: float
    stats: MinerStats
    groups: list[PatternGroup] | None = None
    warm_state: WarmStartState | None = None

    def __len__(self) -> int:
        return len(self.patterns)

    def as_pairs(self) -> list[tuple[TrajectoryPattern, float]]:
        """(pattern, NM) pairs, best first."""
        return list(zip(self.patterns, self.nm_values))

    def mean_length(self) -> float:
        """Average pattern length (the statistic reported in section 6.1)."""
        if not self.patterns:
            return 0.0
        return sum(len(p) for p in self.patterns) / len(self.patterns)


class TrajPatternMiner:
    """Top-k NM pattern miner (the paper's TrajPattern algorithm).

    Parameters
    ----------
    engine:
        The NM evaluation engine over the target dataset.
    k:
        Number of patterns to mine.
    min_length:
        Section 5 variant: report only patterns of at least this length
        (``omega`` is then the k-th best NM among such patterns).
    max_length:
        Optional hard cap on candidate length; ``None`` reproduces the
        paper exactly (length bounded only by convergence).
    use_extension_pruning:
        The 1-extension pruning of section 4.1 (ablation A1).
    use_bound_pruning:
        Lazy bound-based candidate scoring (ablation A2; see module docs).
    max_iterations:
        Safety valve; the algorithm converges well before this in practice.
    warm_state:
        Optional :class:`WarmStartState` from a previous run (its
        ``MiningResult.warm_state``).  Seeds are evaluated exactly before
        the main loop, so the mined top-k is identical to a cold run over
        the same dataset -- only the iteration count shrinks.
    """

    def __init__(
        self,
        engine: NMEngine,
        k: int,
        min_length: int = 1,
        max_length: int | None = None,
        use_extension_pruning: bool = True,
        use_bound_pruning: bool = True,
        max_iterations: int = 64,
        warm_state: WarmStartState | None = None,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if min_length < 1:
            raise ValueError("min_length must be at least 1")
        if max_length is not None and max_length < min_length:
            raise ValueError("max_length must be >= min_length")
        if max_iterations <= 0:
            raise ValueError("max_iterations must be positive")
        self.engine = engine
        self.k = k
        self.min_length = min_length
        self.max_length = max_length
        self.use_extension_pruning = use_extension_pruning
        self.use_bound_pruning = use_bound_pruning
        self.max_iterations = max_iterations
        self.warm_state = warm_state
        # Pinned at the start of every run; evaluation batches check it so
        # an in-place index mutation mid-mine raises StaleIndexError instead
        # of silently scoring a mix of index generations.  None for engines
        # without epochs (parallel/distributed front-ends).
        self._engine_epoch: int | None = None

    # -- public API ------------------------------------------------------------

    def mine(
        self, discover_groups: bool = False, gamma: float | None = None
    ) -> MiningResult:
        """Run the algorithm and return the ranked top-k patterns.

        Parameters
        ----------
        discover_groups:
            Also cluster the mined patterns into pattern groups
            (section 4.2).
        gamma:
            Maximum similar-pattern distance for grouping; defaults to
            ``3 * max sigma`` per the section 5 discussion.
        """
        with tracing.span(
            "miner.mine", k=self.k, min_length=self.min_length
        ) as root, metrics.timer("miner.mine_ns"):
            result = self._mine(discover_groups, gamma)
            root.set_attr("iterations", result.stats.iterations)
            root.set_attr("omega", result.omega)
        # Fold the run's private bookkeeping into the process-global
        # registry (no-op while that stays disabled, the default).
        metrics.get_registry().merge(result.stats.metrics)
        return result

    def _mine(self, discover_groups: bool, gamma: float | None) -> MiningResult:
        stats = MinerStats()
        t0 = time.perf_counter()
        self._engine_epoch = getattr(self.engine, "index_epoch", None)
        book = PatternBook(self.k, self.min_length)

        # Seeding: all singular patterns over the active alphabet.  Inactive
        # cells all tie at the floor NM and can never displace an active
        # cell from the top-k, so they are not materialised (DESIGN.md 4.3).
        singular_table = sorted(self.engine.singular_nm_table().items())
        for cell, nm in singular_table:
            book.insert_exact((cell,), nm)
            stats.candidates_evaluated += 1
        if len(book) == 0:
            raise ValueError(
                "no active grid cells: the grid does not overlap the dataset"
            )
        self._singulars: list[tuple[Cells, float]] = [
            ((cell,), nm) for cell, nm in singular_table
        ]
        # High patterns whose singular extensions were already emitted; the
        # singular alphabet is static, so this never needs redoing.
        self._singular_extended: set[Cells] = set()

        if self.min_length > 1:
            self._warm_start(book, stats)
        if self.warm_state is not None:
            self._seed_warm_state(book, stats)
        book.update_omega()
        high = book.high_patterns()

        # Convergence needs more than a stable high set: a low added to Q in
        # the last iteration is a brand-new extension partner (the min-max
        # property only forces *one* part of a decomposition to be high), so
        # stopping on high-set stability alone can miss top-k patterns of
        # the form high + fresh-low.  By Lemma 1 the partners that can ever
        # matter are high patterns and lows satisfying the 1-extension
        # property -- so the loop is at a fixed point exactly when the high
        # set and that *relevant* partner set both stop changing.  (Full Q
        # stability would also be correct but ruins termination in the
        # no-pruning ablation modes, where junk lows accumulate forever.)
        prev_partners = self._relevant_partners(book, high)
        converged = False
        for _ in range(self.max_iterations):
            stats.iterations += 1
            evaluated_before = stats.candidates_evaluated
            pruned_before = stats.patterns_pruned
            eval_time_before = stats.eval_time_s
            with tracing.span(
                "miner.iteration", iteration=stats.iterations
            ) as it_span:
                new_high = self._iterate(book, high, stats)
                it_span.set_attr("omega", book.omega)
                it_span.set_attr("n_high", len(new_high))
            trace = IterationTrace(
                iteration=stats.iterations,
                omega=book.omega,
                n_high=len(new_high),
                n_exact=book.n_exact,
                n_bounded=book.n_bounded,
                candidates_evaluated=stats.candidates_evaluated - evaluated_before,
                patterns_pruned=stats.patterns_pruned - pruned_before,
                batch_size=stats.candidates_evaluated - evaluated_before,
                eval_time_s=stats.eval_time_s - eval_time_before,
            )
            stats.trace.append(trace)
            _log.debug(
                "miner iteration",
                extra={
                    "iteration": trace.iteration,
                    "omega": trace.omega,
                    "n_high": trace.n_high,
                    "candidates_evaluated": trace.candidates_evaluated,
                    "patterns_pruned": trace.patterns_pruned,
                },
            )
            partners = self._relevant_partners(book, new_high)
            if partners == prev_partners and set(new_high) == set(high):
                high = new_high
                converged = True
                break
            prev_partners = partners
            high = new_high

        stats.final_q_size = len(book)
        stats.wall_time_s = time.perf_counter() - t0
        _log.info(
            "mining finished",
            extra={
                "converged": converged,
                "iterations": stats.iterations,
                "omega": book.omega,
                "candidates_evaluated": stats.candidates_evaluated,
                "candidates_bound_pruned": stats.candidates_bound_pruned,
                "patterns_pruned": stats.patterns_pruned,
                "final_q_size": stats.final_q_size,
            },
        )

        top = book.top_k()
        patterns = [TrajectoryPattern(cells) for cells, _ in top]
        nm_values = [nm for _, nm in top]
        groups = None
        if discover_groups:
            if gamma is None:
                gamma = 3.0 * self.engine.dataset.max_sigma()
            groups = discover_pattern_groups(patterns, self.engine.grid, gamma)
        # Export the converged frontier so a follow-up run over a
        # lightly-changed dataset can seed from it instead of rediscovering
        # the threshold.  Only the patterns that *set* the threshold are
        # worth carrying: the high set and the answer itself -- evaluating
        # them exactly starts the next run's omega at (about) this run's
        # k-th best.  Anything broader backfires: the bounded membership
        # runs to tens of thousands of never-promoted candidates on large
        # alphabets, and re-evaluating those costs more than a cold run.
        frontier = set(high) | {c for c, _ in top}
        warm_seeds = tuple(
            sorted(cells for cells in frontier if len(cells) >= 2)
        )
        return MiningResult(
            patterns=patterns,
            nm_values=nm_values,
            omega=book.omega,
            stats=stats,
            groups=groups,
            warm_state=WarmStartState(seeds=warm_seeds),
        )

    # -- warm start for the min-length variant ----------------------------------------

    #: Cap on warm-start candidates (most frequent discretised n-grams).
    WARM_START_CAP = 2000

    def _warm_start(self, book: PatternBook, stats: MinerStats) -> None:
        """Bootstrap ``omega`` for the section 5 minimum-length variant.

        Until ``k`` patterns of length >= ``min_length`` exist, ``omega`` is
        ``-inf`` and every candidate must be evaluated -- a full cross
        product of the alphabet per iteration.  Seeding ``Q`` with the most
        frequent *observed* cell n-grams (each trajectory's most-likely cell
        sequence) establishes a realistic threshold immediately.  This is
        purely a lower-bound warm start: every seed is evaluated exactly, so
        the final answer is unchanged; only the amount of provably-useless
        evaluation shrinks.
        """
        grid = self.engine.grid
        length = self.min_length
        counts: dict[Cells, int] = {}
        for traj in self.engine.dataset:
            cells = tuple(int(c) for c in grid.locate_many(traj.means))
            for i in range(len(cells) - length + 1):
                gram = cells[i : i + length]
                counts[gram] = counts.get(gram, 0) + 1
        frequent = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        seeds = [
            gram
            for gram, _ in frequent[: self.WARM_START_CAP]
            if not book.is_evaluated(gram)
        ]
        self._evaluate_batch(book, seeds, stats)

    def _seed_warm_state(self, book: PatternBook, stats: MinerStats) -> None:
        """Evaluate the previous run's frontier exactly as mining seeds.

        Like :meth:`_warm_start`, this only ever *raises* the starting
        ``omega`` with exact scores -- it introduces no bounds and skips
        nothing, so the mined top-k is identical to a cold run (the
        ``incremental`` oracle path pins warm == cold exactly).
        """
        seeds = [
            tuple(int(c) for c in cells)
            for cells in self.warm_state.seeds
            if len(cells) >= 2
            and (self.max_length is None or len(cells) <= self.max_length)
        ]
        seeds = [cells for cells in seeds if not book.is_evaluated(cells)]
        self._evaluate_batch(book, seeds, stats)

    # -- convergence ------------------------------------------------------------------

    @staticmethod
    def _relevant_partners(
        book: PatternBook, high: dict[Cells, float]
    ) -> frozenset[Cells]:
        """The active patterns that can still seed new candidates (Lemma 1).

        Every answer pattern is an extension of a high pattern by a high
        pattern or by a low satisfying the 1-extension property, so only
        those partners participate in the convergence check.  Lows that fail
        the property may stay in ``Q`` (when extension pruning is off)
        without keeping the loop alive.
        """
        exact, bounded = book.membership()
        return frozenset(
            cells
            for cells in exact | bounded
            if cells in high or satisfies_one_extension(cells, high)
        )

    # -- one iteration of the main loop ---------------------------------------------

    def _iterate(
        self, book: PatternBook, high: dict[Cells, float], stats: MinerStats
    ) -> dict[Cells, float]:
        to_evaluate, to_bound = self._generate_candidates(book, high, stats)
        self._evaluate_batch(book, to_evaluate, stats)
        for cells, bound in to_bound:
            book.insert_bounded(cells, bound)
            stats.candidates_bounded += 1

        book.update_omega()
        new_high = book.high_patterns()

        if self.use_extension_pruning:
            low = book.low_patterns()
            _, pruned = prune_low_patterns(low.keys(), new_high)
            for cells in pruned:
                book.remove(cells)
            stats.patterns_pruned += len(pruned)
        return new_high

    def _evaluate_batch(
        self, book: PatternBook, to_evaluate: list[Cells], stats: MinerStats
    ) -> None:
        """Score a candidate list through the engine's batched path."""
        if not to_evaluate:
            return
        if self._engine_epoch is not None:
            self.engine.require_epoch(self._engine_epoch)
        with tracing.span("miner.evaluate", n_candidates=len(to_evaluate)):
            with stats.metrics.timer("miner.eval_ns"):
                nm_values = self.engine.nm_batch(
                    [TrajectoryPattern(cells) for cells in to_evaluate]
                )
        stats.metrics.counter("miner.eval_batches").inc()
        stats.metrics.histogram("miner.batch_size").observe(len(to_evaluate))
        for cells, nm in zip(to_evaluate, nm_values):
            book.insert_exact(cells, float(nm))
            stats.candidates_evaluated += 1

    # -- candidate generation -------------------------------------------------------

    def _generate_candidates(
        self, book: PatternBook, high: dict[Cells, float], stats: MinerStats
    ) -> tuple[list[Cells], list[tuple[Cells, float]]]:
        """Both-sided extensions of high patterns by patterns in ``Q``.

        Returns (candidates to evaluate exactly, provably-low candidates to
        insert with their upper bound).
        """
        omega = book.omega
        exhaustive = not self.use_bound_pruning or math.isinf(omega)
        seen: set[Cells] = set()
        to_evaluate: list[Cells] = []
        to_bound: list[tuple[Cells, float]] = []

        def handle(cells: Cells, bound: float) -> None:
            if cells in seen:
                return
            seen.add(cells)
            stats.candidates_generated += 1
            if self.max_length is not None and len(cells) > self.max_length:
                return
            if cells in book:
                return
            if book.is_evaluated(cells):
                # Previously pruned exact pattern; restore the cached score
                # so the 1-extension re-check sees it again.
                book.reactivate(cells)
                stats.candidates_cached += 1
                return
            if exhaustive or bound >= omega:
                to_evaluate.append(cells)
            elif satisfies_one_extension(cells, high):
                to_bound.append((cells, bound))
            else:
                stats.candidates_bound_pruned += 1

        high_sorted = sorted(high.items(), key=lambda item: sort_key(*item))
        partners = book.partners_by_length()
        # Ascending copies of the (descending) value lists, for bisect.
        neg_values = {
            j: [-v for v in values] for j, (values, _) in partners.items()
        }

        for p_cells, p_nm in high_sorted:
            i = len(p_cells)
            # (a) Extensions by every singular pattern (both sides).  These
            # are exactly the potential 1-extension patterns of Lemma 1, so
            # they are always materialised (evaluated or bounded).  The
            # singular alphabet never changes, so each high pattern needs
            # this only once.
            if p_cells not in self._singular_extended:
                self._singular_extended.add(p_cells)
                for s_cells, s_nm in self._singulars:
                    bound = (i * p_nm + s_nm) / (i + 1)
                    handle(p_cells + s_cells, bound)
                    handle(s_cells + p_cells, bound)

            # (b) Extensions by longer partners.  Only partners whose value
            # keeps the concatenation bound at or above omega can produce a
            # high pattern; anything lower is provably low and, having both
            # parts of length >= 2 reachable some other way, redundant.
            for j, (values, cells_list) in partners.items():
                if j == 1:
                    continue
                if exhaustive:
                    cutoff = len(values)
                else:
                    tau = ((i + j) * omega - i * p_nm) / j
                    # values is sorted descending: find how many are >= tau.
                    cutoff = bisect_right(neg_values[j], -tau)
                for idx in range(cutoff):
                    q_cells = cells_list[idx]
                    bound = (i * p_nm + j * values[idx]) / (i + j)
                    handle(p_cells + q_cells, bound)
                    handle(q_cells + p_cells, bound)

        return to_evaluate, to_bound
