"""Vectorised dataset-wide evaluation of the match / NM measures.

The TrajPattern miner evaluates the NM of thousands of candidate patterns
per iteration; doing that with the scalar reference functions would be
hopeless in Python.  :class:`NMEngine` makes a pattern evaluation a handful
of numpy operations over the whole dataset:

1. **Sparse index** (built once): for every snapshot of every trajectory,
   the exact ``log Prob(l, sigma, cell, delta)`` is computed for every grid
   cell whose probability exceeds the floor ``min_prob``; everything else
   *is* the floor.  Entries are stored per cell as ``(global_row, value)``
   arrays, where global rows concatenate all trajectories along the time
   axis.

2. **Pattern evaluation**: for pattern ``(p_1..p_m)`` the window score of
   the window starting at global row ``r`` is ``sum_j column(p_j)[r + j]``.
   All window sums are computed with ``m`` shifted slice-adds, windows that
   cross a trajectory boundary are masked out, and the per-trajectory maxima
   (Eq. 4) fall out of one ``np.maximum.reduceat``.

3. **Batched evaluation** (:meth:`NMEngine.nm_batch` /
   :meth:`NMEngine.match_batch`): a whole candidate frontier is scored in
   one pass without materialising dense columns at all.  Every window sum
   decomposes as ``n_specified * floor`` plus the *deviations* ``value -
   floor`` of the index entries the window touches, and those deviations
   are strictly positive (entries exist only above ``min_prob``).  So per
   length group the engine gathers the touched ``(pattern, window)`` pairs
   straight from the sparse index with one shifted lookup per position,
   sums duplicates, reduces segment maxima per ``(pattern, trajectory)``,
   and takes ``max(0, best deviation)`` -- untouched windows contribute the
   all-floor baseline.  Work is proportional to the touched index entries,
   not to ``n_patterns * n_windows``.  The miner and both baselines
   evaluate their candidates through this path.

The index itself is built fully vectorised: all snapshot neighbourhoods are
enumerated with one :meth:`~repro.geometry.grid.Grid.cells_near_many` call
and ``Prob`` is evaluated over the concatenated (snapshot, cell) pairs in
bounded-size chunks, instead of per-snapshot Python iteration.

Exactness: with the default auto radius the index stores every cell whose
probability can exceed ``min_prob`` (the enumeration radius is derived from
the normal quantile of ``min_prob``), so the engine agrees with the scalar
reference implementation to floating-point accuracy -- the test suite checks
this property directly, for both the scalar and the batched paths.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np
from scipy import special

from repro.core import index_cache, kernels
from repro.core.kernels import ScratchArena
from repro.obs import logs, metrics, tracing
from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.uncertainty.gaussian import ProbModel, prob_within

#: Snapshots enumerated per vectorised index-build round (bounds the size of
#: the in-flight (snapshot, cell) pair arrays).
_INDEX_ROW_CHUNK = 8192
#: Default (snapshot, cell) pairs evaluated per ``prob_within`` call; the
#: live value is the ``EngineConfig.prob_chunk_size`` knob (see
#: :func:`autotune_prob_chunk`).
_INDEX_PAIR_CHUNK = 1 << 20
#: Matrix cells per batched-evaluation round: nm/match batches are split so
#: the per-round ``n_patterns * n_trajectories`` maxima matrix, and dense
#: window-score batches so ``n_patterns * n_windows``, stay under this.
_BATCH_SCORE_BUDGET = 1 << 24

_log = logs.get_logger("engine")


def _row_sums(matrix: np.ndarray) -> np.ndarray:
    """Per-row sums whose values do not depend on the number of rows.

    ``matrix.sum(axis=1)`` picks a pairwise-summation blocking that varies
    with the outer dimension, so the same row can total to ULP-different
    values depending on how many patterns share the batch.  Candidate
    measures must be batch-composition-invariant -- warm-started mining
    re-evaluates lone frontier seeds and has to land on exactly the floats
    the cold run's wider batches produced -- so each row is reduced
    independently (``np.add.reduceat`` sums every segment sequentially,
    regardless of how many segments there are).
    """
    n, width = matrix.shape
    flat = np.ascontiguousarray(matrix).reshape(-1)
    return np.add.reduceat(flat, np.arange(0, n * width, width))


@dataclass(frozen=True)
class EngineConfig:
    """Tuning knobs of the sparse probability index.

    Parameters
    ----------
    delta:
        The indifference distance of section 3.3.
    prob_model:
        Box (default) or disk geometry for ``Prob``.
    min_prob:
        Per-position probability floor; cells below it collapse onto the
        floor.  Larger values shrink the index and speed up construction at
        the cost of flattening the tail of the measure.
    radius_sigmas:
        Half-width (in sigmas, plus ``delta``) of the neighbourhood
        enumerated around each snapshot mean.  ``None`` (default) derives
        the radius from ``min_prob`` so no above-floor cell is missed.
    max_cells_per_snapshot:
        Memory guard: keep at most this many highest-probability cells per
        snapshot.  The default is high enough to be inactive in ordinary
        configurations.
    column_cache_size:
        Number of materialised per-cell dense columns kept in an LRU cache;
        candidate patterns reuse cells heavily, so this trades memory for a
        large constant-factor win during mining.
    backend:
        Kernel backend for the hot loops (:mod:`repro.core.kernels`):
        ``"numpy"`` (default -- the reference implementation), ``"compiled"``
        (numba or the native C library; falls back to numpy with a warning
        when no toolchain is available) or ``"auto"`` (compiled when
        available, else numpy, silently).  Excluded from the index cache
        key except through the Prob-kernel tag: compiled box-``Prob``
        builds use libm ``erf`` and are keyed separately (see
        :func:`repro.core.kernels.prob_kernel_tag`).
    dtype:
        Value dtype of the evaluation kernels: ``"float64"`` (default) or
        ``"float32"``.  The index is always *built* and cached in float64;
        float32 mode casts the stored values once at install time and runs
        the batched kernels in float32 (API outputs stay float64).
        Excluded from the cache key.
    prob_chunk_size:
        (snapshot, cell) pairs evaluated per ``prob_within`` call during
        index construction.  Bounds peak memory of the build; the default
        (2^20) is a good fit for most machines and
        :func:`autotune_prob_chunk` measures the best value empirically.
        Chunking never changes results (each pair is evaluated
        independently), which the test suite pins at 0 ULPs.
    jobs:
        Worker processes for sharded evaluation.  The engine itself ignores
        this (one :class:`NMEngine` is always single-process); it is read by
        :func:`build_engine` and
        :class:`~repro.core.parallel.ParallelNMEngine` to decide how many
        shard workers to spawn.  ``1`` (default) keeps everything in-process.
    cache_dir:
        Directory for the persistent on-disk index cache
        (:mod:`repro.core.index_cache`).  When set, engine construction
        first tries to load the built index from
        ``cache_dir/index-<key>.npz`` and falls back to a fresh build
        (persisting the result) on a miss.  ``None`` disables caching.
        Excluded from the cache key itself, as is ``jobs``.
    store_path:
        Path of a ``.tjc`` columnar store (:mod:`repro.storage`) backing
        the dataset, or ``None`` for a purely in-RAM dataset.  Carried so
        downstream consumers -- span-mode parallel workers, serving
        snapshot loaders, run manifests -- can find the file; it never
        affects evaluation results and is excluded from the index cache
        key (the store's *content hash* is what names cache entries).
    log_level, trace_out, metrics_out:
        Observability knobs (all off / ``None`` by default): the
        ``repro.*`` structured-log level, the span-trace JSONL path and
        the metrics-snapshot JSON path.  They configure the *process
        global* state in :mod:`repro.obs` -- applied by
        :func:`build_engine` (and the CLI) via
        :func:`repro.obs.apply_config` -- and never affect evaluation
        results or the index cache key.
    """

    delta: float
    prob_model: ProbModel = ProbModel.BOX
    min_prob: float = 1e-9
    radius_sigmas: float | None = None
    max_cells_per_snapshot: int = 4096
    column_cache_size: int = 256
    backend: str = "numpy"
    dtype: str = "float64"
    prob_chunk_size: int = _INDEX_PAIR_CHUNK
    jobs: int = 1
    cache_dir: str | Path | None = None
    store_path: str | Path | None = None
    log_level: str | None = None
    trace_out: str | Path | None = None
    metrics_out: str | Path | None = None

    def __post_init__(self) -> None:
        if self.delta <= 0:
            raise ValueError("delta must be positive")
        if not 0.0 < self.min_prob < 1.0:
            raise ValueError("min_prob must be in (0, 1)")
        if self.radius_sigmas is not None and self.radius_sigmas <= 0:
            raise ValueError("radius_sigmas must be positive")
        if self.max_cells_per_snapshot <= 0:
            raise ValueError("max_cells_per_snapshot must be positive")
        if self.column_cache_size <= 0:
            raise ValueError("column_cache_size must be positive")
        if self.backend not in kernels.BACKEND_CHOICES:
            raise ValueError(
                f"backend must be one of {kernels.BACKEND_CHOICES}, "
                f"got {self.backend!r}"
            )
        if self.dtype not in kernels.DTYPE_CHOICES:
            raise ValueError(
                f"dtype must be one of {kernels.DTYPE_CHOICES}, got {self.dtype!r}"
            )
        if self.prob_chunk_size < 1:
            raise ValueError("prob_chunk_size must be positive")
        if self.jobs < 1:
            raise ValueError("jobs must be at least 1")

    @property
    def min_log_prob(self) -> float:
        """The log-space floor."""
        return float(np.log(self.min_prob))

    def effective_radius_sigmas(self) -> float:
        """Enumeration radius in sigmas: explicit, or the ``min_prob`` quantile."""
        if self.radius_sigmas is not None:
            return self.radius_sigmas
        # P(|X - c| <= delta) <= Phi(-(R - delta)/sigma); force it <= min_prob.
        return float(-special.ndtri(self.min_prob))


@dataclass(frozen=True)
class ExtensionTables:
    """Single-cell extension tables of one prefix, with their floor base.

    ``nm_by_cell`` / ``match_by_cell`` map every *active* cell ``c`` to the
    NM / match of ``prefix + (c,)`` over the engine's dataset.
    ``nm_base_total`` / ``match_base_total`` are the values an *inactive*
    extension cell would score (the new position at the floor everywhere)
    -- exactly the contribution a dataset shard adds for a cell that has no
    entries in that shard, which is what makes the sharded merge an exact
    reduction (see :mod:`repro.core.parallel`).
    """

    nm_by_cell: dict[int, float]
    match_by_cell: dict[int, float]
    nm_base_total: float
    match_base_total: float

    def as_pair(self) -> tuple[dict[int, float], dict[int, float]]:
        """The legacy ``(nm_by_cell, match_by_cell)`` view."""
        return self.nm_by_cell, self.match_by_cell


class StaleIndexError(RuntimeError):
    """An evaluation pinned to an index epoch ran after the index changed.

    Raised instead of silently scoring the old index: callers that captured
    derived state (a miner mid-run, a cached column) must observe in-place
    append/evict mutations, not race them.
    """


class NMEngine:
    """Evaluates NM / match of patterns over a whole dataset (see module docs)."""

    def __init__(
        self,
        dataset: TrajectoryDataset,
        grid: Grid,
        config: EngineConfig,
        prebuilt: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    ) -> None:
        """Build (or adopt) the sparse index over ``dataset``.

        ``prebuilt`` short-circuits the expensive probability enumeration:
        it supplies already-computed ``(cells, rows, vals)`` entry triples
        (for example a cache payload or a shard slice of one) and the
        engine only runs the cheap sort/segment post-processing.  The
        caller is responsible for the triples matching ``(dataset, grid,
        config)`` -- the shard workers and the index cache guarantee this
        by construction (content-hashed keys).
        """
        if len(dataset) == 0:
            raise ValueError("cannot build an engine over an empty dataset")
        self.dataset = dataset
        self.grid = grid
        self.config = config
        self._floor = config.min_log_prob
        self._kernels = kernels.resolve_backend(config.backend, config.dtype)
        self._dtype = self._kernels.dtype
        self._arena = ScratchArena()

        lengths = dataset.lengths()
        self._lengths = lengths
        self._starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        self._total_rows = int(lengths.sum())
        self._row_traj = np.repeat(np.arange(len(dataset), dtype=np.int64), lengths)

        self._column_cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._valid_cache: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._seg_max: np.ndarray | None = None
        self._entry_bounds: tuple[np.ndarray, np.ndarray] | None = None
        self.n_evaluations = 0  # instrumentation for the scalability benches
        self.n_batches = 0  # batched-evaluation rounds (see nm_batch)
        self.index_cache_hit = False  # True when the index came from disk
        # Monotone counter bumped by every (re)install; in-place index
        # mutation (incremental append/evict) must go through _install_index
        # so epoch-pinned consumers can detect staleness via require_epoch.
        self.index_epoch = 0

        # Flat segment index (filled by _install_index when entries exist).
        # Per-cell lookup is (cell ids, bounds) over the sorted flat arrays
        # instead of a per-cell dict: O(log C) by searchsorted, and install
        # stays pure array work (which is what makes warm cache loads fast).
        self._cell_ids = np.empty(0, dtype=np.int64)
        self._cell_bounds = np.zeros(1, dtype=np.int64)
        self._flat_cells = np.empty(0, dtype=np.int64)
        self._flat_rows = np.empty(0, dtype=np.int64)
        self._flat_vals = np.empty(0)
        self._flat_vals_k = np.empty(0, dtype=self._dtype)
        self._seg_starts = np.empty(0, dtype=np.int64)
        self._seg_traj = np.empty(0, dtype=np.int64)
        self._cell_seg_starts = np.empty(0, dtype=np.int64)
        self._flat_cell_order = np.empty(0, dtype=np.int64)

        with tracing.span(
            "index.build", prebuilt=prebuilt is not None
        ) as span, metrics.timer("engine.index_build_ns"):
            if prebuilt is not None:
                self._install_index(*prebuilt)
            else:
                self._build_index()
            span.set_attr("n_entries", self.n_index_entries)
            span.set_attr("cache_hit", self.index_cache_hit)
        metrics.counter(f"engine.backend.{self._kernels.name}").inc()
        _log.debug(
            "engine index ready",
            extra={
                "n_entries": self.n_index_entries,
                "n_trajectories": len(dataset),
                "n_snapshots": self._total_rows,
                "cache_hit": self.index_cache_hit,
                "prebuilt": prebuilt is not None,
                "backend": self._kernels.name,
                "dtype": str(self._dtype),
            },
        )

    # -- public metadata -------------------------------------------------------

    @property
    def active_cells(self) -> list[int]:
        """Cells with at least one above-floor entry, ascending.

        These are the only cells that can beat an inactive cell's NM; the
        miner seeds its singular patterns from them.
        """
        return [int(c) for c in self._cell_ids]

    @property
    def floor_log_prob(self) -> float:
        """The log-space probability floor."""
        return self._floor

    @property
    def n_index_entries(self) -> int:
        """Number of stored (snapshot, cell) probability entries."""
        return int(len(self._flat_cells))

    @property
    def backend_name(self) -> str:
        """The kernel implementation actually running ("numpy"/"numba"/"cnative")."""
        return str(self._kernels.name)

    @property
    def backend_dtype(self) -> str:
        """Value dtype of the evaluation kernels ("float64"/"float32")."""
        return str(self._dtype)

    # -- index construction ------------------------------------------------------

    def _collect_index_entries(
        self,
    ) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
        """Above-floor (cell, row, log-prob) triples, fully vectorised.

        All snapshot neighbourhoods of a row chunk are enumerated with one
        :meth:`~repro.geometry.grid.Grid.cells_near_many` call and ``Prob``
        is evaluated over the concatenated (snapshot, cell) pairs in bounded
        chunks of ``config.prob_chunk_size`` pairs, through the configured
        kernel backend; only the (rare) per-snapshot cap falls back to a
        Python loop over the few snapshots that exceed it.
        """
        cfg = self.config
        radius_sigmas = cfg.effective_radius_sigmas()
        cap = cfg.max_cells_per_snapshot
        pair_chunk = cfg.prob_chunk_size
        row_columns = getattr(self.dataset, "row_columns", None)
        if row_columns is None:
            # Eager datasets already hold dense columns; slicing views is
            # free.  Store-backed datasets instead decode each row chunk on
            # demand, so an out-of-core build never materialises the full
            # span -- peak RSS stays O(_INDEX_ROW_CHUNK + entries).
            all_means = self.dataset.all_means()
            all_sigmas = self.dataset.all_sigmas()

            def row_columns(lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
                return all_means[lo:hi], all_sigmas[lo:hi]

        cells_acc: list[np.ndarray] = []
        rows_acc: list[np.ndarray] = []
        vals_acc: list[np.ndarray] = []
        for lo in range(0, self._total_rows, _INDEX_ROW_CHUNK):
            hi = min(lo + _INDEX_ROW_CHUNK, self._total_rows)
            means, sigmas = row_columns(lo, hi)
            radii = radius_sigmas * sigmas + cfg.delta
            cells, owners = self.grid.cells_near_many(means, radii)
            if not len(cells):
                continue
            probs = np.empty(len(cells))
            for s in range(0, len(cells), pair_chunk):
                e = min(s + pair_chunk, len(cells))
                self._kernels.prob_within(
                    means[owners[s:e]],
                    sigmas[owners[s:e]],
                    self.grid.cell_centers(cells[s:e]),
                    cfg.delta,
                    model=cfg.prob_model,
                    out=probs[s:e],
                )
            keep = probs > cfg.min_prob
            cells, owners, probs = cells[keep], owners[keep], probs[keep]
            if not len(cells):
                continue
            # owners stays sorted through the mask, so each snapshot's
            # entries are one contiguous run; trim the runs over the cap.
            counts = np.bincount(owners, minlength=hi - lo)
            if np.any(counts > cap):
                sel = np.ones(len(cells), dtype=bool)
                run_starts = np.concatenate([[0], np.cumsum(counts)])
                for r in np.nonzero(counts > cap)[0]:
                    run = slice(int(run_starts[r]), int(run_starts[r + 1]))
                    drop = np.argpartition(probs[run], -cap)[:-cap]
                    sel[np.arange(run.start, run.stop)[drop]] = False
                cells, owners, probs = cells[sel], owners[sel], probs[sel]
            cells_acc.append(cells)
            rows_acc.append(lo + owners)
            vals_acc.append(np.log(probs))
        return cells_acc, rows_acc, vals_acc

    def _collect_index_entries_scalar(
        self,
    ) -> tuple[list[np.ndarray], list[np.ndarray], list[np.ndarray]]:
        """Reference per-snapshot collection loop.

        Kept as the oracle the vectorised path is tested against and as the
        baseline the index-build benchmarks compare to.
        """
        cfg = self.config
        radius_sigmas = cfg.effective_radius_sigmas()
        cells_acc: list[np.ndarray] = []
        rows_acc: list[np.ndarray] = []
        vals_acc: list[np.ndarray] = []

        row = 0
        for traj in self.dataset:
            for mean, sigma in zip(traj.means, traj.sigmas):
                radius = radius_sigmas * sigma + cfg.delta
                cells = self.grid.cells_near(float(mean[0]), float(mean[1]), radius)
                if len(cells):
                    centers = self.grid.cell_centers(cells)
                    probs = prob_within(
                        mean, np.asarray(sigma), centers, cfg.delta, model=cfg.prob_model
                    )
                    keep = probs > cfg.min_prob
                    cells, probs = cells[keep], probs[keep]
                    if len(cells) > cfg.max_cells_per_snapshot:
                        top = np.argpartition(probs, -cfg.max_cells_per_snapshot)[
                            -cfg.max_cells_per_snapshot :
                        ]
                        cells, probs = cells[top], probs[top]
                    if len(cells):
                        cells_acc.append(cells)
                        rows_acc.append(np.full(len(cells), row, dtype=np.int64))
                        vals_acc.append(np.log(probs))
                row += 1
        return cells_acc, rows_acc, vals_acc

    def _build_index(self) -> None:
        """Compute above-floor log-probabilities for every (snapshot, cell).

        With ``config.cache_dir`` set, a content-hashed on-disk copy of the
        flat entry arrays is tried first; a fresh build persists its result
        so the next construction over the same (dataset, grid, config) is a
        pure load.
        """
        cache_dir = self.config.cache_dir
        key = None
        if cache_dir is not None:
            key = index_cache.cache_key(
                self.dataset,
                self.grid,
                self.config,
                kernel_tag=kernels.prob_kernel_tag(self.config),
            )
            loaded = index_cache.load_index(
                cache_dir, key, n_rows=self._total_rows, n_cells=self.grid.n_cells
            )
            if loaded is not None:
                self.index_cache_hit = True
                self._install_index(*loaded)
                return
        cells_acc, rows_acc, vals_acc = self._collect_index_entries()
        if cells_acc:
            all_cells = np.concatenate(cells_acc)
            all_rows = np.concatenate(rows_acc)
            all_vals = np.concatenate(vals_acc)
        else:
            all_cells = np.empty(0, dtype=np.int64)
            all_rows = np.empty(0, dtype=np.int64)
            all_vals = np.empty(0)
        self._install_index(all_cells, all_rows, all_vals)
        if key is not None:
            index_cache.save_index(
                cache_dir, key, self._flat_cells, self._flat_rows, self._flat_vals
            )

    def index_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The flat ``(cells, rows, vals)`` entry arrays, sorted by (cell, row).

        This is exactly the payload the index cache persists and the shard
        distribution layer slices; feeding it back through the ``prebuilt``
        constructor argument reproduces the engine's index bit-for-bit.
        """
        return self._flat_cells, self._flat_rows, self._flat_vals

    def install_index(
        self, cells: np.ndarray, rows: np.ndarray, vals: np.ndarray
    ) -> None:
        """Replace the engine's flat index with new entry triples, in place.

        Every derived structure (per-cell bounds, segment maxima, dense
        columns, entry lookup) is rebuilt or invalidated, so a replaced
        engine is indistinguishable from one constructed cold over the
        same triples -- the invalidation tests pin this bit-exactly.
        """
        self._install_index(
            np.asarray(cells), np.asarray(rows), np.asarray(vals)
        )

    def require_epoch(self, epoch: int) -> None:
        """Fail fast when the caller's pinned ``index_epoch`` is stale.

        Consumers that snapshot derived index state (the miner captures the
        epoch at the start of a run) call this before every evaluation batch
        so an incremental append/evict landing mid-run raises instead of
        silently mixing scores from two index generations.
        """
        if epoch != self.index_epoch:
            raise StaleIndexError(
                f"index epoch changed from {epoch} to {self.index_epoch}; "
                "the index was mutated in place under an active consumer"
            )

    def replace_index(
        self,
        dataset: TrajectoryDataset,
        cells: np.ndarray,
        rows: np.ndarray,
        vals: np.ndarray,
    ) -> None:
        """Adopt a new dataset plus matching entry triples, in place.

        This is the single mutation point the incremental maintenance layer
        (``repro.core.incremental``) goes through: it rewrites the
        dataset-shape state (lengths/starts/row->trajectory map) together
        with the flat index so both change under one ``index_epoch`` bump.
        The caller guarantees the triples were computed over ``dataset``
        with this engine's grid and config.
        """
        if len(dataset) == 0:
            raise ValueError("cannot install an index over an empty dataset")
        self.dataset = dataset
        lengths = dataset.lengths()
        self._lengths = lengths
        self._starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        self._total_rows = int(lengths.sum())
        self._row_traj = np.repeat(
            np.arange(len(dataset), dtype=np.int64), lengths
        )
        self.index_cache_hit = False
        self._install_index(np.asarray(cells), np.asarray(rows), np.asarray(vals))

    def _install_index(
        self, all_cells: np.ndarray, all_rows: np.ndarray, all_vals: np.ndarray
    ) -> None:
        """Sort raw entry triples and derive every index structure from them.

        Idempotent over ordering: entries are keyed by unique (cell, row)
        pairs, so any permutation of the same triples installs identically.
        Already-sorted input (a cache payload or a shard slice of one)
        skips the lexsort, keeping warm starts array-speed.
        """
        # Installing (or re-installing) invalidates everything derived
        # from the previous flat arrays.  _valid_cache keys on window width
        # but its payload is built from _row_traj/_lengths/_starts, which the
        # incremental path rewrites together with the index -- it must drop
        # here too, not only the per-cell structures.
        self.index_epoch += 1
        self._seg_max = None
        self._entry_bounds = None
        self._column_cache.clear()
        self._valid_cache.clear()
        if not len(all_cells):
            self._cell_ids = np.empty(0, dtype=np.int64)
            self._cell_bounds = np.zeros(1, dtype=np.int64)
            self._flat_cells = np.empty(0, dtype=np.int64)
            self._flat_rows = np.empty(0, dtype=np.int64)
            self._flat_vals = np.empty(0)
            self._flat_vals_k = np.empty(0, dtype=self._dtype)
            self._seg_starts = np.empty(0, dtype=np.int64)
            self._seg_traj = np.empty(0, dtype=np.int64)
            self._cell_seg_starts = np.empty(0, dtype=np.int64)
            self._flat_cell_order = np.empty(0, dtype=np.int64)
            return
        all_cells = np.ascontiguousarray(all_cells, dtype=np.int64)
        all_rows = np.ascontiguousarray(all_rows, dtype=np.int64)
        all_vals = np.ascontiguousarray(all_vals, dtype=np.float64)
        cell_diff = np.diff(all_cells)
        presorted = bool(
            np.all((cell_diff > 0) | ((cell_diff == 0) & (np.diff(all_rows) > 0)))
        )
        if not presorted:
            order = np.lexsort((all_rows, all_cells))
            all_cells, all_rows, all_vals = (
                all_cells[order],
                all_rows[order],
                all_vals[order],
            )
            cell_diff = np.diff(all_cells)
        first = np.concatenate([[0], np.nonzero(cell_diff != 0)[0] + 1])
        self._cell_ids = all_cells[first]
        self._cell_bounds = np.append(first, len(all_cells))

        # Flat segment index for the vectorised bulk-extension path: entries
        # sorted by (cell, row), segmented at every (cell, trajectory)
        # change.  Pattern-independent, built once.
        self._flat_cells = all_cells
        self._flat_rows = all_rows
        self._flat_vals = all_vals
        # The kernels run in the configured dtype; float64 shares storage,
        # float32 casts once here (the cache stays float64 either way).
        self._flat_vals_k = (
            all_vals
            if self._dtype == np.float64
            else all_vals.astype(self._dtype)
        )
        entry_traj = self._row_traj[all_rows]
        if len(all_rows):
            change = np.nonzero(
                (np.diff(all_cells) != 0) | (np.diff(entry_traj) != 0)
            )[0] + 1
            self._seg_starts = np.concatenate([[0], change])
            self._seg_traj = entry_traj[self._seg_starts]
            seg_cells = all_cells[self._seg_starts]
            cell_change = np.nonzero(np.diff(seg_cells))[0] + 1
            self._cell_seg_starts = np.concatenate([[0], cell_change])
            self._flat_cell_order = seg_cells[self._cell_seg_starts]
        else:
            self._seg_starts = np.empty(0, dtype=np.int64)
            self._seg_traj = np.empty(0, dtype=np.int64)
            self._cell_seg_starts = np.empty(0, dtype=np.int64)
            self._flat_cell_order = np.empty(0, dtype=np.int64)

    # -- columns -------------------------------------------------------------------

    def _cell_slice(self, cell: int) -> slice | None:
        """Range of ``cell``'s entries in the flat arrays, or ``None``."""
        i = int(np.searchsorted(self._cell_ids, cell))
        if i == len(self._cell_ids) or self._cell_ids[i] != cell:
            return None
        return slice(int(self._cell_bounds[i]), int(self._cell_bounds[i + 1]))

    def _column(self, cell: int) -> np.ndarray:
        """Dense log-prob column of ``cell`` over all global rows (LRU cached)."""
        cached = self._column_cache.get(cell)
        if cached is not None:
            self._column_cache.move_to_end(cell)
            return cached
        col = np.full(self._total_rows, self._floor)
        sl = self._cell_slice(cell)
        if sl is not None:
            col[self._flat_rows[sl]] = self._flat_vals[sl]
        col.setflags(write=False)
        self._column_cache[cell] = col
        if len(self._column_cache) > self.config.column_cache_size:
            self._column_cache.popitem(last=False)
        return col

    def _window_plumbing(self, m: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-length cached (validity mask, reduceat bounds, eligible trajs)."""
        cached = self._valid_cache.get(m)
        if cached is not None:
            return cached
        n_windows = self._total_rows - m + 1
        if n_windows <= 0:
            plumbing = (
                np.empty(0, dtype=bool),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
            )
        else:
            valid = self._row_traj[:n_windows] == self._row_traj[m - 1 :]
            eligible = np.nonzero(self._lengths >= m)[0]
            bounds = self._starts[eligible]
            plumbing = (valid, bounds, eligible)
        self._valid_cache[m] = plumbing
        return plumbing

    def _window_scores(self, pattern: TrajectoryPattern) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Masked window log-sums plus reduceat plumbing for ``pattern``."""
        m = len(pattern)
        valid, bounds, eligible = self._window_plumbing(m)
        if len(eligible) == 0:
            return np.empty(0), bounds, eligible
        n_windows = self._total_rows - m + 1
        scores = np.zeros(n_windows)
        for j, cell in enumerate(pattern.cells):
            if cell == WILDCARD:
                continue  # log 1 contribution
            scores += self._column(cell)[j : j + n_windows]
        scores[~valid] = -np.inf
        return scores, bounds, eligible

    def _entry_lookup(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense ``(start, count)`` arrays locating each cell's flat entries.

        ``start[cell]`` / ``count[cell]`` delimit the cell's run inside
        ``self._flat_rows`` / ``self._flat_vals`` (which are sorted by cell,
        then row); inactive cells have count 0.  Built lazily once -- this
        is what lets the batched paths gather arbitrary cell subsets with
        pure array indexing instead of dict lookups or dense columns.
        """
        if self._entry_bounds is None:
            n_cells = self.grid.n_cells
            start = np.zeros(n_cells, dtype=np.int64)
            count = np.zeros(n_cells, dtype=np.int64)
            if self._seg_starts.size:
                cell_starts = self._seg_starts[self._cell_seg_starts]
                cell_counts = np.diff(
                    np.append(cell_starts, len(self._flat_rows))
                )
                start[self._flat_cell_order] = cell_starts
                count[self._flat_cell_order] = cell_counts
            self._entry_bounds = (start, count)
        return self._entry_bounds

    def _stacked_window_scores(
        self,
        patterns: Sequence[TrajectoryPattern],
        n_windows: int,
    ) -> np.ndarray:
        """Unmasked window log-sums of equal-length patterns, stacked.

        Row ``i`` holds the window sums of ``patterns[i]`` over the first
        ``n_windows`` global window starts.  Each row starts at its
        pattern's all-floor baseline and the sparse entry deviations are
        scattered on top through the kernel backend -- no dense per-cell
        columns are materialised, so the cost is proportional to the index
        entries the batch actually touches.

        The result is an arena-backed scratch matrix: it is only valid
        until the next stacked call on this engine, so callers that let
        rows escape must copy them.
        """
        cells_matrix = np.array([p.cells for p in patterns], dtype=np.int64)
        n_spec = (cells_matrix != WILDCARD).sum(axis=1)
        start, count = self._entry_lookup()
        scores = self._arena.get(
            "stacked.out", (len(patterns), n_windows), self._dtype
        )
        self._kernels.stacked_scores(
            cells_matrix,
            n_spec,
            start,
            count,
            self._flat_rows,
            self._flat_vals_k,
            self._floor,
            n_windows,
            scores,
        )
        return scores

    def _group_by_length(
        self, patterns: Sequence[TrajectoryPattern]
    ) -> dict[int, list[int]]:
        groups: dict[int, list[int]] = {}
        for i, pattern in enumerate(patterns):
            groups.setdefault(len(pattern), []).append(i)
        return groups

    # -- measures ----------------------------------------------------------------------

    def nm_per_trajectory(self, pattern: TrajectoryPattern) -> np.ndarray:
        """Eq. 4 per trajectory: array of ``NM(P, T_i)`` over the dataset."""
        self.n_evaluations += 1
        n_spec = len(pattern.specified_positions())
        out = np.full(len(self.dataset), self._floor)
        scores, bounds, eligible = self._window_scores(pattern)
        if len(eligible) == 0:
            return out
        maxes = np.maximum.reduceat(scores, bounds)
        out[eligible] = maxes / n_spec if n_spec else 0.0
        return out

    def nm(self, pattern: TrajectoryPattern) -> float:
        """``NM(P)`` over the dataset (section 3.3)."""
        return float(self.nm_per_trajectory(pattern).sum())

    def match_per_trajectory(self, pattern: TrajectoryPattern) -> np.ndarray:
        """Un-normalised match of [14] per trajectory."""
        self.n_evaluations += 1
        n_spec = len(pattern.specified_positions())
        out = np.full(len(self.dataset), np.exp(self._floor * n_spec))
        scores, bounds, eligible = self._window_scores(pattern)
        if len(eligible) == 0:
            return out
        maxes = np.maximum.reduceat(scores, bounds)
        out[eligible] = np.exp(maxes)
        return out

    def match(self, pattern: TrajectoryPattern) -> float:
        """Dataset match: sum of per-trajectory max window probabilities."""
        return float(self.match_per_trajectory(pattern).sum())

    # -- batched evaluation --------------------------------------------------------

    def _batch_deviation_maxima(
        self, cells_matrix: np.ndarray, n_windows: int, valid: np.ndarray
    ) -> np.ndarray:
        """Best per-``(pattern, trajectory)`` window deviation of a group.

        A window's score is its pattern's all-floor baseline plus the (all
        strictly positive) deviations of the index entries it touches, so
        the per-trajectory best window is the baseline plus ``max(0, best
        summed deviation over the trajectory's valid windows)``.  The
        reduction itself lives behind the kernel backend
        (:mod:`repro.core.kernels`); nothing of size ``n_patterns *
        n_windows`` is ever materialised.

        The result is an arena-backed scratch matrix, valid until the next
        batched call on this engine.
        """
        n_patterns = cells_matrix.shape[0]
        start, count = self._entry_lookup()
        dev_max = self._arena.get(
            "devmax.out", (n_patterns, len(self.dataset)), self._dtype, zero=True
        )
        self._kernels.batch_devmax(
            cells_matrix,
            start,
            count,
            self._flat_rows,
            self._flat_vals_k,
            self._floor,
            valid,
            n_windows,
            self._row_traj,
            self._arena,
            dev_max,
        )
        return dev_max

    def _batch_reduce(
        self, patterns: Sequence[TrajectoryPattern], kind: str
    ) -> np.ndarray:
        """Shared driver of :meth:`nm_batch` / :meth:`match_batch`.

        Groups patterns by length and reduces each group through the sparse
        deviation gather (:meth:`_batch_deviation_maxima`), in chunks sized
        so the per-chunk ``(n_patterns, n_trajectories)`` maxima matrix
        stays within the batch budget.
        """
        patterns = list(patterns)
        out = np.empty(len(patterns))
        n_traj = len(self.dataset)
        floor = self._floor
        for m, idxs in self._group_by_length(patterns).items():
            valid, _, eligible = self._window_plumbing(m)
            cells_all = np.array([patterns[i].cells for i in idxs], dtype=np.int64)
            n_spec = (cells_all != WILDCARD).sum(axis=1).astype(float)
            if len(eligible) == 0:
                # Every trajectory is shorter than the pattern: floor terms only.
                if kind == "nm":
                    out[idxs] = floor * n_traj
                else:
                    out[idxs] = n_traj * np.exp(floor * n_spec)
                continue
            n_windows = self._total_rows - m + 1
            chunk = max(1, _BATCH_SCORE_BUDGET // max(n_traj, 1))
            for start in range(0, len(idxs), chunk):
                sub = idxs[start : start + chunk]
                dev_max = self._batch_deviation_maxima(
                    cells_all[start : start + chunk], n_windows, valid
                )
                spec = n_spec[start : start + chunk]
                # Baseline floor * n_spec plus the best (>= 0) deviation.
                maxes = dev_max[:, eligible] + floor * spec[:, None]
                if kind == "nm":
                    totals = _row_sums(maxes)
                    normalised = np.divide(
                        totals, spec, out=np.zeros(len(sub)), where=spec > 0
                    )
                    out[sub] = normalised + floor * (n_traj - len(eligible))
                else:
                    out[sub] = _row_sums(np.exp(maxes)) + np.exp(floor * spec) * (
                        n_traj - len(eligible)
                    )
                self.n_batches += 1
        self.n_evaluations += len(patterns)
        return out

    def nm_batch(self, patterns: Sequence[TrajectoryPattern]) -> np.ndarray:
        """``NM(P)`` of a whole candidate batch, in order.

        Equal to ``[self.nm(p) for p in patterns]`` to floating-point
        accuracy, but evaluated through the stacked score-matrix path (see
        module docs, step 3) -- the miner's per-iteration frontier goes
        through here.
        """
        if not len(patterns):
            return np.empty(0)
        with tracing.span("engine.nm_batch", n_patterns=len(patterns)), (
            metrics.timer("engine.nm_batch_ns")
        ):
            out = self._batch_reduce(patterns, "nm")
        metrics.counter("engine.evaluations").inc(len(patterns))
        metrics.histogram("engine.batch_size").observe(len(patterns))
        return out

    def match_batch(self, patterns: Sequence[TrajectoryPattern]) -> np.ndarray:
        """Dataset match of a whole candidate batch, in order."""
        if not len(patterns):
            return np.empty(0)
        with tracing.span("engine.match_batch", n_patterns=len(patterns)), (
            metrics.timer("engine.match_batch_ns")
        ):
            out = self._batch_reduce(patterns, "match")
        metrics.counter("engine.evaluations").inc(len(patterns))
        metrics.histogram("engine.batch_size").observe(len(patterns))
        return out

    def nm_many(self, patterns: Sequence[TrajectoryPattern]) -> np.ndarray:
        """NM of several patterns, in order (alias of :meth:`nm_batch`)."""
        return self.nm_batch(patterns)

    def window_scores_batch(
        self, patterns: Sequence[TrajectoryPattern]
    ) -> list[np.ndarray]:
        """Raw global window log-sums of each pattern (no boundary mask).

        Entry ``i`` has one score per global window start of length
        ``len(patterns[i])``; windows that cross a trajectory boundary are
        *not* masked.  Consumers that slice per-trajectory ranges (the
        wildcard gap DP) use this to share the batched column machinery.
        """
        patterns = list(patterns)
        out: list[np.ndarray] = [np.empty(0)] * len(patterns)
        for m, idxs in self._group_by_length(patterns).items():
            n_windows = self._total_rows - m + 1
            if n_windows <= 0:
                continue
            chunk = max(1, _BATCH_SCORE_BUDGET // max(n_windows, 1))
            for start in range(0, len(idxs), chunk):
                sub = idxs[start : start + chunk]
                scores = self._stacked_window_scores(
                    [patterns[i] for i in sub], n_windows
                )
                for row, i in enumerate(sub):
                    # Copy out of the arena-backed scratch (and upcast the
                    # float32 mode): these rows outlive the next batch.
                    out[i] = np.array(scores[row], dtype=np.float64)
        return out

    # -- bulk singular evaluation ---------------------------------------------------------

    def _segment_maxima(self) -> np.ndarray:
        """Max stored entry of every (cell, trajectory) segment, cached.

        Segments follow the flat index order (sorted by cell, then
        trajectory); ``self._cell_seg_starts`` delimits each cell's run and
        ``self._flat_cell_order`` names the cells.  Both singular tables
        derive from this one ``np.maximum.reduceat`` sweep.
        """
        if self._seg_max is None:
            self._seg_max = self._kernels.segment_maxima(
                self._flat_vals_k, self._seg_starts
            )
        return self._seg_max

    def singular_nm_table(self) -> dict[int, float]:
        """``NM`` of every active singular pattern, without column building.

        For length-1 patterns the per-trajectory max is just the max stored
        entry (or the floor when a trajectory never touches the cell), so
        the whole table comes straight out of the index: each touched
        trajectory swaps its floor term for its max entry (always an
        improvement -- entries are above ``min_prob`` by construction).
        """
        base = self._floor * len(self.dataset)
        seg_max = self._segment_maxima()
        if not seg_max.size:
            return {}
        gains = np.add.reduceat(seg_max - self._floor, self._cell_seg_starts)
        return {
            int(cell): base + float(gain)
            for cell, gain in zip(self._flat_cell_order, gains)
        }

    def singular_match_table(self) -> dict[int, float]:
        """Match of every active singular pattern (used by the match miner)."""
        n_traj = len(self.dataset)
        floor_p = np.exp(self._floor)
        seg_max = self._segment_maxima()
        if not seg_max.size:
            return {}
        sums = np.add.reduceat(np.exp(seg_max), self._cell_seg_starts)
        n_touched = np.diff(np.append(self._cell_seg_starts, len(seg_max)))
        return {
            int(cell): float(s) + floor_p * (n_traj - int(n))
            for cell, s, n in zip(self._flat_cell_order, sums, n_touched)
        }

    # -- bulk single-cell extensions --------------------------------------------------------

    def extend_right_tables(
        self, pattern: TrajectoryPattern
    ) -> tuple[dict[int, float], dict[int, float]]:
        """NM and match of ``pattern + (c,)`` for every active cell ``c`` at once.

        The level-wise miners (match/Apriori, PB) extend each frontier
        prefix by the whole alphabet; evaluating those extensions one by one
        costs ``G`` full passes.  This method shares the prefix's window
        scores across all extensions and then visits every index entry once,
        so the whole table costs one prefix evaluation plus ``O(index)``.

        Returns ``(nm_by_cell, match_by_cell)`` over the active alphabet.
        """
        return self.extension_tables(pattern).as_pair()

    def extension_tables(self, pattern: TrajectoryPattern) -> ExtensionTables:
        """:meth:`extend_right_tables` plus the inactive-cell base totals."""
        m = len(pattern)
        n_spec = len(pattern.specified_positions())
        ext_len = m + 1

        # Prefix window scores aligned to extended-window starts.
        valid, bounds, eligible = self._window_plumbing(ext_len)
        if len(eligible) == 0:
            return self._extension_floor_tables(n_spec)

        n_windows = self._total_rows - ext_len + 1
        prefix_scores = np.zeros(n_windows)
        for j, cell in enumerate(pattern.cells):
            if cell == WILDCARD:
                continue
            prefix_scores += self._column(cell)[j : j + n_windows]
        return self._extension_tables_from_scores(
            m, n_spec, prefix_scores, valid, bounds, eligible
        )

    def extend_right_tables_many(
        self, patterns: Sequence[TrajectoryPattern]
    ) -> list[tuple[dict[int, float], dict[int, float]]]:
        """:meth:`extend_right_tables` of a whole frontier at once.

        The per-prefix window scores are built through the stacked batch
        scorer (each distinct cell column sliced once per offset for the
        whole frontier) before the shared flat-index pass; the level-wise
        miners call this once per level instead of once per prefix.
        """
        return [t.as_pair() for t in self.extension_tables_many(patterns)]

    def extension_tables_many(
        self, patterns: Sequence[TrajectoryPattern]
    ) -> list[ExtensionTables]:
        """:meth:`extend_right_tables_many` plus inactive-cell base totals."""
        patterns = list(patterns)
        with tracing.span("engine.ext_tables", n_prefixes=len(patterns)), (
            metrics.timer("engine.ext_tables_ns")
        ):
            return self._extension_tables_many(patterns)

    def _extension_tables_many(
        self, patterns: list[TrajectoryPattern]
    ) -> list[ExtensionTables]:
        out: list[ExtensionTables | None] = [None] * len(patterns)
        for m, idxs in self._group_by_length(patterns).items():
            ext_len = m + 1
            valid, bounds, eligible = self._window_plumbing(ext_len)
            if len(eligible) == 0:
                for i in idxs:
                    out[i] = self._extension_floor_tables(
                        len(patterns[i].specified_positions())
                    )
                continue
            n_windows = self._total_rows - ext_len + 1
            chunk = max(1, _BATCH_SCORE_BUDGET // max(n_windows, 1))
            for start in range(0, len(idxs), chunk):
                sub = idxs[start : start + chunk]
                scores = self._stacked_window_scores(
                    [patterns[i] for i in sub], n_windows
                )
                for row, i in enumerate(sub):
                    out[i] = self._extension_tables_from_scores(
                        m,
                        len(patterns[i].specified_positions()),
                        scores[row],
                        valid,
                        bounds,
                        eligible,
                    )
        return out  # type: ignore[return-value]

    def _extension_floor_tables(self, n_spec: int) -> ExtensionTables:
        """Extension tables when no trajectory fits the extended length."""
        n_traj = len(self.dataset)
        nm_total = self._floor * n_traj
        match_total = n_traj * float(np.exp(self._floor * (n_spec + 1)))
        return ExtensionTables(
            dict.fromkeys(self.active_cells, nm_total),
            dict.fromkeys(self.active_cells, match_total),
            nm_total,
            match_total,
        )

    def _extension_tables_from_scores(
        self,
        m: int,
        n_spec: int,
        prefix_scores: np.ndarray,
        valid: np.ndarray,
        bounds: np.ndarray,
        eligible: np.ndarray,
    ) -> ExtensionTables:
        """Flat-index extension pass shared by the single and batched paths."""
        n_traj = len(self.dataset)
        floor = self._floor
        nm_default = np.full(n_traj, floor)
        match_default = np.full(n_traj, np.exp(floor * (n_spec + 1)))

        # Base case: the new position scores the floor everywhere.
        base = prefix_scores + floor
        base_masked = np.where(valid, base, -np.inf)
        base_max = np.maximum.reduceat(base_masked, bounds)  # per eligible traj

        nm_base = nm_default.copy()
        nm_base[eligible] = base_max / (n_spec + 1)
        match_base = match_default.copy()
        match_base[eligible] = np.exp(base_max)
        nm_base_total = float(nm_base.sum())
        match_base_total = float(match_base.sum())

        if self._seg_starts.size == 0:
            # Empty flat index: no entry can improve on the base totals, so
            # every extension scores exactly the base (mirrors the
            # no-eligible-trajectory branch instead of dropping the totals).
            return ExtensionTables(
                dict.fromkeys(self.active_cells, nm_base_total),
                dict.fromkeys(self.active_cells, match_base_total),
                nm_base_total,
                match_base_total,
            )

        # Per-trajectory best base, aligned for comparison with entries.
        best_base_by_traj = np.full(n_traj, -np.inf)
        best_base_by_traj[eligible] = base_max

        # Fully vectorised over the flat segment index: one masked score per
        # entry, one max per (cell, trajectory) segment, one sum per cell.
        starts = self._flat_rows - m
        entry_valid = starts >= 0
        safe_starts = np.where(entry_valid, starts, 0)
        entry_valid &= self._row_traj[safe_starts] == self._row_traj[self._flat_rows]
        scores = np.where(
            entry_valid, prefix_scores[safe_starts] + self._flat_vals, -np.inf
        )
        seg_max = np.maximum.reduceat(scores, self._seg_starts)
        old = best_base_by_traj[self._seg_traj]
        improved = seg_max > old
        # Masked subtraction: unimproved segments may hold -inf on both
        # sides, and (-inf) - (-inf) would poison a plain np.where.
        nm_delta_seg = np.zeros(len(seg_max))
        np.subtract(seg_max, old, out=nm_delta_seg, where=improved)
        match_delta_seg = np.zeros(len(seg_max))
        np.subtract(
            np.exp(seg_max), np.exp(old), out=match_delta_seg, where=improved
        )
        nm_delta = np.add.reduceat(nm_delta_seg, self._cell_seg_starts) / (n_spec + 1)
        match_delta = np.add.reduceat(match_delta_seg, self._cell_seg_starts)

        nm_by_cell = {
            int(cell): nm_base_total + float(d)
            for cell, d in zip(self._flat_cell_order, nm_delta)
        }
        match_by_cell = {
            int(cell): match_base_total + float(d)
            for cell, d in zip(self._flat_cell_order, match_delta)
        }
        self.n_evaluations += len(self._cell_ids)
        return ExtensionTables(
            nm_by_cell, match_by_cell, nm_base_total, match_base_total
        )

    # -- point queries -----------------------------------------------------------------------

    def log_prob_at(self, traj_index: int, snapshot: int, cell: int) -> float:
        """``log Prob`` of one (trajectory, snapshot, cell) triple."""
        if not 0 <= traj_index < len(self.dataset):
            raise IndexError(f"trajectory index {traj_index} out of range")
        if not 0 <= snapshot < self._lengths[traj_index]:
            raise IndexError(
                f"snapshot {snapshot} out of range for trajectory {traj_index}"
            )
        sl = self._cell_slice(int(cell))
        if sl is None:
            return self._floor
        rows, vals = self._flat_rows[sl], self._flat_vals[sl]
        row = int(self._starts[traj_index] + snapshot)
        pos = int(np.searchsorted(rows, row))
        if pos < len(rows) and rows[pos] == row:
            return float(vals[pos])
        return self._floor

    def best_window(
        self, pattern: TrajectoryPattern, traj_index: int
    ) -> tuple[int, float] | None:
        """Best (start, NM) window of ``pattern`` in one trajectory, or ``None``.

        ``None`` when the trajectory is shorter than the pattern.
        """
        m = len(pattern)
        length = int(self._lengths[traj_index])
        if length < m:
            return None
        start_row = int(self._starts[traj_index])
        scores = np.zeros(length - m + 1)
        for j, cell in enumerate(pattern.cells):
            if cell == WILDCARD:
                continue
            col = self._column(cell)
            scores += col[start_row + j : start_row + j + len(scores)]
        best = int(np.argmax(scores))
        n_spec = len(pattern.specified_positions())
        nm = float(scores[best] / n_spec) if n_spec else 0.0
        return best, nm


def build_engine(
    dataset: TrajectoryDataset,
    cell_size: float,
    delta: float | None = None,
    **config_kwargs,
):
    """Convenience constructor: grid covering the dataset + engine in one call.

    ``delta`` defaults to ``cell_size`` (the paper sets ``g_x = g_y = delta``).
    With ``jobs > 1`` the returned engine is a
    :class:`~repro.core.parallel.ParallelNMEngine` (same evaluation surface,
    sharded across worker processes); close it -- or use it as a context
    manager -- to release the workers and shared-memory segments.
    """
    grid = dataset.make_grid(cell_size)
    config = EngineConfig(delta=delta if delta is not None else cell_size, **config_kwargs)
    from repro import obs  # deferred: repro/__init__ imports this module

    obs.apply_config(config)
    if config.jobs > 1:
        from repro.core.parallel import ParallelNMEngine

        return ParallelNMEngine(dataset, grid, config)
    return NMEngine(dataset, grid, config)


def autotune_prob_chunk(
    dataset: TrajectoryDataset,
    grid: Grid,
    config: EngineConfig,
    candidates: Sequence[int] = (1 << 16, 1 << 18, 1 << 20, 1 << 22),
    rounds: int = 2,
) -> int:
    """Empirically pick the fastest ``prob_chunk_size`` for this machine.

    Times the full index-entry collection (the chunked ``prob_within``
    sweep) at each candidate size and returns the fastest.  Chunking is
    purely an execution-shape knob -- every (snapshot, cell) pair is
    evaluated independently, so results are bit-identical at any size (a
    regression test pins this at 0 ULPs) and the choice is safe to apply
    blindly via ``replace(config, prob_chunk_size=...)``.

    A quick helper, not a benchmark: one engine build plus
    ``rounds * len(candidates)`` collection sweeps over the given dataset.
    """
    import time
    from dataclasses import replace as _replace

    if not candidates:
        raise ValueError("autotune needs at least one candidate chunk size")
    base = _replace(config, cache_dir=None)
    engine = NMEngine(dataset, grid, base)
    best_chunk, best_t = None, float("inf")
    for chunk in candidates:
        engine.config = _replace(base, prob_chunk_size=int(chunk))
        elapsed = float("inf")
        for _ in range(max(1, rounds)):
            t0 = time.perf_counter()
            engine._collect_index_entries()
            elapsed = min(elapsed, time.perf_counter() - t0)
        if elapsed < best_t:
            best_chunk, best_t = int(chunk), elapsed
    _log.debug(
        "prob_chunk autotune",
        extra={"best": best_chunk, "candidates": [int(c) for c in candidates]},
    )
    return best_chunk
