"""Tests for engine internals: index caps, column cache, interpolation view."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.mobility.models import LinearModel
from repro.mobility.reporting import ReportingConfig, dead_reckon
from repro.mobility.objects import GroundTruthPath
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


@pytest.fixture
def wide_dataset(rng):
    trajs = [
        UncertainTrajectory(
            rng.uniform(0.2, 0.8, (10, 2)), 0.05, object_id=f"w{i}"
        )
        for i in range(5)
    ]
    return TrajectoryDataset(trajs)


GRID = Grid(BoundingBox.unit(), nx=20, ny=20)


class TestIndexCaps:
    def test_max_cells_per_snapshot_caps_entries(self, wide_dataset):
        full = NMEngine(
            wide_dataset, GRID, EngineConfig(delta=0.05, min_prob=1e-6)
        )
        capped = NMEngine(
            wide_dataset,
            GRID,
            EngineConfig(delta=0.05, min_prob=1e-6, max_cells_per_snapshot=8),
        )
        assert capped.n_index_entries <= 8 * wide_dataset.total_snapshots()
        assert capped.n_index_entries < full.n_index_entries

    def test_cap_keeps_highest_probability_cells(self, wide_dataset):
        """The capped index keeps the best cells: the top pattern of the
        capped engine is the same as the full engine's."""
        full = NMEngine(
            wide_dataset, GRID, EngineConfig(delta=0.05, min_prob=1e-6)
        )
        capped = NMEngine(
            wide_dataset,
            GRID,
            EngineConfig(delta=0.05, min_prob=1e-6, max_cells_per_snapshot=16),
        )
        best_full = max(full.singular_nm_table().items(), key=lambda kv: kv[1])
        best_capped = max(capped.singular_nm_table().items(), key=lambda kv: kv[1])
        assert best_full[0] == best_capped[0]

    def test_larger_min_prob_shrinks_index(self, wide_dataset):
        loose = NMEngine(
            wide_dataset, GRID, EngineConfig(delta=0.05, min_prob=1e-3)
        )
        tight = NMEngine(
            wide_dataset, GRID, EngineConfig(delta=0.05, min_prob=1e-8)
        )
        assert loose.n_index_entries < tight.n_index_entries


class TestColumnCache:
    def test_cache_eviction_preserves_values(self, wide_dataset):
        engine = NMEngine(
            wide_dataset,
            GRID,
            EngineConfig(delta=0.05, min_prob=1e-5, column_cache_size=2),
        )
        cells = engine.active_cells[:6]
        first_pass = [engine.nm(TrajectoryPattern((c,))) for c in cells]
        # Re-query in reverse: every column is a cache miss now.
        second_pass = [engine.nm(TrajectoryPattern((c,))) for c in reversed(cells)]
        assert first_pass == pytest.approx(list(reversed(second_pass)))
        assert len(engine._column_cache) <= 2

    def test_columns_are_immutable(self, wide_dataset):
        engine = NMEngine(wide_dataset, GRID, EngineConfig(delta=0.05, min_prob=1e-5))
        col = engine._column(engine.active_cells[0])
        with pytest.raises(ValueError):
            col[0] = 0.0


class TestInterpolatedTrajectory:
    def _tracked(self):
        t = np.arange(30, dtype=float)
        xs = np.where(t < 15, 0.02 * t, 0.3)  # cruise then hard stop
        path = GroundTruthPath(np.column_stack([xs, np.zeros(30)]))
        return path, dead_reckon(
            path, LinearModel(), ReportingConfig(uncertainty=0.03)
        )

    def test_interpolation_pins_deliveries(self):
        _, log = self._tracked()
        interp = log.to_interpolated_trajectory()
        delivered = np.nonzero(log.delivered)[0]
        assert np.allclose(interp.means[delivered], log.estimates[delivered])

    def test_interpolation_is_linear_between_deliveries(self):
        _, log = self._tracked()
        interp = log.to_interpolated_trajectory()
        delivered = np.nonzero(log.delivered)[0]
        for left, right in zip(delivered[:-1], delivered[1:]):
            if right - left > 1:
                segment = interp.means[left : right + 1]
                diffs = np.diff(segment, axis=0)
                assert np.allclose(diffs, diffs[0], atol=1e-12)

    def test_interpolated_velocities_closer_to_truth(self):
        """The motivation for interpolating the mining input: its velocity
        sequence tracks the true motion better than the live estimates'
        (live dead reckoning coasts through manoeuvres until corrected)."""
        path, log = self._tracked()
        true_v = np.diff(path.positions, axis=0)
        live_v = np.diff(log.estimates, axis=0)
        interp_v = np.diff(log.to_interpolated_trajectory().means, axis=0)
        live_err = np.hypot(*(live_v - true_v).T).sum()
        interp_err = np.hypot(*(interp_v - true_v).T).sum()
        assert interp_err < live_err

    def test_few_deliveries_falls_back_to_live(self):
        path = GroundTruthPath(np.zeros((5, 2)))
        log = dead_reckon(path, LinearModel(), ReportingConfig(uncertainty=1.0))
        interp = log.to_interpolated_trajectory()
        assert np.allclose(interp.means, log.estimates)

    def test_server_dataset_flag(self):
        from repro.mobility.server import track_fleet

        path, _ = self._tracked()
        result = track_fleet([path], LinearModel, ReportingConfig(uncertainty=0.03))
        live = result.to_dataset()
        interp = result.to_dataset(interpolated=True)
        assert live.metadata["interpolated"] is False
        assert interp.metadata["interpolated"] is True
