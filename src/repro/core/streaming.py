"""Out-of-core NM evaluation (the paper's section 4.4 space argument).

Section 4.4: "Although the input data set size N could be larger than that
of Q, it is not necessary to load the entire input data set at once since
we only need a portion of the data set at a time for computing the NM.
Thus the space complexity of our algorithm can be considered as O(kMG)."

:class:`StreamingNMEngine` realises that claim: it evaluates the NM and
match of pattern batches by streaming trajectories from a dataset file in
bounded-size chunks, building the in-memory probability index only for the
chunk in flight.  Because NM and match are *sums of per-trajectory terms*
(Eq. 4 summed over D), chunk results combine by plain addition -- the
evaluation is embarrassingly partitionable over trajectories.

Two file formats are accepted (sniffed, not suffix-matched):

* **JSONL** (:func:`repro.trajectory.io.save_dataset_jsonl`) -- parsed
  line by line, one chunk of trajectories resident at a time;
* **``.tjc`` columnar stores** (:mod:`repro.storage`) -- chunks become
  trajectory *spans* read straight from the column chunks (bounded
  ``pread``, no mmap growth), and with ``config.cache_dir`` set each
  span's index is cached under a :func:`~repro.core.index_cache.
  span_cache_key` -- keyed by the store's content hash and the span
  bounds, so re-scoring runs rebuild nothing and the cache warms span by
  span, incrementally, without ever fingerprinting (or holding) the whole
  dataset.

Intended use: verifying or re-scoring mined pattern sets against datasets
too large for one resident index (the miner itself wants the random access
of :class:`~repro.core.engine.NMEngine`; run it on a sample, then confirm
the final top-k out-of-core).  The test suite checks chunked results equal
the in-memory engine exactly.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.geometry.grid import Grid
from repro.obs import logs, metrics, tracing
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

_log = logs.get_logger("streaming")


class StreamingNMEngine:
    """Chunked NM/match evaluation over a JSONL trajectory file.

    Parameters
    ----------
    path:
        A dataset file: JSONL written by
        :func:`repro.trajectory.io.save_dataset_jsonl`, or a ``.tjc``
        columnar store (detected by magic).
    grid, config:
        The same geometry/probability configuration an in-memory engine
        would use; results are identical by construction.
    chunk_size:
        Trajectories resident per chunk -- the memory knob.  Peak memory is
        one chunk's probability index instead of the whole dataset's.
    """

    def __init__(
        self,
        path: str | Path,
        grid: Grid,
        config: EngineConfig,
        chunk_size: int = 64,
    ) -> None:
        from repro.storage import is_store_path, open_store  # deferred: layering

        if chunk_size < 1:
            raise ValueError("chunk_size must be positive")
        self.path = Path(path)
        self.grid = grid
        self.config = config
        self.chunk_size = chunk_size
        self.n_chunks_scanned = 0  # instrumentation
        self.span_cache_hits = 0  # store mode: spans served from the cache
        self.store_backed = is_store_path(self.path)
        if self.store_backed:
            # O(footer) open validates magic/version and pins the content
            # hash that names this store's span cache entries.
            with open_store(self.path) as store:
                self._store_hash = store.content_hash
                self._n_store_traj = store.n_trajectories
            return
        # Validate the header eagerly so misuse fails at construction.
        with self.path.open("r", encoding="utf-8") as fh:
            header = json.loads(fh.readline() or "null")
        if not isinstance(header, dict) or header.get("format") != "repro.trajectory":
            raise ValueError(f"{self.path}: not a repro trajectory JSONL file")

    # -- streaming machinery ---------------------------------------------------

    def _iter_chunks(self) -> Iterator[TrajectoryDataset]:
        """Yield the JSONL file as bounded TrajectoryDataset chunks.

        Rides :func:`repro.trajectory.io.iter_dataset_jsonl`, so parsing is
        line-by-line (one trajectory resident beyond the current batch) and
        malformed records fail with the usual ``path:line`` errors.
        """
        from repro.trajectory.io import iter_dataset_jsonl

        batch: list[UncertainTrajectory] = []
        stream = iter_dataset_jsonl(self.path)
        next(stream)  # header metadata
        for traj in stream:
            batch.append(traj)
            if len(batch) == self.chunk_size:
                yield TrajectoryDataset(batch)
                batch = []
        if batch:
            yield TrajectoryDataset(batch)

    def _store_chunk_engines(self) -> Iterator[NMEngine]:
        """Span-at-a-time engines over a ``.tjc`` store.

        Each span reads its rows through bounded ``pread`` (``mode="read"``
        -- the mapping never grows, so peak RSS is one span).  With
        ``config.cache_dir`` set the span's flat index is cached under a
        span key: store content hash + span bounds + grid/config, with
        span-local row indices -- built on first contact, loaded ever
        after, independent of every other span.
        """
        from repro.core import index_cache, kernels  # deferred: layering
        from repro.storage import open_store

        cache_dir = self.config.cache_dir
        kernel_tag = kernels.prob_kernel_tag(self.config)
        # Chunk engines stay in-process and never cache whole-chunk-dataset
        # keys themselves -- the span cache above is their cache.
        config = replace(self.config, jobs=1, cache_dir=None)
        with open_store(self.path) as store:
            # The store is re-opened per scan, so an atomic replace of the
            # file (same path, new contents -- a live ingest pipeline
            # republishing its report log does exactly this) is picked up
            # here: the pinned content hash must follow, or span cache keys
            # would keep naming the *old* contents' entries and silently
            # serve stale indexes over the new rows.
            if store.content_hash != self._store_hash:
                _log.info(
                    "store contents changed; refreshing span cache identity",
                    extra={
                        "path": str(self.path),
                        "old_hash": self._store_hash[:12],
                        "new_hash": store.content_hash[:12],
                    },
                )
                self._store_hash = store.content_hash
                self._n_store_traj = store.n_trajectories
            offsets = store.row_offsets
            for lo in range(0, store.n_trajectories, self.chunk_size):
                hi = min(lo + self.chunk_size, store.n_trajectories)
                span = store.span(lo, hi, mode="read")
                prebuilt, span_key = None, None
                if cache_dir is not None:
                    span_key = index_cache.span_cache_key(
                        self._store_hash,
                        lo,
                        hi,
                        self.grid,
                        self.config,
                        kernel_tag=kernel_tag,
                    )
                    prebuilt = index_cache.load_index(
                        cache_dir,
                        span_key,
                        n_rows=int(offsets[hi] - offsets[lo]),
                        n_cells=self.grid.n_cells,
                    )
                self.n_chunks_scanned += 1
                metrics.counter("streaming.chunks_scanned").inc()
                with tracing.span(
                    "streaming.span",
                    chunk=self.n_chunks_scanned,
                    traj_lo=lo,
                    traj_hi=hi,
                    cache_hit=prebuilt is not None,
                ):
                    engine = NMEngine(span, self.grid, config, prebuilt=prebuilt)
                if prebuilt is not None:
                    self.span_cache_hits += 1
                    metrics.counter("streaming.span_cache_hit").inc()
                elif span_key is not None:
                    index_cache.save_index(
                        cache_dir, span_key, *engine.index_arrays()
                    )
                yield engine

    def _chunk_engines(self) -> Iterator[NMEngine]:
        if self.store_backed:
            yield from self._store_chunk_engines()
            return
        # Chunk engines are always in-process (one resident index is the
        # whole point); `jobs` is neutralised rather than spawning a pool
        # per chunk.  `cache_dir` is kept: each chunk gets its own
        # content-keyed cache file, so repeated re-scoring runs skip every
        # chunk's index build.
        config = (
            replace(self.config, jobs=1) if self.config.jobs != 1 else self.config
        )
        for chunk in self._iter_chunks():
            self.n_chunks_scanned += 1
            metrics.counter("streaming.chunks_scanned").inc()
            with tracing.span(
                "streaming.chunk",
                chunk=self.n_chunks_scanned,
                n_traj=len(chunk),
            ):
                engine = NMEngine(chunk, self.grid, config)
            _log.debug(
                "streaming chunk ready",
                extra={
                    "path": str(self.path),
                    "chunk": self.n_chunks_scanned,
                    "n_traj": len(chunk),
                    "n_entries": engine.n_index_entries,
                },
            )
            yield engine

    # -- evaluation -------------------------------------------------------------

    def nm_many(self, patterns: Sequence[TrajectoryPattern]) -> np.ndarray:
        """Dataset NM of each pattern, computed in one pass over the file.

        One chunk index is resident at a time; the whole pattern batch is
        scored against it with one :meth:`NMEngine.nm_batch` call before it
        is dropped, so the file is read exactly once per call regardless of
        the batch size.
        """
        if not patterns:
            return np.empty(0)
        totals = np.zeros(len(patterns))
        scanned = False
        for engine in self._chunk_engines():
            scanned = True
            totals += engine.nm_batch(patterns)
        if not scanned:
            raise ValueError(f"{self.path}: dataset contains no trajectories")
        return totals

    def match_many(self, patterns: Sequence[TrajectoryPattern]) -> np.ndarray:
        """Dataset match of each pattern, one pass over the file."""
        if not patterns:
            return np.empty(0)
        totals = np.zeros(len(patterns))
        scanned = False
        for engine in self._chunk_engines():
            scanned = True
            totals += engine.match_batch(patterns)
        if not scanned:
            raise ValueError(f"{self.path}: dataset contains no trajectories")
        return totals

    def nm(self, pattern: TrajectoryPattern) -> float:
        """Dataset NM of one pattern (prefer :meth:`nm_many` for batches)."""
        return float(self.nm_many([pattern])[0])

    def match(self, pattern: TrajectoryPattern) -> float:
        """Dataset match of one pattern."""
        return float(self.match_many([pattern])[0])

    def singular_nm_table(self) -> dict[int, float]:
        """NM of every active singular pattern, accumulated across chunks.

        Cells inactive in a chunk contribute that chunk's floor terms; the
        accumulation accounts for them so the result matches the in-memory
        engine exactly.
        """
        floor = self.config.min_log_prob
        totals: dict[int, float] = {}
        n_total = 0
        per_cell_counted: dict[int, int] = {}
        for engine in self._chunk_engines():
            chunk_n = len(engine.dataset)
            n_total += chunk_n
            for cell, value in engine.singular_nm_table().items():
                totals[cell] = totals.get(cell, 0.0) + value
                per_cell_counted[cell] = per_cell_counted.get(cell, 0) + chunk_n
        if n_total == 0:
            raise ValueError(f"{self.path}: dataset contains no trajectories")
        # Chunks where a cell was inactive contributed floor per trajectory.
        return {
            cell: total + floor * (n_total - per_cell_counted[cell])
            for cell, total in totals.items()
        }

    def verify_top_k(
        self, patterns: Sequence[TrajectoryPattern], k: int
    ) -> list[tuple[TrajectoryPattern, float]]:
        """Re-score a mined pattern set out-of-core and return its top-k."""
        if k < 1:
            raise ValueError("k must be positive")
        values = self.nm_many(patterns)
        order = sorted(
            range(len(patterns)),
            key=lambda i: (-values[i], len(patterns[i]), patterns[i].cells),
        )
        return [(patterns[i], float(values[i])) for i in order[:k]]
