"""Quickstart: mine trajectory patterns from imprecise trajectories.

Builds a tiny synthetic dataset of mobile objects, applies the full
TrajPattern pipeline -- grid discretisation, NM engine, top-k mining,
pattern groups -- and prints the results.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    EngineConfig,
    NMEngine,
    TrajectoryDataset,
    TrajPatternMiner,
    UncertainTrajectory,
)
from repro.viz import render_grid


def make_dataset(seed: int = 7) -> TrajectoryDataset:
    """Twenty objects drifting north-east with imprecise tracking.

    Each snapshot is a Gaussian: the tracked mean plus a known standard
    deviation (the paper's ``U / c``).  Ten objects follow a shared
    corridor; ten wander randomly -- the miner should find the corridor.
    """
    rng = np.random.default_rng(seed)
    trajectories = []
    for i in range(10):  # corridor objects
        start = np.array([0.1, 0.1]) + rng.normal(0, 0.01, 2)
        steps = np.tile([0.04, 0.03], (15, 1)) + rng.normal(0, 0.004, (15, 2))
        means = start + np.cumsum(steps, axis=0)
        trajectories.append(
            UncertainTrajectory(means, sigmas=0.02, object_id=f"corridor-{i}")
        )
    for i in range(10):  # random walkers
        start = rng.uniform(0.0, 0.8, 2)
        steps = rng.normal(0.0, 0.03, (15, 2))
        means = start + np.cumsum(steps, axis=0)
        trajectories.append(
            UncertainTrajectory(means, sigmas=0.02, object_id=f"walker-{i}")
        )
    return TrajectoryDataset(trajectories)


def main() -> None:
    dataset = make_dataset()
    print(f"dataset: {dataset}")

    # Discretise the space (section 3.3): cells of 0.05 x 0.05, and use the
    # cell size as the indifference distance delta.
    grid = dataset.make_grid(cell_size=0.05)
    print(f"grid: {grid}")

    engine = NMEngine(dataset, grid, EngineConfig(delta=0.05, min_prob=1e-5))
    print(f"active cells: {len(engine.active_cells)}")

    # Mine the top-10 patterns by normalised match and group them.
    miner = TrajPatternMiner(engine, k=10, min_length=2, max_length=5)
    result = miner.mine(discover_groups=True)

    print(f"\ntop-{len(result)} NM patterns "
          f"(omega = {result.omega:.2f}, "
          f"{result.stats.candidates_evaluated} candidates evaluated):")
    for pattern, nm in result.as_pairs():
        centers = " -> ".join(
            f"({c.x:.2f},{c.y:.2f})" for c in map(grid.cell_center, pattern.cells)
        )
        print(f"  NM {nm:9.2f}  {centers}")

    print(f"\npattern groups (gamma = 3 sigma):")
    for group in result.groups:
        rep = group.representative(grid)
        print(f"  {len(group)} pattern(s) of length {group.length}, "
              f"representative {rep.cells}")

    print("\ndata (o) and mined patterns (#):")
    print(render_grid(grid, dataset.trajectories, result.patterns, width=48))


if __name__ == "__main__":
    main()
