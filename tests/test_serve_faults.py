"""Serving-layer failure modes: torn frames, vanished clients, stale EMA.

Three client-hostile scenarios against a real server on a real socket --

* a peer that dies mid-frame (the torn bytes must never execute as a
  request, even when they parse as one);
* a peer that pipelines requests and vanishes without reading (in-flight
  responses hit a dead transport; nothing may leak into the batcher
  pipeline other connections share);
* a batch handler blowing up (one internal-error response, not a wedged
  batcher)

-- plus unit tests for the admission controller's EMA cold-start fix:
an idle gap decays the service-time estimate, and a stale estimate alone
(empty queue) never sheds.
"""

from __future__ import annotations

import asyncio
import time

import numpy as np
import pytest

from repro.experiments.datasets import zebranet_dataset
from repro.serve import PatternServer, ServeConfig, ServingSnapshot, SnapshotStore, protocol
from repro.serve.batcher import MicroBatcher, OverloadedError, _EMA_IDLE_GRACE
from repro.testkit import faults


@pytest.fixture(autouse=True)
def clean_faults():
    faults.disarm()
    yield
    faults.disarm()


@pytest.fixture(scope="module")
def snapshot():
    dataset = zebranet_dataset(n_trajectories=10, n_ticks=15, seed=23)
    return ServingSnapshot.from_dataset(dataset, version="v-faults")


@pytest.fixture(scope="module")
def patterns(snapshot):
    cells = snapshot.engine.active_cells
    return [[int(cells[0]), int(cells[1])], [int(cells[2])]]


def _server(snapshot) -> PatternServer:
    return PatternServer(
        SnapshotStore(snapshot), ServeConfig(default_timeout_ms=None)
    )


async def _request(host, port, payload: dict) -> dict:
    reader, writer = await asyncio.open_connection(
        host, port, limit=protocol.MAX_LINE_BYTES
    )
    writer.write(protocol.encode(payload))
    await writer.drain()
    response = protocol.decode_line(await reader.readline())
    writer.close()
    try:
        await writer.wait_closed()
    except ConnectionError:
        pass
    return response


class TestTornFrames:
    def test_torn_shutdown_frame_is_dropped_not_executed(self, snapshot):
        # The dangerous case: the torn bytes are *valid JSON* for a
        # shutdown request, only the trailing newline is missing because
        # the peer died mid-write.  Pre-fix, readline() returned the
        # partial line at EOF and the server executed it -- one crashing
        # client could take the whole server down.
        async def scenario():
            server = _server(snapshot)
            host, port = await server.start()
            _, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"op": "shutdown"}')  # no newline: torn frame
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            await asyncio.sleep(0.05)  # let the server observe the EOF
            shut = server._shutdown.is_set()
            health = await _request(host, port, {"op": "health", "id": "h"})
            await server.stop()
            return shut, health

        shut, health = asyncio.run(scenario())
        assert not shut  # the torn shutdown never executed
        assert health["ok"] and health["status"] == "ok"

    def test_torn_garbage_frame_is_dropped(self, snapshot):
        async def scenario():
            server = _server(snapshot)
            host, port = await server.start()
            _, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"op": "score", "patt')  # mid-key cutoff
            await writer.drain()
            writer.close()
            await writer.wait_closed()
            health = await _request(host, port, {"op": "health", "id": "h"})
            await server.stop()
            return health

        assert asyncio.run(scenario())["ok"]


class TestAbruptDisconnect:
    def test_vanished_client_with_inflight_requests(self, snapshot, patterns):
        # Pipeline several scores, then RST the connection without reading
        # a single response.  Every response write hits a dead transport;
        # none of those failures may surface as an unhandled task error or
        # disturb a concurrent well-behaved client.
        async def scenario():
            unhandled = []
            asyncio.get_running_loop().set_exception_handler(
                lambda loop, ctx: unhandled.append(ctx)
            )
            server = _server(snapshot)
            host, port = await server.start()

            _, writer = await asyncio.open_connection(host, port)
            for i in range(6):
                writer.write(
                    protocol.encode({"op": "score", "id": i, "patterns": patterns})
                )
            await writer.drain()
            writer.transport.abort()  # RST: no FIN handshake, no reads

            score = await _request(
                host, port, {"op": "score", "id": "ok", "patterns": patterns}
            )
            await asyncio.sleep(0.1)  # let the doomed responses hit the socket
            health = await _request(host, port, {"op": "health", "id": "h"})
            await server.stop()
            return unhandled, score, health

        unhandled, score, health = asyncio.run(scenario())
        assert unhandled == []
        assert score["ok"] and len(score["values"]) == len(patterns)
        assert health["ok"]


class TestHandlerFailure:
    def test_handler_fault_answers_internal_and_recovers(self, snapshot, patterns):
        # A blown-up batch fails its own requests with an internal error;
        # the batcher worker survives and the next request evaluates.
        faults.arm("serve.batch.handler")

        async def scenario():
            server = _server(snapshot)
            host, port = await server.start()
            bad = await _request(
                host, port, {"op": "score", "id": 1, "patterns": patterns}
            )
            good = await _request(
                host, port, {"op": "score", "id": 2, "patterns": patterns}
            )
            await server.stop()
            return bad, good

        bad, good = asyncio.run(scenario())
        assert bad["ok"] is False
        assert bad["error"] == "internal"
        assert "FaultInjected" in bad["detail"]
        assert good["ok"]
        expected = snapshot.engine.nm_batch(
            [protocol_pattern(p) for p in patterns]
        )
        np.testing.assert_allclose(good["values"], expected, rtol=1e-12)


def protocol_pattern(cells):
    from repro.core.pattern import TrajectoryPattern

    return TrajectoryPattern(tuple(cells))


class TestEMAColdStart:
    """The admission controller must not shed on yesterday's load estimate."""

    @staticmethod
    async def _echo(key, payloads):
        return payloads

    def test_stale_ema_with_empty_queue_admits(self):
        # Regression: EMA says 5 s per batch, queue is empty, deadline is
        # 500 ms out.  Pre-fix, predictive shedding refused this request
        # ("deadline") purely on the stale estimate; post-fix an empty
        # queue admits any live deadline.
        async def scenario():
            batcher = MicroBatcher(self._echo, max_batch=4, max_delay=0.001)
            batcher.start()
            batcher.stats.ema_batch_s = 5.0
            batcher._last_batch_done = time.monotonic()  # fresh: no decay
            result = await batcher.submit(
                "k", 42, deadline=time.monotonic() + 0.5
            )
            await batcher.close()
            return result

        assert asyncio.run(scenario()) == 42

    def test_stale_ema_with_queued_work_still_sheds(self):
        # The fix must not disable predictive shedding where it is right:
        # actual queued work behind a slow handler plus a hopeless
        # deadline is refused up-front.
        async def scenario():
            release = asyncio.Event()

            async def slow(key, payloads):
                await release.wait()
                return payloads

            batcher = MicroBatcher(slow, max_batch=1, max_delay=0.0)
            batcher.start()
            first = asyncio.get_running_loop().create_task(batcher.submit("k", 1))
            await asyncio.sleep(0.02)  # worker now blocked inside the handler
            batcher.stats.ema_batch_s = 5.0
            batcher._last_batch_done = time.monotonic()
            second = asyncio.get_running_loop().create_task(batcher.submit("k", 2))
            await asyncio.sleep(0.02)  # second is *queued*, not dispatched
            assert batcher.queue_depth == 1
            try:
                await batcher.submit("k", 3, deadline=time.monotonic() + 0.1)
                reason = None
            except OverloadedError as exc:
                reason = exc.reason
            release.set()
            await asyncio.gather(first, second)
            await batcher.close()
            return reason

        assert asyncio.run(scenario()) == "deadline"

    def test_idle_decay_halves_per_grace_period(self):
        clock_now = [0.0]
        batcher = MicroBatcher(self._echo, max_delay=0.001, clock=lambda: clock_now[0])
        batcher.stats.ema_batch_s = 2.0
        batcher._last_batch_done = 0.0
        grace = _EMA_IDLE_GRACE * 2.0  # max(max_delay, ema) == ema here

        batcher._decay_stale_ema(grace)  # exactly at the grace bound
        assert batcher.stats.ema_batch_s == 2.0  # within grace: untouched
        assert batcher._last_batch_done == 0.0

        batcher._decay_stale_ema(2 * grace)  # one full grace period idle
        assert batcher.stats.ema_batch_s == pytest.approx(2.0 * 0.5**2)
        assert batcher._last_batch_done == 2 * grace  # anchor advanced

    def test_long_idle_decays_once_not_per_call(self):
        clock_now = 0.0
        batcher = MicroBatcher(self._echo, max_delay=0.001, clock=lambda: clock_now)
        batcher.stats.ema_batch_s = 4.0
        batcher._last_batch_done = 0.0
        grace = _EMA_IDLE_GRACE * 4.0
        batcher._decay_stale_ema(10 * grace)
        after_first = batcher.stats.ema_batch_s
        assert after_first == pytest.approx(4.0 * 0.5**10)
        # Immediately repeated calls see idle == 0 against the advanced
        # anchor and leave the estimate alone.
        batcher._decay_stale_ema(10 * grace)
        assert batcher.stats.ema_batch_s == after_first

    def test_zero_ema_is_untouched(self):
        batcher = MicroBatcher(self._echo, max_delay=0.001)
        batcher._last_batch_done = 0.0
        batcher._decay_stale_ema(1e9)
        assert batcher.stats.ema_batch_s == 0.0
