"""Pattern-group discovery (paper sections 3.4 and 4.2).

Imprecise data makes many mined patterns near-duplicates of each other
(neighbouring grid cells get similar probability mass), so the paper
presents the top-k through *pattern groups*:

* two equal-length patterns are **similar** when at every snapshot index the
  distance between their positions is at most ``gamma`` (Definition 1);
* a **pattern group** is a maximal set of mutually similar patterns
  (Definition 2).

Section 4.2 gives a greedy clustering procedure: cluster the patterns at
every snapshot index into *snapshot groups* (complete-linkage at threshold
``gamma``, so members are pairwise within ``gamma``), then peel pattern
groups off by intersecting snapshot groups, starting from singletons and the
smallest groups.  We implement that procedure verbatim, including the
worked example's tie handling; it guarantees every emitted group is a set of
mutually similar patterns (the maximality of Definition 2 is greedy, as in
the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.cluster.hierarchy import fcluster, linkage

from repro.core.pattern import TrajectoryPattern
from repro.geometry.grid import Grid


@dataclass(frozen=True)
class PatternGroup:
    """One group of mutually similar patterns (all of equal length)."""

    patterns: tuple[TrajectoryPattern, ...]

    def __post_init__(self) -> None:
        if not self.patterns:
            raise ValueError("a pattern group cannot be empty")
        lengths = {len(p) for p in self.patterns}
        if len(lengths) != 1:
            raise ValueError("a pattern group must contain equal-length patterns")

    def __len__(self) -> int:
        return len(self.patterns)

    @property
    def length(self) -> int:
        """Length of the member patterns."""
        return len(self.patterns[0])

    def representative(self, grid: Grid) -> TrajectoryPattern:
        """Medoid member: minimises total snapshot distance to the others."""
        if len(self.patterns) == 1:
            return self.patterns[0]
        costs = []
        for p in self.patterns:
            cost = sum(
                float(p.snapshot_distance(q, grid).sum())
                for q in self.patterns
                if q is not p
            )
            costs.append(cost)
        return self.patterns[int(np.argmin(costs))]

    def is_mutually_similar(self, grid: Grid, gamma: float) -> bool:
        """Check the Definition 1 invariant over every member pair."""
        pats = self.patterns
        return all(
            pats[i].is_similar_to(pats[j], grid, gamma)
            for i in range(len(pats))
            for j in range(i + 1, len(pats))
        )


def discover_pattern_groups(
    patterns: Sequence[TrajectoryPattern], grid: Grid, gamma: float
) -> list[PatternGroup]:
    """Cluster mined patterns into pattern groups (section 4.2 procedure).

    Patterns are first partitioned by length (only equal-length patterns can
    be similar); each length class is clustered independently and the
    results are concatenated, longer patterns first, groups of each length
    in emission order.
    """
    if gamma < 0:
        raise ValueError("gamma must be non-negative")
    unique: list[TrajectoryPattern] = []
    seen: set[tuple[int, ...]] = set()
    for p in patterns:
        if p.cells not in seen:
            seen.add(p.cells)
            unique.append(p)

    by_length: dict[int, list[TrajectoryPattern]] = {}
    for p in unique:
        by_length.setdefault(len(p), []).append(p)

    groups: list[PatternGroup] = []
    for length in sorted(by_length, reverse=True):
        groups.extend(_group_equal_length(by_length[length], grid, gamma))
    return groups


# -- equal-length machinery ---------------------------------------------------


def _group_equal_length(
    patterns: list[TrajectoryPattern], grid: Grid, gamma: float
) -> list[PatternGroup]:
    n = len(patterns)
    if n == 1:
        return [PatternGroup((patterns[0],))]

    length = len(patterns[0])
    # Snapshot groups: per snapshot index, a partition of pattern indices
    # such that members are pairwise within gamma (complete linkage).
    snapshot_groups: list[list[set[int]]] = [
        _cluster_snapshot(patterns, s, grid, gamma) for s in range(length)
    ]

    active: set[int] = set(range(n))
    emitted: list[frozenset[int]] = []

    def emit(members: frozenset[int]) -> None:
        emitted.append(members)
        active.difference_update(members)
        for per_snapshot in snapshot_groups:
            for group in per_snapshot:
                group.difference_update(members)
            per_snapshot[:] = [g for g in per_snapshot if g]

    while active:
        if _emit_singletons(snapshot_groups, emit):
            continue
        smallest = _smallest_group(snapshot_groups)
        if smallest is None:
            # Every remaining pattern shares one group at every snapshot.
            emit(frozenset(active))
            continue
        candidate = frozenset(smallest)
        while True:
            refined = _refine(candidate, snapshot_groups)
            if refined is None:
                emit(candidate)
                break
            candidate = refined

    index_groups = sorted(emitted, key=lambda g: sorted(g))
    return [
        PatternGroup(tuple(patterns[i] for i in sorted(members)))
        for members in index_groups
    ]


def _cluster_snapshot(
    patterns: list[TrajectoryPattern], snapshot: int, grid: Grid, gamma: float
) -> list[set[int]]:
    """Complete-linkage clustering of the patterns' positions at one snapshot."""
    coords = np.array(
        [grid.cell_centers([p.cells[snapshot]])[0] for p in patterns]
    )
    n = len(patterns)
    if gamma == 0.0:
        # Exact-position grouping; complete linkage degenerates to equality.
        buckets: dict[tuple[float, float], set[int]] = {}
        for i, (x, y) in enumerate(coords):
            buckets.setdefault((float(x), float(y)), set()).add(i)
        return list(buckets.values())
    tree = linkage(coords, method="complete")
    labels = fcluster(tree, t=gamma, criterion="distance")
    clusters: dict[int, set[int]] = {}
    for i, label in enumerate(labels):
        clusters.setdefault(int(label), set()).add(i)
    return list(clusters.values())


def _emit_singletons(snapshot_groups, emit) -> bool:
    """Emit one singleton snapshot group if any exists (paper's first rule)."""
    for per_snapshot in snapshot_groups:
        for group in per_snapshot:
            if len(group) == 1:
                emit(frozenset(group))
                return True
    return False


def _smallest_group(snapshot_groups) -> set[int] | None:
    """Smallest snapshot group of size >= 2 across all snapshots.

    Returns ``None`` when each snapshot has a single group left (the
    remaining patterns are then mutually similar everywhere).
    """
    best: set[int] | None = None
    best_key: tuple | None = None
    multiple_groups_somewhere = False
    for s, per_snapshot in enumerate(snapshot_groups):
        if len(per_snapshot) > 1:
            multiple_groups_somewhere = True
        for gi, group in enumerate(per_snapshot):
            key = (len(group), s, gi)
            if best_key is None or key < best_key:
                best, best_key = group, key
    if not multiple_groups_somewhere:
        return None
    return best


def _refine(candidate: frozenset[int], snapshot_groups) -> frozenset[int] | None:
    """One intersection step of the section 4.2 procedure.

    Returns ``None`` when ``candidate`` is contained in some snapshot group
    at every snapshot (it is then a valid pattern group), otherwise the
    smallest non-empty intersection of ``candidate`` with any snapshot
    group, which strictly shrinks the candidate.
    """
    contained_everywhere = True
    best: frozenset[int] | None = None
    best_key: tuple | None = None
    for s, per_snapshot in enumerate(snapshot_groups):
        contained_here = False
        for gi, group in enumerate(per_snapshot):
            inter = candidate & group
            if inter == candidate:
                contained_here = True
            if inter and len(inter) < len(candidate):
                key = (len(inter), s, gi)
                if best_key is None or key < best_key:
                    best, best_key = frozenset(inter), key
        if not contained_here:
            contained_everywhere = False
    if contained_everywhere:
        return None
    if best is None:  # pragma: no cover - partitions guarantee an intersection
        raise AssertionError("candidate not contained anywhere yet never split")
    return best
