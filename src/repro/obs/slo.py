"""SLO evaluation: declared objectives -> error budgets and burn rates.

An SLO turns telemetry into a decision: *is the service meeting its
promise, and how fast is it spending the slack?*  Two objective kinds
cover the serving tier:

* **availability** -- the fraction of requests admitted (1 − shed rate):
  per telemetry interval, total events are the per-op request-counter
  deltas and bad events are the ``serve.shed.*`` counter deltas;
* **latency** -- a rolling-window quantile target (e.g. "p99 of
  ``score`` under 50 ms"): per interval, the histogram's delta count is
  good when the exported 60 s window quantile met the threshold and bad
  wholesale when it did not.  Counting whole intervals is the honest
  granularity for bucketed telemetry -- a 1.2x-bucket histogram cannot
  say *which* requests missed, only whether the tail did.

Each objective yields an **error budget** (``1 − objective``) and
**burn rates** over multiple windows (how many budgets per unit time the
service is currently spending; 1.0 means exactly on budget).  Fast +
slow multi-window burn is the standard paging rule: a short window
catches a cliff, a long one a slow leak.

The spec is JSON (``{"objectives": [...]}``, see :func:`load_slo_spec`);
``repro slo`` evaluates a spec against a telemetry series and renders
:func:`render_slo_report`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

#: Shed-counter names contributing to availability bad events.
SHED_COUNTERS = (
    "serve.shed.queue_full",
    "serve.shed.deadline",
    "serve.shed.deadline_expired",
)

#: (window seconds, label) pairs burn rates are reported over.
DEFAULT_BURN_WINDOWS = ((300.0, "5m"), (3600.0, "1h"))


@dataclass(frozen=True)
class SLObjective:
    """One declared objective.

    ``objective`` is the target good-event fraction (0.999 = "three
    nines").  ``op`` scopes the objective to one serving op; ``None``
    means every op.  ``quantile`` / ``threshold_ms`` apply to ``latency``
    objectives only.
    """

    name: str
    kind: str  # "availability" | "latency"
    objective: float
    op: str | None = None
    quantile: str = "p99"
    threshold_ms: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.kind == "latency":
            if self.threshold_ms is None or self.threshold_ms <= 0:
                raise ValueError("latency objectives need a positive threshold_ms")
            if self.op is None:
                raise ValueError("latency objectives need an op")


#: Sane defaults for a serving tier nobody has declared SLOs for yet.
DEFAULT_OBJECTIVES = (
    SLObjective(name="availability", kind="availability", objective=0.999),
    SLObjective(
        name="score-p99-latency",
        kind="latency",
        objective=0.99,
        op="score",
        quantile="p99",
        threshold_ms=50.0,
    ),
)


def load_slo_spec(source: str | Path | dict) -> tuple[SLObjective, ...]:
    """Objectives from a spec file (or already-parsed dict).

    Schema: ``{"objectives": [{"name", "kind", "objective", "op"?,
    "quantile"?, "threshold_ms"?}, ...]}``.
    """
    if isinstance(source, (str, Path)):
        with Path(source).open("r", encoding="utf-8") as fh:
            spec = json.load(fh)
    else:
        spec = source
    if not isinstance(spec, dict) or not isinstance(spec.get("objectives"), list):
        raise ValueError("SLO spec must be an object with an 'objectives' list")
    objectives = []
    for i, raw in enumerate(spec["objectives"]):
        if not isinstance(raw, dict):
            raise ValueError(f"objectives[{i}] must be an object")
        known = {"name", "kind", "objective", "op", "quantile", "threshold_ms"}
        unknown = set(raw) - known
        if unknown:
            raise ValueError(f"objectives[{i}]: unknown keys {sorted(unknown)}")
        try:
            objectives.append(SLObjective(**raw))
        except TypeError as exc:
            raise ValueError(f"objectives[{i}]: {exc}") from exc
    if not objectives:
        raise ValueError("SLO spec declares no objectives")
    return tuple(objectives)


def _interval_events(record: dict, prev: dict | None, objective: SLObjective) -> tuple[int, int]:
    """(total, bad) events one telemetry interval contributes."""
    counters = record.get("counters", {})
    if objective.kind == "availability":
        total = 0
        for name, data in counters.items():
            if not name.endswith(".requests") or not name.startswith("serve."):
                continue
            op = name[len("serve.") : -len(".requests")]
            if objective.op is not None and op != objective.op:
                continue
            total += int(data.get("delta", 0))
        bad = sum(int(counters.get(c, {}).get("delta", 0)) for c in SHED_COUNTERS)
        # Shed requests are refused at admission, before the per-op request
        # counter would normally be the story -- but the server counts every
        # well-formed request, so bad is a subset of total.
        return total, min(bad, total)
    # latency: whole-interval compliance of the exported window quantile.
    hist = record.get("histograms", {}).get(f"serve.{objective.op}.latency_ns")
    if not hist:
        return 0, 0
    count = int(hist.get("count", 0))
    prev_count = 0
    if prev is not None:
        prev_hist = prev.get("histograms", {}).get(f"serve.{objective.op}.latency_ns")
        if prev_hist:
            prev_count = int(prev_hist.get("count", 0))
    delta = max(count - prev_count, 0)
    if delta == 0:
        return 0, 0
    window = hist.get("window") or {}
    quantiles = window.get("quantiles") or hist.get("quantiles") or {}
    observed_ns = quantiles.get(objective.quantile)
    if observed_ns is None:
        return 0, 0
    threshold_ns = objective.threshold_ms * 1e6
    bad = delta if float(observed_ns) > threshold_ns else 0
    return delta, bad


def evaluate_slos(
    records: list[dict],
    objectives: tuple[SLObjective, ...] = DEFAULT_OBJECTIVES,
    burn_windows: tuple[tuple[float, str], ...] = DEFAULT_BURN_WINDOWS,
) -> list[dict]:
    """Evaluate objectives over a telemetry series (oldest-first records).

    Per objective: overall good/bad events, the error budget and how much
    of it is consumed, plus burn rates over each window (and "overall").
    A burn rate of 1.0 means errors arrive exactly at the sustainable
    budget pace; above 1.0 the budget runs out before the SLO period does.
    """
    results = []
    last_ts = records[-1].get("ts_unix", 0.0) if records else 0.0
    for objective in objectives:
        per_interval: list[tuple[float, int, int]] = []
        prev: dict | None = None
        for record in records:
            total, bad = _interval_events(record, prev, objective)
            per_interval.append((record.get("ts_unix", 0.0), total, bad))
            prev = record
        total_events = sum(t for _, t, _ in per_interval)
        bad_events = sum(b for _, _, b in per_interval)
        budget = 1.0 - objective.objective
        error_rate = bad_events / total_events if total_events else 0.0
        burn_rates: dict[str, float | None] = {}
        for window_s, label in burn_windows:
            w_total = sum(t for ts, t, _ in per_interval if ts >= last_ts - window_s)
            w_bad = sum(b for ts, _, b in per_interval if ts >= last_ts - window_s)
            burn_rates[label] = (w_bad / w_total) / budget if w_total else None
        burn_rates["overall"] = error_rate / budget if total_events else None
        results.append(
            {
                "name": objective.name,
                "kind": objective.kind,
                "objective": objective.objective,
                "op": objective.op,
                "quantile": objective.quantile if objective.kind == "latency" else None,
                "threshold_ms": objective.threshold_ms,
                "events_total": total_events,
                "events_bad": bad_events,
                "error_rate": error_rate,
                "error_budget": budget,
                "budget_consumed": error_rate / budget if total_events else 0.0,
                "burn_rates": burn_rates,
                "ok": error_rate <= budget,
            }
        )
    return results


def render_slo_report(results: list[dict]) -> str:
    """Human-readable table of :func:`evaluate_slos` output."""
    from repro.obs.report import _table  # local: report imports stay one-way

    if not results:
        return "slo report: no objectives evaluated"
    burn_labels: list[str] = []
    for result in results:
        for label in result["burn_rates"]:
            if label not in burn_labels:
                burn_labels.append(label)
    headers = ["objective", "target", "events", "bad", "budget used"] + [
        f"burn {label}" for label in burn_labels
    ] + ["status"]
    rows = []
    for result in results:
        def burn(label: str) -> str:
            value = result["burn_rates"].get(label)
            return f"{value:.2f}x" if value is not None else "-"

        rows.append(
            [
                result["name"],
                f"{result['objective'] * 100:g}%",
                str(result["events_total"]),
                str(result["events_bad"]),
                f"{result['budget_consumed'] * 100:.1f}%",
            ]
            + [burn(label) for label in burn_labels]
            + ["OK" if result["ok"] else "VIOLATED"]
        )
    return "slo report:\n" + _table(headers, rows)
