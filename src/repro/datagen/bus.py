"""Bus-fleet generator: the synthetic stand-in for section 6.1's bus data.

The paper's first real dataset is 50 buses on 5 routes, traced for 10
weekdays and aligned on 100 snapshots.  The property the prediction
experiment (Fig. 3) depends on is that buses *repeat route-specific
velocity motifs*: they slow into stops, dwell, accelerate out and turn at
fixed corners, day after day.  Dead-reckoning models extrapolate through
those manoeuvres and mis-predict; mined velocity patterns anticipate them.

:class:`BusFleetGenerator` reproduces exactly that structure:

* each route is a closed, non-self-intersecting polyline loop (random
  waypoints sorted by angle around their centroid) with a subset of
  waypoints marked as stops;
* a bus traverses its route by arc length at a noisy cruise speed,
  decelerating towards stops, dwelling, and accelerating away;
* each (bus, day) pair yields one ground-truth path; buses start at
  day- and bus-specific offsets so the snapshots are not trivially
  synchronised across traces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mobility.objects import GroundTruthPath


@dataclass(frozen=True)
class BusRoute:
    """A closed route: loop vertices plus arc-length positions of stops."""

    waypoints: np.ndarray  # (w, 2), implicitly closed (last connects to first)
    stop_arcs: np.ndarray  # arc-length positions of stops, in [0, length)
    route_id: str

    def __post_init__(self) -> None:
        waypoints = np.array(self.waypoints, dtype=float, copy=True)
        if waypoints.ndim != 2 or waypoints.shape[1] != 2 or len(waypoints) < 3:
            raise ValueError("a route needs at least 3 waypoints of shape (w, 2)")
        waypoints.setflags(write=False)
        object.__setattr__(self, "waypoints", waypoints)
        stop_arcs = np.sort(np.array(self.stop_arcs, dtype=float, copy=True))
        stop_arcs.setflags(write=False)
        object.__setattr__(self, "stop_arcs", stop_arcs)

    @property
    def length(self) -> float:
        """Total loop length."""
        return float(self._cumulative()[-1])

    def _cumulative(self) -> np.ndarray:
        closed = np.vstack([self.waypoints, self.waypoints[:1]])
        seg = np.diff(closed, axis=0)
        return np.concatenate([[0.0], np.cumsum(np.hypot(seg[:, 0], seg[:, 1]))])

    def position_at(self, arc: float) -> np.ndarray:
        """Point on the loop at arc-length ``arc`` (wrapped)."""
        cum = self._cumulative()
        total = cum[-1]
        arc = float(arc) % total
        idx = int(np.searchsorted(cum, arc, side="right") - 1)
        idx = min(idx, len(self.waypoints) - 1)
        seg_start = self.waypoints[idx]
        seg_end = self.waypoints[(idx + 1) % len(self.waypoints)]
        seg_len = cum[idx + 1] - cum[idx]
        w = 0.0 if seg_len == 0 else (arc - cum[idx]) / seg_len
        return seg_start + w * (seg_end - seg_start)

    def distance_to_next_stop(self, arc: float) -> float:
        """Arc distance from ``arc`` forward to the nearest stop."""
        if len(self.stop_arcs) == 0:
            return float("inf")
        total = self.length
        arc = float(arc) % total
        ahead = self.stop_arcs[self.stop_arcs >= arc]
        if len(ahead):
            return float(ahead[0] - arc)
        return float(self.stop_arcs[0] + total - arc)


@dataclass(frozen=True)
class BusFleetConfig:
    """Shape and dynamics of the synthetic fleet (paper-scale defaults)."""

    n_routes: int = 5
    buses_per_route: int = 10
    n_days: int = 10
    n_ticks: int = 101  # 101 locations -> 100 velocity snapshots
    n_waypoints: int = 8
    n_stops: int = 6
    cruise_speed: float = 0.02  # route units per tick
    speed_jitter: float = 0.08  # relative sigma of per-tick speed noise
    approach_distance: float = 0.05  # deceleration zone ahead of a stop
    min_speed_factor: float = 0.35  # deceleration floor (fraction of cruise)
    dwell_ticks: int = 2
    start_spread: float = 0.15  # per-bus start offset, fraction of loop length

    def __post_init__(self) -> None:
        if min(self.n_routes, self.buses_per_route, self.n_days) < 1:
            raise ValueError("fleet dimensions must be positive")
        if self.n_ticks < 2:
            raise ValueError("need at least 2 ticks")
        if self.n_waypoints < 3:
            raise ValueError("routes need at least 3 waypoints")
        if not 0 <= self.n_stops <= self.n_waypoints:
            raise ValueError("n_stops must be within [0, n_waypoints]")
        if self.cruise_speed <= 0:
            raise ValueError("cruise_speed must be positive")


class BusFleetGenerator:
    """Generates routes once, then day-by-day ground-truth paths."""

    def __init__(self, config: BusFleetConfig = BusFleetConfig()) -> None:
        self.config = config

    def make_routes(self, rng: np.random.Generator) -> list[BusRoute]:
        """Random star-shaped closed routes in the unit square."""
        routes = []
        for r in range(self.config.n_routes):
            center = rng.uniform(0.3, 0.7, size=2)
            angles = np.sort(rng.uniform(0, 2 * np.pi, self.config.n_waypoints))
            radii = rng.uniform(0.12, 0.28, self.config.n_waypoints)
            waypoints = center + np.column_stack(
                [radii * np.cos(angles), radii * np.sin(angles)]
            )
            # Stops sit at route corners (real bus stops cluster at
            # intersections); this couples the dwell with the turn, so the
            # post-stop direction is predictable from the pre-stop context
            # -- the signal the Fig. 3 experiment exploits.
            route = BusRoute(waypoints, np.empty(0), route_id=f"route-{r}")
            corner_arcs = route._cumulative()[: self.config.n_waypoints]
            stop_arcs = np.sort(
                rng.choice(corner_arcs, size=self.config.n_stops, replace=False)
            )
            routes.append(BusRoute(waypoints, stop_arcs, route_id=f"route-{r}"))
        return routes

    def generate_paths(self, rng: np.random.Generator) -> list[GroundTruthPath]:
        """All (route, bus, day) ground-truth paths -- 500 with defaults."""
        cfg = self.config
        routes = self.make_routes(rng)
        paths: list[GroundTruthPath] = []
        for route in routes:
            total = route.length
            for b in range(cfg.buses_per_route):
                base_offset = rng.uniform(0, cfg.start_spread) * total
                for d in range(cfg.n_days):
                    day_offset = base_offset + rng.normal(0, 0.01) * total
                    paths.append(
                        self._drive(route, day_offset, rng, f"{route.route_id}-bus{b}-day{d}")
                    )
        return paths

    def _drive(
        self, route: BusRoute, start_arc: float, rng: np.random.Generator, object_id: str
    ) -> GroundTruthPath:
        """Simulate one bus-day: arc-length integration with stop dynamics."""
        cfg = self.config
        positions = np.empty((cfg.n_ticks, 2))
        arc = start_arc % route.length
        dwell_left = 0
        # A stop is "consumed" once the bus dwells there; it re-arms after
        # the bus moves past the approach zone.
        for t in range(cfg.n_ticks):
            positions[t] = route.position_at(arc)
            if dwell_left > 0:
                dwell_left -= 1
                continue
            speed = cfg.cruise_speed * max(
                0.1, 1.0 + rng.normal(0, cfg.speed_jitter)
            )
            to_stop = route.distance_to_next_stop(arc)
            if to_stop < cfg.approach_distance:
                # Linear deceleration into the stop, floored so the bus
                # actually arrives instead of crawling asymptotically.
                speed *= max(cfg.min_speed_factor, to_stop / cfg.approach_distance)
            if to_stop <= speed:
                # Arrive exactly at the stop and start dwelling.
                arc = (arc + to_stop + 1e-9) % route.length
                dwell_left = cfg.dwell_ticks
            else:
                arc = (arc + speed) % route.length
        return GroundTruthPath(positions, object_id=object_id, label=route.route_id)
