"""Wildcards, pattern groups and the min-max property in action.

A guided tour of the model-level features from sections 3.4 - 5:

* evaluating patterns with "don't care" (``*``) positions;
* the min-max property (and why Apriori fails for NM);
* pattern-group discovery with different gamma values.

Run:  python examples/wildcard_and_groups.py
"""

import numpy as np

from repro.core.engine import EngineConfig, NMEngine
from repro.core.groups import discover_pattern_groups
from repro.core.measures import minmax_upper_bound
from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.core.trajpattern import TrajPatternMiner
from repro.core.wildcards import GapPattern, nm_gap_pattern
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


def corridor_dataset(seed: int = 3) -> TrajectoryDataset:
    """Objects crossing a corridor, with a variable-speed middle section."""
    rng = np.random.default_rng(seed)
    trajectories = []
    for i in range(15):
        # Deterministic entry and exit, noisy middle.
        xs = np.array([0.1, 0.2, rng.uniform(0.25, 0.45), 0.5, 0.6, 0.7])
        ys = 0.5 + rng.normal(0, 0.01, 6)
        means = np.column_stack([xs, ys])
        trajectories.append(UncertainTrajectory(means, 0.03, object_id=f"o{i}"))
    return TrajectoryDataset(trajectories)


def main() -> None:
    dataset = corridor_dataset()
    grid = dataset.make_grid(0.05)
    engine = NMEngine(dataset, grid, EngineConfig(delta=0.05, min_prob=1e-5))

    entry = grid.locate(0.1, 0.5)
    entry2 = grid.locate(0.2, 0.5)
    exit1 = grid.locate(0.5, 0.5)
    exit2 = grid.locate(0.6, 0.5)

    # -- wildcards: skip the unpredictable middle position ------------------
    strict = TrajectoryPattern((entry, entry2, grid.locate(0.35, 0.5), exit1))
    wild = TrajectoryPattern((entry, entry2, WILDCARD, exit1))
    print("wildcards (section 5):")
    print(f"  strict pattern {strict.cells}: NM = {engine.nm(strict):8.2f}")
    print(f"  wildcard pattern {wild!r}: NM = {engine.nm(wild):8.2f}")
    gap = GapPattern.parse(f"{entry} {entry2} [0-2] {exit1}")
    print(f"  gap pattern '{entry} {entry2} [0-2] {exit1}': "
          f"NM = {nm_gap_pattern(engine, gap):8.2f}")
    print("  the wildcard skips the variable-speed position; the variable\n"
          "  gap additionally absorbs per-object speed differences\n")

    # -- min-max property (Property 1) ---------------------------------------
    left = TrajectoryPattern((entry, entry2))
    right = TrajectoryPattern((exit1, exit2))
    combined = left.concat(right)
    nm_left, nm_right = engine.nm(left), engine.nm(right)
    nm_combined = engine.nm(combined)
    bound = minmax_upper_bound(nm_left, len(left), nm_right, len(right))
    print("min-max property (Property 1):")
    print(f"  NM(left) = {nm_left:.2f}, NM(right) = {nm_right:.2f}")
    print(f"  NM(left + right) = {nm_combined:.2f} <= weighted bound {bound:.2f} "
          f"<= max = {max(nm_left, nm_right):.2f}")
    singular = TrajectoryPattern((grid.locate(0.9, 0.9),))
    extended = TrajectoryPattern((singular.cells[0], entry))
    print("  but Apriori FAILS for NM: "
          f"NM({singular.cells}) = {engine.nm(singular):.2f} < "
          f"NM({extended.cells}) = {engine.nm(extended):.2f} "
          "(a super-pattern outscoring its sub-pattern)\n")

    # -- pattern groups at different gamma -----------------------------------
    result = TrajPatternMiner(engine, k=12, min_length=2, max_length=3).mine()
    print(f"pattern groups over the top-{len(result)} (sections 3.4/4.2):")
    for gamma in (0.0, 0.08, 0.2):
        groups = discover_pattern_groups(result.patterns, grid, gamma)
        sizes = sorted((len(g) for g in groups), reverse=True)
        print(f"  gamma = {gamma:4.2f}: {len(groups):2d} groups, sizes {sizes}")
    print("  larger gamma merges near-duplicate patterns into fewer groups")


if __name__ == "__main__":
    main()
