"""Tests for the road-network generator, random walks and observation."""

import numpy as np
import pytest

from repro.datagen.network import RoadNetworkConfig, RoadNetworkGenerator, _walk_polyline
from repro.datagen.observe import observe_paths
from repro.datagen.random_walk import correlated_random_walks
from repro.mobility.objects import GroundTruthPath, paths_bounding_box


class TestRoadNetwork:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RoadNetworkConfig(grid_side=1)
        with pytest.raises(ValueError):
            RoadNetworkConfig(jitter=0.5)
        with pytest.raises(ValueError):
            RoadNetworkConfig(speed_low=0.0)
        with pytest.raises(ValueError):
            RoadNetworkConfig(speed_low=0.2, speed_high=0.1)

    def test_network_structure(self, rng):
        config = RoadNetworkConfig(grid_side=4)
        graph = RoadNetworkGenerator(config).make_network(rng)
        assert graph.number_of_nodes() == 16
        assert all("pos" in graph.nodes[n] for n in graph.nodes)
        assert all("weight" in graph.edges[e] for e in graph.edges)

    def test_paths_shape(self, rng):
        config = RoadNetworkConfig(n_objects=4, n_ticks=30)
        paths = RoadNetworkGenerator(config).generate_paths(rng)
        assert len(paths) == 4
        assert all(p.positions.shape == (30, 2) for p in paths)

    def test_constant_speed(self, rng):
        config = RoadNetworkConfig(n_objects=2, n_ticks=40)
        paths = RoadNetworkGenerator(config).generate_paths(rng)
        for path in paths:
            v = path.velocities()
            speeds = np.hypot(v[:, 0], v[:, 1])
            # Straight segments move at the per-object speed; corner ticks
            # cut across, so speeds never exceed it (plus rounding).
            assert speeds.max() <= config.speed_high + 1e-9
            assert np.median(speeds) >= config.speed_low - 1e-9

    def test_walk_polyline_exact(self):
        waypoints = np.array([[0, 0], [1, 0], [1, 1]], dtype=float)
        positions = _walk_polyline(waypoints, speed=0.5, n_ticks=4)
        assert np.allclose(positions, [[0, 0], [0.5, 0], [1, 0], [1, 0.5]])

    def test_walk_polyline_too_short(self):
        waypoints = np.array([[0, 0], [1, 0]], dtype=float)
        with pytest.raises(ValueError):
            _walk_polyline(waypoints, speed=1.0, n_ticks=5)


class TestRandomWalks:
    def test_shape_and_step_length(self, rng):
        walks = correlated_random_walks(5, 20, rng, step=0.03)
        assert len(walks) == 5
        for walk in walks:
            v = walk.velocities()
            assert np.allclose(np.hypot(v[:, 0], v[:, 1]), 0.03)

    def test_zero_turn_is_straight(self, rng):
        walk = correlated_random_walks(1, 10, rng, turn_sigma=0.0)[0]
        v = walk.velocities()
        assert np.allclose(v, v[0])

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            correlated_random_walks(0, 10, rng)
        with pytest.raises(ValueError):
            correlated_random_walks(1, 1, rng)
        with pytest.raises(ValueError):
            correlated_random_walks(1, 10, rng, step=-1.0)


class TestObservePaths:
    def test_validation(self, rng):
        paths = correlated_random_walks(2, 10, rng)
        with pytest.raises(ValueError):
            observe_paths(paths, sigma=0.0, rng=rng)
        with pytest.raises(ValueError):
            observe_paths(paths, sigma=0.1)  # perturb without rng

    def test_noiseless_mode(self, rng):
        paths = correlated_random_walks(2, 10, rng)
        ds = observe_paths(paths, sigma=0.05, perturb=False)
        assert np.allclose(ds[0].means, paths[0].positions)
        assert set(ds[0].sigmas) == {0.05}

    def test_perturbation_scale(self, rng):
        paths = correlated_random_walks(1, 2000, rng, step=0.0)
        ds = observe_paths(paths, sigma=0.05, rng=np.random.default_rng(1))
        errors = ds[0].means - paths[0].positions
        assert errors.std() == pytest.approx(0.05, abs=0.005)

    def test_metadata_and_ids(self, rng):
        paths = correlated_random_walks(2, 10, rng)
        ds = observe_paths(paths, sigma=0.05, rng=rng)
        assert ds.metadata["sigma"] == 0.05
        assert ds[0].object_id == "walker-0"


class TestGroundTruthPath:
    def test_validation(self):
        with pytest.raises(ValueError):
            GroundTruthPath(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            GroundTruthPath(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            GroundTruthPath(np.array([[0, 0], [np.inf, 0]]))

    def test_velocities_and_distance(self):
        path = GroundTruthPath(np.array([[0, 0], [3, 4], [3, 4]], dtype=float))
        assert np.allclose(path.velocities(), [[3, 4], [0, 0]])
        assert path.total_distance() == pytest.approx(5.0)

    def test_positions_frozen(self):
        path = GroundTruthPath(np.zeros((3, 2)))
        with pytest.raises(ValueError):
            path.positions[0, 0] = 1.0

    def test_bounding_box_helper(self):
        paths = [
            GroundTruthPath(np.array([[0, 0], [1, 1]], dtype=float)),
            GroundTruthPath(np.array([[-1, 2], [0, 0]], dtype=float)),
        ]
        assert paths_bounding_box(paths) == (-1.0, 0.0, 1.0, 2.0)

    def test_bounding_box_empty(self):
        with pytest.raises(ValueError):
            paths_bounding_box([])
