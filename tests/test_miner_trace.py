"""Tests for the miner's per-iteration introspection trace."""

import math

import pytest

from repro.core.trajpattern import TrajPatternMiner


@pytest.fixture
def traced(small_engine):
    return TrajPatternMiner(small_engine, k=8, max_length=3).mine()


class TestIterationTrace:
    def test_one_entry_per_iteration(self, traced):
        assert len(traced.stats.trace) == traced.stats.iterations

    def test_iterations_numbered(self, traced):
        assert [t.iteration for t in traced.stats.trace] == list(
            range(1, traced.stats.iterations + 1)
        )

    def test_omega_non_decreasing(self, traced):
        omegas = [t.omega for t in traced.stats.trace]
        assert all(b >= a for a, b in zip(omegas, omegas[1:]))
        assert all(math.isfinite(w) for w in omegas)

    def test_final_omega_matches_result(self, traced):
        assert traced.stats.trace[-1].omega == traced.omega

    def test_per_iteration_counts_sum_to_totals(self, traced, small_engine):
        # Seeding evaluates every singular pattern before iteration 1.
        seeded = len(small_engine.active_cells)
        per_iteration = sum(t.candidates_evaluated for t in traced.stats.trace)
        assert seeded + per_iteration == traced.stats.candidates_evaluated
        assert (
            sum(t.patterns_pruned for t in traced.stats.trace)
            == traced.stats.patterns_pruned
        )

    def test_high_set_never_below_k_when_possible(self, traced):
        # After omega settles, the high set holds at least k members
        # (ties may push it above).
        assert traced.stats.trace[-1].n_high >= len(traced.patterns)

    def test_book_sizes_reported(self, traced):
        last = traced.stats.trace[-1]
        assert last.n_exact + last.n_bounded == traced.stats.final_q_size
