"""Process-wide metrics registry: counters, gauges and ns-precision timers.

Zero-dependency instrumentation for the mining stack.  Three instrument
kinds cover everything the engine, miner and parallel layers need:

* :class:`Counter` -- monotonically increasing event counts (cache hits,
  evaluations, chunks scanned);
* :class:`Gauge` -- last-write-wins scalars (shard skew, frontier size);
* :class:`Histogram` -- streaming summaries (count / total / min / max /
  last) of observed values; :meth:`MetricsRegistry.timer` feeds one with
  ``time.perf_counter_ns`` durations, so timing data keeps nanosecond
  precision without storing individual samples;
* :class:`QuantileHistogram` -- a :class:`Histogram` that additionally
  keeps log-scale bucket counts so snapshots can report approximate
  p50/p95/p99.  The serving layer (:mod:`repro.serve`) uses these for its
  per-endpoint latency distributions (``serve.<op>.latency_ns``), where a
  mean alone hides exactly the tail that overload protection is about.

Disabled fast path
------------------
A disabled registry hands out the shared no-op instruments
(:data:`NULL_COUNTER` and friends) whose mutators do nothing, and
:meth:`MetricsRegistry.timer` returns a no-op context manager that never
reads the clock.  Hot loops therefore pay one attribute check per
instrumentation point when observability is off -- the default.  The
process-global registry (:func:`get_registry`) starts disabled; the CLI
enables it when ``--metrics-out`` / ``--manifest-out`` are given, and
components that need always-on bookkeeping (the miner's
:class:`~repro.core.trajpattern.MinerStats`) own a private enabled
registry instead.
"""

from __future__ import annotations

import math
import time
from typing import Iterator

NS_PER_S = 1_000_000_000


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-write-wins scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of observed values (no per-sample storage).

    ``unit`` is a label carried into snapshots so consumers can render
    values correctly; timers use ``"ns"``.
    """

    __slots__ = ("name", "unit", "count", "total", "min", "max", "last")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.last = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.last = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def total_seconds(self) -> float:
        """``total`` converted to seconds for ``ns``-unit histograms."""
        return self.total / NS_PER_S if self.unit == "ns" else self.total


#: Geometric bucket growth factor of :class:`QuantileHistogram`: each
#: bucket spans a 1.2x value range, bounding the quantile estimation error
#: to about +/-10% while keeping the bucket table tiny.
_QUANTILE_BUCKET_BASE = 1.2
_LOG_BUCKET_BASE = math.log(_QUANTILE_BUCKET_BASE)


class QuantileHistogram(Histogram):
    """Histogram with log-scale buckets for approximate quantiles.

    Values are counted into geometric buckets (factor
    :data:`_QUANTILE_BUCKET_BASE` wide); :meth:`quantile` walks the
    cumulative counts and returns the geometric midpoint of the bucket the
    requested rank falls in.  Memory stays bounded (one int per occupied
    bucket) no matter how many values are observed, which is what a
    long-running server needs.  Non-positive values land in a dedicated
    underflow bucket reported as 0.
    """

    __slots__ = ("_buckets",)

    def __init__(self, name: str, unit: str = "") -> None:
        super().__init__(name, unit)
        self._buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        super().observe(value)
        value = float(value)
        if value > 0.0:
            bucket = int(math.floor(math.log(value) / _LOG_BUCKET_BASE))
        else:
            bucket = -(1 << 62)  # underflow: zero / negative observations
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (``0 < q <= 1``) of everything observed."""
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        if self.count == 0:
            return 0.0
        rank = math.ceil(q * self.count)
        seen = 0
        for bucket in sorted(self._buckets):
            seen += self._buckets[bucket]
            if seen >= rank:
                if bucket <= -(1 << 62):
                    return 0.0
                # Geometric midpoint of [base^b, base^(b+1)), clamped to the
                # exactly-tracked extremes.
                mid = math.exp((bucket + 0.5) * _LOG_BUCKET_BASE)
                return min(max(mid, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count by construction

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        """JSON-ready ``{"p50": ..., ...}`` view of several quantiles."""
        return {f"p{round(q * 100)}": self.quantile(q) for q in qs}

    def merge_buckets(self, buckets: dict) -> None:
        """Fold another quantile histogram's bucket counts into this one."""
        for bucket, count in buckets.items():
            bucket = int(bucket)
            self._buckets[bucket] = self._buckets.get(bucket, 0) + int(count)


class _NullInstrument:
    """Shared do-nothing stand-in handed out by disabled registries."""

    __slots__ = ()
    name = ""
    unit = ""
    value = 0
    count = 0
    total = 0.0
    min = float("inf")
    max = float("-inf")
    last = 0.0
    mean = 0.0
    total_seconds = 0.0

    def inc(self, n: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def quantiles(self, qs: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        return {f"p{round(q * 100)}": 0.0 for q in qs}

    def merge_buckets(self, buckets: dict) -> None:
        pass


class _NullTimer:
    """No-op timing context: never touches the clock."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NULL_COUNTER = _NullInstrument()
NULL_GAUGE = _NullInstrument()
NULL_HISTOGRAM = _NullInstrument()
_NULL_TIMER = _NullTimer()


class _Timer:
    """Context manager observing a ``perf_counter_ns`` duration."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info) -> None:
        self._histogram.observe(time.perf_counter_ns() - self._start)


class MetricsRegistry:
    """Named instrument store with an enabled/disabled fast path.

    Instruments are created on first access and survive until
    :meth:`reset`.  While disabled, accessors return the shared no-op
    instruments and never create state, so instrumented code needs no
    ``if`` of its own.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- configuration ---------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop every instrument (enabled state is unchanged)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    # -- instruments -----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, unit: str = "") -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, unit)
        return instrument

    def quantile_histogram(self, name: str, unit: str = "") -> QuantileHistogram:
        """A histogram that additionally tracks approximate quantiles.

        Shares the ``_histograms`` namespace with :meth:`histogram`; the
        first accessor to create an instrument decides its kind, so use
        one accessor consistently per name.
        """
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        instrument = self._histograms.get(name)
        if not isinstance(instrument, QuantileHistogram):
            instrument = self._histograms[name] = QuantileHistogram(name, unit)
        return instrument

    def timer(self, name: str):
        """Time a ``with`` block into the ``ns``-unit histogram ``name``."""
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self.histogram(name, unit="ns"))

    # -- export / aggregation -------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready view of every instrument."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: self._histogram_snapshot(h)
                for n, h in sorted(self._histograms.items())
            },
        }

    @staticmethod
    def _histogram_snapshot(h: Histogram) -> dict:
        data = {
            "count": h.count,
            "total": h.total,
            "min": h.min if h.count else 0.0,
            "max": h.max if h.count else 0.0,
            "mean": h.mean,
            "last": h.last,
            "unit": h.unit,
        }
        if isinstance(h, QuantileHistogram):
            data["quantiles"] = h.quantiles()
            data["buckets"] = {str(b): c for b, c in sorted(h._buckets.items())}
        return data

    def merge_snapshot(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters and histogram totals add, histogram min/max widen, gauges
        take the incoming value.  Used to aggregate shard-worker and
        per-run registries into the process-global one.  No-op while
        disabled.
        """
        if not self.enabled:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(int(value))
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            if "buckets" in data:
                histogram = self.quantile_histogram(name, unit=data.get("unit", ""))
                histogram.merge_buckets(data["buckets"])
            else:
                histogram = self.histogram(name, unit=data.get("unit", ""))
            count = int(data.get("count", 0))
            if count == 0:
                continue
            histogram.count += count
            histogram.total += float(data.get("total", 0.0))
            histogram.min = min(histogram.min, float(data.get("min", 0.0)))
            histogram.max = max(histogram.max, float(data.get("max", 0.0)))
            histogram.last = float(data.get("last", 0.0))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's current contents into this one."""
        self.merge_snapshot(other.snapshot())


#: Process-global registry; disabled until something opts in.
_REGISTRY = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The process-global registry (shared by engine, miner and CLI)."""
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str, unit: str = "") -> Histogram:
    return _REGISTRY.histogram(name, unit)


def quantile_histogram(name: str, unit: str = "") -> QuantileHistogram:
    return _REGISTRY.quantile_histogram(name, unit)


def timer(name: str):
    return _REGISTRY.timer(name)


def instruments(registry: MetricsRegistry) -> Iterator[str]:
    """Names of every instrument in ``registry`` (testing helper)."""
    yield from registry._counters
    yield from registry._gauges
    yield from registry._histograms
