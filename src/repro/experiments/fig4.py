"""Fig. 4: scalability and sensitivity sweeps (section 6.2).

Five sweeps over ZebraNet-style synthetic data:

* (a) runtime vs the number of patterns ``k``;
* (b) runtime vs the number of trajectories ``S``;
* (c) runtime vs the average trajectory length ``L``;
* (d) runtime vs the number of grids ``G``;
* (e) number of discovered pattern groups vs the indifference ``delta``.

For (a)-(d) both the TrajPattern algorithm and the PB baseline are timed;
the paper's claims are about growth *shapes*: TrajPattern grows slowly
(linear in S, L and G; quadratic-ish in k) while PB grows super-linearly to
exponentially.  For (e) the group count decreases as ``delta`` grows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.pb import PBMiner
from repro.core.engine import EngineConfig, NMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.experiments.datasets import grid_with_cells, zebranet_dataset


@dataclass(frozen=True)
class Fig4Config:
    """Baseline workload; each sweep varies one dimension around it."""

    k: int = 10
    n_trajectories: int = 50
    n_ticks: int = 60
    sigma: float = 0.01
    target_cells: int = 4096
    min_prob: float = 1e-4
    pb_max_length: int = 3
    trajpattern_max_length: int | None = None
    seed: int = 7

    def make_engine(
        self,
        n_trajectories: int | None = None,
        n_ticks: int | None = None,
        target_cells: int | None = None,
        delta: float | None = None,
    ) -> NMEngine:
        """Engine for one sweep point (overridden dimension(s) only)."""
        dataset = zebranet_dataset(
            n_trajectories=n_trajectories or self.n_trajectories,
            n_ticks=n_ticks or self.n_ticks,
            sigma=self.sigma,
            seed=self.seed,
        )
        grid = grid_with_cells(dataset, target_cells or self.target_cells)
        cell = min(grid.gx, grid.gy)
        config = EngineConfig(
            delta=delta if delta is not None else cell,
            min_prob=self.min_prob,
        )
        return NMEngine(dataset, grid, config)


@dataclass
class SweepPoint:
    """One x-position of a Fig. 4 panel."""

    x: float
    trajpattern_s: float
    pb_s: float | None = None
    extra: dict = field(default_factory=dict)


@dataclass
class SweepResult:
    """A full panel: the sweep axis name and its measured series."""

    name: str
    x_label: str
    points: list[SweepPoint] = field(default_factory=list)
    paper_claim: str = ""

    def xs(self) -> list[float]:
        return [p.x for p in self.points]

    def trajpattern_series(self) -> list[float]:
        return [p.trajpattern_s for p in self.points]

    def pb_series(self) -> list[float]:
        return [p.pb_s for p in self.points if p.pb_s is not None]

    def render(self) -> str:
        lines = [
            f"{self.name} ({self.paper_claim})",
            f"{self.x_label:>12}{'TrajPattern (s)':>18}{'PB (s)':>12}",
        ]
        for p in self.points:
            pb = f"{p.pb_s:>12.3f}" if p.pb_s is not None else f"{'-':>12}"
            extra = f"   {p.extra}" if p.extra else ""
            lines.append(f"{p.x:>12g}{p.trajpattern_s:>18.3f}{pb}{extra}")
        return "\n".join(lines)


def _time_trajpattern(engine: NMEngine, k: int, max_length: int | None) -> float:
    t0 = time.perf_counter()
    TrajPatternMiner(engine, k=k, max_length=max_length).mine()
    return time.perf_counter() - t0


def _time_pb(engine: NMEngine, k: int, max_length: int) -> float:
    t0 = time.perf_counter()
    PBMiner(engine, k=k, max_length=max_length).mine()
    return time.perf_counter() - t0


def run_fig4a_k(
    config: Fig4Config = Fig4Config(),
    ks: tuple[int, ...] = (5, 10, 20, 40),
    with_pb: bool = True,
) -> SweepResult:
    """Panel (a): runtime vs the number of patterns wanted ``k``."""
    result = SweepResult(
        name="Fig. 4(a): runtime vs k",
        x_label="k",
        paper_claim="both superlinear; TrajPattern grows much slower than PB",
    )
    engine = config.make_engine()
    for k in ks:
        tp = _time_trajpattern(engine, k, config.trajpattern_max_length)
        pb = _time_pb(engine, k, config.pb_max_length) if with_pb else None
        result.points.append(SweepPoint(x=k, trajpattern_s=tp, pb_s=pb))
    return result


def run_fig4b_trajectories(
    config: Fig4Config = Fig4Config(),
    sizes: tuple[int, ...] = (25, 50, 100, 200),
    with_pb: bool = True,
) -> SweepResult:
    """Panel (b): runtime vs the number of trajectories ``S``."""
    result = SweepResult(
        name="Fig. 4(b): runtime vs S",
        x_label="S",
        paper_claim="TrajPattern linear in S; PB super-linear",
    )
    for s in sizes:
        engine = config.make_engine(n_trajectories=s)
        tp = _time_trajpattern(engine, config.k, config.trajpattern_max_length)
        pb = _time_pb(engine, config.k, config.pb_max_length) if with_pb else None
        result.points.append(SweepPoint(x=s, trajpattern_s=tp, pb_s=pb))
    return result


def run_fig4c_length(
    config: Fig4Config = Fig4Config(),
    lengths: tuple[int, ...] = (30, 60, 120, 240),
    with_pb: bool = True,
) -> SweepResult:
    """Panel (c): runtime vs the average trajectory length ``L``."""
    result = SweepResult(
        name="Fig. 4(c): runtime vs L",
        x_label="L",
        paper_claim="both linear in L (data-scan bound)",
    )
    for length in lengths:
        engine = config.make_engine(n_ticks=length)
        tp = _time_trajpattern(engine, config.k, config.trajpattern_max_length)
        pb = _time_pb(engine, config.k, config.pb_max_length) if with_pb else None
        result.points.append(SweepPoint(x=length, trajpattern_s=tp, pb_s=pb))
    return result


def run_fig4d_grids(
    config: Fig4Config = Fig4Config(),
    grid_counts: tuple[int, ...] = (1024, 4096, 16384, 65536),
    with_pb: bool = True,
) -> SweepResult:
    """Panel (d): runtime vs the number of grids ``G``."""
    result = SweepResult(
        name="Fig. 4(d): runtime vs G",
        x_label="G",
        paper_claim="TrajPattern linear in G; PB exponential",
    )
    for g in grid_counts:
        engine = config.make_engine(target_cells=g)
        tp = _time_trajpattern(engine, config.k, config.trajpattern_max_length)
        pb = _time_pb(engine, config.k, config.pb_max_length) if with_pb else None
        result.points.append(
            SweepPoint(
                x=g,
                trajpattern_s=tp,
                pb_s=pb,
                extra={"active_cells": len(engine.active_cells)},
            )
        )
    return result


def run_fig4e_delta(
    config: Fig4Config = Fig4Config(),
    delta_factors: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
    gamma_sigmas: float = 3.0,
    target_cells: int | None = None,
) -> SweepResult:
    """Panel (e): number of pattern groups vs the indifference ``delta``.

    ``delta`` is swept as a multiple of the grid cell size; larger deltas
    make neighbouring cells indistinguishable, so more of the top-k are
    similar and fewer groups remain.

    Grouping only has room to act when the similarity radius ``gamma``
    (3 sigma per section 5) spans several grid cells -- the paper's regime,
    where cells are far smaller than the tracking error.  The sweep
    therefore defaults to a finer grid than the runtime panels
    (``target_cells`` >= 16384).
    """
    result = SweepResult(
        name="Fig. 4(e): pattern groups vs delta",
        x_label="delta/cell",
        paper_claim="group count decreases as delta grows",
    )
    if target_cells is None:
        target_cells = max(config.target_cells, 16384)
    base_engine = config.make_engine(target_cells=target_cells)
    cell = min(base_engine.grid.gx, base_engine.grid.gy)
    for factor in delta_factors:
        engine = config.make_engine(delta=factor * cell, target_cells=target_cells)
        t0 = time.perf_counter()
        mined = TrajPatternMiner(
            engine, k=config.k, max_length=config.trajpattern_max_length
        ).mine(discover_groups=True, gamma=gamma_sigmas * config.sigma)
        elapsed = time.perf_counter() - t0
        result.points.append(
            SweepPoint(
                x=factor,
                trajpattern_s=elapsed,
                extra={"n_groups": len(mined.groups or [])},
            )
        )
    return result
