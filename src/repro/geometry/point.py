"""Immutable 2-D points with the small amount of vector algebra we need.

Performance-critical code paths in the library operate on bulk ``numpy``
arrays of shape ``(n, 2)``; :class:`Point` exists for the *edges* of the
system -- configuration, tests, examples and user-facing APIs -- where an
explicit, readable value type beats a bare tuple.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator


@dataclass(frozen=True, slots=True)
class Point:
    """A 2-D point (or vector -- the library uses it for velocities too).

    Supports ``+``, ``-``, scalar ``*`` / ``/``, iteration/unpacking and
    Euclidean geometry helpers.

    >>> Point(1.0, 2.0) + Point(0.5, 0.5)
    Point(x=1.5, y=2.5)
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def dot(self, other: "Point") -> float:
        """Dot product with another point/vector."""
        return self.x * other.x + self.y * other.y

    def norm(self) -> float:
        """Euclidean length of the vector."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)`` -- handy for numpy interop."""
        return (self.x, self.y)


def distance(a: Point | tuple[float, float], b: Point | tuple[float, float]) -> float:
    """Euclidean distance between two points given as ``Point`` or tuples."""
    ax, ay = a
    bx, by = b
    return math.hypot(ax - bx, ay - by)
