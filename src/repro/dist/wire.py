"""The distributed-mining wire protocol: worker ops over NDJSON/TCP.

This is the :mod:`repro.core.parallel` worker op set promoted onto the
same newline-delimited-JSON framing :mod:`repro.serve.protocol` already
proves out.  One request per line, one response per line, correlated by
``id``; a request may address several store spans at once and the
response carries one result per span, in request order.

Exactness over the wire
-----------------------
Every numeric payload is float64 and travels as JSON numbers.  Python's
``json`` emits ``repr``-shortest floats and parses them back to the same
IEEE-754 double, so a socket hop is *bit-exact* -- the distributed merge
inherits the 0-ULP contract of the in-process one.  Integer-keyed tables
(singular tables, extension tables) are encoded as ``[cell, value]``
pair lists because JSON object keys are strings.

Handshake
---------
``hello`` pins :data:`DIST_PROTOCOL_VERSION`, names the coordinator's
store identity (``store_hash``), grid, engine config and Prob-kernel tag.
The worker refuses mismatches with a structured ``bad_request``: a
version skew names both versions, a store mismatch names both hashes, a
kernel-tag skew names both tags -- each would otherwise break
bit-identity *silently*, which is the one failure mode this protocol is
designed never to have.

Requests
--------
``{"op": ..., "id": ...}`` plus per-op fields; span-scoped ops carry
``"spans": [[lo, hi], ...]`` (trajectory ranges previously opened):

* ``hello`` -- ``version``, ``store_hash``, ``grid``, ``config``,
  ``kernel_tag``, optional ``trace`` + ``metrics``;
* ``open`` -- build one engine per span (the worker mmaps its local
  ``.tjc`` copy; no dataset bytes ever travel);
* ``nm_batch`` / ``match_batch`` -- ``patterns`` (cell-id lists);
* ``nm_per_traj`` / ``match_per_traj`` -- ``cells``;
* ``singular_nm`` / ``singular_match`` -- no fields;
* ``ext_tables`` -- ``patterns``;
* ``gap_nm`` -- ``pattern`` (see :func:`gap_pattern_to_wire`);
* ``best_window`` -- ``cells`` + ``traj`` (span-local index; single span);
* ``stats`` / ``obs_snapshot`` / ``obs_drain`` -- no fields;
* ``ping`` -- heartbeat, answered immediately;
* ``close`` -- drop the session's engines.
"""

from __future__ import annotations

from dataclasses import fields as dataclass_fields
from dataclasses import replace
from typing import Any, Sequence

import numpy as np

from repro.core.engine import EngineConfig, ExtensionTables
from repro.core.wildcards import Gap, GapPattern
from repro.core.pattern import TrajectoryPattern
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.serve.protocol import (  # noqa: F401  (re-exported framing)
    MAX_LINE_BYTES,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)
from repro.uncertainty.gaussian import ProbModel

#: Version of the worker wire protocol.  Bumped on any change to op
#: semantics or codecs; coordinator and worker refuse to talk across
#: versions (bit-identity cannot be audited across protocol revisions).
DIST_PROTOCOL_VERSION = 1

#: Every op a worker pool answers.  Advertised in the ``hello`` reply as
#: the capability list, so a newer coordinator can detect a worker that
#: predates an op instead of discovering it via ``unknown_op`` mid-mine.
DIST_OPS = (
    "hello",
    "open",
    "ping",
    "nm_batch",
    "match_batch",
    "nm_per_traj",
    "match_per_traj",
    "singular_nm",
    "singular_match",
    "ext_tables",
    "gap_nm",
    "best_window",
    "stats",
    "obs_snapshot",
    "obs_drain",
    "close",
)


# -- geometry / config codecs -------------------------------------------------------


def grid_to_wire(grid: Grid) -> dict:
    """JSON-safe grid identity (bbox corners + cell counts)."""
    return {
        "min_x": grid.bbox.min_x,
        "min_y": grid.bbox.min_y,
        "max_x": grid.bbox.max_x,
        "max_y": grid.bbox.max_y,
        "nx": grid.nx,
        "ny": grid.ny,
    }


def grid_from_wire(obj: Any) -> Grid:
    if not isinstance(obj, dict):
        raise ProtocolError("grid must be an object")
    try:
        bbox = BoundingBox(
            float(obj["min_x"]),
            float(obj["min_y"]),
            float(obj["max_x"]),
            float(obj["max_y"]),
        )
        return Grid(bbox, int(obj["nx"]), int(obj["ny"]))
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed grid: {exc}") from exc


def config_to_wire(config: EngineConfig) -> dict:
    """JSON-safe engine config for shipping to a worker pool.

    Worker-irrelevant fields are normalised away first (a pool is a plain
    single-process engine: no nested jobs, no cache files, no file-writing
    observability of its own), so two coordinators with different local
    paths ship identical configs.
    """
    shipped = replace(
        config,
        jobs=1,
        cache_dir=None,
        store_path=None,
        trace_out=None,
        metrics_out=None,
        log_level=None,
    )
    out: dict = {}
    for field in dataclass_fields(EngineConfig):
        value = getattr(shipped, field.name)
        if isinstance(value, ProbModel):
            value = value.value
        out[field.name] = value
    return out


def config_from_wire(obj: Any) -> EngineConfig:
    if not isinstance(obj, dict):
        raise ProtocolError("config must be an object")
    known = {f.name for f in dataclass_fields(EngineConfig)}
    unknown = set(obj) - known
    if unknown:
        raise ProtocolError(f"unknown config fields: {sorted(unknown)}")
    kwargs = dict(obj)
    try:
        if "prob_model" in kwargs:
            kwargs["prob_model"] = ProbModel(kwargs["prob_model"])
        return EngineConfig(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed config: {exc}") from exc


# -- span / pattern codecs ----------------------------------------------------------


def spans_to_wire(spans: Sequence[tuple[int, int]]) -> list[list[int]]:
    return [[int(lo), int(hi)] for lo, hi in spans]


def spans_from_wire(obj: Any) -> list[tuple[int, int]]:
    if not isinstance(obj, list) or not obj:
        raise ProtocolError("spans must be a non-empty list of [lo, hi]")
    out: list[tuple[int, int]] = []
    for item in obj:
        if (
            not isinstance(item, list)
            or len(item) != 2
            or not all(isinstance(v, int) and not isinstance(v, bool) for v in item)
            or item[0] < 0
            or item[1] <= item[0]
        ):
            raise ProtocolError(f"malformed span {item!r}")
        out.append((item[0], item[1]))
    return out


def patterns_to_wire(cells_list: Sequence[Sequence[int]]) -> list[list[int]]:
    return [[int(c) for c in cells] for cells in cells_list]


def patterns_from_wire(obj: Any) -> list[tuple[int, ...]]:
    if not isinstance(obj, list):
        raise ProtocolError("patterns must be a list of cell-id lists")
    out: list[tuple[int, ...]] = []
    for i, cells in enumerate(obj):
        if not isinstance(cells, list) or not cells:
            raise ProtocolError(f"patterns[{i}] must be a non-empty list")
        if not all(isinstance(c, int) and not isinstance(c, bool) for c in cells):
            raise ProtocolError(f"patterns[{i}]: cell ids must be integers")
        out.append(tuple(cells))
    return out


def gap_pattern_to_wire(pattern: GapPattern) -> dict:
    return {
        "segments": [list(seg.cells) for seg in pattern.segments],
        "gaps": [[g.min_length, g.max_length] for g in pattern.gaps],
    }


def gap_pattern_from_wire(obj: Any) -> GapPattern:
    if not isinstance(obj, dict):
        raise ProtocolError("pattern must be an object")
    try:
        segments = tuple(
            TrajectoryPattern(tuple(int(c) for c in seg))
            for seg in obj["segments"]
        )
        gaps = tuple(Gap(int(lo), int(hi)) for lo, hi in obj["gaps"])
        return GapPattern(segments, gaps)
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed gap pattern: {exc}") from exc


# -- result codecs ------------------------------------------------------------------
#
# Int-keyed float tables travel as [cell, value] pair lists (JSON object
# keys are strings); ndarray results travel as plain float lists.  Both
# directions preserve every bit: values are float64 end to end.


def array_to_wire(values: np.ndarray) -> list[float]:
    return [float(v) for v in np.asarray(values, dtype=np.float64)]


def array_from_wire(obj: Any) -> np.ndarray:
    if not isinstance(obj, list):
        raise ProtocolError("expected a list of numbers")
    return np.asarray(obj, dtype=np.float64)


def table_to_wire(table: dict[int, float]) -> list[list]:
    return [[int(cell), float(value)] for cell, value in sorted(table.items())]


def table_from_wire(obj: Any) -> dict[int, float]:
    if not isinstance(obj, list):
        raise ProtocolError("expected a [cell, value] pair list")
    try:
        return {int(cell): float(value) for cell, value in obj}
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed table: {exc}") from exc


def ext_tables_to_wire(tables: ExtensionTables) -> dict:
    return {
        "nm": table_to_wire(tables.nm_by_cell),
        "match": table_to_wire(tables.match_by_cell),
        "nm_base": float(tables.nm_base_total),
        "match_base": float(tables.match_base_total),
    }


def ext_tables_from_wire(obj: Any) -> ExtensionTables:
    if not isinstance(obj, dict):
        raise ProtocolError("extension tables must be an object")
    try:
        return ExtensionTables(
            nm_by_cell=table_from_wire(obj["nm"]),
            match_by_cell=table_from_wire(obj["match"]),
            nm_base_total=float(obj["nm_base"]),
            match_base_total=float(obj["match_base"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed extension tables: {exc}") from exc


def best_window_to_wire(result: tuple[int, float] | None) -> list | None:
    if result is None:
        return None
    start, nm = result
    return [int(start), float(nm)]


def best_window_from_wire(obj: Any) -> tuple[int, float] | None:
    if obj is None:
        return None
    if not isinstance(obj, list) or len(obj) != 2:
        raise ProtocolError("best_window result must be [start, nm] or null")
    return int(obj[0]), float(obj[1])


# -- handshake helpers --------------------------------------------------------------


def check_dist_version(request: dict) -> None:
    """Refuse a coordinator speaking a different protocol revision."""
    version = request.get("version")
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProtocolError("hello must carry an integer version")
    if version != DIST_PROTOCOL_VERSION:
        raise ProtocolError(
            f"dist protocol version mismatch: coordinator v{version}, "
            f"worker v{DIST_PROTOCOL_VERSION}",
            client_version=version,
            server_version=DIST_PROTOCOL_VERSION,
        )
