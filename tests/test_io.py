"""Unit tests for repro.trajectory.io (JSONL / CSV round trips)."""

import numpy as np
import pytest

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.io import (
    load_dataset_csv,
    load_dataset_jsonl,
    save_dataset_csv,
    save_dataset_jsonl,
)
from repro.trajectory.trajectory import UncertainTrajectory


@pytest.fixture
def dataset(rng):
    trajectories = [
        UncertainTrajectory(
            rng.normal(size=(5 + i, 2)),
            rng.uniform(0.05, 0.2, 5 + i),
            object_id=f"obj-{i}",
            start_time=float(i),
            dt=0.5,
        )
        for i in range(4)
    ]
    return TrajectoryDataset(trajectories, metadata={"kind": "velocity", "seed": 1})


class TestJsonl:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        save_dataset_jsonl(dataset, path)
        loaded = load_dataset_jsonl(path)
        assert len(loaded) == len(dataset)
        assert loaded.metadata == dataset.metadata
        for a, b in zip(dataset, loaded):
            assert a == b
            assert a.start_time == b.start_time
            assert a.dt == b.dt

    def test_empty_dataset_roundtrip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_dataset_jsonl(TrajectoryDataset([]), path)
        assert len(load_dataset_jsonl(path)) == 0

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "nothing.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty file"):
            load_dataset_jsonl(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a repro trajectory file"):
            load_dataset_jsonl(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "repro.trajectory", "version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            load_dataset_jsonl(path)

    def test_corrupt_record_rejected_with_line_number(self, tmp_path, dataset):
        path = tmp_path / "corrupt.jsonl"
        save_dataset_jsonl(dataset, path)
        lines = path.read_text().splitlines()
        lines[2] = '{"means": [[0, 0]], "sigmas": [-1.0]}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=":3:"):
            load_dataset_jsonl(path)


class TestCsv:
    def test_roundtrip_values(self, dataset, tmp_path):
        path = tmp_path / "data.csv"
        save_dataset_csv(dataset, path)
        loaded = load_dataset_csv(path)
        assert len(loaded) == len(dataset)
        for a, b in zip(dataset, loaded):
            assert np.allclose(a.means, b.means)
            assert np.allclose(a.sigmas, b.sigmas)
            assert a.object_id == b.object_id

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="expected columns"):
            load_dataset_csv(path)

    def test_bad_row_rejected_with_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "object_id,snapshot,x,y,sigma\no,0,0.0,0.0,0.1\no,oops,1.0,1.0,0.1\n"
        )
        with pytest.raises(ValueError, match=":3:"):
            load_dataset_csv(path)

    def test_rows_sorted_by_snapshot(self, tmp_path):
        path = tmp_path / "shuffled.csv"
        path.write_text(
            "object_id,snapshot,x,y,sigma\n"
            "o,1,1.0,1.0,0.1\n"
            "o,0,0.0,0.0,0.1\n"
        )
        loaded = load_dataset_csv(path)
        assert np.allclose(loaded[0].means, [[0, 0], [1, 1]])

    def test_anonymous_trajectories_get_ids(self, tmp_path, rng):
        ds = TrajectoryDataset([UncertainTrajectory(rng.normal(size=(3, 2)), 0.1)])
        path = tmp_path / "anon.csv"
        save_dataset_csv(ds, path)
        loaded = load_dataset_csv(path)
        assert loaded[0].object_id == "object-0"
