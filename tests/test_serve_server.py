"""Integration tests for the serving layer: real sockets, real engine.

No pytest-asyncio in the environment, so every test drives its own event
loop with ``asyncio.run`` from a plain sync function.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.trajpattern import MinerStats, MiningResult
from repro.core.pattern import TrajectoryPattern
from repro.core.results_io import save_mining_result
from repro.experiments.datasets import zebranet_dataset
from repro.serve import (
    PatternServer,
    ServeConfig,
    ServingSnapshot,
    SnapshotStore,
    protocol,
)
from repro.serve.batcher import OverloadedError
from repro.serve.loadgen import LoadgenConfig, run_loadgen
from repro.trajectory.io import save_dataset_jsonl


@pytest.fixture(scope="module")
def dataset():
    return zebranet_dataset(n_trajectories=15, n_ticks=25, seed=11)


@pytest.fixture(scope="module")
def snapshot(dataset):
    return ServingSnapshot.from_dataset(dataset, version="v-base")


class _Client:
    """Minimal synchronous-feeling NDJSON client for the tests."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    @classmethod
    async def connect(cls, host, port):
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_LINE_BYTES
        )
        return cls(reader, writer)

    async def request(self, payload: dict) -> dict:
        self.writer.write(protocol.encode(payload))
        await self.writer.drain()
        return protocol.decode_line(await self.reader.readline())

    async def send(self, payload: dict) -> None:
        self.writer.write(protocol.encode(payload))
        await self.writer.drain()

    async def recv(self) -> dict:
        return protocol.decode_line(await self.reader.readline())

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except ConnectionError:
            pass


def _serve(snapshot, config=None):
    """(server, store) pair on an OS-assigned port; caller must stop()."""
    store = SnapshotStore(snapshot)
    return PatternServer(store, config or ServeConfig()), store


def test_score_matches_direct_engine_evaluation(snapshot):
    cells = snapshot.engine.active_cells
    patterns = [
        [cells[0], cells[0], cells[1]],
        [cells[2], cells[3]],
        [cells[0]],
    ]
    expected_nm = snapshot.engine.nm_batch(
        [TrajectoryPattern(tuple(p)) for p in patterns]
    )
    expected_match = snapshot.engine.match_batch(
        [TrajectoryPattern(tuple(p)) for p in patterns]
    )

    async def scenario():
        server, _ = _serve(snapshot)
        host, port = await server.start()
        client = await _Client.connect(host, port)
        nm = await client.request(
            {"op": "score", "id": 1, "patterns": patterns}
        )
        match = await client.request(
            {"op": "score", "id": 2, "patterns": patterns, "measure": "match"}
        )
        await client.close()
        await server.stop()
        return nm, match

    nm, match = asyncio.run(scenario())
    assert nm["ok"] and nm["id"] == 1 and nm["measure"] == "nm"
    assert nm["version"] == "v-base"
    np.testing.assert_allclose(nm["values"], expected_nm, rtol=1e-12)
    np.testing.assert_allclose(match["values"], expected_match, rtol=1e-12)


def test_pipelined_scores_coalesce_into_batches(snapshot):
    cells = snapshot.engine.active_cells

    async def scenario():
        server, _ = _serve(snapshot)
        host, port = await server.start()
        client = await _Client.connect(host, port)
        n = 24
        for i in range(n):
            await client.send(
                {"op": "score", "id": i, "patterns": [[cells[i % 8]]]}
            )
        responses = [await client.recv() for _ in range(n)]
        stats = server.stats()
        await client.close()
        await server.stop()
        return responses, stats

    responses, stats = asyncio.run(scenario())
    assert all(r["ok"] for r in responses)
    assert sorted(r["id"] for r in responses) == list(range(24))
    # The whole pipelined burst must have been evaluated in fewer engine
    # calls than requests -- that is the point of the micro-batcher.
    assert stats["batcher"]["batches"] < 24
    assert stats["batcher"]["items"] == 24


def test_admin_ops_and_unknown_op(snapshot):
    async def scenario():
        server, _ = _serve(snapshot)
        host, port = await server.start()
        client = await _Client.connect(host, port)
        out = {
            "health": await client.request({"op": "health"}),
            "stats": await client.request({"op": "stats"}),
            "describe": await client.request({"op": "describe"}),
            "unknown": await client.request({"op": "frobnicate"}),
            "missing": await client.request({"no_op": True}),
        }
        await client.close()
        await server.stop()
        return out

    out = asyncio.run(scenario())
    assert out["health"]["ok"] and out["health"]["status"] == "ok"
    assert out["health"]["version"] == "v-base"
    assert out["stats"]["ok"]
    assert out["stats"]["stats"]["queue_depth"] == 0
    describe = out["describe"]
    assert describe["grid"]["n_cells"] == snapshot.grid.n_cells
    assert describe["sample_active_cells"]
    assert out["unknown"] == {
        "ok": False,
        "error": "unknown_op",
        "detail": "unknown op 'frobnicate'",
    }
    assert out["missing"]["error"] == "unknown_op"


def test_malformed_lines_get_error_responses_not_disconnects(snapshot):
    async def scenario():
        server, _ = _serve(snapshot)
        host, port = await server.start()
        client = await _Client.connect(host, port)
        client.writer.write(b"garbage that is not json\n")
        await client.writer.drain()
        first = await client.recv()
        # The connection survives; a valid request still works afterwards.
        second = await client.request({"op": "health"})
        await client.close()
        await server.stop()
        return first, second

    first, second = asyncio.run(scenario())
    assert first["ok"] is False and first["error"] == "bad_request"
    assert second["ok"] is True


def test_predict_without_patterns_answers_from_motion_model(snapshot):
    async def scenario():
        server, _ = _serve(snapshot)
        host, port = await server.start()
        client = await _Client.connect(host, port)
        recent = [[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]]
        response = await client.request(
            {"op": "predict", "id": 9, "recent": recent, "sigma": 0.01}
        )
        await client.close()
        await server.stop()
        return response

    response = asyncio.run(scenario())
    assert response["ok"] and response["source"] == "model"
    assert response["degraded"] is False
    # Straight-line motion: the linear model extrapolates the next step.
    np.testing.assert_allclose(response["position"], [0.3, 0.0], atol=1e-9)


def test_predict_uses_patterns_when_available(tmp_path, dataset):
    # A velocity-pattern library whose single pattern continues the probe
    # history.  The prefix must be non-constant (the library's default
    # gate) and the probe velocities sit exactly on the cell centers so the
    # confirmation probability is ~1 regardless of the probe scale.
    from repro.geometry.bbox import BoundingBox
    from repro.geometry.grid import Grid

    vgrid = Grid(BoundingBox(-0.5, -0.5, 0.5, 0.5), nx=10, ny=10)
    v1, v2, v3 = (0.05, 0.05), (0.15, 0.05), (0.05, 0.15)
    a1, a2, b = (vgrid.locate(*v) for v in (v1, v2, v3))
    result = MiningResult(
        patterns=[TrajectoryPattern((a1, a2, b))],
        nm_values=[1.0],
        omega=0.0,
        stats=MinerStats(),
    )
    patterns_path = tmp_path / "patterns.json"
    save_mining_result(result, vgrid, patterns_path)
    snapshot = ServingSnapshot.from_dataset(
        dataset,
        patterns_path=patterns_path,
        version="v-patterns",
        confirm_threshold=0.5,
    )
    assert snapshot.library is not None and len(snapshot.library) == 1

    async def scenario():
        server, _ = _serve(snapshot)
        host, port = await server.start()
        client = await _Client.connect(host, port)
        # Positions whose velocity history is exactly (v1, v2).
        recent = [
            [0.0, 0.0],
            [v1[0], v1[1]],
            [v1[0] + v2[0], v1[1] + v2[1]],
        ]
        response = await client.request(
            {"op": "predict", "recent": recent, "sigma": 0.001}
        )
        await client.close()
        await server.stop()
        return response

    response = asyncio.run(scenario())
    assert response["ok"] and response["source"] == "pattern"
    # The pattern's continuation: next ~ last + center of the turn cell.
    expected = (
        np.array([v1[0] + v2[0], v1[1] + v2[1]])
        + vgrid.cell_centers(np.array([b]))[0]
    )
    np.testing.assert_allclose(response["position"], expected, atol=1e-9)


def test_predict_degrades_to_model_under_overload(snapshot):
    async def scenario():
        server, _ = _serve(snapshot)
        host, port = await server.start()

        async def refuse(key, payload, deadline=None, ctx=None):
            raise OverloadedError("queue_full")

        server._batcher.submit = refuse  # force the degradation path
        client = await _Client.connect(host, port)
        recent = [[0.0, 0.0], [0.1, 0.0], [0.2, 0.0]]
        predict = await client.request(
            {"op": "predict", "recent": recent, "sigma": 0.01}
        )
        score = await client.request({"op": "score", "patterns": [[0]]})
        await client.close()
        await server.stop()
        return predict, score

    predict, score = asyncio.run(scenario())
    # predict degrades but still answers...
    assert predict["ok"] is True
    assert predict["degraded"] is True
    assert predict["source"] == "model"
    assert predict["reason"] == "queue_full"
    np.testing.assert_allclose(predict["position"], [0.3, 0.0], atol=1e-9)
    # ...while score sheds with an explicit overload error.
    assert score["ok"] is False
    assert score["error"] == "overloaded"
    assert score["reason"] == "queue_full"


def test_overload_sheds_and_admitted_requests_complete(snapshot):
    """Drive well past capacity: explicit sheds, zero crashes, all answered."""

    async def scenario():
        config = ServeConfig(max_batch=4, max_queue=8, default_timeout_ms=None)
        server, _ = _serve(snapshot, config)
        host, port = await server.start()

        real_handler = server._batcher._handler

        async def slow_handler(key, payloads):
            await asyncio.sleep(0.05)
            return await real_handler(key, payloads)

        server._batcher._handler = slow_handler

        cells = snapshot.engine.active_cells
        client = await _Client.connect(host, port)
        n = 80
        for i in range(n):
            await client.send({"op": "score", "id": i, "patterns": [[cells[0]]]})
        responses = [await client.recv() for _ in range(n)]
        await client.close()
        await server.stop()
        return responses

    responses = asyncio.run(scenario())
    assert len(responses) == 80  # every request got exactly one answer
    ok = [r for r in responses if r["ok"]]
    shed = [r for r in responses if not r["ok"]]
    assert all(r["error"] == "overloaded" for r in shed)
    assert all(r["reason"] in ("queue_full", "deadline", "deadline_expired") for r in shed)
    assert shed, "an 80-deep burst against queue=8 must shed"
    assert ok, "admitted requests must still complete"


def _write_snapshot_dir(path, dataset, version):
    path.mkdir()
    save_dataset_jsonl(dataset, path / "dataset.jsonl")
    (path / "serve.json").write_text(json.dumps({"version": version}))


def test_hot_swap_under_load(tmp_path, dataset):
    """In-flight requests finish on the old snapshot; new ones see the new."""
    dir_v2 = tmp_path / "v2"
    _write_snapshot_dir(dir_v2, zebranet_dataset(n_trajectories=10, n_ticks=20, seed=3), "v2")

    snapshot = ServingSnapshot.from_dataset(dataset, version="v1")
    cells = snapshot.engine.active_cells

    async def scenario():
        server, store = _serve(snapshot, ServeConfig(default_timeout_ms=None))
        host, port = await server.start()

        real_handler = server._batcher._handler

        async def slow_handler(key, payloads):
            await asyncio.sleep(0.08)  # keep the first wave in flight
            return await real_handler(key, payloads)

        server._batcher._handler = slow_handler

        client = await _Client.connect(host, port)
        admin = await _Client.connect(host, port)

        n = 10
        for i in range(n):
            await client.send({"op": "score", "id": i, "patterns": [[cells[0]]]})
        await asyncio.sleep(0.02)  # all admitted, snapshot v1 captured

        swap = await admin.request({"op": "swap", "path": str(dir_v2)})
        assert swap["ok"], swap
        # Requests sent strictly after the swap acknowledgement.
        for i in range(n, 2 * n):
            await client.send({"op": "score", "id": i, "patterns": [[0]]})

        responses = [await client.recv() for _ in range(2 * n)]
        health = await admin.request({"op": "health"})
        await client.close()
        await admin.close()
        await server.stop()
        return swap, responses, health, store.swaps

    swap, responses, health, swaps = asyncio.run(scenario())
    assert swap["version"] == "v2" and swap["previous"] == "v1"
    assert swaps == 1
    by_id = {r["id"]: r for r in responses}
    assert len(by_id) == 20
    # The wave admitted before the swap completed against v1 -- the swap
    # did not cancel, corrupt or re-route the in-flight work.
    for i in range(10):
        assert by_id[i]["ok"], by_id[i]
        assert by_id[i]["version"] == "v1"
    # Everything sent after the swap ack sees the new generation.
    for i in range(10, 20):
        assert by_id[i]["ok"], by_id[i]
        assert by_id[i]["version"] == "v2"
    assert health["version"] == "v2"


def test_swap_to_bad_path_is_an_error_and_keeps_serving(snapshot):
    async def scenario():
        server, store = _serve(snapshot)
        host, port = await server.start()
        client = await _Client.connect(host, port)
        bad = await client.request({"op": "swap", "path": "/nonexistent/nope.jsonl"})
        health = await client.request({"op": "health"})
        await client.close()
        await server.stop()
        return bad, health, store.swaps

    bad, health, swaps = asyncio.run(scenario())
    assert bad["ok"] is False and bad["error"] == "bad_request"
    assert health["ok"] and health["version"] == "v-base"
    assert swaps == 0


def test_shutdown_op_can_be_disabled(snapshot):
    async def scenario():
        server, _ = _serve(snapshot, ServeConfig(allow_shutdown=False))
        host, port = await server.start()
        client = await _Client.connect(host, port)
        refused = await client.request({"op": "shutdown"})
        health = await client.request({"op": "health"})
        await client.close()
        await server.stop()
        return refused, health

    refused, health = asyncio.run(scenario())
    assert refused["ok"] is False and refused["error"] == "forbidden"
    assert health["ok"]


def test_loadgen_closed_loop_against_live_server(snapshot):
    async def scenario():
        server, _ = _serve(snapshot)
        host, port = await server.start()
        report = await run_loadgen(
            LoadgenConfig(
                host=host, port=port, requests=40, concurrency=4, op="mixed"
            )
        )
        await server.stop()
        return report

    report = asyncio.run(scenario())
    assert report["mode"] == "closed"
    assert report["sent"] == report["completed"] == report["ok"] == 40
    assert report["errors"] == 0
    assert report["latency"]["p99_ms"] >= report["latency"]["p50_ms"] > 0


def test_loadgen_open_loop_reports_rate(snapshot):
    async def scenario():
        server, _ = _serve(snapshot)
        host, port = await server.start()
        report = await run_loadgen(
            LoadgenConfig(
                host=host, port=port, requests=30, concurrency=4, qps=500.0
            )
        )
        await server.stop()
        return report

    report = asyncio.run(scenario())
    assert report["mode"] == "open"
    assert report["completed"] == 30
    assert report["errors"] == 0
    assert report["achieved_qps"] > 0


def test_hello_handshake_and_version_pinning(snapshot):
    async def scenario():
        server, _ = _serve(snapshot)
        host, port = await server.start()
        client = await _Client.connect(host, port)
        resp = await client.request(
            {"op": "hello", "id": 1, "require": ["score", "pipelining"]}
        )
        assert resp["ok"]
        assert resp["version"] == protocol.PROTOCOL_VERSION
        assert set(protocol.OPS) <= set(resp["capabilities"])
        assert resp["snapshot_version"] == "v-base"

        # Unsupported required capability: structured refusal.
        resp = await client.request(
            {"op": "hello", "id": 2, "require": ["time-travel"]}
        )
        assert not resp["ok"] and resp["error"] == "bad_request"
        assert resp["missing"] == ["time-travel"]

        # Any op pinned to a wrong version is refused with both versions.
        resp = await client.request({"op": "health", "id": 3, "v": 99})
        assert not resp["ok"] and resp["error"] == "bad_request"
        assert resp["client_version"] == 99
        assert resp["server_version"] == protocol.PROTOCOL_VERSION
        # ...and an explicit correct pin works.
        resp = await client.request(
            {"op": "health", "id": 4, "v": protocol.PROTOCOL_VERSION}
        )
        assert resp["ok"]
        await client.close()
        await server.stop()

    asyncio.run(scenario())


def test_loadgen_reconnects_across_server_restart(snapshot):
    async def scenario():
        server, _ = _serve(snapshot)
        host, port = await server.start()

        replacement_server, _ = _serve(snapshot, ServeConfig(host=host, port=port))

        async def bounce():
            # Wait for the run to make progress, then bounce the server.
            for _ in range(100):
                await asyncio.sleep(0.02)
                if server.stats()["requests_served"] >= 5:
                    break
            await server.stop()
            await replacement_server.start()

        bounce_task = asyncio.get_running_loop().create_task(bounce())
        report = await run_loadgen(
            LoadgenConfig(
                host=host,
                port=port,
                requests=60,
                concurrency=2,
                reconnect_backoff_s=0.05,
                reconnect_cap_s=0.2,
                reconnect_attempts=20,
            )
        )
        await bounce_task
        await replacement_server.stop()
        return report

    report = asyncio.run(scenario())
    assert report["completed"] == report["sent"] == 60
    assert report["reconnects"] >= 1
    assert report["errors"] == 0


def test_loadgen_gives_up_after_reconnect_attempts(snapshot):
    async def scenario():
        server, _ = _serve(snapshot)
        host, port = await server.start()

        async def kill():
            for _ in range(100):
                await asyncio.sleep(0.02)
                if server.stats()["requests_served"] >= 3:
                    break
            await server.stop()

        kill_task = asyncio.get_running_loop().create_task(kill())
        report = await run_loadgen(
            LoadgenConfig(
                host=host,
                port=port,
                requests=40,
                concurrency=2,
                reconnect_backoff_s=0.01,
                reconnect_cap_s=0.02,
                reconnect_attempts=2,
            )
        )
        await kill_task
        return report

    report = asyncio.run(scenario())
    # The server never came back: every unanswered request is reported
    # as an error, none silently dropped.
    assert report["completed"] == report["sent"] == 40
    assert report["errors"] >= 1
