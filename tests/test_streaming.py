"""Tests for the out-of-core streaming engine (section 4.4's space claim)."""

import numpy as np
import pytest

from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.core.streaming import StreamingNMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.io import save_dataset_jsonl


@pytest.fixture
def stored(small_dataset, small_engine, tmp_path):
    path = tmp_path / "data.jsonl"
    save_dataset_jsonl(small_dataset, path)
    return path, small_engine


class TestValidation:
    def test_bad_chunk_size(self, stored):
        path, engine = stored
        with pytest.raises(ValueError):
            StreamingNMEngine(path, engine.grid, engine.config, chunk_size=0)

    def test_foreign_file_rejected(self, tmp_path, small_engine):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"format": "nope"}\n')
        with pytest.raises(ValueError, match="not a repro trajectory"):
            StreamingNMEngine(path, small_engine.grid, small_engine.config)

    def test_empty_dataset_rejected_on_scan(self, tmp_path, small_engine):
        path = tmp_path / "empty.jsonl"
        save_dataset_jsonl(TrajectoryDataset([]), path)
        streaming = StreamingNMEngine(path, small_engine.grid, small_engine.config)
        with pytest.raises(ValueError, match="no trajectories"):
            streaming.nm(TrajectoryPattern((0,)))


class TestEquivalence:
    """Chunked == in-memory, for every chunk size."""

    @pytest.mark.parametrize("chunk_size", [1, 3, 5, 100])
    def test_nm_equivalence(self, stored, chunk_size, rng):
        path, engine = stored
        streaming = StreamingNMEngine(
            path, engine.grid, engine.config, chunk_size=chunk_size
        )
        cells = engine.active_cells
        patterns = [
            TrajectoryPattern(tuple(int(c) for c in rng.choice(cells, size=n)))
            for n in (1, 2, 3)
        ]
        got = streaming.nm_many(patterns)
        expected = [engine.nm(p) for p in patterns]
        assert got == pytest.approx(expected, abs=1e-9)

    @pytest.mark.parametrize("chunk_size", [2, 7])
    def test_match_equivalence(self, stored, chunk_size, rng):
        path, engine = stored
        streaming = StreamingNMEngine(
            path, engine.grid, engine.config, chunk_size=chunk_size
        )
        cells = engine.active_cells
        pattern = TrajectoryPattern((cells[0], cells[1]))
        assert streaming.match(pattern) == pytest.approx(
            engine.match(pattern), rel=1e-9
        )

    @pytest.mark.parametrize("chunk_size", [1, 4])
    def test_singular_table_equivalence(self, stored, chunk_size):
        path, engine = stored
        streaming = StreamingNMEngine(
            path, engine.grid, engine.config, chunk_size=chunk_size
        )
        got = streaming.singular_nm_table()
        expected = engine.singular_nm_table()
        assert set(got) == set(expected)
        for cell in expected:
            assert got[cell] == pytest.approx(expected[cell], abs=1e-9)

    def test_chunk_instrumentation(self, stored):
        path, engine = stored
        streaming = StreamingNMEngine(path, engine.grid, engine.config, chunk_size=5)
        streaming.nm(TrajectoryPattern((engine.active_cells[0],)))
        # 12 trajectories in 5-sized chunks -> 3 chunks.
        assert streaming.n_chunks_scanned == 3

    def test_empty_batch(self, stored):
        path, engine = stored
        streaming = StreamingNMEngine(path, engine.grid, engine.config)
        assert len(streaming.nm_many([])) == 0


class TestVerifyTopK:
    def test_confirms_mined_ranking(self, stored):
        """The out-of-core re-score agrees with the miner's own ranking."""
        path, engine = stored
        mined = TrajPatternMiner(engine, k=6, max_length=3).mine()
        streaming = StreamingNMEngine(path, engine.grid, engine.config, chunk_size=4)
        verified = streaming.verify_top_k(mined.patterns, k=6)
        assert [p.cells for p, _ in verified] == [p.cells for p in mined.patterns]
        assert [v for _, v in verified] == pytest.approx(mined.nm_values, abs=1e-9)

    def test_k_validation(self, stored):
        path, engine = stored
        streaming = StreamingNMEngine(path, engine.grid, engine.config)
        with pytest.raises(ValueError):
            streaming.verify_top_k([TrajectoryPattern((0,))], k=0)
