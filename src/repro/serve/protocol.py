"""The serving wire protocol: newline-delimited JSON over TCP.

One request per line, one response per line, both UTF-8 JSON objects.
Responses carry the request's ``id`` (when one was sent) and are *not*
guaranteed to arrive in request order -- the server processes pipelined
requests concurrently so the micro-batcher can coalesce them; clients that
pipeline must correlate by ``id``.

Requests
--------
``{"op": ..., "id": ...?, "timeout_ms": ...?, "trace": ...?}`` plus
per-op fields.  ``trace`` is an optional ``{"id": <trace-id>,
"span": <parent-span-id>?}`` object (:meth:`SpanContext.to_wire`): when
present *and* the server has tracing enabled, the server parents its
spans for this request under the caller's span, so one ``repro report``
renders the joined client+server tree.  Any request may carry ``v``, a
protocol version pin checked by :func:`check_version`.  Per-op fields:

* ``hello`` -- ``version`` (protocol version pin, default the server's
  own) and ``require`` (list of capability names); the reply advertises
  ``version`` + ``capabilities`` and mismatches are structured
  ``bad_request`` errors carrying ``client_version``/``server_version``
  or ``missing``;
* ``score`` -- ``patterns`` (list of cell-id lists; ``-1`` is the wildcard),
  ``measure`` (``"nm"`` default, or ``"match"``);
* ``predict`` -- ``recent`` (list of ``[x, y]`` position reports, oldest
  first), ``sigma`` (per-report standard deviation);
* ``health`` / ``stats`` / ``describe`` -- no fields;
* ``swap`` -- ``path`` (snapshot directory or dataset file on the server's
  filesystem);
* ``shutdown`` -- no fields (honoured only when the server allows it).

Responses
---------
``{"ok": true, "id": ...?, ...}`` on success.  On failure
``{"ok": false, "error": <code>, "detail": ...?}`` where ``error`` is one
of ``bad_request``, ``unknown_op``, ``overloaded`` (explicit load-shed;
``reason`` says why: ``queue_full``, ``deadline``, ``deadline_expired`` or
``shutdown``), ``forbidden`` or ``internal``.

Untrusted input: every field is validated here before it reaches the
engine; oversized lines are bounded by :data:`MAX_LINE_BYTES` at the
socket layer.
"""

from __future__ import annotations

import json
from typing import Any, Sequence

import numpy as np

from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.obs.tracing import SpanContext

#: Upper bound on one request/response line (enforced by the stream reader).
MAX_LINE_BYTES = 4 << 20

#: Hard caps keeping one request's work bounded no matter what arrives.
MAX_PATTERNS_PER_REQUEST = 1024
MAX_PATTERN_LENGTH = 64
MAX_RECENT_POINTS = 4096
MAX_TRACE_ID_CHARS = 128
MAX_REPORTS_PER_BATCH = 256
MAX_REPORT_POINTS = 4096
MAX_OBJECT_ID_CHARS = 256

#: The ops a client may send.
OPS = (
    "hello",
    "score",
    "predict",
    "health",
    "stats",
    "describe",
    "swap",
    "ingest",
    "shutdown",
)

MEASURES = ("nm", "match")

#: Version of this wire protocol.  A ``hello`` carrying a different
#: ``version`` -- or any request carrying a different ``v`` field -- is
#: rejected with a structured ``bad_request`` naming both sides, so a
#: stale client learns *what* to upgrade instead of chasing op-level
#: validation errors.
PROTOCOL_VERSION = 1

#: What this protocol revision can do: every op, plus the cross-cutting
#: request features.  Clients list required capabilities in ``hello``;
#: anything the server lacks is named in the rejection.
CAPABILITIES = OPS + ("trace", "deadline", "pipelining")


class ProtocolError(Exception):
    """A malformed or disallowed request; maps onto an error response.

    ``fields`` are extra structured keys merged into the error response
    (e.g. ``server_version`` on a version mismatch) so machine clients
    do not have to parse ``detail`` prose.
    """

    def __init__(
        self, detail: str, code: str = "bad_request", **fields: Any
    ) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail
        self.fields = fields


def encode(obj: dict) -> bytes:
    """One protocol line: compact JSON + newline, UTF-8."""
    return (json.dumps(obj, separators=(",", ":")) + "\n").encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one request line; raises :class:`ProtocolError` on any garbage."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"not a JSON object: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError("request must be a JSON object")
    return obj


def ok_response(request_id: Any = None, **fields: Any) -> dict:
    response: dict = {"ok": True}
    if request_id is not None:
        response["id"] = request_id
    response.update(fields)
    return response


def error_response(
    request_id: Any = None, code: str = "bad_request", detail: str | None = None, **fields: Any
) -> dict:
    response: dict = {"ok": False, "error": code}
    if request_id is not None:
        response["id"] = request_id
    if detail is not None:
        response["detail"] = detail
    response.update(fields)
    return response


def check_version(request: dict) -> None:
    """Reject a request pinned to a different protocol revision.

    The ``v`` field is optional -- absent means "whatever the server
    speaks", which keeps old clients working -- but when present it must
    match :data:`PROTOCOL_VERSION` exactly.
    """
    raw = request.get("v")
    if raw is None:
        return
    if not isinstance(raw, int) or isinstance(raw, bool):
        raise ProtocolError("v must be an integer protocol version")
    if raw != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: client v{raw}, server "
            f"v{PROTOCOL_VERSION}",
            client_version=raw,
            server_version=PROTOCOL_VERSION,
        )


def parse_hello(request: dict) -> tuple[int, tuple[str, ...]]:
    """Validate a ``hello`` handshake: version pin + required capabilities.

    Returns ``(client_version, required_capabilities)``.  A version other
    than :data:`PROTOCOL_VERSION`, or a required capability this server
    does not advertise, raises a structured ``bad_request`` naming the
    mismatch (``client_version``/``server_version`` or ``missing``).
    """
    version = request.get("version", PROTOCOL_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        raise ProtocolError("version must be an integer")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: client v{version}, server "
            f"v{PROTOCOL_VERSION}",
            client_version=version,
            server_version=PROTOCOL_VERSION,
        )
    raw = request.get("require", [])
    if not isinstance(raw, list) or not all(isinstance(c, str) for c in raw):
        raise ProtocolError("require must be a list of capability names")
    missing = tuple(c for c in raw if c not in CAPABILITIES)
    if missing:
        raise ProtocolError(
            f"unsupported capabilities: {', '.join(missing)}",
            missing=list(missing),
            capabilities=list(CAPABILITIES),
        )
    return version, tuple(raw)


def request_id(request: dict) -> Any:
    """The correlation id of a request, if the client sent one (JSON scalar)."""
    rid = request.get("id")
    if rid is None or isinstance(rid, (str, int, float, bool)):
        return rid
    raise ProtocolError("id must be a JSON scalar")


def parse_timeout_ms(request: dict, default_ms: float | None) -> float | None:
    """Per-request deadline budget in milliseconds (``None`` = no deadline)."""
    raw = request.get("timeout_ms", default_ms)
    if raw is None:
        return None
    if not isinstance(raw, (int, float)) or isinstance(raw, bool) or raw <= 0:
        raise ProtocolError("timeout_ms must be a positive number")
    return float(raw)


def parse_score(request: dict, n_cells: int) -> tuple[list[TrajectoryPattern], str]:
    """Validate a ``score`` request against the current grid's alphabet."""
    measure = request.get("measure", "nm")
    if measure not in MEASURES:
        raise ProtocolError(f"measure must be one of {MEASURES}")
    raw = request.get("patterns")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("patterns must be a non-empty list of cell-id lists")
    if len(raw) > MAX_PATTERNS_PER_REQUEST:
        raise ProtocolError(
            f"at most {MAX_PATTERNS_PER_REQUEST} patterns per request"
        )
    patterns: list[TrajectoryPattern] = []
    for i, cells in enumerate(raw):
        if not isinstance(cells, list) or not cells:
            raise ProtocolError(f"patterns[{i}] must be a non-empty list")
        if len(cells) > MAX_PATTERN_LENGTH:
            raise ProtocolError(
                f"patterns[{i}]: at most {MAX_PATTERN_LENGTH} positions"
            )
        checked: list[int] = []
        for c in cells:
            if not isinstance(c, int) or isinstance(c, bool):
                raise ProtocolError(f"patterns[{i}]: cell ids must be integers")
            if c != WILDCARD and not 0 <= c < n_cells:
                raise ProtocolError(
                    f"patterns[{i}]: cell {c} outside grid (0..{n_cells - 1})"
                )
            checked.append(c)
        patterns.append(TrajectoryPattern(tuple(checked)))
    return patterns, measure


def parse_predict(request: dict) -> tuple[np.ndarray, float]:
    """Validate a ``predict`` request: recent position reports + sigma."""
    raw = request.get("recent")
    if not isinstance(raw, list) or len(raw) < 2:
        raise ProtocolError("recent must be a list of at least 2 [x, y] points")
    if len(raw) > MAX_RECENT_POINTS:
        raise ProtocolError(f"at most {MAX_RECENT_POINTS} recent points")
    for i, point in enumerate(raw):
        if (
            not isinstance(point, list)
            or len(point) != 2
            or not all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in point
            )
        ):
            raise ProtocolError(f"recent[{i}] must be [x, y] numbers")
    recent = np.asarray(raw, dtype=float)
    if not np.all(np.isfinite(recent)):
        raise ProtocolError("recent contains non-finite coordinates")
    sigma = request.get("sigma")
    if (
        not isinstance(sigma, (int, float))
        or isinstance(sigma, bool)
        or not np.isfinite(sigma)
        or sigma <= 0
    ):
        raise ProtocolError("sigma must be a positive finite number")
    return recent, float(sigma)


def parse_trace(request: dict) -> SpanContext | None:
    """The caller's trace context, if the request carries one.

    Absent field costs one dict lookup -- the common (untraced) path
    stays free.  Present fields are validated like any other untrusted
    input: bounded string lengths, no surprise types.
    """
    raw = request.get("trace")
    if raw is None:
        return None
    try:
        ctx = SpanContext.from_wire(raw)
    except ValueError as exc:
        raise ProtocolError(str(exc)) from exc
    if len(ctx.trace_id) > MAX_TRACE_ID_CHARS:
        raise ProtocolError(f"trace id longer than {MAX_TRACE_ID_CHARS} chars")
    if ctx.span_id is not None and len(ctx.span_id) > MAX_TRACE_ID_CHARS:
        raise ProtocolError(f"trace span id longer than {MAX_TRACE_ID_CHARS} chars")
    return ctx


def parse_swap(request: dict) -> str:
    path = request.get("path")
    if not isinstance(path, str) or not path:
        raise ProtocolError("path must be a non-empty string")
    return path


def parse_ingest(request: dict) -> list:
    """Validate an ``ingest`` request: a batch of trajectory reports.

    ``reports`` is a non-empty list of ``{"points": [[x, y], ...],
    "sigma": <number or per-point list>, "object_id"?: str}`` objects --
    exactly what :meth:`repro.mobility.reporting.TrackingLog.to_report`
    emits.  Returns fully-constructed
    :class:`~repro.trajectory.trajectory.UncertainTrajectory` instances;
    any malformed report raises :class:`ProtocolError` (``bad_request``)
    before the server touches the live index.
    """
    from repro.trajectory.trajectory import UncertainTrajectory

    raw = request.get("reports")
    if not isinstance(raw, list) or not raw:
        raise ProtocolError("reports must be a non-empty list of report objects")
    if len(raw) > MAX_REPORTS_PER_BATCH:
        raise ProtocolError(f"at most {MAX_REPORTS_PER_BATCH} reports per batch")
    trajectories = []
    for i, report in enumerate(raw):
        if not isinstance(report, dict):
            raise ProtocolError(f"reports[{i}] must be an object")
        points = report.get("points")
        if not isinstance(points, list) or not points:
            raise ProtocolError(
                f"reports[{i}].points must be a non-empty list of [x, y]"
            )
        if len(points) > MAX_REPORT_POINTS:
            raise ProtocolError(
                f"reports[{i}]: at most {MAX_REPORT_POINTS} points per report"
            )
        for j, point in enumerate(points):
            if (
                not isinstance(point, list)
                or len(point) != 2
                or not all(
                    isinstance(v, (int, float)) and not isinstance(v, bool)
                    for v in point
                )
            ):
                raise ProtocolError(f"reports[{i}].points[{j}] must be [x, y] numbers")
        means = np.asarray(points, dtype=float)
        if not np.all(np.isfinite(means)):
            raise ProtocolError(f"reports[{i}].points contain non-finite coordinates")
        sigma = report.get("sigma")
        if isinstance(sigma, list):
            if len(sigma) != len(points):
                raise ProtocolError(
                    f"reports[{i}].sigma list must match the number of points"
                )
            if not all(
                isinstance(v, (int, float))
                and not isinstance(v, bool)
                and np.isfinite(v)
                and v > 0
                for v in sigma
            ):
                raise ProtocolError(
                    f"reports[{i}].sigma values must be positive finite numbers"
                )
            sigmas = np.asarray(sigma, dtype=float)
        elif (
            isinstance(sigma, (int, float))
            and not isinstance(sigma, bool)
            and np.isfinite(sigma)
            and sigma > 0
        ):
            sigmas = float(sigma)
        else:
            raise ProtocolError(
                f"reports[{i}].sigma must be a positive finite number or list"
            )
        object_id = report.get("object_id", "")
        if not isinstance(object_id, str):
            raise ProtocolError(f"reports[{i}].object_id must be a string")
        if len(object_id) > MAX_OBJECT_ID_CHARS:
            raise ProtocolError(
                f"reports[{i}].object_id longer than {MAX_OBJECT_ID_CHARS} chars"
            )
        try:
            trajectories.append(
                UncertainTrajectory(means, sigmas, object_id=object_id)
            )
        except ValueError as exc:
            raise ProtocolError(f"reports[{i}]: {exc}") from exc
    return trajectories


def values_field(values: Sequence[float]) -> list[float]:
    """JSON-safe measure values (floats, never numpy scalars)."""
    return [float(v) for v in values]
