"""Incremental maintenance of the sparse NM index (append, evict, persist).

The engine's flat index is three arrays sorted by ``(cell, row)``; a full
rebuild is a probability enumeration over every snapshot plus an
``np.lexsort``.  For a live report stream the delta per batch is tiny, so
this module maintains the index without either cost:

* **Append** -- enumerate entries for the *new* trajectories only (a
  throwaway engine over the delta, with rows offset past the existing
  dataset), then splice them into the big sorted arrays with a single
  ``np.searchsorted`` merge over composite ``cell * stride + row`` keys.
  The merged arrays are presorted, so the engine's re-install skips the
  lexsort entirely.
* **Evict** -- sliding-window expiry drops the *oldest* trajectories.
  Because rows are assigned in dataset order, the expired snapshots are
  exactly a prefix of the global row space: the inverse of the merge is a
  mask-and-renumber (``rows >= cutoff`` keep, then ``rows - cutoff``),
  which again yields presorted arrays.

Both operations are bit-identical to a from-scratch build over the
surviving trajectories (the oracle's ``incremental`` path and a hypothesis
property test pin this at 0 ULP): per-row entry computation is independent
of chunking and of neighbouring rows, and the merge/evict are
permutation-free on already-sorted keys.

Every mutation goes through :meth:`NMEngine.replace_index`, which rewrites
the dataset-shape state together with the flat arrays under a single
``index_epoch`` bump -- epoch-pinned consumers (a miner mid-run) raise
:class:`~repro.core.engine.StaleIndexError` instead of scoring a mix of
index generations.
"""

from __future__ import annotations

import time
from dataclasses import replace
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.core import index_cache, kernels
from repro.core.engine import NMEngine
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

__all__ = [
    "IncrementalIndexer",
    "collect_delta_entries",
    "drop_leading_rows",
    "merge_sorted_entries",
]

_Entries = tuple[np.ndarray, np.ndarray, np.ndarray]


def collect_delta_entries(
    trajectories: Sequence[UncertainTrajectory],
    grid,
    config,
    row_offset: int,
) -> _Entries:
    """Index entries of ``trajectories`` alone, rows offset by ``row_offset``.

    A throwaway engine over just the delta computes them: per-row entry
    collection (cell neighbourhood, elementwise ``Prob``, per-snapshot cap)
    never looks across rows, so the triples are bit-identical to the rows a
    from-scratch build of the combined dataset would produce.  ``cache_dir``
    is stripped so the mini-build neither reads nor pollutes the on-disk
    index cache with a delta-sized payload.
    """
    delta = TrajectoryDataset(list(trajectories))
    mini = NMEngine(delta, grid, replace(config, cache_dir=None))
    cells, rows, vals = mini.index_arrays()
    return cells, rows + int(row_offset), vals


def merge_sorted_entries(
    base: _Entries, delta: _Entries, n_rows: int
) -> _Entries:
    """Merge two (cell, row)-sorted entry triples into one sorted triple.

    ``n_rows`` must exceed every row id on either side; it is the stride of
    the composite ``cell * n_rows + row`` sort key.  Keys are globally
    unique -- each (cell, row) pair occurs at most once per side and the
    incremental caller only feeds deltas whose rows are disjoint from the
    base -- so one ``searchsorted`` places every delta entry and a scatter
    builds the merged arrays without comparisons or a lexsort.  Falls back
    to a concatenate-and-lexsort only if the composite key would overflow
    int64 (astronomical grids).
    """
    base_cells, base_rows, base_vals = base
    delta_cells, delta_rows, delta_vals = delta
    if not len(delta_cells):
        return base
    if not len(base_cells):
        return delta
    stride = np.int64(n_rows)
    max_cell = max(int(base_cells[-1]), int(delta_cells[-1]))
    if (max_cell + 1) * int(stride) >= np.iinfo(np.int64).max:
        cells = np.concatenate([base_cells, delta_cells])
        rows = np.concatenate([base_rows, delta_rows])
        vals = np.concatenate([base_vals, delta_vals])
        order = np.lexsort((rows, cells))
        return cells[order], rows[order], vals[order]
    base_keys = base_cells * stride + base_rows
    delta_keys = delta_cells * stride + delta_rows
    positions = np.searchsorted(base_keys, delta_keys, side="left")
    n_out = len(base_cells) + len(delta_cells)
    delta_idx = positions + np.arange(len(delta_cells), dtype=np.int64)
    base_mask = np.ones(n_out, dtype=bool)
    base_mask[delta_idx] = False
    out_cells = np.empty(n_out, dtype=np.int64)
    out_rows = np.empty(n_out, dtype=np.int64)
    out_vals = np.empty(n_out, dtype=np.float64)
    out_cells[delta_idx] = delta_cells
    out_cells[base_mask] = base_cells
    out_rows[delta_idx] = delta_rows
    out_rows[base_mask] = base_rows
    out_vals[delta_idx] = delta_vals
    out_vals[base_mask] = base_vals
    return out_cells, out_rows, out_vals


def drop_leading_rows(entries: _Entries, n_dropped: int) -> _Entries:
    """The merge run in reverse: expire the first ``n_dropped`` global rows.

    Filtering preserves (cell, row) order and the renumbering subtracts a
    constant, so the result is still presorted -- the engine re-install
    skips the lexsort exactly as it does for an append.
    """
    cells, rows, vals = entries
    if n_dropped <= 0:
        return entries
    keep = rows >= n_dropped
    return cells[keep], rows[keep] - np.int64(n_dropped), vals[keep]


class IncrementalIndexer:
    """Owns in-place append/evict maintenance of one :class:`NMEngine`.

    ``window`` bounds the number of resident trajectories: after every
    append, the oldest trajectories beyond the window are evicted (FIFO,
    matching report-stream arrival order).  ``None`` keeps everything.

    The engine's published snapshots stay safe to share: every fold
    allocates *new* flat arrays and never writes into the ones a previous
    ``index_arrays()`` caller may still hold.
    """

    def __init__(self, engine: NMEngine, *, window: int | None = None) -> None:
        if window is not None and window < 1:
            raise ValueError("window must be a positive trajectory count")
        self.engine = engine
        self.window = window
        self.appends = 0
        self.evictions = 0
        self.rows_appended = 0
        self.rows_evicted = 0
        self.last_fold_s = 0.0

    def append(
        self, trajectories: Iterable[UncertainTrajectory]
    ) -> dict[str, int | float]:
        """Fold new trajectories into the live index; returns fold stats."""
        new = list(trajectories)
        if not new:
            return self._stats(appended=0, evicted=0)
        started = time.perf_counter()
        engine = self.engine
        old_dataset = engine.dataset
        row_offset = old_dataset.total_snapshots()
        delta = collect_delta_entries(new, engine.grid, engine.config, row_offset)
        merged_dataset = TrajectoryDataset(
            list(old_dataset) + new, metadata=old_dataset.metadata
        )
        merged = merge_sorted_entries(
            engine.index_arrays(), delta, merged_dataset.total_snapshots()
        )
        engine.replace_index(merged_dataset, *merged)
        self.appends += 1
        self.rows_appended += merged_dataset.total_snapshots() - row_offset
        evicted = 0
        if self.window is not None and len(merged_dataset) > self.window:
            evicted = len(merged_dataset) - self.window
            self.evict(evicted)
        self.last_fold_s = time.perf_counter() - started
        return self._stats(appended=len(new), evicted=evicted)

    def evict(self, n_trajectories: int) -> dict[str, int | float]:
        """Expire the ``n_trajectories`` oldest trajectories from the index."""
        if n_trajectories <= 0:
            return self._stats(appended=0, evicted=0)
        engine = self.engine
        old_dataset = engine.dataset
        if n_trajectories >= len(old_dataset):
            raise ValueError(
                f"cannot evict {n_trajectories} of {len(old_dataset)} "
                "trajectories: the engine requires a non-empty dataset"
            )
        n_rows = int(old_dataset.lengths()[:n_trajectories].sum())
        survived = drop_leading_rows(engine.index_arrays(), n_rows)
        surviving_dataset = TrajectoryDataset(
            list(old_dataset)[n_trajectories:], metadata=old_dataset.metadata
        )
        engine.replace_index(surviving_dataset, *survived)
        self.evictions += 1
        self.rows_evicted += n_rows
        return self._stats(appended=0, evicted=n_trajectories)

    def persist(self, cache_dir: str | Path | None = None) -> Path | None:
        """Write the live index to the on-disk cache under a *fresh* key.

        The content fingerprint is recomputed over the engine's *current*
        dataset here -- after in-place appends the dataset object is a new
        eager :class:`TrajectoryDataset`, so no stale ``content_fingerprint``
        attribute (from a store-backed snapshot the stream started from) can
        leak into the key and poison the entry the original dataset owns.
        """
        engine = self.engine
        cache_dir = cache_dir if cache_dir is not None else engine.config.cache_dir
        if cache_dir is None:
            return None
        key = index_cache.cache_key(
            engine.dataset,
            engine.grid,
            engine.config,
            kernel_tag=kernels.prob_kernel_tag(engine.config),
        )
        return index_cache.save_index(cache_dir, key, *engine.index_arrays())

    def _stats(self, *, appended: int, evicted: int) -> dict[str, int | float]:
        engine = self.engine
        return {
            "appended": appended,
            "evicted": evicted,
            "n_trajectories": len(engine.dataset),
            "total_snapshots": engine.dataset.total_snapshots(),
            "n_index_entries": engine.n_index_entries,
            "index_epoch": engine.index_epoch,
            "appends": self.appends,
            "evictions": self.evictions,
            "fold_s": self.last_fold_s,
        }
