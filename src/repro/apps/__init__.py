"""Applications of trajectory patterns.

* :mod:`~repro.apps.prediction` -- the paper's headline application
  (section 6.1, Fig. 3): plugging mined velocity patterns into a
  dead-reckoning location predictor and measuring the mis-prediction
  reduction.
* :mod:`~repro.apps.classification` -- the classifier use-case motivated
  in the introduction: identifying which route/class a trajectory belongs
  to from its pattern affinities.
* :mod:`~repro.apps.forecast` -- probabilistic next-location forecasting
  and coverage-based pre-allocation (the introduction's network-resource
  and e-Flyer scenarios).
"""

from repro.apps.classification import PatternClassifier
from repro.apps.forecast import (
    CellForecast,
    LocationForecaster,
    coverage_allocation,
    forecast_hit_rate,
)
from repro.apps.prediction import (
    PatternLibrary,
    PredictionComparison,
    compare_prediction,
    pattern_override,
)

__all__ = [
    "PatternLibrary",
    "pattern_override",
    "PredictionComparison",
    "compare_prediction",
    "PatternClassifier",
    "LocationForecaster",
    "CellForecast",
    "coverage_allocation",
    "forecast_hit_rate",
]
