"""Smoke tests: the fast examples run to completion as scripts.

The slower scenario examples (bus prediction, e-Flyer) are exercised by
the corresponding experiment tests at miniature scale; here the two fast
examples run for real so a broken import or API drift in `examples/`
fails the suite.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    sys_argv = sys.argv
    sys.argv = [name]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = sys_argv
    return capsys.readouterr().out


class TestFastExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "top-10 NM patterns" in out
        assert "pattern groups" in out
        assert "#" in out  # the ASCII canvas rendered patterns

    def test_wildcard_and_groups(self, capsys):
        out = run_example("wildcard_and_groups.py", capsys)
        assert "wildcards (section 5):" in out
        assert "min-max property" in out
        assert "Apriori FAILS" in out
        assert "gamma = 0.20" in out
