"""The ``.tjc`` columnar on-disk trajectory store.

Layout (single file, written atomically)::

    MAGIC                                   8 bytes, b"TJC1\\r\\n\\x1a\\n"
    <xy column chunk blobs, back to back>
    <sigma column chunk blobs>
    <timestamp column chunk blobs>          optional
    <lengths | start_times | dts columns>   one int64/float64 blob each
    <object_ids>                            UTF-8 JSON array of strings
    <footer JSON>                           UTF-8
    footer length                           uint64 little-endian
    MAGIC                                   8 bytes (trailing sentinel)

The footer (a parquet-style trailer, so the writer streams in one pass)
carries the format version, dataset metadata, per-column blob addresses,
the chunk table, summary statistics (bounding box, sigma extrema) and a
``content_hash`` that equals
:func:`repro.core.index_cache.dataset_fingerprint` of the decoded dataset
-- one identity shared by the index cache, manifests and span cache keys.

Opening a store costs O(footer): the trajectory table (lengths, start
times, dts) is memory-mapped, not parsed, and row columns are only
touched when sliced.  Row data comes in *chunks* -- contiguous row ranges
aligned to trajectory boundaries -- so each chunk decodes independently:

* positions: raw little-endian float64 (bit-exact, the default) or
  delta-encoded quantised int32 (``positions="q32"``, lossy, opt-in);
* sigmas: raw float64;
* timestamps (optional): delta-encoded int64 ticks of
  ``start_time + i * dt``;
* each chunk blob optionally zlib-compressed (``compression="zlib"``).

With the default ``compression="none"`` + ``positions="f64"`` the xy and
sigma columns are contiguous in the file and reads are **zero-copy**
``numpy.memmap`` slices (:attr:`TrajectoryStore.supports_mmap`); every
other codec combination reads through bounded ``pread`` + decode.  See
``docs/STORAGE.md`` for the full spec.
"""

from __future__ import annotations

import io
import json
import os
import struct
import tempfile
from pathlib import Path

import numpy as np

from repro.storage import encode
from repro.trajectory.trajectory import UncertainTrajectory

MAGIC = b"TJC1\r\n\x1a\n"
FORMAT_NAME = "repro.tjc"
FORMAT_VERSION = 1

#: Conventional file suffix (the CLI and loaders sniff the magic, not this).
STORE_SUFFIX = ".tjc"

#: Target rows per chunk; chunks grow past this to the next trajectory
#: boundary, so one chunk always holds whole trajectories.
DEFAULT_CHUNK_ROWS = 1 << 18

_ALIGN = 64
_POSITION_CODECS = ("f64", "q32")


class StoreFormatError(ValueError):
    """The file is not a readable ``.tjc`` store (bad magic, version, footer)."""


def is_store_path(path: str | Path) -> bool:
    """True when ``path`` exists and starts with the ``.tjc`` magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def _tolist(array: np.ndarray) -> bytes:
    return np.ascontiguousarray(array).tobytes()


# -- writer ------------------------------------------------------------------------


class StoreWriter:
    """Streaming, single-pass ``.tjc`` writer with an atomic commit.

    Trajectories are appended one at a time (nothing is held beyond the
    current chunk buffer plus O(n_trajectories) scalars), column blobs are
    spooled to temp files next to the destination, and :meth:`close`
    stitches the final file and ``os.replace``-renames it into place --
    a crash mid-write never leaves a partial store under the final name.

    Use as a context manager: a clean exit commits, an exception aborts
    and removes every temp file.
    """

    def __init__(
        self,
        path: str | Path,
        *,
        metadata: dict | None = None,
        compression: str = "none",
        positions: str = "f64",
        quant_scale: float | None = None,
        quant_origin: tuple[float, float] = (0.0, 0.0),
        store_times: bool = False,
        tick: float = 1e-6,
        chunk_rows: int = DEFAULT_CHUNK_ROWS,
    ) -> None:
        if compression not in encode.COMPRESSIONS:
            raise ValueError(
                f"unknown compression {compression!r}; expected one of "
                f"{encode.COMPRESSIONS}"
            )
        if positions not in _POSITION_CODECS:
            raise ValueError(
                f"unknown position codec {positions!r}; expected one of "
                f"{_POSITION_CODECS}"
            )
        if positions == "q32":
            if quant_scale is None:
                raise ValueError("positions='q32' requires quant_scale")
            if not (np.isfinite(quant_scale) and quant_scale > 0):
                raise ValueError("quant_scale must be a positive finite float")
        if chunk_rows < 1:
            raise ValueError("chunk_rows must be positive")
        if store_times and not (np.isfinite(tick) and tick > 0):
            raise ValueError("tick must be a positive finite float")
        self.path = Path(path)
        self.metadata = dict(metadata or {})
        self.compression = compression
        self.positions = positions
        self.quant_scale = None if quant_scale is None else float(quant_scale)
        self.quant_origin = (float(quant_origin[0]), float(quant_origin[1]))
        self.store_times = bool(store_times)
        self.tick = float(tick)
        self.chunk_rows = int(chunk_rows)

        self._lengths: list[int] = []
        self._start_times: list[float] = []
        self._dts: list[float] = []
        self._object_ids: list[str] = []
        self._chunks: list[dict] = []
        self._stats = {
            "min_x": np.inf, "max_x": -np.inf,
            "min_y": np.inf, "max_y": -np.inf,
            "min_sigma": np.inf, "max_sigma": -np.inf,
        }
        # Current chunk buffer.
        self._buf_means: list[np.ndarray] = []
        self._buf_sigmas: list[np.ndarray] = []
        self._buf_lengths: list[int] = []
        self._buf_times: list[np.ndarray] = []
        self._buf_rows = 0
        self._rows_flushed = 0

        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._spools: dict[str, io.BufferedWriter] = {}
        self._spool_paths: dict[str, Path] = {}
        columns = ["xy", "sigma"] + (["ts"] if self.store_times else [])
        try:
            for name in columns:
                fd, tmp = tempfile.mkstemp(
                    dir=self.path.parent, prefix=self.path.name + ".", suffix=f".{name}.tmp"
                )
                self._spools[name] = os.fdopen(fd, "wb")
                self._spool_paths[name] = Path(tmp)
        except BaseException:
            self.abort()
            raise
        self._closed = False

    # -- appending -----------------------------------------------------------------

    def append(self, traj: UncertainTrajectory) -> None:
        """Append one trajectory (already-validated value object)."""
        self.append_arrays(
            traj.means,
            traj.sigmas,
            object_id=traj.object_id,
            start_time=traj.start_time,
            dt=traj.dt,
        )

    def append_arrays(
        self,
        means: np.ndarray,
        sigmas: np.ndarray | float,
        *,
        object_id: str = "",
        start_time: float = 0.0,
        dt: float = 1.0,
    ) -> None:
        """Append one trajectory from raw arrays (same validation as the type).

        The store must never contain data :class:`UncertainTrajectory`
        would refuse, so the checks mirror its constructor exactly.
        """
        if self._closed:
            raise RuntimeError("StoreWriter is closed")
        means = np.ascontiguousarray(means, dtype=np.float64)
        if means.ndim != 2 or means.shape[1] != 2:
            raise ValueError(f"means must have shape (n, 2), got {means.shape}")
        n = means.shape[0]
        sigmas_arr = np.ascontiguousarray(
            np.broadcast_to(np.asarray(sigmas, dtype=np.float64), (n,))
        )
        if not np.all(np.isfinite(means)):
            raise ValueError("means must be finite")
        if n and (not np.all(np.isfinite(sigmas_arr)) or np.any(sigmas_arr <= 0)):
            raise ValueError("sigmas must be positive and finite")
        if not (np.isfinite(dt) and dt > 0):
            raise ValueError("dt must be a positive finite float")
        if not np.isfinite(start_time):
            raise ValueError("start_time must be finite")

        if self.positions == "q32":
            # Store exactly what readers will decode: quantise immediately so
            # the running stats and the content hash describe the file.
            q = encode.quantise(means, np.asarray(self.quant_origin), self.quant_scale)
            means = encode.dequantise(q, np.asarray(self.quant_origin), self.quant_scale)

        if n:
            self._stats["min_x"] = min(self._stats["min_x"], float(means[:, 0].min()))
            self._stats["max_x"] = max(self._stats["max_x"], float(means[:, 0].max()))
            self._stats["min_y"] = min(self._stats["min_y"], float(means[:, 1].min()))
            self._stats["max_y"] = max(self._stats["max_y"], float(means[:, 1].max()))
            self._stats["min_sigma"] = min(self._stats["min_sigma"], float(sigmas_arr.min()))
            self._stats["max_sigma"] = max(self._stats["max_sigma"], float(sigmas_arr.max()))

        self._lengths.append(n)
        self._start_times.append(float(start_time))
        self._dts.append(float(dt))
        self._object_ids.append(str(object_id))
        self._buf_means.append(means)
        self._buf_sigmas.append(sigmas_arr)
        self._buf_lengths.append(n)
        if self.store_times:
            ticks = np.rint(
                (float(start_time) + np.arange(n, dtype=np.float64) * float(dt))
                / self.tick
            ).astype(np.int64)
            self._buf_times.append(ticks)
        self._buf_rows += n
        if self._buf_rows >= self.chunk_rows:
            self._flush_chunk()

    def extend(self, trajectories) -> None:
        """Append every trajectory of an iterable (e.g. a dataset)."""
        for traj in trajectories:
            self.append(traj)

    # -- chunk plumbing ------------------------------------------------------------

    def _spool_blob(self, column: str, raw: bytes) -> dict:
        blob = encode.compress_blob(raw, self.compression)
        spool = self._spools[column]
        offset = spool.tell()
        spool.write(blob)
        return {"offset": offset, "nbytes": len(blob), "raw_nbytes": len(raw)}

    def _flush_chunk(self) -> None:
        if self._buf_rows == 0:
            return
        lengths = np.asarray(self._buf_lengths, dtype=np.int64)
        means = (
            np.concatenate(self._buf_means, axis=0)
            if self._buf_means
            else np.empty((0, 2))
        )
        sigmas = (
            np.concatenate(self._buf_sigmas) if self._buf_sigmas else np.empty(0)
        )
        if self.positions == "q32":
            q = encode.quantise(means, np.asarray(self.quant_origin), self.quant_scale)
            xy_raw = _tolist(encode.delta_encode(q, lengths).astype("<i4"))
        else:
            xy_raw = _tolist(means.astype("<f8", copy=False))
        chunk = {
            "traj_lo": len(self._lengths) - len(self._buf_lengths),
            "traj_hi": len(self._lengths),
            "row_lo": self._rows_flushed,
            "row_hi": self._rows_flushed + self._buf_rows,
            "xy": self._spool_blob("xy", xy_raw),
            "sigma": self._spool_blob("sigma", _tolist(sigmas.astype("<f8", copy=False))),
        }
        if self.store_times:
            ticks = (
                np.concatenate(self._buf_times)
                if self._buf_times
                else np.empty(0, dtype=np.int64)
            )
            chunk["ts"] = self._spool_blob(
                "ts", _tolist(encode.delta_encode(ticks, lengths).astype("<i8"))
            )
        self._chunks.append(chunk)
        self._rows_flushed += self._buf_rows
        self._buf_means.clear()
        self._buf_sigmas.clear()
        self._buf_lengths.clear()
        self._buf_times.clear()
        self._buf_rows = 0

    # -- finalisation --------------------------------------------------------------

    def _content_hash(self) -> str:
        """``dataset_fingerprint`` of the decoded dataset, streamed from spools.

        Re-reads the spooled chunks (the trajectory count is only known
        now) and feeds the *decoded* per-trajectory arrays through exactly
        the algorithm :func:`repro.core.index_cache.dataset_fingerprint`
        uses, so a store-backed dataset and its in-RAM twin share cache
        keys without ever materialising the whole dataset here.
        """
        import hashlib

        from repro.core.index_cache import _hash_update_array  # deferred: layering

        h = hashlib.sha256()
        h.update(f"n={len(self._lengths)}".encode())
        all_lengths = np.asarray(self._lengths, dtype=np.int64)
        with open(self._spool_paths["xy"], "rb") as xy_fh, open(
            self._spool_paths["sigma"], "rb"
        ) as sg_fh:
            for chunk in self._chunks:
                lengths = all_lengths[chunk["traj_lo"] : chunk["traj_hi"]]
                means, sigmas = _decode_chunk_blobs(
                    _read_blob(xy_fh, chunk["xy"]),
                    _read_blob(sg_fh, chunk["sigma"]),
                    chunk,
                    lengths,
                    compression=self.compression,
                    positions=self.positions,
                    quant_origin=self.quant_origin,
                    quant_scale=self.quant_scale,
                )
                row = 0
                for n in lengths:
                    _hash_update_array(h, means[row : row + n])
                    _hash_update_array(h, sigmas[row : row + n])
                    row += n
        return h.hexdigest()

    def close(self) -> Path:
        """Flush, stitch and atomically commit the store; returns its path."""
        if self._closed:
            return self.path
        self._flush_chunk()
        for spool in self._spools.values():
            spool.flush()
        content_hash = self._content_hash()
        for spool in self._spools.values():
            spool.close()

        fd, tmp_name = tempfile.mkstemp(
            dir=self.path.parent, prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as out:
                out.write(MAGIC)

                def _align() -> int:
                    pad = (-out.tell()) % _ALIGN
                    if pad:
                        out.write(b"\0" * pad)
                    return out.tell()

                column_bases: dict[str, int] = {}
                for name, spool_path in self._spool_paths.items():
                    column_bases[name] = _align()
                    with open(spool_path, "rb") as src:
                        while True:
                            block = src.read(1 << 20)
                            if not block:
                                break
                            out.write(block)

                chunks_out = []
                for chunk in self._chunks:
                    entry = {
                        k: chunk[k]
                        for k in ("traj_lo", "traj_hi", "row_lo", "row_hi")
                    }
                    for name in self._spool_paths:
                        ref = dict(chunk[name])
                        ref["offset"] += column_bases[name]
                        entry[name] = ref
                    chunks_out.append(entry)

                def _blob(data: bytes) -> dict:
                    offset = _align()
                    out.write(data)
                    return {"offset": offset, "nbytes": len(data), "raw_nbytes": len(data)}

                traj_columns = {
                    "lengths": _blob(_tolist(np.asarray(self._lengths, dtype="<i8"))),
                    "start_times": _blob(
                        _tolist(np.asarray(self._start_times, dtype="<f8"))
                    ),
                    "dts": _blob(_tolist(np.asarray(self._dts, dtype="<f8"))),
                    "object_ids": _blob(
                        json.dumps(self._object_ids).encode("utf-8")
                    ),
                }

                stats = {
                    k: (None if not np.isfinite(v) else v)
                    for k, v in self._stats.items()
                }
                footer = {
                    "format": FORMAT_NAME,
                    "version": FORMAT_VERSION,
                    "metadata": self.metadata,
                    "n_trajectories": len(self._lengths),
                    "total_snapshots": self._rows_flushed,
                    "compression": self.compression,
                    "positions": self.positions,
                    "quant": (
                        None
                        if self.positions != "q32"
                        else {"scale": self.quant_scale, "origin": list(self.quant_origin)}
                    ),
                    "timestamps": self.store_times,
                    "tick": self.tick if self.store_times else None,
                    "stats": stats,
                    "content_hash": content_hash,
                    "traj_columns": traj_columns,
                    "chunks": chunks_out,
                }
                footer_bytes = json.dumps(footer, separators=(",", ":")).encode("utf-8")
                out.write(footer_bytes)
                out.write(struct.pack("<Q", len(footer_bytes)))
                out.write(MAGIC)
                out.flush()
                os.fsync(out.fileno())
            os.replace(tmp_name, self.path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        finally:
            self._cleanup_spools()
            self._closed = True
        return self.path

    def abort(self) -> None:
        """Discard everything written so far (temp files removed, no commit)."""
        self._cleanup_spools()
        self._closed = True

    def _cleanup_spools(self) -> None:
        for spool in getattr(self, "_spools", {}).values():
            try:
                spool.close()
            except OSError:
                pass
        for tmp in getattr(self, "_spool_paths", {}).values():
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def __enter__(self) -> "StoreWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self.abort()


def write_store(dataset, path: str | Path, **writer_kwargs) -> Path:
    """Write a whole :class:`~repro.trajectory.dataset.TrajectoryDataset`.

    Metadata defaults to the dataset's own; any :class:`StoreWriter`
    keyword is accepted.
    """
    writer_kwargs.setdefault("metadata", dataset.metadata)
    with StoreWriter(path, **writer_kwargs) as writer:
        writer.extend(dataset)
    return Path(path)


# -- chunk decode helpers (shared by writer hash + reader) --------------------------


def _read_blob(fh, ref: dict) -> bytes:
    fh.seek(ref["offset"])
    data = fh.read(ref["nbytes"])
    if len(data) != ref["nbytes"]:
        raise StoreFormatError("truncated chunk blob")
    return data


def _decode_chunk_blobs(
    xy_blob: bytes,
    sigma_blob: bytes,
    chunk: dict,
    lengths: np.ndarray,
    *,
    compression: str,
    positions: str,
    quant_origin,
    quant_scale,
) -> tuple[np.ndarray, np.ndarray]:
    n_rows = chunk["row_hi"] - chunk["row_lo"]
    xy_raw = encode.decompress_blob(xy_blob, compression, chunk["xy"]["raw_nbytes"])
    sigma_raw = encode.decompress_blob(
        sigma_blob, compression, chunk["sigma"]["raw_nbytes"]
    )
    if positions == "q32":
        deltas = np.frombuffer(xy_raw, dtype="<i4").reshape(n_rows, 2)
        q = encode.delta_decode(deltas, lengths)
        means = encode.dequantise(q, np.asarray(quant_origin), quant_scale)
    else:
        means = np.frombuffer(xy_raw, dtype="<f8").reshape(n_rows, 2).copy()
    sigmas = np.frombuffer(sigma_raw, dtype="<f8").copy()
    if len(sigmas) != n_rows:
        raise StoreFormatError("sigma chunk length disagrees with the chunk table")
    return np.ascontiguousarray(means, dtype=np.float64), sigmas


# -- reader ------------------------------------------------------------------------


class TrajectoryStore:
    """Read side of the ``.tjc`` format; open cost is O(footer).

    Row access modes:

    * ``mode="mmap"`` -- zero-copy ``numpy.memmap`` slices; only for
      uncompressed float64 stores (:attr:`supports_mmap`).  Pages become
      resident as they are touched and stay shareable between processes
      mapping the same file.
    * ``mode="read"`` -- bounded ``pread`` + decode into fresh arrays;
      works for every codec and never grows the mapping, which is what
      the streaming engine uses to keep peak RSS at one chunk.
    * ``mode="auto"`` (default) -- mmap when supported, read otherwise.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        size = self.path.stat().st_size
        if size < len(MAGIC) * 2 + 8:
            raise StoreFormatError(f"{self.path}: too small to be a .tjc store")
        self._fh = open(self.path, "rb")
        try:
            head = self._fh.read(len(MAGIC))
            if head != MAGIC:
                raise StoreFormatError(f"{self.path}: not a .tjc store (bad magic)")
            self._fh.seek(size - len(MAGIC) - 8)
            trailer = self._fh.read(8 + len(MAGIC))
            if trailer[8:] != MAGIC:
                raise StoreFormatError(
                    f"{self.path}: truncated or corrupt store (bad trailing magic)"
                )
            (footer_len,) = struct.unpack("<Q", trailer[:8])
            footer_start = size - len(MAGIC) - 8 - footer_len
            if footer_len <= 0 or footer_start < len(MAGIC):
                raise StoreFormatError(f"{self.path}: corrupt footer length")
            self._fh.seek(footer_start)
            try:
                footer = json.loads(self._fh.read(footer_len).decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise StoreFormatError(f"{self.path}: unreadable footer: {exc}") from exc
            if not isinstance(footer, dict) or footer.get("format") != FORMAT_NAME:
                raise StoreFormatError(f"{self.path}: not a {FORMAT_NAME} file")
            if footer.get("version") != FORMAT_VERSION:
                raise StoreFormatError(
                    f"{self.path}: unsupported {FORMAT_NAME} version "
                    f"{footer.get('version')!r} (reader supports {FORMAT_VERSION})"
                )
            self._footer = footer
        except BaseException:
            self._fh.close()
            raise
        self.size_bytes = size
        self.metadata: dict = dict(footer.get("metadata") or {})
        self.n_trajectories = int(footer["n_trajectories"])
        self.total_snapshots = int(footer["total_snapshots"])
        self.compression = str(footer["compression"])
        self.positions = str(footer["positions"])
        self.quant = footer.get("quant")
        self.has_timestamps = bool(footer.get("timestamps"))
        self.tick = footer.get("tick")
        self.stats: dict = dict(footer.get("stats") or {})
        self.content_hash = str(footer["content_hash"])
        self.format_version = int(footer["version"])
        self._chunks: list[dict] = list(footer["chunks"])
        self._chunk_row_los = np.asarray(
            [c["row_lo"] for c in self._chunks], dtype=np.int64
        )
        self._traj_columns = footer["traj_columns"]
        self._lengths: np.ndarray | None = None
        self._row_offsets: np.ndarray | None = None
        self._start_times: np.ndarray | None = None
        self._dts: np.ndarray | None = None
        self._object_ids: list[str] | None = None
        self._xy_mmap: np.ndarray | None = None
        self._sigma_mmap: np.ndarray | None = None
        # Tiny decoded-chunk cache so per-trajectory iteration over a
        # compressed store does not re-inflate its chunk every call.
        self._chunk_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._closed = False

    # -- lifecycle -----------------------------------------------------------------

    def close(self) -> None:
        """Drop the file handle and mapped views (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._xy_mmap = None
        self._sigma_mmap = None
        # The per-trajectory columns are np.memmap instances, each holding
        # its own mapping of the file: dropping the references here is what
        # lets a retired serving snapshot release every fd it owns, not
        # just the footer handle.  Consumers that already took views keep
        # the underlying mappings alive through numpy's base chain.
        self._lengths = None
        self._row_offsets = None
        self._start_times = None
        self._dts = None
        self._object_ids = None
        self._chunk_cache.clear()
        try:
            self._fh.close()
        except OSError:
            pass

    def __enter__(self) -> "TrajectoryStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"TrajectoryStore({self.path.name!r}, {self.n_trajectories} trajectories, "
            f"{self.total_snapshots} snapshots, {self.compression}/{self.positions})"
        )

    # -- trajectory table ----------------------------------------------------------

    def _traj_column(self, name: str, dtype: str) -> np.ndarray:
        ref = self._traj_columns[name]
        count = ref["nbytes"] // np.dtype(dtype).itemsize
        if count == 0:
            return np.empty(0, dtype=dtype)
        return np.memmap(
            self.path, dtype=dtype, mode="r", offset=ref["offset"], shape=(count,)
        )

    @property
    def lengths(self) -> np.ndarray:
        """Per-trajectory snapshot counts (int64, memory-mapped)."""
        if self._lengths is None:
            self._lengths = self._traj_column("lengths", "<i8")
        return self._lengths

    @property
    def row_offsets(self) -> np.ndarray:
        """Global row offset of each trajectory plus a final total sentinel."""
        if self._row_offsets is None:
            self._row_offsets = np.concatenate(
                [[0], np.cumsum(np.asarray(self.lengths, dtype=np.int64))]
            ).astype(np.int64)
        return self._row_offsets

    @property
    def start_times(self) -> np.ndarray:
        if self._start_times is None:
            self._start_times = self._traj_column("start_times", "<f8")
        return self._start_times

    @property
    def dts(self) -> np.ndarray:
        if self._dts is None:
            self._dts = self._traj_column("dts", "<f8")
        return self._dts

    @property
    def object_ids(self) -> list[str]:
        if self._object_ids is None:
            ref = self._traj_columns["object_ids"]
            raw = _read_blob(self._fh, ref)
            ids = json.loads(raw.decode("utf-8"))
            if not isinstance(ids, list) or len(ids) != self.n_trajectories:
                raise StoreFormatError(f"{self.path}: corrupt object_ids column")
            self._object_ids = [str(i) for i in ids]
        return self._object_ids

    # -- row columns ---------------------------------------------------------------

    @property
    def supports_mmap(self) -> bool:
        """True when xy/sigma slices can be served as zero-copy memmap views."""
        return self.compression == "none" and self.positions == "f64"

    def _resolve_mode(self, mode: str) -> str:
        if mode == "auto":
            return "mmap" if self.supports_mmap else "read"
        if mode == "mmap" and not self.supports_mmap:
            raise ValueError(
                f"store {self.path.name} ({self.compression}/{self.positions}) "
                "does not support zero-copy mmap access"
            )
        if mode not in ("mmap", "read"):
            raise ValueError(f"unknown access mode {mode!r}")
        return mode

    def _xy_map(self) -> np.ndarray:
        if self._xy_mmap is None:
            base = self._chunks[0]["xy"]["offset"] if self._chunks else len(MAGIC)
            self._xy_mmap = np.memmap(
                self.path, dtype="<f8", mode="r", offset=base,
                shape=(self.total_snapshots, 2),
            )
        return self._xy_mmap

    def _sigma_map(self) -> np.ndarray:
        if self._sigma_mmap is None:
            base = self._chunks[0]["sigma"]["offset"] if self._chunks else len(MAGIC)
            self._sigma_mmap = np.memmap(
                self.path, dtype="<f8", mode="r", offset=base,
                shape=(self.total_snapshots,),
            )
        return self._sigma_mmap

    def _decoded_chunk(self, ci: int) -> tuple[np.ndarray, np.ndarray]:
        cached = self._chunk_cache.get(ci)
        if cached is not None:
            return cached
        chunk = self._chunks[ci]
        lengths = np.asarray(
            self.lengths[chunk["traj_lo"] : chunk["traj_hi"]], dtype=np.int64
        )
        quant = self.quant or {}
        decoded = _decode_chunk_blobs(
            self._pread(chunk["xy"]),
            self._pread(chunk["sigma"]),
            chunk,
            lengths,
            compression=self.compression,
            positions=self.positions,
            quant_origin=tuple(quant.get("origin", (0.0, 0.0))),
            quant_scale=quant.get("scale"),
        )
        self._chunk_cache[ci] = decoded
        while len(self._chunk_cache) > 2:
            self._chunk_cache.pop(next(iter(self._chunk_cache)))
        return decoded

    def _pread(self, ref: dict) -> bytes:
        data = os.pread(self._fh.fileno(), ref["nbytes"], ref["offset"])
        if len(data) != ref["nbytes"]:
            raise StoreFormatError(f"{self.path}: truncated chunk blob")
        return data

    def _check_rows(self, row_lo: int, row_hi: int) -> None:
        if not 0 <= row_lo <= row_hi <= self.total_snapshots:
            raise IndexError(
                f"row span [{row_lo}, {row_hi}) out of range "
                f"[0, {self.total_snapshots})"
            )

    def means(self, row_lo: int, row_hi: int, *, mode: str = "auto") -> np.ndarray:
        """Snapshot means of global rows ``[row_lo, row_hi)`` as ``(n, 2)``."""
        self._check_rows(row_lo, row_hi)
        if self._resolve_mode(mode) == "mmap":
            return self._xy_map()[row_lo:row_hi]
        return self._gather(row_lo, row_hi, 0)

    def sigmas(self, row_lo: int, row_hi: int, *, mode: str = "auto") -> np.ndarray:
        """Snapshot sigmas of global rows ``[row_lo, row_hi)``."""
        self._check_rows(row_lo, row_hi)
        if self._resolve_mode(mode) == "mmap":
            return self._sigma_map()[row_lo:row_hi]
        return self._gather(row_lo, row_hi, 1)

    def _gather(self, row_lo: int, row_hi: int, which: int) -> np.ndarray:
        if row_hi == row_lo:
            return np.empty((0, 2)) if which == 0 else np.empty(0)
        first = int(np.searchsorted(self._chunk_row_los, row_lo, side="right")) - 1
        parts = []
        for ci in range(max(first, 0), len(self._chunks)):
            chunk = self._chunks[ci]
            if chunk["row_lo"] >= row_hi:
                break
            block = self._decoded_chunk(ci)[which]
            lo = max(row_lo, chunk["row_lo"]) - chunk["row_lo"]
            hi = min(row_hi, chunk["row_hi"]) - chunk["row_lo"]
            parts.append(block[lo:hi])
        return np.concatenate(parts, axis=0) if len(parts) != 1 else parts[0]

    def times(self, row_lo: int, row_hi: int) -> np.ndarray:
        """Decoded int64 timestamp ticks (requires ``timestamps`` column)."""
        if not self.has_timestamps:
            raise ValueError(f"{self.path.name} was written without timestamps")
        self._check_rows(row_lo, row_hi)
        first = int(np.searchsorted(self._chunk_row_los, row_lo, side="right")) - 1
        parts = []
        for ci in range(max(first, 0), len(self._chunks)):
            chunk = self._chunks[ci]
            if chunk["row_lo"] >= row_hi:
                break
            lengths = np.asarray(
                self.lengths[chunk["traj_lo"] : chunk["traj_hi"]], dtype=np.int64
            )
            raw = encode.decompress_blob(
                self._pread(chunk["ts"]), self.compression, chunk["ts"]["raw_nbytes"]
            )
            ticks = encode.delta_decode(np.frombuffer(raw, dtype="<i8"), lengths)
            lo = max(row_lo, chunk["row_lo"]) - chunk["row_lo"]
            hi = min(row_hi, chunk["row_hi"]) - chunk["row_lo"]
            parts.append(ticks[lo:hi])
        return (
            np.concatenate(parts)
            if parts
            else np.empty(0, dtype=np.int64)
        )

    def iter_row_chunks(self, *, mode: str = "read"):
        """Yield ``(row_lo, row_hi, means, sigmas)`` per stored chunk, in order.

        The sequential-scan primitive: one chunk resident at a time in
        ``"read"`` mode, zero-copy views in ``"mmap"`` mode.
        """
        for ci, chunk in enumerate(self._chunks):
            lo, hi = chunk["row_lo"], chunk["row_hi"]
            if self._resolve_mode(mode) == "mmap":
                yield lo, hi, self._xy_map()[lo:hi], self._sigma_map()[lo:hi]
            else:
                means, sigmas = self._decoded_chunk(ci)
                self._chunk_cache.pop(ci, None)  # sequential: no reuse
                yield lo, hi, means, sigmas

    # -- trajectory access ---------------------------------------------------------

    def trajectory(self, index: int) -> UncertainTrajectory:
        """Materialise one trajectory (validating value object, copies).

        Always reads via bounded ``pread`` (``mode="read"``): a sweep of
        single-trajectory accesses must not fault the whole file into the
        process mapping, or a "scan one at a time" loop would carry the
        dataset's full RSS anyway.  Sequential sweeps still decode each
        column chunk once thanks to the chunk LRU.
        """
        if not 0 <= index < self.n_trajectories:
            raise IndexError(
                f"trajectory index {index} out of range [0, {self.n_trajectories})"
            )
        offsets = self.row_offsets
        lo, hi = int(offsets[index]), int(offsets[index + 1])
        return UncertainTrajectory(
            self.means(lo, hi, mode="read"),
            self.sigmas(lo, hi, mode="read"),
            object_id=self.object_ids[index],
            start_time=float(self.start_times[index]),
            dt=float(self.dts[index]),
        )

    def materialise(self, traj_lo: int = 0, traj_hi: int | None = None):
        """Eager :class:`~repro.trajectory.dataset.TrajectoryDataset` span."""
        from repro.trajectory.dataset import TrajectoryDataset

        traj_hi = self.n_trajectories if traj_hi is None else traj_hi
        if not 0 <= traj_lo <= traj_hi <= self.n_trajectories:
            raise IndexError(
                f"trajectory span [{traj_lo}, {traj_hi}) out of range "
                f"[0, {self.n_trajectories})"
            )
        return TrajectoryDataset(
            [self.trajectory(i) for i in range(traj_lo, traj_hi)],
            metadata=self.metadata,
        )

    def dataset(self, *, mode: str = "auto"):
        """Lazy store-backed dataset over every trajectory (see storage.dataset)."""
        from repro.storage.dataset import StoreDataset

        return StoreDataset(self, 0, self.n_trajectories, mode=mode)

    def span(self, traj_lo: int, traj_hi: int, *, mode: str = "auto"):
        """Lazy store-backed dataset over the trajectory span ``[lo, hi)``."""
        from repro.storage.dataset import StoreDataset

        return StoreDataset(self, traj_lo, traj_hi, mode=mode)

    def describe(self) -> dict:
        """Header summary (what ``repro store-info`` prints)."""
        return {
            "path": str(self.path),
            "format": FORMAT_NAME,
            "version": self.format_version,
            "size_bytes": self.size_bytes,
            "n_trajectories": self.n_trajectories,
            "total_snapshots": self.total_snapshots,
            "compression": self.compression,
            "positions": self.positions,
            "quant": self.quant,
            "timestamps": self.has_timestamps,
            "n_chunks": len(self._chunks),
            "supports_mmap": self.supports_mmap,
            "content_hash": self.content_hash,
            "stats": self.stats,
            "metadata": self.metadata,
        }


def open_store(path: str | Path) -> TrajectoryStore:
    """Open a ``.tjc`` store for reading (O(footer) cost)."""
    return TrajectoryStore(path)
