"""Render trace files and run manifests into human-readable tables.

``trajpattern report <file>`` routes here: a JSONL span trace becomes a
per-phase timing table (plus a per-shard breakdown when worker spans are
present), a run manifest becomes a key/metric summary.  The loaders
validate the schemas strictly and raise ``ValueError`` on malformed
input -- CI runs ``report`` over the artifacts of a traced mining run, so
a schema regression fails the build instead of shipping silently.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.manifest import MANIFEST_FORMAT, load_manifest
from repro.obs.metrics import NS_PER_S
from repro.obs.tracing import SPAN_RECORD_KEYS


# -- trace loading -----------------------------------------------------------


def load_trace(path: str | Path) -> list[dict]:
    """Parse and validate a span JSONL file.

    Every line must be a JSON object carrying all of
    :data:`~repro.obs.tracing.SPAN_RECORD_KEYS`; anything else raises
    ``ValueError`` with the offending line number.
    """
    path = Path(path)
    spans: list[dict] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(record, dict) or record.get("kind") != "span":
                raise ValueError(f"{path}:{lineno}: not a span record")
            missing = [k for k in SPAN_RECORD_KEYS if k not in record]
            if missing:
                raise ValueError(
                    f"{path}:{lineno}: span record missing {missing}"
                )
            spans.append(record)
    if not spans:
        raise ValueError(f"{path}: empty trace")
    return spans


def span_children(spans: list[dict]) -> dict[str | None, list[dict]]:
    """Parent span id -> child records (roots under ``None``/unknown ids)."""
    ids = {s["span"] for s in spans}
    children: dict[str | None, list[dict]] = {}
    for s in spans:
        parent = s.get("parent")
        key = parent if parent in ids else None
        children.setdefault(key, []).append(s)
    return children


# -- formatting helpers -------------------------------------------------------


def _fmt_s(ns: float) -> str:
    return f"{ns / NS_PER_S:.3f}s"


def _fmt_ms(ns: float) -> str:
    return f"{ns / 1e6:.1f}ms"


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells):
        # First column left-aligned, numbers right-aligned.
        out = [cells[0].ljust(widths[0])]
        out += [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
        return "  ".join(out)

    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


# -- trace rendering ----------------------------------------------------------


def render_trace_report(spans: list[dict]) -> str:
    """Per-phase timing table (and per-shard breakdown) of one trace."""
    t_start = min(s["ts_ns"] for s in spans)
    t_end = max(s["ts_ns"] + s["dur_ns"] for s in spans)
    wall_ns = max(t_end - t_start, 1)

    by_name: dict[str, list[dict]] = {}
    for s in spans:
        by_name.setdefault(s["name"], []).append(s)

    rows = []
    for name, group in sorted(
        by_name.items(), key=lambda item: -sum(s["dur_ns"] for s in item[1])
    ):
        total = sum(s["dur_ns"] for s in group)
        rows.append(
            [
                name,
                str(len(group)),
                _fmt_s(total),
                _fmt_ms(total / len(group)),
                _fmt_ms(max(s["dur_ns"] for s in group)),
                f"{100.0 * total / wall_ns:.1f}%",
            ]
        )
    lines = [
        f"trace {spans[0]['trace']}: {len(spans)} spans over "
        f"{wall_ns / NS_PER_S:.3f}s wall "
        f"({len({s['pid'] for s in spans})} process(es))",
        "",
        _table(["phase", "count", "total", "mean", "max", "wall%"], rows),
    ]

    sharded: dict[tuple[str, object], list[int]] = {}
    for s in spans:
        shard = (s.get("attrs") or {}).get("shard")
        if shard is not None:
            sharded.setdefault((s["name"], shard), []).append(s["dur_ns"])
    if sharded:
        shard_rows = [
            [name, str(shard), str(len(durs)), _fmt_s(sum(durs))]
            for (name, shard), durs in sorted(sharded.items())
        ]
        lines += [
            "",
            "per-shard spans:",
            _table(["phase", "shard", "count", "total"], shard_rows),
        ]
    return "\n".join(lines)


# -- manifest rendering -------------------------------------------------------


def render_manifest_report(manifest: dict) -> str:
    """Key facts plus a timing table derived from the metric snapshot."""
    runtime = manifest.get("runtime") or {}
    lines = [
        f"run manifest: {manifest.get('command')}",
        f"  git sha:     {manifest.get('git_sha')}",
        f"  dataset:     {manifest.get('dataset_fingerprint', '')[:16]}…",
        f"  timestamp:   {runtime.get('timestamp')}",
        f"  wall time:   {runtime.get('wall_time_s'):.3f}s"
        if runtime.get("wall_time_s") is not None
        else "  wall time:   n/a",
        f"  cpu time:    {runtime.get('cpu_time_s'):.3f}s"
        if runtime.get("cpu_time_s") is not None
        else "  cpu time:    n/a",
        f"  peak rss:    {runtime.get('peak_rss_bytes', 0) / 2**20:.1f} MiB",
    ]
    arguments = manifest.get("arguments") or {}
    if arguments:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(arguments.items()))
        lines.append(f"  arguments:   {rendered}")

    metrics = manifest.get("metrics") or {}
    histograms = metrics.get("histograms") or {}
    timer_rows = [
        [
            name,
            str(data.get("count", 0)),
            _fmt_s(data.get("total", 0.0)),
            _fmt_ms(data.get("mean", 0.0)),
            _fmt_ms(data.get("max", 0.0)),
        ]
        for name, data in sorted(
            histograms.items(), key=lambda item: -item[1].get("total", 0.0)
        )
        if data.get("unit") == "ns"
    ]
    if timer_rows:
        lines += [
            "",
            "phase timings (metric snapshot):",
            _table(["phase", "count", "total", "mean", "max"], timer_rows),
        ]
    counters = metrics.get("counters") or {}
    if counters:
        counter_rows = [[n, str(v)] for n, v in sorted(counters.items())]
        lines += ["", "counters:", _table(["counter", "value"], counter_rows)]
    gauges = metrics.get("gauges") or {}
    if gauges:
        gauge_rows = [[n, f"{v:g}"] for n, v in sorted(gauges.items())]
        lines += ["", "gauges:", _table(["gauge", "value"], gauge_rows)]
    return "\n".join(lines)


# -- dispatch -----------------------------------------------------------------


def render_file(path: str | Path) -> str:
    """Pretty-print a trace JSONL or run-manifest JSON file.

    Dispatches on content: a JSON object with the manifest format tag is
    rendered as a manifest, anything else is validated as a span trace.
    Raises ``ValueError`` when the file is neither.
    """
    path = Path(path)
    try:
        first = json.loads(path.read_text(encoding="utf-8"))
        is_manifest = (
            isinstance(first, dict) and first.get("format") == MANIFEST_FORMAT
        )
    except ValueError:
        is_manifest = False  # multi-line JSONL traces fail the single parse
    except OSError as exc:
        raise ValueError(f"{path}: unreadable: {exc}") from exc
    if is_manifest:
        return render_manifest_report(load_manifest(path))
    return render_trace_report(load_trace(path))
