"""Edge-case behaviour across components.

These pin down behaviours at the boundaries of the configuration space --
degenerate pattern/trajectory sizes, deliberately truncated indexes,
single-level miners -- where regressions typically hide.
"""

import numpy as np
import pytest

from repro.baselines.match_miner import MatchMiner
from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.core.trajpattern import TrajPatternMiner
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

GRID = Grid(BoundingBox.unit(), nx=4, ny=4)


def engine_for(trajectories, **config_kwargs):
    defaults = dict(delta=0.25, min_prob=1e-4)
    defaults.update(config_kwargs)
    return NMEngine(
        TrajectoryDataset(trajectories), GRID, EngineConfig(**defaults)
    )


class TestDegenerateSizes:
    def test_single_snapshot_trajectories(self):
        engine = engine_for(
            [UncertainTrajectory([[0.4, 0.4]], 0.1) for _ in range(3)]
        )
        cell = engine.active_cells[0]
        # Length-1 pattern has windows; length-2 has none anywhere.
        assert engine.nm(TrajectoryPattern((cell,))) > 3 * engine.floor_log_prob
        assert engine.nm(TrajectoryPattern((cell, cell))) == pytest.approx(
            3 * engine.floor_log_prob
        )

    def test_pattern_longer_than_every_trajectory(self):
        engine = engine_for(
            [UncertainTrajectory(np.full((2, 2), 0.5), 0.1)]
        )
        long = TrajectoryPattern(tuple(engine.active_cells[:1]) * 5)
        assert engine.nm(long) == engine.floor_log_prob
        assert engine.match(long) == pytest.approx(
            np.exp(engine.floor_log_prob * 5)
        )

    def test_mixed_length_dataset_window_plumbing(self):
        """Trajectories shorter than the pattern interleave with longer
        ones; boundary masking must not leak windows across them."""
        rng = np.random.default_rng(0)
        trajectories = [
            UncertainTrajectory(rng.uniform(0.3, 0.7, (n, 2)), 0.1)
            for n in (5, 2, 6, 1, 4)
        ]
        engine = engine_for(trajectories)
        from repro.core.measures import nm_pattern_dataset

        cells = engine.active_cells
        pattern = TrajectoryPattern((cells[0], cells[1], cells[0]))
        expected = nm_pattern_dataset(
            pattern,
            engine.dataset,
            GRID,
            0.25,
            min_log_prob=engine.floor_log_prob,
        )
        assert engine.nm(pattern) == pytest.approx(expected, abs=1e-9)


class TestTruncatedIndex:
    def test_explicit_small_radius_stays_consistent(self):
        """An explicitly truncated enumeration radius degrades gracefully:
        stored entries still beat the floor and evaluation still runs."""
        rng = np.random.default_rng(1)
        trajectories = [
            UncertainTrajectory(rng.uniform(0.2, 0.8, (6, 2)), 0.15)
            for _ in range(4)
        ]
        truncated = engine_for(trajectories, radius_sigmas=1.0)
        full = engine_for(trajectories)
        assert truncated.n_index_entries < full.n_index_entries
        cell = truncated.active_cells[0]
        # Truncation can only *lower* stored probabilities toward the
        # floor, never raise them.
        assert truncated.nm(TrajectoryPattern((cell,))) <= full.nm(
            TrajectoryPattern((cell,))
        ) + 1e-9


class TestSingleLevelMiners:
    def test_match_miner_max_length_one(self, tiny_engine):
        result = MatchMiner(tiny_engine, k=3, max_length=1).mine()
        assert all(p.is_singular for p in result.patterns)
        table = tiny_engine.singular_match_table()
        expected = sorted(table.values(), reverse=True)[:3]
        assert result.match_values == pytest.approx(expected)

    def test_trajpattern_max_length_one(self, tiny_engine):
        result = TrajPatternMiner(tiny_engine, k=3, max_length=1).mine()
        table = tiny_engine.singular_nm_table()
        expected = sorted(table.values(), reverse=True)[:3]
        assert result.nm_values == pytest.approx(expected)

    def test_k_one(self, tiny_engine):
        result = TrajPatternMiner(tiny_engine, k=1, max_length=3).mine()
        assert len(result) == 1


class TestIdenticalTrajectories:
    def test_duplicates_scale_nm_linearly(self):
        base = UncertainTrajectory(
            GRID.cell_centers([0, 1, 2]).copy(), 0.1
        )
        one = engine_for([base])
        three = engine_for([base, base, base])
        pattern = TrajectoryPattern((0, 1))
        assert three.nm(pattern) == pytest.approx(3 * one.nm(pattern), abs=1e-9)
        assert three.match(pattern) == pytest.approx(
            3 * one.match(pattern), rel=1e-9
        )
