"""The distributed mining coordinator: ``DistNMEngine`` over worker pools.

:class:`DistNMEngine` presents the exact engine surface of
:class:`~repro.core.parallel.ParallelNMEngine` -- the miners and the
wildcard DP run on it unchanged -- but dispatches trajectory spans across
a mixed set of pools:

* :class:`LocalPool` -- fork workers in this process's machine, reusing
  ``repro.core.parallel``'s worker loop over ``(path, lo, hi)`` store
  spans;
* :class:`RemotePool` -- a ``repro worker --listen`` process reached over
  TCP, speaking :mod:`repro.dist.wire`.

Exactness and failover
----------------------
All reductions go through the module-level merge functions of
:mod:`repro.core.parallel` (``merge_batch_sums`` and friends), fed
per-span results in **global span order** -- one flat fold, never a merge
of partial merges.  The reduction order is therefore a pure function of
the span partition: *which pool* computed a span (or recomputed it after
a failure) cannot change a single bit of the result.  That is the whole
failover story: when a pool crashes or times out mid-op, its spans are
re-opened on the survivors, the op is re-dispatched for just those spans,
and the merged result is bit-identical to the run where nothing died.
The differential oracle pins this at 0 ULP against the single-box
parallel path (``repro selfcheck --dist``).

Data never travels: the coordinator ships ``(store_hash, lo, hi)`` span
coordinates plus grid/config/kernel tag; every pool opens its local copy
of the ``.tjc`` store.  A pool whose store hash or Prob-kernel tag
differs refuses the handshake -- the two silent bit-identity killers are
loud protocol errors instead.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import socket
from typing import Any, Sequence

import numpy as np

from repro.core import kernels
from repro.core.engine import EngineConfig, ExtensionTables
from repro.core.parallel import (
    _WorkerInit,
    _worker_main,
    merge_batch_sums,
    merge_extension_tables,
    merge_per_trajectory,
    merge_scalar_sums,
    merge_singular_tables,
    shard_dataset,
    _skew,
)
from repro.core.pattern import TrajectoryPattern
from repro.dist import wire
from repro.geometry.grid import Grid
from repro.obs import logs, metrics, tracing
from repro.storage import open_store
from repro.testkit import faults
from repro.trajectory.dataset import TrajectoryDataset

_log = logs.get_logger("dist.coordinator")

#: Default per-op deadline.  Generous -- an op covers a whole span batch
#: -- but finite, so a hung pool becomes a failover instead of a hang.
DEFAULT_OP_TIMEOUT_S = 300.0
DEFAULT_CONNECT_TIMEOUT_S = 10.0


class DistPoolError(RuntimeError):
    """No pool can run a span: every candidate crashed or timed out."""


class PoolFailure(Exception):
    """Internal: one pool is dead (connection loss, crash, op timeout)."""

    def __init__(self, pool: "LocalPool | RemotePool", cause: str) -> None:
        super().__init__(f"pool {pool.name!r} failed: {cause}")
        self.pool = pool
        self.cause = cause


def parse_pool_spec(spec: str) -> tuple[str, tuple[str, int] | None]:
    """Parse one ``--pool`` value: ``"local"`` or ``"host:port"``."""
    if spec == "local":
        return "local", None
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"pool spec {spec!r} must be 'local' or 'host:port'"
        )
    try:
        return "remote", (host, int(port))
    except ValueError as exc:
        raise ValueError(f"pool spec {spec!r}: bad port") from exc


# -- pools ------------------------------------------------------------------------
#
# Both pool kinds expose the same small surface to the coordinator:
# ``open(spans)`` builds engines for *absolute* store spans, ``dispatch``
# sends one op covering a span subset without waiting, ``collect``
# gathers the per-span results (python objects, matching the fork-worker
# pipe protocol), ``ping`` is the heartbeat and ``close`` releases
# everything.  Connection loss, worker death and deadline overruns all
# surface as PoolFailure -- the coordinator's cue to fail over.  An
# explicit error *response* (a protocol error) raises instead: the pool
# is alive and the request itself is wrong, so retrying elsewhere would
# just fail identically.


class LocalPool:
    """Fork workers on this machine, one per assigned span."""

    kind = "local"

    def __init__(
        self,
        name: str,
        store_path: str,
        worker_config: EngineConfig,
        grid: Grid,
        *,
        trace: tracing.SpanContext | None = None,
        metrics_enabled: bool = False,
        op_timeout_s: float = DEFAULT_OP_TIMEOUT_S,
    ) -> None:
        self.name = name
        self.store_path = store_path
        self.worker_config = worker_config
        self.grid = grid
        self.trace = trace
        self.metrics_enabled = metrics_enabled
        self.op_timeout_s = op_timeout_s
        self.spans: list[tuple[int, int]] = []
        self._workers: dict[tuple[int, int], tuple[Any, Any]] = {}  # span -> (conn, proc)
        self._pending: list[tuple[int, int]] = []
        methods = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in methods else "spawn")

    def open(self, spans: Sequence[tuple[int, int]]) -> list[dict]:
        metas = []
        for span in spans:
            lo, hi = span
            if span not in self._workers:
                init = _WorkerInit(
                    grid=self.grid,
                    config=self.worker_config,
                    means=None,
                    sigmas=None,
                    lengths=(),
                    row_lo=0,
                    row_hi=0,
                    index=None,
                    store=(self.store_path, lo, hi),
                    shard=lo,
                    trace=self.trace,
                    metrics_enabled=self.metrics_enabled,
                )
                parent_conn, child_conn = self._ctx.Pipe()
                proc = self._ctx.Process(
                    target=_worker_main, args=(child_conn, init), daemon=True
                )
                proc.start()
                child_conn.close()
                self._workers[span] = (parent_conn, proc)
                self.spans.append(span)
                self.spans.sort()
            meta = self._recv(span, timeout=self.op_timeout_s)
            metas.append(
                {
                    "span": list(span),
                    "n_traj": meta["n_traj"],
                    "n_entries": int(meta["n_entries"]),
                    "active_cells": [int(c) for c in meta["active_cells"]],
                    "backend": meta["backend"],
                }
            )
        return metas

    def dispatch(self, op: str, payload, spans: Sequence[tuple[int, int]]) -> None:
        self._pending = list(spans)
        for span in self._pending:
            conn, _proc = self._workers[span]
            try:
                conn.send((op, payload))
            except (OSError, ValueError) as exc:
                raise PoolFailure(self, f"pipe send failed: {exc}") from exc

    def collect(self) -> dict[tuple[int, int], Any]:
        out = {}
        for span in self._pending:
            out[span] = self._recv(span, timeout=self.op_timeout_s)
        self._pending = []
        return out

    def _recv(self, span: tuple[int, int], timeout: float):
        conn, _proc = self._workers[span]
        try:
            if not conn.poll(timeout):
                raise PoolFailure(self, f"op timed out after {timeout}s")
            status, payload = conn.recv()
        except (EOFError, OSError) as exc:
            raise PoolFailure(self, f"worker for span {span} died") from exc
        if status == "error":
            raise RuntimeError(f"pool {self.name!r} span {span} failed:\n{payload}")
        return payload

    def ping(self) -> bool:
        return all(proc.is_alive() for _conn, proc in self._workers.values())

    def drain_trace_records(self) -> list:
        records: list = []
        for conn, _proc in self._workers.values():
            try:
                conn.send(("obs_drain", None))
                if not conn.poll(5):
                    continue
                status, payload = conn.recv()
            except (EOFError, OSError, ValueError):
                continue
            if status == "ok":
                records.extend(payload)
        return records

    def close(self) -> None:
        for conn, _proc in self._workers.values():
            try:
                conn.send(("close", None))
            except (OSError, ValueError):
                pass
        for conn, proc in self._workers.values():
            try:
                conn.close()
            except OSError:
                pass
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        self._workers.clear()
        self.spans = []
        self._pending = []


class RemotePool:
    """A ``repro worker --listen`` pool reached over TCP."""

    kind = "remote"

    def __init__(
        self,
        name: str,
        address: tuple[str, int],
        *,
        op_timeout_s: float = DEFAULT_OP_TIMEOUT_S,
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
    ) -> None:
        self.name = name
        self.address = address
        self.op_timeout_s = op_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.spans: list[tuple[int, int]] = []
        self._sock: socket.socket | None = None
        self._reader = None
        self._next_id = 0
        self._pending: list[tuple[int, int]] | None = None
        self._pending_id: int | None = None
        self._pending_op: str | None = None
        self.capabilities: tuple[str, ...] = ()

    # -- low-level round-trips --------------------------------------------

    def _connect(self) -> None:
        try:
            self._sock = socket.create_connection(
                self.address, timeout=self.connect_timeout_s
            )
            self._reader = self._sock.makefile("rb")
        except OSError as exc:
            raise PoolFailure(self, f"cannot connect to {self.address}: {exc}") from exc

    def _send(self, request: dict, timeout: float) -> int:
        if self._sock is None:
            raise PoolFailure(self, "not connected")
        rid = self._next_id
        self._next_id += 1
        request = {"id": rid, **request}
        try:
            self._sock.settimeout(timeout)
            self._sock.sendall(wire.encode(request))
        except OSError as exc:
            raise PoolFailure(self, f"send failed: {exc}") from exc
        return rid

    def _recv(self, rid: int, timeout: float) -> dict:
        if self._sock is None:
            raise PoolFailure(self, "not connected")
        try:
            self._sock.settimeout(timeout)
            line = self._reader.readline(wire.MAX_LINE_BYTES + 1)
        except (OSError, ValueError) as exc:
            raise PoolFailure(self, f"recv failed: {exc}") from exc
        if not line:
            raise PoolFailure(self, "connection closed by worker")
        response = wire.decode_line(line)
        if response.get("id") != rid:
            raise PoolFailure(
                self, f"response id {response.get('id')!r} != request id {rid}"
            )
        if not response.get("ok"):
            detail = response.get("detail", response.get("error", "unknown error"))
            raise RuntimeError(f"pool {self.name!r}: {detail}")
        return response

    def _roundtrip(self, request: dict, timeout: float | None = None) -> dict:
        timeout = self.op_timeout_s if timeout is None else timeout
        rid = self._send(request, timeout)
        return self._recv(rid, timeout)

    # -- pool surface ------------------------------------------------------

    def hello(
        self,
        *,
        store_hash: str,
        grid: Grid,
        config: EngineConfig,
        kernel_tag: str,
        trace: tracing.SpanContext | None,
        metrics_enabled: bool,
    ) -> dict:
        self._connect()
        request = {
            "op": "hello",
            "version": wire.DIST_PROTOCOL_VERSION,
            "store_hash": store_hash,
            "grid": wire.grid_to_wire(grid),
            "config": wire.config_to_wire(config),
            "kernel_tag": kernel_tag,
            "metrics": metrics_enabled,
        }
        if trace is not None:
            request["trace"] = trace.to_wire()
        reply = self._roundtrip(request, timeout=self.connect_timeout_s)
        self.capabilities = tuple(reply.get("capabilities", ()))
        missing = [op for op in wire.DIST_OPS if op not in self.capabilities]
        if missing:
            raise RuntimeError(
                f"pool {self.name!r} lacks required ops: {missing}"
            )
        return reply

    def open(self, spans: Sequence[tuple[int, int]]) -> list[dict]:
        reply = self._roundtrip(
            {"op": "open", "spans": wire.spans_to_wire(spans)}
        )
        for span in spans:
            if span not in self.spans:
                self.spans.append(span)
        self.spans.sort()
        return reply["metas"]

    def dispatch(self, op: str, payload, spans: Sequence[tuple[int, int]]) -> None:
        request: dict = {"op": op, "spans": wire.spans_to_wire(spans)}
        if op in ("nm_batch", "match_batch", "ext_tables"):
            request["patterns"] = wire.patterns_to_wire(payload)
        elif op in ("nm_per_traj", "match_per_traj"):
            request["cells"] = [int(c) for c in payload]
        elif op == "gap_nm":
            request["pattern"] = wire.gap_pattern_to_wire(payload)
        elif op == "best_window":
            cells, traj = payload
            request["cells"] = [int(c) for c in cells]
            request["traj"] = int(traj)
        self._pending = list(spans)
        self._pending_op = op
        self._pending_id = self._send(request, self.op_timeout_s)

    def collect(self) -> dict[tuple[int, int], Any]:
        if self._pending is None:
            return {}
        reply = self._recv(self._pending_id, self.op_timeout_s)
        results = reply.get("results")
        if not isinstance(results, list) or len(results) != len(self._pending):
            raise PoolFailure(
                self, f"malformed results for op {self._pending_op!r}"
            )
        op = self._pending_op
        out = {
            span: self._decode(op, result)
            for span, result in zip(self._pending, results)
        }
        self._pending = None
        self._pending_id = None
        self._pending_op = None
        return out

    @staticmethod
    def _decode(op: str, result):
        if op in ("nm_batch", "match_batch", "nm_per_traj", "match_per_traj"):
            return wire.array_from_wire(result)
        if op in ("singular_nm", "singular_match"):
            return wire.table_from_wire(result)
        if op == "ext_tables":
            return [wire.ext_tables_from_wire(t) for t in result]
        if op == "gap_nm":
            return float(result)
        if op == "best_window":
            return wire.best_window_from_wire(result)
        if op == "stats":
            return (int(result[0]), int(result[1]))
        return result  # obs_snapshot: plain dict

    def ping(self, timeout: float = 5.0) -> bool:
        try:
            self._roundtrip({"op": "ping"}, timeout=timeout)
            return True
        except PoolFailure:
            return False

    def drain_trace_records(self) -> list:
        try:
            reply = self._roundtrip({"op": "obs_drain"}, timeout=10.0)
        except (PoolFailure, RuntimeError):
            return []
        records = reply.get("records", [])
        return records if isinstance(records, list) else []

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._roundtrip({"op": "close"}, timeout=5.0)
            except (PoolFailure, RuntimeError):
                pass
            try:
                self._reader.close()
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._reader = None
        self.spans = []
        self._pending = None


# -- the coordinator ----------------------------------------------------------------


class DistNMEngine:
    """Distributed NM/match evaluation with the ``ParallelNMEngine`` API.

    Parameters
    ----------
    dataset, grid, config:
        As for :class:`~repro.core.engine.NMEngine`.  The dataset **must**
        be backed by a ``.tjc`` store (:attr:`store_ref`): distribution
        ships span coordinates, never data.
    pools:
        Pool specs: ``"local"`` (fork workers on this machine) or
        ``"host:port"`` (a ``repro worker --listen`` process whose local
        store copy hashes identically).  At least one required.
    jobs:
        Number of trajectory spans to shard into (defaults to
        ``max(config.jobs, len(pools))``).  Spans are assigned round-robin
        across pools.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        grid: Grid,
        config: EngineConfig,
        pools: Sequence[str],
        jobs: int | None = None,
        *,
        op_timeout_s: float = DEFAULT_OP_TIMEOUT_S,
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("cannot build an engine over an empty dataset")
        if not pools:
            raise ValueError("at least one pool is required")
        store_ref = getattr(dataset, "store_ref", None)
        if store_ref is None:
            raise ValueError(
                "DistNMEngine needs a store-backed dataset: distribution "
                "ships (store_hash, lo, hi) spans, never data -- convert "
                "with `repro convert` and reopen via repro.storage"
            )
        self.dataset = dataset
        self.grid = grid
        self.config = config
        path, base_lo, _base_hi = store_ref
        self._store_path = str(path)
        self._store_hash = open_store(self._store_path).content_hash
        self._kernel_tag = kernels.prob_kernel_tag(config)
        jobs = max(config.jobs, len(pools)) if jobs is None else jobs
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        rel_spans = shard_dataset(dataset, jobs)
        # Everything below works in *absolute* store coordinates; relative
        # and absolute span order coincide, so merge order is unaffected.
        self.spans = [(base_lo + lo, base_lo + hi) for lo, hi in rel_spans]
        self._base_lo = base_lo
        self.n_spans = len(self.spans)
        self._closed = False
        self._trace_ctx = tracing.current_context()
        self._metrics_enabled = metrics.get_registry().enabled
        self._op_timeout_s = op_timeout_s
        self._connect_timeout_s = connect_timeout_s

        worker_config = wire.config_from_wire(wire.config_to_wire(config))
        self._pools: list[LocalPool | RemotePool] = []
        for i, spec in enumerate(pools):
            kind, address = parse_pool_spec(spec)
            name = f"{kind}-{i}"
            if kind == "local":
                self._pools.append(
                    LocalPool(
                        name,
                        self._store_path,
                        worker_config,
                        grid,
                        trace=self._trace_ctx,
                        metrics_enabled=self._metrics_enabled,
                        op_timeout_s=op_timeout_s,
                    )
                )
            else:
                self._pools.append(
                    RemotePool(
                        name,
                        address,
                        op_timeout_s=op_timeout_s,
                        connect_timeout_s=connect_timeout_s,
                    )
                )
        self._live: list[LocalPool | RemotePool] = []
        self._assignment: dict[tuple[int, int], LocalPool | RemotePool] = {}
        self._span_meta: dict[tuple[int, int], dict] = {}
        try:
            self._start_pools()
        except BaseException:
            self.close()
            raise
        atexit.register(self.close)

    # -- startup -----------------------------------------------------------

    def _start_pools(self) -> None:
        for pool in self._pools:
            if isinstance(pool, RemotePool):
                pool.hello(
                    store_hash=self._store_hash,
                    grid=self.grid,
                    config=self.config,
                    kernel_tag=self._kernel_tag,
                    trace=self._trace_ctx,
                    metrics_enabled=self._metrics_enabled,
                )
            self._live.append(pool)
        for i, span in enumerate(self.spans):
            self._assignment[span] = self._live[i % len(self._live)]
        for pool in self._live:
            assigned = [s for s in self.spans if self._assignment[s] is pool]
            if not assigned:
                continue
            for meta in pool.open(assigned):
                self._span_meta[tuple(meta["span"])] = meta
        entries = [self._span_meta[s]["n_entries"] for s in self.spans]
        self.n_index_entries = int(sum(entries))
        self.shard_skew = _skew(entries)
        cells: set[int] = set()
        for meta in self._span_meta.values():
            cells.update(meta["active_cells"])
        self._active_cells = sorted(cells)
        self._backend_name = str(
            self._span_meta[self.spans[0]].get("backend", "numpy")
        )
        metrics.counter("dist.pools_started").inc(len(self._live))
        metrics.gauge("dist.pools_live").set(len(self._live))
        _log.info(
            "dist pools ready",
            extra={
                "pools": [p.name for p in self._live],
                "spans": self.spans,
                "store_hash": self._store_hash,
                "backend": self._backend_name,
            },
        )

    # -- dispatch with failover --------------------------------------------

    def _fail_pool(self, pool, cause: str) -> None:
        """Mark one pool dead and hand its spans to the survivors."""
        if pool not in self._live:
            return
        self._live.remove(pool)
        metrics.counter("dist.pool_failover").inc()
        metrics.gauge("dist.pools_live").set(len(self._live))
        orphaned = [s for s, p in self._assignment.items() if p is pool]
        _log.warning(
            "pool failed; re-dispatching spans",
            extra={
                "pool": pool.name,
                "cause": cause,
                "orphaned_spans": orphaned,
                "survivors": [p.name for p in self._live],
            },
        )
        try:
            pool.close()
        except Exception:  # noqa: BLE001 - teardown of a dead pool
            pass
        if not self._live:
            raise DistPoolError(
                f"pool {pool.name!r} failed ({cause}) and no pools survive"
            )
        metrics.counter("dist.spans_redispatched").inc(len(orphaned))
        for i, span in enumerate(orphaned):
            self._assignment[span] = self._live[i % len(self._live)]

    def _reopen(self, spans: Sequence[tuple[int, int]]) -> None:
        """Open re-assigned spans on their new pools (post-failover)."""
        by_pool: dict[Any, list[tuple[int, int]]] = {}
        for span in spans:
            by_pool.setdefault(self._assignment[span], []).append(span)
        for pool, pool_spans in list(by_pool.items()):
            missing = [s for s in pool_spans if s not in pool.spans]
            if not missing:
                continue
            try:
                pool.open(missing)
            except PoolFailure as exc:
                self._fail_pool(pool, exc.cause)
                self._reopen(pool_spans)

    def _broadcast(self, op: str, payload, spans: Sequence[tuple[int, int]] | None = None):
        """Run one op over ``spans`` (default: all), surviving pool deaths.

        Results come back keyed by span; merge happens in the caller, in
        global span order, via the shared merge functions.
        """
        if self._closed:
            raise RuntimeError("DistNMEngine is closed")
        todo = list(self.spans) if spans is None else list(spans)
        results: dict[tuple[int, int], Any] = {}
        while todo:
            faults.fire("dist.coordinator.dispatch", op=op, n_spans=len(todo))
            by_pool: dict[Any, list[tuple[int, int]]] = {}
            for span in todo:
                by_pool.setdefault(self._assignment[span], []).append(span)
            dispatched: list[tuple[Any, list[tuple[int, int]]]] = []
            for pool, pool_spans in by_pool.items():
                try:
                    pool.dispatch(op, payload, pool_spans)
                    dispatched.append((pool, pool_spans))
                except PoolFailure as exc:
                    self._fail_pool(pool, exc.cause)
            for pool, pool_spans in dispatched:
                try:
                    results.update(pool.collect())
                except PoolFailure as exc:
                    self._fail_pool(pool, exc.cause)
            todo = [s for s in todo if s not in results]
            if todo:
                self._reopen(todo)
        return results

    def _merged(self, op: str, payload=None):
        """Broadcast + per-span results in global span order."""
        results = self._broadcast(op, payload)
        return [results[span] for span in self.spans]

    # -- metadata ----------------------------------------------------------

    @property
    def active_cells(self) -> list[int]:
        return list(self._active_cells)

    @property
    def floor_log_prob(self) -> float:
        return self.config.min_log_prob

    @property
    def backend_name(self) -> str:
        return self._backend_name

    @property
    def backend_dtype(self) -> str:
        return self.config.dtype

    @property
    def pool_names(self) -> list[str]:
        return [p.name for p in self._live]

    @property
    def n_evaluations(self) -> int:
        return sum(n for n, _ in self._merged("stats"))

    @property
    def n_batches(self) -> int:
        return sum(b for _, b in self._merged("stats"))

    # -- batched measures --------------------------------------------------

    def nm_batch(self, patterns: Sequence[TrajectoryPattern]) -> np.ndarray:
        patterns = list(patterns)
        if not patterns:
            return np.empty(0)
        cells_list = [p.cells for p in patterns]
        return merge_batch_sums(self._merged("nm_batch", cells_list))

    def match_batch(self, patterns: Sequence[TrajectoryPattern]) -> np.ndarray:
        patterns = list(patterns)
        if not patterns:
            return np.empty(0)
        cells_list = [p.cells for p in patterns]
        return merge_batch_sums(self._merged("match_batch", cells_list))

    def nm_many(self, patterns: Sequence[TrajectoryPattern]) -> np.ndarray:
        return self.nm_batch(patterns)

    def nm(self, pattern: TrajectoryPattern) -> float:
        return float(self.nm_batch([pattern])[0])

    def match(self, pattern: TrajectoryPattern) -> float:
        return float(self.match_batch([pattern])[0])

    def nm_per_trajectory(self, pattern: TrajectoryPattern) -> np.ndarray:
        return merge_per_trajectory(self._merged("nm_per_traj", pattern.cells))

    def match_per_trajectory(self, pattern: TrajectoryPattern) -> np.ndarray:
        return merge_per_trajectory(self._merged("match_per_traj", pattern.cells))

    def best_window(
        self, pattern: TrajectoryPattern, traj_index: int
    ) -> tuple[int, float] | None:
        if not 0 <= traj_index < len(self.dataset):
            raise IndexError(f"trajectory index {traj_index} out of range")
        absolute = self._base_lo + traj_index
        for span in self.spans:
            lo, hi = span
            if lo <= absolute < hi:
                results = self._broadcast(
                    "best_window", (pattern.cells, absolute - lo), spans=[span]
                )
                return results[span]
        raise AssertionError("unreachable: spans cover the dataset")

    # -- singular / extension tables ---------------------------------------

    def singular_nm_table(self) -> dict[int, float]:
        tables = self._merged("singular_nm")
        sizes = [hi - lo for lo, hi in self.spans]
        return merge_singular_tables(
            tables, sizes, self.config.min_log_prob, len(self.dataset)
        )

    def singular_match_table(self) -> dict[int, float]:
        tables = self._merged("singular_match")
        sizes = [hi - lo for lo, hi in self.spans]
        floor_p = float(np.exp(self.config.min_log_prob))
        return merge_singular_tables(tables, sizes, floor_p, len(self.dataset))

    def extend_right_tables(
        self, pattern: TrajectoryPattern
    ) -> tuple[dict[int, float], dict[int, float]]:
        return self.extend_right_tables_many([pattern])[0]

    def extend_right_tables_many(
        self, patterns: Sequence[TrajectoryPattern]
    ) -> list[tuple[dict[int, float], dict[int, float]]]:
        patterns = list(patterns)
        if not patterns:
            return []
        cells_list = [p.cells for p in patterns]
        per_span: list[list[ExtensionTables]] = self._merged(
            "ext_tables", cells_list
        )
        return [
            merge_extension_tables([tables[i] for tables in per_span])
            for i in range(len(patterns))
        ]

    # -- gap patterns ------------------------------------------------------

    def nm_gap_pattern_total(self, pattern) -> float:
        return merge_scalar_sums(self._merged("gap_nm", pattern))

    # -- observability -----------------------------------------------------

    def heartbeat(self) -> dict[str, bool]:
        """Ping every live pool; a dead pool fails over on the next op."""
        return {pool.name: pool.ping() for pool in list(self._live)}

    def obs_snapshot(self) -> dict:
        results = self._broadcast("obs_snapshot", None)
        spans = []
        for span in self.spans:
            entry = dict(results[span])
            entry["span"] = list(span)
            entry["pool"] = self._assignment[span].name
            spans.append(entry)
        entry_skew = _skew([s["n_entries"] for s in spans])
        eval_skew = _skew([s["n_evaluations"] for s in spans])
        return {
            "n_spans": self.n_spans,
            "pools": self.pool_names,
            "backend": self._backend_name,
            "dtype": self.config.dtype,
            "n_index_entries": self.n_index_entries,
            "n_evaluations": sum(s["n_evaluations"] for s in spans),
            "n_batches": sum(s["n_batches"] for s in spans),
            "shard_skew": entry_skew,
            "eval_skew": eval_skew,
            "spans": spans,
        }

    def drain_trace(self) -> int:
        """Pull buffered pool span records into the parent's trace sink."""
        if self._trace_ctx is None or tracing.get_tracer() is None:
            return 0
        if self._closed:
            return 0
        total = 0
        for pool in list(self._live):
            records = pool.drain_trace_records()
            if records:
                tracing.emit_foreign(records)
                total += len(records)
        return total

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        try:
            self.drain_trace()
        except Exception:  # noqa: BLE001 - close must never raise
            pass
        self._closed = True
        for pool in self._pools:
            try:
                pool.close()
            except Exception:  # noqa: BLE001
                pass
        self._live = []
        metrics.gauge("dist.pools_live").set(0)
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover
            pass

    def __enter__(self) -> "DistNMEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
