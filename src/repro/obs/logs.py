"""Structured logging for the ``repro.*`` logger hierarchy.

Every component logs through ``logging.getLogger("repro.<component>")``
(:func:`get_logger` builds the name).  By default nothing is configured --
the library stays silent unless the embedding application wires handlers,
exactly like any stdlib-logging citizen.  :func:`configure_logging`
(driven by the CLI's ``--log-level``) installs one stream handler on the
``"repro"`` root with :class:`JsonFormatter`, so each record becomes one
JSON line::

    {"ts": "2026-08-06T12:00:00.123+00:00", "level": "INFO",
     "logger": "repro.index_cache", "msg": "index cache hit",
     "path": "…/index-ab12.npz", "n_entries": 52340}

Fields passed via ``logger.info(..., extra={...})`` land as top-level
keys, which is what makes the decision-point logs (cache hit/miss,
shard boundaries, convergence) machine-greppable.
"""

from __future__ import annotations

import json
import logging
import sys
from datetime import datetime, timezone

ROOT_LOGGER = "repro"

#: ``LogRecord`` attribute names that are plumbing, not user payload.
_RECORD_FIELDS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """Render each record as a single JSON object line."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": datetime.fromtimestamp(record.created, timezone.utc).isoformat(
                timespec="milliseconds"
            ),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RECORD_FIELDS and key not in payload:
                payload[key] = value
        if record.exc_info:
            payload["exc_info"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def get_logger(name: str) -> logging.Logger:
    """Logger under the ``repro`` hierarchy (``get_logger("miner")``)."""
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def configure_logging(
    level: int | str = "INFO", stream=None, json_lines: bool = True
) -> logging.Logger:
    """Install one handler on the ``repro`` root logger (idempotent).

    Re-invoking replaces the previously installed handler, so repeated
    CLI commands in one process never double-log.  Records stop at the
    ``repro`` root (``propagate = False``) to keep application-level
    root handlers out of the picture.
    """
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    root = logging.getLogger(ROOT_LOGGER)
    root.setLevel(level)
    root.propagate = False
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
            handler.close()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler._repro_obs = True  # type: ignore[attr-defined]
    if json_lines:
        handler.setFormatter(JsonFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s %(message)s")
        )
    root.addHandler(handler)
    return root
