"""Experiment harness: one entry point per table/figure of section 6.

Each experiment is a pure function from a config dataclass to a result
dataclass with a ``render()`` text table, so the same code serves the
benchmarks (small scale), the CLI (``trajpattern fig3`` etc.) and
EXPERIMENTS.md (paper-scale runs).

* :func:`~repro.experiments.table1.run_table1` -- section 6.1's pattern
  length comparison (match ~3.18 vs NM ~4.2).
* :func:`~repro.experiments.fig3.run_fig3` -- mis-prediction reduction by
  pattern-augmented prediction, per base model and pattern measure.
* :mod:`~repro.experiments.fig4` -- the scalability/sensitivity sweeps:
  runtime vs k / S / L / G and pattern groups vs delta.
* :mod:`~repro.experiments.ablations` -- pruning, bound and probability-
  geometry ablations called out in DESIGN.md.
"""

from repro.experiments.ablations import run_prob_model_ablation, run_pruning_ablation
from repro.experiments.interval_sensitivity import (
    IntervalSensitivityConfig,
    IntervalSensitivityResult,
    run_interval_sensitivity,
)
from repro.experiments.loss_sensitivity import (
    LossSensitivityConfig,
    LossSensitivityResult,
    run_loss_sensitivity,
)
from repro.experiments.datasets import (
    bus_fleet_paths,
    bus_velocity_dataset,
    make_engine,
    zebranet_dataset,
)
from repro.experiments.fig3 import Fig3Config, Fig3Result, run_fig3
from repro.experiments.fig4 import (
    Fig4Config,
    SweepResult,
    run_fig4a_k,
    run_fig4b_trajectories,
    run_fig4c_length,
    run_fig4d_grids,
    run_fig4e_delta,
)
from repro.experiments.table1 import Table1Config, Table1Result, run_table1

__all__ = [
    "bus_fleet_paths",
    "bus_velocity_dataset",
    "zebranet_dataset",
    "make_engine",
    "Table1Config",
    "Table1Result",
    "run_table1",
    "Fig3Config",
    "Fig3Result",
    "run_fig3",
    "Fig4Config",
    "SweepResult",
    "run_fig4a_k",
    "run_fig4b_trajectories",
    "run_fig4c_length",
    "run_fig4d_grids",
    "run_fig4e_delta",
    "run_pruning_ablation",
    "run_prob_model_ablation",
    "LossSensitivityConfig",
    "LossSensitivityResult",
    "run_loss_sensitivity",
    "IntervalSensitivityConfig",
    "IntervalSensitivityResult",
    "run_interval_sensitivity",
]
