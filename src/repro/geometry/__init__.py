"""Geometry substrate: points, bounding boxes and uniform grid discretisation.

The TrajPattern model (paper section 3.3) discretises the continuous space
into small uniform grid cells; the cell centres serve as the positions that
may appear in a trajectory pattern.  This package provides the primitives
that the rest of the library builds on:

* :class:`~repro.geometry.point.Point` -- an immutable 2-D point with vector
  arithmetic.
* :class:`~repro.geometry.bbox.BoundingBox` -- an axis-aligned rectangle used
  to describe the extent of a data set or a grid.
* :class:`~repro.geometry.grid.Grid` -- the uniform discretisation with
  integer cell identifiers, centre lookup, neighbourhood queries and
  range queries (used by the sparse probability index).
"""

from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.geometry.point import Point, distance

__all__ = ["Point", "distance", "BoundingBox", "Grid"]
