"""Span tracing: context-manager spans emitting a JSONL event log.

A *span* is a named, timed region of the run (``index.build``,
``miner.iteration``, ``engine.nm_batch``).  Spans nest: the tracer keeps a
stack, so a span opened inside another records the outer span's id as its
parent, and a whole run reconstructs into a tree from the flat JSONL file.
One record is emitted per span when it closes:

.. code-block:: json

    {"kind": "span", "trace": "…", "span": "1a2b.3", "parent": "1a2b.2",
     "name": "engine.nm_batch", "ts_ns": 1712…, "dur_ns": 48211,
     "pid": 4711, "attrs": {"n_patterns": 443, "shard": 1}}

``ts_ns`` is wall-clock (``time.time_ns``, comparable across processes);
``dur_ns`` is measured with ``time.perf_counter_ns``.

Cross-process propagation
-------------------------
:class:`~repro.core.parallel.ParallelNMEngine` workers trace into a
:class:`BufferSink` configured with the parent's trace id and the span
that was current when the engine was constructed as *ambient parent*
(:func:`current_context`).  The parent drains the buffers over the
existing pipe protocol and writes the records into its own sink
(:func:`emit_foreign`), so shard-side index builds and batch evaluations
appear in the one trace file as children of the parent run span.

Disabled fast path: with no tracer configured (the default)
:func:`span` returns a shared no-op context manager -- one global read
per call, no clock access, no allocation.
"""

from __future__ import annotations

import itertools
import json
import os
import secrets
import time
from pathlib import Path
from typing import Any, NamedTuple

#: Keys every span record carries; ``repro report`` validates against this.
SPAN_RECORD_KEYS = ("kind", "trace", "span", "name", "ts_ns", "dur_ns", "pid")


class SpanContext(NamedTuple):
    """Portable (trace id, parent span id) pair for propagation.

    Originally fork-scoped (parent -> shard worker); :meth:`to_wire` /
    :meth:`from_wire` make it socket-transportable, so a serving client
    can attach its context to an NDJSON request and the server parents
    its spans under the caller's -- one trace across processes *and*
    machines.  A NamedTuple rather than a dataclass: one is built per
    traced request on the serving hot path.
    """

    trace_id: str
    span_id: str | None

    def to_wire(self) -> dict:
        """JSON-safe form for embedding in a protocol request."""
        wire: dict = {"id": self.trace_id}
        if self.span_id is not None:
            wire["span"] = self.span_id
        return wire

    @classmethod
    def from_wire(cls, wire: dict) -> "SpanContext":
        """Inverse of :meth:`to_wire`; raises ``ValueError`` on bad shapes."""
        if not isinstance(wire, dict):
            raise ValueError("trace context must be an object")
        trace_id = wire.get("id")
        span_id = wire.get("span")
        if not isinstance(trace_id, str) or not trace_id:
            raise ValueError("trace context needs a non-empty string 'id'")
        if span_id is not None and not isinstance(span_id, str):
            raise ValueError("trace context 'span' must be a string")
        return cls(trace_id, span_id)


class FileSink:
    """Append-only JSONL writer (one record per line, flushed per emit)."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")

    def emit(self, record: dict) -> None:
        self._fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._fh.flush()

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - defensive
            pass


class BufferSink:
    """In-memory record list; workers drain it over the pipe protocol."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def emit(self, record: dict) -> None:
        self.records.append(record)

    def drain(self) -> list[dict]:
        records, self.records = self.records, []
        return records

    def close(self) -> None:
        # Keep the records: closing must not lose spans that have not been
        # drained yet (tests and the worker exit path read them afterwards).
        pass


class Span:
    """One traced region; use as a context manager or via begin/finish.

    ``trace_id`` is normally ``None`` (the span belongs to its tracer's
    trace); a span adopted from a remote caller carries the caller's
    trace id instead, so the record joins the *caller's* tree.

    *Detached* spans (:meth:`Tracer.span_at`, :meth:`Tracer.begin`) skip
    the ambient parent stack: their parent is fixed explicitly, and they
    never become the ambient parent of concurrently running code -- the
    right behaviour for interleaved asyncio request handling, where the
    stack top is whichever request happened to enter last.
    """

    __slots__ = (
        "name",
        "span_id",
        "parent_id",
        "trace_id",
        "attrs",
        "_tracer",
        "_detached",
        "_ts_ns",
        "_t0",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        parent_id: str | None,
        attrs: dict,
        trace_id: str | None = None,
        detached: bool = False,
    ) -> None:
        self.name = name
        self.span_id = tracer._next_id()
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.attrs = attrs
        self._tracer = tracer
        self._detached = detached

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def context(self) -> SpanContext:
        """This span as a propagation parent (for children elsewhere)."""
        return SpanContext(self.trace_id or self._tracer.trace_id, self.span_id)

    def finish(self, **attrs: Any) -> None:
        """End a span started with :meth:`Tracer.begin` and emit its record."""
        if attrs:
            self.attrs.update(attrs)
        self._tracer._end(self, time.perf_counter_ns() - self._t0)

    def __enter__(self) -> "Span":
        self._ts_ns = time.time_ns()
        self._t0 = time.perf_counter_ns()
        if not self._detached:
            self._tracer._stack.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        dur_ns = time.perf_counter_ns() - self._t0
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        self._tracer._end(self, dur_ns)


class _NoopSpan:
    """Shared do-nothing span returned when tracing is off."""

    __slots__ = ()
    span_id = None
    parent_id = None
    trace_id = None

    def set_attr(self, key: str, value: Any) -> None:
        pass

    def context(self) -> None:
        return None

    def finish(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Emits span records to a sink; tracks the current span stack."""

    def __init__(
        self,
        sink,
        trace_id: str | None = None,
        ambient_parent: str | None = None,
        base_attrs: dict | None = None,
    ) -> None:
        self.sink = sink
        self.trace_id = trace_id or secrets.token_hex(8)
        self.ambient_parent = ambient_parent
        self.base_attrs = dict(base_attrs or {})
        self._stack: list[Span] = []
        # pid prefix keeps ids unique across forked shard workers.
        self._ids = itertools.count(1)
        self._pid = os.getpid()
        self._id_prefix = f"{self._pid:x}."
        self._emit = sink.emit  # bound once: emit is per-span hot

    def _next_id(self) -> str:
        return self._id_prefix + str(next(self._ids))

    def span(self, name: str, **attrs: Any) -> Span:
        parent = self._stack[-1].span_id if self._stack else self.ambient_parent
        return Span(self, name, parent, attrs)

    def span_at(self, ctx: SpanContext | None, name: str, **attrs: Any) -> Span:
        """A *detached* span parented at ``ctx`` instead of the ambient stack.

        With ``ctx=None`` this is :meth:`span` (ambient parenting).  The
        span adopts ``ctx.trace_id``, so a server handler called with a
        client's wire context emits records into the client's trace.
        """
        if ctx is None:
            return self.span(name, **attrs)
        return Span(self, name, ctx.span_id, attrs, trace_id=ctx.trace_id, detached=True)

    def begin(self, name: str, ctx: SpanContext | None = None, **attrs: Any) -> Span:
        """Start a detached span immediately; end it with :meth:`Span.finish`.

        For regions that cannot be a ``with`` block -- e.g. a client
        request whose response arrives in a different coroutine.
        """
        span = Span(
            self,
            name,
            ctx.span_id if ctx is not None else self.ambient_parent,
            attrs,
            trace_id=ctx.trace_id if ctx is not None else None,
            detached=True,
        )
        span._ts_ns = time.time_ns()
        span._t0 = time.perf_counter_ns()
        return span

    def record_span(
        self,
        name: str,
        ctx: SpanContext | None,
        ts_ns: int,
        dur_ns: int,
        attrs: dict | None = None,
    ) -> None:
        """Emit an already-elapsed region as a span record (after the fact).

        For durations measured before anyone knew a span was wanted --
        e.g. queue wait, timed from enqueue but only attributable once the
        item is dispatched.
        """
        record = {
            "kind": "span",
            "trace": ctx.trace_id if ctx is not None else self.trace_id,
            "span": self._next_id(),
            "parent": ctx.span_id if ctx is not None else self.ambient_parent,
            "name": name,
            "ts_ns": int(ts_ns),
            "dur_ns": int(dur_ns),
            "pid": self._pid,
        }
        merged = {**self.base_attrs, **(attrs or {})} if self.base_attrs else attrs
        if merged:
            record["attrs"] = merged
        self._emit(record)

    def _end(self, span: Span, dur_ns: int) -> None:
        if not span._detached:
            if self._stack and self._stack[-1] is span:
                self._stack.pop()
            elif span in self._stack:  # pragma: no cover - out-of-order exits
                self._stack.remove(span)
        record = {
            "kind": "span",
            "trace": span.trace_id or self.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "ts_ns": span._ts_ns,
            "dur_ns": int(dur_ns),
            "pid": self._pid,
        }
        attrs = {**self.base_attrs, **span.attrs} if self.base_attrs else span.attrs
        if attrs:
            record["attrs"] = attrs
        self._emit(record)

    def current_context(self) -> SpanContext:
        """Propagation handle: the trace id plus the innermost open span."""
        span_id = self._stack[-1].span_id if self._stack else self.ambient_parent
        return SpanContext(self.trace_id, span_id)

    def emit_foreign(self, records: list[dict]) -> None:
        """Write already-formed records (drained worker buffers) verbatim."""
        for record in records:
            self.sink.emit(record)

    def close(self) -> None:
        self._stack.clear()
        self.sink.close()


#: Process-global tracer; ``None`` means tracing is off (the default).
_TRACER: Tracer | None = None


def configure_tracing(
    path: str | Path | None = None,
    sink=None,
    trace_id: str | None = None,
    ambient_parent: str | None = None,
    base_attrs: dict | None = None,
) -> Tracer:
    """Install the process-global tracer (replacing any previous one).

    Exactly one of ``path`` (JSONL file) or ``sink`` must be given.
    """
    global _TRACER
    if (path is None) == (sink is None):
        raise ValueError("exactly one of path or sink is required")
    if _TRACER is not None:
        _TRACER.close()
    if sink is None:
        sink = FileSink(path)
    _TRACER = Tracer(
        sink, trace_id=trace_id, ambient_parent=ambient_parent, base_attrs=base_attrs
    )
    return _TRACER


def disable_tracing() -> None:
    """Close and remove the process-global tracer (idempotent)."""
    global _TRACER
    if _TRACER is not None:
        _TRACER.close()
        _TRACER = None


def forget_tracer() -> None:
    """Drop the global tracer WITHOUT closing its sink.

    For forked worker processes that inherit the parent's tracer: the
    sink's file handle is shared with the parent, so the child must not
    flush or close it -- it just forgets the object and reconfigures.
    """
    global _TRACER
    _TRACER = None


def get_tracer() -> Tracer | None:
    return _TRACER


def span(name: str, **attrs: Any):
    """A span under the global tracer, or the shared no-op when off."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def span_at(ctx: SpanContext | None, name: str, **attrs: Any):
    """A detached span parented at ``ctx``, or the shared no-op when off."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.span_at(ctx, name, **attrs)


def begin(name: str, ctx: SpanContext | None = None, **attrs: Any):
    """Start a detached span now (finish it later), or the no-op when off."""
    tracer = _TRACER
    if tracer is None:
        return NOOP_SPAN
    return tracer.begin(name, ctx, **attrs)


def record_span(
    name: str,
    ctx: SpanContext | None,
    ts_ns: int,
    dur_ns: int,
    attrs: dict | None = None,
) -> None:
    """Emit an after-the-fact span under the global tracer, if any."""
    tracer = _TRACER
    if tracer is not None:
        tracer.record_span(name, ctx, ts_ns, dur_ns, attrs)


def current_context() -> SpanContext | None:
    """Propagation context of the global tracer (``None`` when off)."""
    tracer = _TRACER
    if tracer is None:
        return None
    return tracer.current_context()


def emit_foreign(records: list[dict]) -> None:
    """Write drained worker records into the global tracer, if any."""
    tracer = _TRACER
    if tracer is not None and records:
        tracer.emit_foreign(records)
