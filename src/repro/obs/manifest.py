"""Run manifests: one JSON document describing a CLI invocation end-to-end.

A manifest answers "what exactly produced this output file?": the command
and its arguments, the engine configuration, a content hash of the input
dataset, the git revision of the code, a metrics snapshot and the run's
resource footprint (wall/CPU time, peak RSS).  ``trajpattern mine`` and
``score`` write one next to their output when ``--manifest-out`` is given,
and ``trajpattern report <manifest>`` pretty-prints it.

Determinism contract: everything outside the ``runtime`` and ``metrics``
sections is a pure function of (code revision, command, inputs) -- two
runs over the same dataset with the same arguments produce identical
deterministic sections.  The test suite pins this, so the manifest can be
diffed to prove two runs were comparable.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import subprocess
import sys
import time
from dataclasses import asdict, is_dataclass
from datetime import datetime, timezone
from enum import Enum
from pathlib import Path
from typing import Any

MANIFEST_FORMAT = "repro.run-manifest"
MANIFEST_VERSION = 1


def git_sha(cwd: str | Path | None = None) -> str:
    """Short git revision of the working tree, or ``"unknown"``."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=cwd or Path(__file__).resolve().parent,
        )
        return out.stdout.strip() or "unknown"
    except OSError:
        return "unknown"


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalise to
    bytes.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


def peak_rss_children_bytes() -> int:
    """Peak resident set size among reaped child processes, in bytes.

    The per-child high-water mark (largest single child, not a sum);
    worker pools spawned by ``--jobs`` show up here, not in
    :func:`peak_rss_bytes`.
    """
    peak = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return int(peak)
    return int(peak) * 1024


def _jsonable(value: Any) -> Any:
    """Recursively convert configs/paths/enums into plain JSON values."""
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, Path):
        return str(value)
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def build_manifest(
    command: str,
    arguments: dict[str, Any],
    dataset_fingerprint: str,
    config: Any = None,
    metrics: dict | None = None,
    wall_time_s: float | None = None,
    cpu_time_s: float | None = None,
    extra: dict[str, Any] | None = None,
) -> dict:
    """Assemble a manifest document.

    ``config`` may be any dataclass (typically
    :class:`~repro.core.engine.EngineConfig`); it is serialised field by
    field.  Deterministic content lives at the top level, volatile content
    under ``runtime`` and ``metrics``.
    """
    manifest: dict[str, Any] = {
        "format": MANIFEST_FORMAT,
        "version": MANIFEST_VERSION,
        "command": command,
        "arguments": _jsonable(arguments),
        "dataset_fingerprint": dataset_fingerprint,
        "config": _jsonable(config) if config is not None else None,
        "git_sha": git_sha(),
    }
    if extra:
        manifest.update(_jsonable(extra))
    manifest["runtime"] = {
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "wall_time_s": wall_time_s,
        "cpu_time_s": cpu_time_s,
        "peak_rss_bytes": peak_rss_bytes(),
        "peak_rss_children_bytes": peak_rss_children_bytes(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "pid": os.getpid(),
    }
    manifest["metrics"] = metrics or {}
    return manifest


def process_cpu_seconds() -> float:
    """CPU seconds (user + system) of this process and reaped children."""
    self_usage = resource.getrusage(resource.RUSAGE_SELF)
    child_usage = resource.getrusage(resource.RUSAGE_CHILDREN)
    return (
        self_usage.ru_utime
        + self_usage.ru_stime
        + child_usage.ru_utime
        + child_usage.ru_stime
    )


class RunTimer:
    """Measure a run's wall and CPU time for the manifest."""

    def __enter__(self) -> "RunTimer":
        self._wall0 = time.perf_counter()
        self._cpu0 = process_cpu_seconds()
        self.wall_time_s = 0.0
        self.cpu_time_s = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.wall_time_s = time.perf_counter() - self._wall0
        self.cpu_time_s = process_cpu_seconds() - self._cpu0


def write_manifest(path: str | Path, manifest: dict) -> Path:
    """Write ``manifest`` as pretty-printed JSON, returning the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2) + "\n", encoding="utf-8")
    return path


def load_manifest(path: str | Path) -> dict:
    """Read a manifest, rejecting foreign or future-versioned files."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ValueError(f"{path}: not a readable JSON document: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != MANIFEST_FORMAT:
        raise ValueError(f"{path}: not a {MANIFEST_FORMAT} file")
    if document.get("version") != MANIFEST_VERSION:
        raise ValueError(f"{path}: unsupported version {document.get('version')!r}")
    return document


def deterministic_view(manifest: dict) -> dict:
    """The manifest minus its volatile sections (for comparison/diffing)."""
    return {
        k: v for k, v in manifest.items() if k not in ("runtime", "metrics")
    }
