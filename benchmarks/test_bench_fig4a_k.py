"""Fig. 4(a): runtime vs the number of patterns k (TrajPattern vs PB).

Paper: both grow superlinearly with k, but TrajPattern grows far slower
than the projection-based baseline.
"""

import pytest

from repro.baselines.pb import PBMiner
from repro.core.trajpattern import TrajPatternMiner

from benchmarks.conftest import BENCH_FIG4


@pytest.mark.parametrize("k", [3, 6, 12])
def test_bench_fig4a_trajpattern(benchmark, zebra_engine, k):
    benchmark.group = "fig4a-trajpattern"
    result = benchmark.pedantic(
        lambda: TrajPatternMiner(zebra_engine, k=k).mine(), rounds=2, iterations=1
    )
    assert len(result) == k


@pytest.mark.parametrize("k", [3, 6, 12])
def test_bench_fig4a_pb(benchmark, zebra_engine, k):
    benchmark.group = "fig4a-pb"
    result, _ = benchmark.pedantic(
        lambda: PBMiner(
            zebra_engine, k=k, max_length=BENCH_FIG4.pb_max_length
        ).mine(),
        rounds=1,
        iterations=1,
    )
    assert len(result) == k


def test_bench_fig4a_shape(benchmark, zebra_engine):
    """TrajPattern beats PB on the same workload (the Fig. 4(a) gap)."""
    import time

    def run_both():
        k = BENCH_FIG4.k
        t0 = time.perf_counter()
        TrajPatternMiner(zebra_engine, k=k).mine()
        tp = time.perf_counter() - t0
        t0 = time.perf_counter()
        PBMiner(zebra_engine, k=k, max_length=BENCH_FIG4.pb_max_length).mine()
        return tp, time.perf_counter() - t0

    tp_time, pb_time = benchmark.pedantic(run_both, rounds=1, iterations=1)
    assert tp_time < pb_time, (
        f"paper: TrajPattern much faster than PB; got {tp_time:.2f}s vs "
        f"{pb_time:.2f}s"
    )
