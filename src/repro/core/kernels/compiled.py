"""Compiled kernel backend: numba ``@njit`` first, a ctypes C library second.

Two providers implement the same five kernels (deviation maxima, stacked
scores, segment maxima, box ``Prob``, gap DP):

``numba``
    Lazily imported, ``@njit(cache=True)`` so the LLVM compilation cost is
    paid once per machine.  Kernels are dtype-generic -- numba specialises
    per signature, which is how the float32 mode gets real float32 code.
``cnative``
    A small C translation unit compiled on first use with the system C
    compiler (``cc``/``gcc``) into a content-hashed shared library under a
    cache directory, loaded via ``ctypes``.  This is the fallback for
    environments that have a toolchain but no numba wheel.

Neither provider is required: :func:`load_provider` raises with a precise
reason when a provider cannot be built, and the registry in
:mod:`repro.core.kernels` degrades to the numpy backend with a structured
log warning.  Forcing is available via ``REPRO_KERNELS=numba|cnative|none``.

Numerical notes
---------------
The evaluation kernels (devmax / stacked / segmax / gap DP) accumulate in
exactly the reference order (see :mod:`repro.core.kernels.numpy_ref`), so
they are bit-identical to numpy in both dtypes.  The box ``Prob`` kernel
is the one exception: it uses the C library's ``erf`` (libm), which may
differ from scipy's by a couple of ULPs.  An index built through it is
therefore tagged in the index-cache key (``prob_tag``) so it never
masquerades as a reference-built index, and the differential oracle gives
compiled backends a small nonzero budget.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

from repro.obs import logs
from repro.uncertainty import gaussian
from repro.uncertainty.gaussian import ProbModel
from repro.core.kernels.numpy_ref import NumpyKernels

_log = logs.get_logger("kernels.compiled")

__all__ = ["CompiledKernels", "load_provider", "PROVIDER_CHOICES"]

PROVIDER_CHOICES = ("numba", "cnative")


# -- the C translation unit ---------------------------------------------------

_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>

/* Deviation accumulation per (pattern, window), then a max sweep per
 * trajectory.  Accumulation order matches the numpy reference (pattern
 * offset j ascending, entries in (cell, row) order), so sums are
 * bit-identical.  scratch must be all zeros on entry and is restored to
 * zeros before returning; touched holds the windows dirtied per pattern.
 * out is (n_patterns, n_traj), zero-filled by the caller. */
#define DEVMAX(SUF, T)                                                        \
void batch_devmax_##SUF(                                                      \
    const int64_t *cells, int64_t n_patterns, int64_t m,                      \
    const int64_t *start, const int64_t *count,                               \
    const int64_t *rows, const T *vals, double floor_,                        \
    const uint8_t *valid, int64_t n_windows, const int64_t *win_traj,         \
    int64_t n_traj, T *scratch, int64_t *touched, T *out)                     \
{                                                                             \
    const T floorv = (T)floor_;                                               \
    for (int64_t p = 0; p < n_patterns; ++p) {                                \
        int64_t nt = 0;                                                       \
        const int64_t *pc = cells + p * m;                                    \
        for (int64_t j = 0; j < m; ++j) {                                     \
            const int64_t c = pc[j];                                          \
            if (c < 0) continue;                                              \
            const int64_t e0 = start[c], e1 = e0 + count[c];                  \
            for (int64_t e = e0; e < e1; ++e) {                               \
                const int64_t w = rows[e] - j;                                \
                if (w < 0 || w >= n_windows || !valid[w]) continue;           \
                const T d = vals[e] - floorv;                                 \
                /* d == 0 adds nothing to the reference sum; skipping it      \
                 * keeps the touched list duplicate-free. */                  \
                if (d <= (T)0) continue;                                      \
                if (scratch[w] == (T)0) touched[nt++] = w;                    \
                scratch[w] += d;                                              \
            }                                                                 \
        }                                                                     \
        T *orow = out + p * n_traj;                                           \
        for (int64_t t = 0; t < nt; ++t) {                                    \
            const int64_t w = touched[t];                                     \
            const T s = scratch[w];                                           \
            scratch[w] = (T)0;                                                \
            const int64_t tr = win_traj[w];                                   \
            if (s > orow[tr]) orow[tr] = s;                                   \
        }                                                                     \
    }                                                                         \
}
DEVMAX(f64, double)
DEVMAX(f32, float)

/* Scatter deviations on top of a caller-prefilled baseline matrix. */
#define STACKED(SUF, T)                                                       \
void stacked_add_##SUF(                                                       \
    const int64_t *cells, int64_t n_patterns, int64_t m,                      \
    const int64_t *start, const int64_t *count,                               \
    const int64_t *rows, const T *vals, double floor_,                        \
    int64_t n_windows, T *out)                                                \
{                                                                             \
    const T floorv = (T)floor_;                                               \
    for (int64_t p = 0; p < n_patterns; ++p) {                                \
        T *orow = out + p * n_windows;                                        \
        const int64_t *pc = cells + p * m;                                    \
        for (int64_t j = 0; j < m; ++j) {                                     \
            const int64_t c = pc[j];                                          \
            if (c < 0) continue;                                              \
            const int64_t e0 = start[c], e1 = e0 + count[c];                  \
            for (int64_t e = e0; e < e1; ++e) {                               \
                const int64_t w = rows[e] - j;                                \
                if (w < 0 || w >= n_windows) continue;                        \
                orow[w] += vals[e] - floorv;                                  \
            }                                                                 \
        }                                                                     \
    }                                                                         \
}
STACKED(f64, double)
STACKED(f32, float)

/* np.maximum.reduceat over non-empty segments. */
#define SEGMAX(SUF, T)                                                        \
void segment_maxima_##SUF(                                                    \
    const T *vals, int64_t n_vals, const int64_t *seg_starts,                 \
    int64_t n_segs, T *out)                                                   \
{                                                                             \
    for (int64_t s = 0; s < n_segs; ++s) {                                    \
        const int64_t lo = seg_starts[s];                                     \
        const int64_t hi = (s + 1 < n_segs) ? seg_starts[s + 1] : n_vals;     \
        T best = vals[lo];                                                    \
        for (int64_t e = lo + 1; e < hi; ++e)                                 \
            if (vals[e] > best) best = vals[e];                               \
        out[s] = best;                                                        \
    }                                                                         \
}
SEGMAX(f64, double)
SEGMAX(f32, float)

/* Box Prob: product of two normal-CDF interval masses, libm erf. */
void prob_box_f64(
    const double *mean, const double *sigma, const double *center,
    double delta, int64_t n, double *out)
{
    const double sqrt2 = 1.4142135623730951;  /* np.sqrt(2.0) */
    for (int64_t i = 0; i < n; ++i) {
        const double s = sigma[i];
        double lo = (center[2 * i] - delta - mean[2 * i]) / s;
        double hi = (center[2 * i] + delta - mean[2 * i]) / s;
        const double px =
            0.5 * (1.0 + erf(hi / sqrt2)) - 0.5 * (1.0 + erf(lo / sqrt2));
        lo = (center[2 * i + 1] - delta - mean[2 * i + 1]) / s;
        hi = (center[2 * i + 1] + delta - mean[2 * i + 1]) / s;
        const double py =
            0.5 * (1.0 + erf(hi / sqrt2)) - 0.5 * (1.0 + erf(lo / sqrt2));
        out[i] = px * py;
    }
}

/* Gap DP over flattened per-segment window scores; returns the best summed
 * log-prob (or -inf).  best/nxt are caller scratch of size `length`. */
double gap_dp_f64(
    const double *scores, const int64_t *offsets, const int64_t *seg_lens,
    int64_t n_segments, const int64_t *gap_min, const int64_t *gap_max,
    int64_t length, double *best, double *nxt)
{
    const double NEG = -INFINITY;
    for (int64_t t = 0; t < length; ++t) best[t] = NEG;
    const int64_t n0 = seg_lens[0];
    for (int64_t t = n0 - 1; t < length; ++t)
        best[t] = scores[offsets[0] + t - (n0 - 1)];
    for (int64_t j = 1; j < n_segments; ++j) {
        const int64_t n = seg_lens[j];
        const double *sj = scores + offsets[j];
        for (int64_t t = 0; t < length; ++t) nxt[t] = NEG;
        for (int64_t t = n - 1; t < length; ++t) {
            const int64_t s = t - n + 1;
            const int64_t hi = s - 1 - gap_min[j - 1];
            if (hi < 0) continue;
            int64_t lo = s - 1 - gap_max[j - 1];
            if (lo < 0) lo = 0;
            double pb = NEG;
            for (int64_t q = lo; q <= hi; ++q)
                if (best[q] > pb) pb = best[q];
            if (pb == NEG) continue;
            nxt[t] = pb + sj[s];
        }
        double *tmp = best; best = nxt; nxt = tmp;
    }
    double top = NEG;
    for (int64_t t = 0; t < length; ++t)
        if (best[t] > top) top = best[t];
    return top;
}
"""


# -- providers ----------------------------------------------------------------


class _Provider:
    """Uniform callable bundle a :class:`CompiledKernels` drives.

    ``devmax`` / ``stacked_add`` / ``segmax`` take numpy arrays in the
    value dtype; ``prob_box`` / ``gap_dp`` are float64 only.
    """

    __slots__ = ("name", "devmax", "stacked_add", "segmax", "prob_box", "gap_dp")

    def __init__(self, name, devmax, stacked_add, segmax, prob_box, gap_dp):
        self.name = name
        self.devmax = devmax
        self.stacked_add = stacked_add
        self.segmax = segmax
        self.prob_box = prob_box
        self.gap_dp = gap_dp


def _build_numba_provider() -> _Provider:
    from numba import njit  # lazy: raises ImportError when absent

    import math

    @njit(cache=True)
    def devmax(cells, start, count, rows, vals, floor_t, valid, n_windows,
               win_traj, scratch, touched, out):
        n_patterns, m = cells.shape
        n_traj = out.shape[1]
        for p in range(n_patterns):
            nt = 0
            for j in range(m):
                c = cells[p, j]
                if c < 0:
                    continue
                e0 = start[c]
                e1 = e0 + count[c]
                for e in range(e0, e1):
                    w = rows[e] - j
                    if w < 0 or w >= n_windows or valid[w] == 0:
                        continue
                    d = vals[e] - floor_t
                    if d <= 0:
                        continue
                    if scratch[w] == 0:
                        touched[nt] = w
                        nt += 1
                    scratch[w] += d
            for t in range(nt):
                w = touched[t]
                s = scratch[w]
                scratch[w] = 0
                tr = win_traj[w]
                if s > out[p, tr]:
                    out[p, tr] = s

    @njit(cache=True)
    def stacked_add(cells, start, count, rows, vals, floor_t, n_windows, out):
        n_patterns, m = cells.shape
        for p in range(n_patterns):
            for j in range(m):
                c = cells[p, j]
                if c < 0:
                    continue
                e0 = start[c]
                e1 = e0 + count[c]
                for e in range(e0, e1):
                    w = rows[e] - j
                    if w < 0 or w >= n_windows:
                        continue
                    out[p, w] += vals[e] - floor_t

    @njit(cache=True)
    def segmax(vals, seg_starts, out):
        n_segs = len(seg_starts)
        n_vals = len(vals)
        for s in range(n_segs):
            lo = seg_starts[s]
            hi = seg_starts[s + 1] if s + 1 < n_segs else n_vals
            best = vals[lo]
            for e in range(lo + 1, hi):
                if vals[e] > best:
                    best = vals[e]
            out[s] = best

    @njit(cache=True)
    def prob_box(mean, sigma, center, delta, out):
        sqrt2 = 1.4142135623730951
        for i in range(len(out)):
            s = sigma[i]
            lo = (center[i, 0] - delta - mean[i, 0]) / s
            hi = (center[i, 0] + delta - mean[i, 0]) / s
            px = 0.5 * (1.0 + math.erf(hi / sqrt2)) - 0.5 * (1.0 + math.erf(lo / sqrt2))
            lo = (center[i, 1] - delta - mean[i, 1]) / s
            hi = (center[i, 1] + delta - mean[i, 1]) / s
            py = 0.5 * (1.0 + math.erf(hi / sqrt2)) - 0.5 * (1.0 + math.erf(lo / sqrt2))
            out[i] = px * py

    @njit(cache=True)
    def gap_dp(scores, offsets, seg_lens, gap_min, gap_max, length, best, nxt):
        for t in range(length):
            best[t] = -np.inf
        n0 = seg_lens[0]
        for t in range(n0 - 1, length):
            best[t] = scores[offsets[0] + t - (n0 - 1)]
        for j in range(1, len(seg_lens)):
            n = seg_lens[j]
            off = offsets[j]
            for t in range(length):
                nxt[t] = -np.inf
            for t in range(n - 1, length):
                s = t - n + 1
                hi = s - 1 - gap_min[j - 1]
                if hi < 0:
                    continue
                lo = s - 1 - gap_max[j - 1]
                if lo < 0:
                    lo = 0
                pb = -np.inf
                for q in range(lo, hi + 1):
                    if best[q] > pb:
                        pb = best[q]
                if pb == -np.inf:
                    continue
                nxt[t] = pb + scores[off + s]
            best, nxt = nxt, best
        top = -np.inf
        for t in range(length):
            if best[t] > top:
                top = best[t]
        return top

    return _Provider("numba", devmax, stacked_add, segmax, prob_box, gap_dp)


def _lib_cache_dir() -> Path:
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return Path(override)
    return Path(tempfile.gettempdir()) / "repro-kernels"


def _build_cnative_provider() -> _Provider:
    cc = shutil.which("cc") or shutil.which("gcc") or shutil.which("clang")
    if cc is None:
        raise RuntimeError("no C compiler (cc/gcc/clang) on PATH")
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    cache_dir = _lib_cache_dir()
    lib_path = cache_dir / f"repro-kernels-{digest}.so"
    if not lib_path.exists():
        cache_dir.mkdir(parents=True, exist_ok=True)
        src_path = cache_dir / f"repro-kernels-{digest}.c"
        src_path.write_text(_C_SOURCE, encoding="utf-8")
        fd, tmp = tempfile.mkstemp(dir=cache_dir, suffix=".so.tmp")
        os.close(fd)
        try:
            proc = subprocess.run(
                [cc, "-O3", "-fPIC", "-shared", "-o", tmp, str(src_path), "-lm"],
                capture_output=True,
                text=True,
            )
            if proc.returncode != 0:
                raise RuntimeError(
                    f"{cc} failed ({proc.returncode}): {proc.stderr.strip()[:400]}"
                )
            os.replace(tmp, lib_path)  # atomic: concurrent builders converge
        finally:
            try:
                os.unlink(tmp)
            except OSError:
                pass
        _log.info(
            "compiled native kernel library",
            extra={"cc": cc, "path": str(lib_path)},
        )
    lib = ctypes.CDLL(str(lib_path))

    i64 = ctypes.c_int64
    f64 = ctypes.c_double
    ptr = ctypes.c_void_p
    for suf in ("f64", "f32"):
        fn = getattr(lib, f"batch_devmax_{suf}")
        fn.restype = None
        fn.argtypes = [ptr, i64, i64, ptr, ptr, ptr, ptr, f64, ptr, i64, ptr,
                       i64, ptr, ptr, ptr]
        fn = getattr(lib, f"stacked_add_{suf}")
        fn.restype = None
        fn.argtypes = [ptr, i64, i64, ptr, ptr, ptr, ptr, f64, i64, ptr]
        fn = getattr(lib, f"segment_maxima_{suf}")
        fn.restype = None
        fn.argtypes = [ptr, i64, ptr, i64, ptr]
    lib.prob_box_f64.restype = None
    lib.prob_box_f64.argtypes = [ptr, ptr, ptr, f64, i64, ptr]
    lib.gap_dp_f64.restype = f64
    lib.gap_dp_f64.argtypes = [ptr, ptr, ptr, i64, ptr, ptr, i64, ptr, ptr]

    def _p(arr: np.ndarray):
        return ctypes.c_void_p(arr.ctypes.data)

    def devmax(cells, start, count, rows, vals, floor_t, valid, n_windows,
               win_traj, scratch, touched, out):
        fn = lib.batch_devmax_f32 if vals.dtype == np.float32 else lib.batch_devmax_f64
        fn(_p(cells), cells.shape[0], cells.shape[1], _p(start), _p(count),
           _p(rows), _p(vals), float(floor_t), _p(valid), n_windows,
           _p(win_traj), out.shape[1], _p(scratch), _p(touched), _p(out))

    def stacked_add(cells, start, count, rows, vals, floor_t, n_windows, out):
        fn = lib.stacked_add_f32 if vals.dtype == np.float32 else lib.stacked_add_f64
        fn(_p(cells), cells.shape[0], cells.shape[1], _p(start), _p(count),
           _p(rows), _p(vals), float(floor_t), n_windows, _p(out))

    def segmax(vals, seg_starts, out):
        fn = (
            lib.segment_maxima_f32
            if vals.dtype == np.float32
            else lib.segment_maxima_f64
        )
        fn(_p(vals), len(vals), _p(seg_starts), len(seg_starts), _p(out))

    def prob_box(mean, sigma, center, delta, out):
        lib.prob_box_f64(_p(mean), _p(sigma), _p(center), float(delta),
                         len(out), _p(out))

    def gap_dp(scores, offsets, seg_lens, gap_min, gap_max, length, best, nxt):
        return lib.gap_dp_f64(_p(scores), _p(offsets), _p(seg_lens),
                              len(seg_lens), _p(gap_min), _p(gap_max),
                              length, _p(best), _p(nxt))

    return _Provider("cnative", devmax, stacked_add, segmax, prob_box, gap_dp)


def load_provider(name: str) -> _Provider:
    """Build the named provider, raising with a precise reason on failure."""
    if name == "numba":
        return _build_numba_provider()
    if name == "cnative":
        return _build_cnative_provider()
    raise ValueError(f"unknown compiled provider {name!r}")


# -- the backend --------------------------------------------------------------


class CompiledKernels:
    """Kernel backend driving a compiled provider (numba or cnative)."""

    compiled = True

    def __init__(self, provider: _Provider, dtype: np.dtype | str = np.float64) -> None:
        self._p = provider
        self.provider = provider.name
        self.name = provider.name
        self.dtype = np.dtype(dtype)
        #: The box Prob kernel uses libm erf, which may differ from
        #: scipy's by ~2 ULPs -- indexes built through it get a distinct
        #: cache-key tag so they never alias reference-built files.
        self.prob_tag = provider.name
        self._ref = NumpyKernels(dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CompiledKernels(provider={self.provider}, dtype={self.dtype})"

    def batch_devmax(self, cells_matrix, start, count, rows, vals, floor,
                     valid, n_windows, win_traj, arena, out) -> None:
        if n_windows <= 0:
            return
        cells_matrix = np.ascontiguousarray(cells_matrix, dtype=np.int64)
        scratch = arena.get("devmax.scratch", (n_windows,), self.dtype)
        touched = arena.get("devmax.touched", (n_windows,), np.int64)
        self._p.devmax(
            cells_matrix, start, count, rows, vals, self.dtype.type(floor),
            valid.view(np.uint8), n_windows, win_traj, scratch, touched, out,
        )

    def stacked_scores(self, cells_matrix, n_spec, start, count, rows, vals,
                       floor, n_windows, out) -> None:
        cells_matrix = np.ascontiguousarray(cells_matrix, dtype=np.int64)
        # Same float64-then-cast baseline as the reference backend.
        out[:] = (floor * n_spec.astype(np.float64))[:, None]
        self._p.stacked_add(
            cells_matrix, start, count, rows, vals, self.dtype.type(floor),
            n_windows, out,
        )

    def segment_maxima(self, vals, seg_starts) -> np.ndarray:
        if not seg_starts.size:
            return np.empty(0, dtype=vals.dtype)
        out = np.empty(len(seg_starts), dtype=vals.dtype)
        self._p.segmax(vals, seg_starts, out)
        return out

    def prob_within(self, mean, sigma, center, delta,
                    model: ProbModel = ProbModel.BOX, out=None) -> np.ndarray:
        mean = np.ascontiguousarray(mean, dtype=np.float64)
        sigma = np.ascontiguousarray(sigma, dtype=np.float64)
        center = np.ascontiguousarray(center, dtype=np.float64)
        bulk_box = (
            model is ProbModel.BOX
            and mean.ndim == 2
            and mean.shape[1] == 2
            and center.shape == mean.shape
            and sigma.shape == (mean.shape[0],)
        )
        if not bulk_box:
            # Disk geometry and scalar/broadcast shapes stay on scipy.
            return gaussian.prob_within(mean, sigma, center, delta,
                                        model=model, out=out)
        if np.any(sigma <= 0):
            raise ValueError("sigma must be positive")
        if delta <= 0:
            raise ValueError("delta must be positive")
        if out is None:
            out = np.empty(mean.shape[0])
        self._p.prob_box(mean, sigma, center, float(delta), out)
        return out

    def gap_dp(self, seg_scores, seg_lens, gap_mins, gap_maxs, length, arena) -> float:
        scores = [np.ascontiguousarray(s, dtype=np.float64) for s in seg_scores]
        lens = np.array([len(s) for s in scores], dtype=np.int64)
        offsets = np.zeros(len(scores), dtype=np.int64)
        np.cumsum(lens[:-1], out=offsets[1:])
        flat = np.concatenate(scores) if scores else np.empty(0)
        best = arena.get("gap.best", (length,), np.float64)
        nxt = arena.get("gap.nxt", (length,), np.float64)
        return float(
            self._p.gap_dp(
                flat, offsets, np.asarray(seg_lens, dtype=np.int64),
                np.asarray(gap_mins, dtype=np.int64),
                np.asarray(gap_maxs, dtype=np.int64), length, best, nxt,
            )
        )
