"""Baseline miners the paper compares TrajPattern against (section 6).

* :class:`~repro.baselines.match_miner.MatchMiner` -- top-k mining under the
  *match* measure of [14] (Yang et al., SIGMOD 2002).  The Apriori property
  holds for match, so a level-wise miner is exact; the paper used [14]'s
  border-collapsing algorithm, which is a speed-up of the same search.
* :class:`~repro.baselines.pb.PBMiner` -- the projection-based approach of
  [13] (InfoMiner) adapted to the NM measure, with the loose per-position
  upper bound described in section 6.2; the comparison baseline of the
  scalability experiments (Fig. 4).
* :class:`~repro.baselines.support.SupportMiner` -- the traditional support
  model on most-likely grid sequences; included to demonstrate why plain
  support fails on imprecise data (section 3.3's motivation).
* :class:`~repro.baselines.prefixspan.PrefixSpan` -- the classic
  gapped-subsequence miner of [8], the related-work reference model.
"""

from repro.baselines.match_miner import MatchMiner, MatchMiningResult
from repro.baselines.pb import PBMiner, PBStats
from repro.baselines.prefixspan import PrefixSpan, PrefixSpanResult, top_k_prefixspan
from repro.baselines.support import SupportMiner, SupportMiningResult

__all__ = [
    "MatchMiner",
    "MatchMiningResult",
    "PBMiner",
    "PBStats",
    "SupportMiner",
    "SupportMiningResult",
    "PrefixSpan",
    "PrefixSpanResult",
    "top_k_prefixspan",
]
