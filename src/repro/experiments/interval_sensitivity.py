"""A5: sensitivity to the snapshot interval (section 5's first knob).

Section 5: "The frequency of the snapshots may vary in different
applications ... It can be specified by a domain expert."  This experiment
quantifies the trade-off on one dataset: decimating the snapshots shrinks
the data (and the mining time) while coarsening the patterns; the measured
series shows how mining cost and the mined patterns' NM-per-position
respond to the interval.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.engine import EngineConfig, NMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.experiments.datasets import zebranet_dataset
from repro.trajectory.resample import resample_dataset


@dataclass(frozen=True)
class IntervalSensitivityConfig:
    """Sweep parameters."""

    factors: tuple[int, ...] = (1, 2, 4)  # decimation factors
    k: int = 10
    n_trajectories: int = 30
    n_ticks: int = 80
    sigma: float = 0.01
    cell_size: float = 0.02
    min_prob: float = 1e-4
    seed: int = 7


@dataclass
class IntervalRow:
    """One interval point."""

    factor: int
    snapshots: int
    wall_time_s: float
    mean_length: float
    mean_nm_per_position: float


@dataclass
class IntervalSensitivityResult:
    rows: list[IntervalRow] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            "A5: mining vs snapshot interval (section 5 discussion)",
            f"{'factor':>8}{'snapshots':>11}{'time (s)':>10}"
            f"{'mean len':>10}{'NM/pos':>10}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.factor:>8}{row.snapshots:>11}{row.wall_time_s:>10.3f}"
                f"{row.mean_length:>10.2f}{row.mean_nm_per_position:>10.2f}"
            )
        return "\n".join(lines)


def run_interval_sensitivity(
    config: IntervalSensitivityConfig = IntervalSensitivityConfig(),
) -> IntervalSensitivityResult:
    """Mine the same data at several snapshot intervals and compare."""
    base = zebranet_dataset(
        n_trajectories=config.n_trajectories,
        n_ticks=config.n_ticks,
        sigma=config.sigma,
        seed=config.seed,
    )
    result = IntervalSensitivityResult()
    for factor in config.factors:
        dataset = base if factor == 1 else resample_dataset(base, factor)
        grid = dataset.make_grid(config.cell_size)
        engine = NMEngine(
            dataset,
            grid,
            EngineConfig(delta=config.cell_size, min_prob=config.min_prob),
        )
        t0 = time.perf_counter()
        mined = TrajPatternMiner(engine, k=config.k).mine()
        elapsed = time.perf_counter() - t0
        # NM per position per trajectory: comparable across intervals
        # (total NM scales with the trajectory count, not the interval).
        per_position = sum(mined.nm_values) / len(mined.nm_values) / len(dataset)
        result.rows.append(
            IntervalRow(
                factor=factor,
                snapshots=dataset.total_snapshots(),
                wall_time_s=elapsed,
                mean_length=mined.mean_length(),
                mean_nm_per_position=per_position,
            )
        )
    return result
