"""Tests for the snapshot-interval sensitivity experiment (A5)."""

import pytest

from repro.experiments.interval_sensitivity import (
    IntervalSensitivityConfig,
    run_interval_sensitivity,
)

TINY = IntervalSensitivityConfig(
    factors=(1, 2), k=3, n_trajectories=8, n_ticks=30
)


@pytest.fixture(scope="module")
def result():
    return run_interval_sensitivity(TINY)


class TestIntervalSensitivity:
    def test_one_row_per_factor(self, result):
        assert [row.factor for row in result.rows] == [1, 2]

    def test_snapshot_counts_halve(self, result):
        assert result.rows[1].snapshots == result.rows[0].snapshots // 2

    def test_rows_populated(self, result):
        for row in result.rows:
            assert row.wall_time_s > 0
            assert row.mean_length >= 1.0
            assert row.mean_nm_per_position < 0  # log probabilities

    def test_render(self, result):
        text = result.render()
        assert "snapshot interval" in text
        assert text.count("\n") == len(result.rows) + 1
