"""Tests for parameter suggestion (section 5) and result persistence."""

import json

import numpy as np
import pytest

from repro.core.parameters import suggest_parameters
from repro.core.results_io import load_mining_result, save_mining_result
from repro.core.trajpattern import TrajPatternMiner
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


def drift_dataset(step=0.02, sigma=0.01, n=10, length=12, seed=0):
    rng = np.random.default_rng(seed)
    trajectories = []
    for _ in range(n):
        start = rng.uniform(0, 1, 2)
        steps = rng.normal(step / np.sqrt(2), step / 10, (length, 2))
        trajectories.append(
            UncertainTrajectory(start + np.cumsum(steps, axis=0), sigma)
        )
    return TrajectoryDataset(trajectories)


class TestSuggestParameters:
    def test_section5_rules(self):
        dataset = drift_dataset(step=0.02, sigma=0.01)
        suggestion = suggest_parameters(dataset)
        # g = delta, gamma = 3 sigma.
        assert suggestion.cell_size == suggestion.delta
        assert suggestion.gamma == pytest.approx(3 * suggestion.sigma_typical)
        assert suggestion.sigma_typical == pytest.approx(0.01)
        # delta is a fraction of the step, i.e. "ignorable".
        assert suggestion.delta < suggestion.step_typical

    def test_render_mentions_rules(self):
        suggestion = suggest_parameters(drift_dataset())
        text = suggestion.render()
        assert "delta" in text and "gamma" in text and "3 sigma" in text

    def test_grid_and_config_construction(self):
        dataset = drift_dataset()
        suggestion = suggest_parameters(dataset)
        grid = suggestion.make_grid(dataset)
        assert grid.n_cells > 0
        config = suggestion.make_engine_config()
        assert config.delta == suggestion.delta

    def test_max_cells_cap(self):
        dataset = drift_dataset(step=0.0005, sigma=0.0001)
        capped = suggest_parameters(dataset, max_cells=500)
        assert capped.n_cells_estimate <= 500

    def test_noise_floor_when_stationary(self):
        stationary = TrajectoryDataset(
            [UncertainTrajectory(np.full((8, 2), 0.5), 0.05)]
        )
        suggestion = suggest_parameters(stationary)
        assert suggestion.delta == pytest.approx(0.005)  # sigma / 10

    def test_validation(self):
        dataset = drift_dataset()
        with pytest.raises(ValueError):
            suggest_parameters(TrajectoryDataset([]))
        with pytest.raises(ValueError):
            suggest_parameters(dataset, delta_step_fraction=0.0)
        with pytest.raises(ValueError):
            suggest_parameters(dataset, gamma_sigmas=0.0)
        with pytest.raises(ValueError):
            suggest_parameters(dataset, max_cells=0)

    def test_end_to_end_with_miner(self):
        from repro.core.engine import NMEngine

        dataset = drift_dataset()
        suggestion = suggest_parameters(dataset)
        engine = NMEngine(
            dataset,
            suggestion.make_grid(dataset),
            suggestion.make_engine_config(min_prob=1e-4),
        )
        result = TrajPatternMiner(engine, k=5, max_length=3).mine(
            discover_groups=True, gamma=suggestion.gamma
        )
        assert len(result) == 5


class TestResultsIo:
    @pytest.fixture
    def mined(self, small_engine):
        result = TrajPatternMiner(small_engine, k=6, max_length=3).mine(
            discover_groups=True
        )
        return result, small_engine.grid

    def test_roundtrip(self, mined, tmp_path):
        result, grid = mined
        path = tmp_path / "patterns.json"
        save_mining_result(result, grid, path)
        loaded, loaded_grid = load_mining_result(path)
        assert [p.cells for p in loaded.patterns] == [
            p.cells for p in result.patterns
        ]
        assert loaded.nm_values == pytest.approx(result.nm_values)
        assert loaded.omega == pytest.approx(result.omega)
        assert loaded.stats.candidates_evaluated == result.stats.candidates_evaluated
        assert loaded_grid.nx == grid.nx and loaded_grid.ny == grid.ny
        assert loaded_grid.bbox == grid.bbox

    def test_groups_roundtrip(self, mined, tmp_path):
        result, grid = mined
        path = tmp_path / "patterns.json"
        save_mining_result(result, grid, path)
        loaded, _ = load_mining_result(path)
        assert loaded.groups is not None
        assert [len(g) for g in loaded.groups] == [len(g) for g in result.groups]

    def test_no_groups_roundtrip(self, small_engine, tmp_path):
        result = TrajPatternMiner(small_engine, k=3, max_length=2).mine()
        path = tmp_path / "p.json"
        save_mining_result(result, small_engine.grid, path)
        loaded, _ = load_mining_result(path)
        assert loaded.groups is None

    def test_loaded_patterns_usable_for_prediction(self, mined, tmp_path):
        """A persisted library can drive the online predictor directly."""
        from repro.apps.prediction import PatternLibrary

        result, grid = mined
        path = tmp_path / "patterns.json"
        save_mining_result(result, grid, path)
        loaded, loaded_grid = load_mining_result(path)
        library = PatternLibrary(loaded.patterns, loaded_grid, delta=0.03)
        assert library.max_prefix >= 0  # constructs without error

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text(json.dumps({"format": "something"}))
        with pytest.raises(ValueError, match="not a mining-result"):
            load_mining_result(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"format": "repro.mining-result", "version": 99}))
        with pytest.raises(ValueError, match="version"):
            load_mining_result(path)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all {")
        with pytest.raises(ValueError, match="JSON"):
            load_mining_result(path)
