"""The :class:`UncertainTrajectory` value type.

A trajectory is the paper's ``T = (l_1, sigma_1), (l_2, sigma_2), ...``: per
synchronised snapshot, the mean and standard deviation of the normal
distribution of the object's true location (section 3.2).  Means are stored
as an ``(n, 2)`` float array and sigmas as an ``(n,)`` float array; both are
frozen after construction so trajectories are safe to share across engines
and datasets.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.uncertainty.gaussian import GaussianLocation


class UncertainTrajectory:
    """A sequence of Gaussian location snapshots for one mobile object.

    Parameters
    ----------
    means:
        ``(n, 2)`` array of expected locations, one row per snapshot.
    sigmas:
        ``(n,)`` array of per-snapshot standard deviations (all positive),
        or a scalar applied to every snapshot.
    object_id:
        Free-form identifier of the mobile object (used by I/O and the
        classification application).
    start_time, dt:
        Time of the first snapshot and snapshot spacing; purely descriptive
        metadata for the miner, but used by the synchronisation layer.
    """

    __slots__ = ("means", "sigmas", "object_id", "start_time", "dt")

    def __init__(
        self,
        means: np.ndarray | Sequence[Sequence[float]],
        sigmas: np.ndarray | Sequence[float] | float,
        object_id: str = "",
        start_time: float = 0.0,
        dt: float = 1.0,
    ) -> None:
        means_arr = np.array(means, dtype=float, copy=True)
        if means_arr.ndim != 2 or means_arr.shape[1] != 2:
            raise ValueError(f"means must be an (n, 2) array, got shape {means_arr.shape}")
        if not np.all(np.isfinite(means_arr)):
            raise ValueError("means must be finite")
        if np.isscalar(sigmas):
            sigmas_arr = np.full(len(means_arr), float(sigmas))
        else:
            sigmas_arr = np.array(sigmas, dtype=float, copy=True)
        if sigmas_arr.shape != (len(means_arr),):
            raise ValueError(
                f"sigmas must have shape ({len(means_arr)},), got {sigmas_arr.shape}"
            )
        if np.any(sigmas_arr <= 0) or not np.all(np.isfinite(sigmas_arr)):
            raise ValueError("sigmas must be positive and finite")
        if dt <= 0:
            raise ValueError("dt must be positive")
        means_arr.setflags(write=False)
        sigmas_arr.setflags(write=False)
        self.means = means_arr
        self.sigmas = sigmas_arr
        self.object_id = object_id
        self.start_time = float(start_time)
        self.dt = float(dt)

    # -- sequence protocol ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.means)

    def __iter__(self) -> Iterator[GaussianLocation]:
        for (x, y), s in zip(self.means, self.sigmas):
            yield GaussianLocation(float(x), float(y), float(s))

    def __getitem__(self, index: int) -> GaussianLocation:
        x, y = self.means[index]
        return GaussianLocation(float(x), float(y), float(self.sigmas[index]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UncertainTrajectory):
            return NotImplemented
        return (
            self.object_id == other.object_id
            and len(self) == len(other)
            and np.array_equal(self.means, other.means)
            and np.array_equal(self.sigmas, other.sigmas)
        )

    def __repr__(self) -> str:
        ident = f" id={self.object_id!r}" if self.object_id else ""
        return f"UncertainTrajectory(len={len(self)}{ident})"

    # -- views -----------------------------------------------------------------

    def window(self, start: int, length: int) -> "UncertainTrajectory":
        """The contiguous segment of ``length`` snapshots starting at ``start``.

        This is the paper's ``T'`` -- the unit over which Eq. 2 is evaluated.
        """
        if length <= 0:
            raise ValueError("window length must be positive")
        if start < 0 or start + length > len(self):
            raise IndexError(
                f"window [{start}, {start + length}) outside trajectory of length {len(self)}"
            )
        return UncertainTrajectory(
            self.means[start : start + length],
            self.sigmas[start : start + length],
            object_id=self.object_id,
            start_time=self.start_time + start * self.dt,
            dt=self.dt,
        )

    def times(self) -> np.ndarray:
        """Snapshot timestamps ``start_time + i * dt``."""
        return self.start_time + np.arange(len(self)) * self.dt

    def bounding_box(self, n_sigmas: float = 0.0) -> BoundingBox:
        """Bounding box of the snapshot means, optionally padded by ``n_sigmas * max sigma``."""
        box = BoundingBox.of_points(self.means)
        if n_sigmas > 0:
            box = box.expand(n_sigmas * float(self.sigmas.max()))
        return box

    def sample_true_path(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one plausible true path: one sample per snapshot, shape ``(n, 2)``.

        Snapshot errors are drawn independently, matching the paper's
        footnote 1 (prediction errors are assumed independent).
        """
        noise = rng.normal(size=self.means.shape) * self.sigmas[:, None]
        return self.means + noise
