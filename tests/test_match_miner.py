"""Tests for the match-measure baseline miner (Apriori on Eq. 2)."""

import itertools

import pytest

from repro.baselines.match_miner import MatchMiner
from repro.core.pattern import TrajectoryPattern


def brute_force_match_top_k(engine, k, max_length, min_length=1):
    """Exhaustive top-k by match over the active alphabet."""
    cells = engine.active_cells
    scored = []
    for length in range(min_length, max_length + 1):
        for combo in itertools.product(cells, repeat=length):
            scored.append((combo, engine.match(TrajectoryPattern(combo))))
    scored.sort(key=lambda item: (-item[1], len(item[0]), item[0]))
    return scored[:k]


class TestValidation:
    def test_bad_parameters(self, tiny_engine):
        with pytest.raises(ValueError):
            MatchMiner(tiny_engine, k=0)
        with pytest.raises(ValueError):
            MatchMiner(tiny_engine, k=1, min_length=0)
        with pytest.raises(ValueError):
            MatchMiner(tiny_engine, k=1, min_length=3, max_length=2)


class TestOracle:
    @pytest.mark.parametrize("k", [1, 4, 10])
    def test_top_k_matches_brute_force(self, tiny_engine, k):
        result = MatchMiner(tiny_engine, k=k, max_length=3).mine()
        expected = brute_force_match_top_k(tiny_engine, k, max_length=3)
        assert [p.cells for p in result.patterns] == [c for c, _ in expected]
        for got, (_, exp) in zip(result.match_values, expected):
            assert got == pytest.approx(exp, rel=1e-9)

    def test_min_length_matches_brute_force(self, tiny_engine):
        result = MatchMiner(tiny_engine, k=5, min_length=2, max_length=3).mine()
        expected = brute_force_match_top_k(
            tiny_engine, 5, max_length=3, min_length=2
        )
        assert [p.cells for p in result.patterns] == [c for c, _ in expected]


class TestBehaviour:
    def test_plain_topk_dominated_by_singulars(self, small_engine):
        """Match decays with length, so the unconstrained top-k is singular
        patterns -- the phenomenon that motivates NM (section 3.3)."""
        result = MatchMiner(small_engine, k=10, max_length=3).mine()
        assert all(p.is_singular for p in result.patterns)

    def test_min_length_filters_output(self, small_engine):
        result = MatchMiner(small_engine, k=5, min_length=2, max_length=3).mine()
        assert all(len(p) >= 2 for p in result.patterns)

    def test_values_sorted_descending(self, small_engine):
        result = MatchMiner(small_engine, k=10, max_length=3).mine()
        assert result.match_values == sorted(result.match_values, reverse=True)

    def test_deterministic(self, small_engine):
        a = MatchMiner(small_engine, k=8, max_length=3).mine()
        b = MatchMiner(small_engine, k=8, max_length=3).mine()
        assert [p.cells for p in a.patterns] == [p.cells for p in b.patterns]

    def test_stats_populated(self, small_engine):
        result = MatchMiner(small_engine, k=5, max_length=3).mine()
        assert result.stats.levels >= 1
        assert result.stats.candidates_evaluated > 0
        assert result.stats.wall_time_s > 0
        assert len(result.stats.frontier_sizes) == result.stats.levels

    def test_mean_length(self, small_engine):
        result = MatchMiner(small_engine, k=4, max_length=3).mine()
        assert result.mean_length() == pytest.approx(
            sum(len(p) for p in result.patterns) / len(result)
        )

    def test_nm_outscores_match_on_length(self, small_engine):
        """T1's qualitative claim at miniature scale: with a minimum
        length, NM top-k is at least as long on average as match top-k."""
        from repro.core.trajpattern import TrajPatternMiner

        match_result = MatchMiner(
            small_engine, k=10, min_length=2, max_length=4
        ).mine()
        nm_result = TrajPatternMiner(
            small_engine, k=10, min_length=2, max_length=4
        ).mine()
        assert nm_result.mean_length() >= match_result.mean_length()
