"""Tests for telemetry export (repro.obs.export) and SLO evaluation.

Covers the delta/rate math against an injectable clock, JSONL rotation,
the Prometheus text artifact, series loading strictness, SLO spec
parsing and the burn-rate arithmetic on synthetic series.
"""

from __future__ import annotations

import json

import pytest

from repro.obs import metrics
from repro.obs.export import (
    TELEMETRY_KIND,
    TelemetryExporter,
    _prom_name,
    load_series,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_OBJECTIVES,
    SLObjective,
    evaluate_slos,
    load_slo_spec,
    render_slo_report,
)


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


@pytest.fixture
def exporter(tmp_path, registry):
    clock = FakeClock()
    exporter = TelemetryExporter(
        tmp_path, registry=registry, interval_s=10.0, clock=clock
    )
    exporter.clock = clock  # test handle
    return exporter


class TestExportRecords:
    def test_counter_deltas_and_rates(self, exporter, registry):
        registry.counter("serve.score.requests").inc(100)
        first = exporter.export_once()
        assert first["counters"]["serve.score.requests"] == {
            "value": 100,
            "delta": 100,
            "rate_per_s": pytest.approx(10.0),  # first interval = interval_s
        }
        registry.counter("serve.score.requests").inc(50)
        exporter.clock.t += 10.0
        second = exporter.export_once()
        entry = second["counters"]["serve.score.requests"]
        assert entry == {
            "value": 150,
            "delta": 50,
            "rate_per_s": pytest.approx(5.0),
        }
        assert second["seq"] == first["seq"] + 1
        assert second["kind"] == TELEMETRY_KIND

    def test_histogram_window_included(self, exporter, registry):
        registry.sliding_quantile_histogram("serve.score.latency_ns", unit="ns").observe(
            5e6, exemplar="t1"
        )
        record = exporter.export_once()
        hist = record["histograms"]["serve.score.latency_ns"]
        assert hist["count"] == 1 and hist["unit"] == "ns"
        assert hist["window"]["count"] == 1
        assert hist["window"]["exemplars"] == ["t1"]

    def test_series_file_and_load(self, exporter, registry):
        registry.counter("c").inc()
        exporter.export_once()
        exporter.clock.t += 10.0
        exporter.export_once()
        records = load_series(exporter.series_path)
        assert [r["seq"] for r in records] == [1, 2]

    def test_rotation_keeps_one_generation(self, tmp_path, registry):
        clock = FakeClock()
        exporter = TelemetryExporter(
            tmp_path, registry=registry, interval_s=1.0, max_bytes=1, clock=clock
        )
        registry.counter("c").inc()
        for _ in range(3):
            clock.t += 1.0
            exporter.export_once()
        rotated = exporter.series_path.with_name("telemetry.jsonl.1")
        assert rotated.exists()
        # Two generations of history: each export rotated the previous
        # record out, so seq 1 fell off and 2 (rotated) + 3 (live) load
        # oldest-first.
        records = load_series(exporter.series_path)
        assert [r["seq"] for r in records] == [2, 3]

    def test_prometheus_text(self, exporter, registry):
        registry.counter("serve.score.requests").inc(7)
        registry.gauge("serve.queue_depth").set(3)
        registry.sliding_quantile_histogram("serve.score.latency_ns", unit="ns").observe(2e6)
        exporter.export_once()
        text = exporter.prom_path.read_text()
        assert "# TYPE repro_serve_score_requests counter" in text
        assert "repro_serve_score_requests 7" in text
        assert "repro_serve_queue_depth 3" in text
        assert "repro_serve_score_latency_ns_count 1" in text
        assert 'quantile="0.99"' in text
        assert 'window="60.0s"' in text

    def test_thread_start_stop(self, tmp_path, registry):
        exporter = TelemetryExporter(
            tmp_path, registry=registry, interval_s=0.05
        )
        registry.counter("c").inc()
        exporter.start()
        exporter.start()  # idempotent
        import time

        deadline = time.monotonic() + 5.0
        while exporter.exported_records == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        exporter.stop()
        assert exporter.exported_records >= 1
        assert load_series(exporter.series_path)

    def test_bad_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryExporter(tmp_path, interval_s=0.0)

    def test_defaults_to_global_registry(self, tmp_path):
        exporter = TelemetryExporter(tmp_path)
        assert exporter.registry is metrics.get_registry()


class TestLoadSeriesStrictness:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_series(tmp_path / "absent.jsonl") == []

    def test_wrong_kind_raises(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text('{"kind": "span"}\n')
        with pytest.raises(ValueError, match="not a telemetry record"):
            load_series(path)

    def test_malformed_json_raises_with_location(self, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        path.write_text('{"kind": "telemetry", "seq": 1}\n{nope\n')
        with pytest.raises(ValueError, match=r"telemetry\.jsonl:2"):
            load_series(path)


def test_prom_name_sanitisation():
    assert _prom_name("serve.score.latency_ns") == "repro_serve_score_latency_ns"
    assert _prom_name("9lives") == "repro__9lives"


# -- SLO -----------------------------------------------------------------------


def _record(ts, seq, requests, shed=0, p99_ns=None, count=None):
    """Synthetic telemetry record with one op's counters/histogram."""
    record = {
        "kind": TELEMETRY_KIND,
        "seq": seq,
        "ts_unix": ts,
        "interval_s": 10.0,
        "counters": {
            "serve.score.requests": {"value": 0, "delta": requests, "rate_per_s": 0.0},
            "serve.shed.queue_full": {"value": 0, "delta": shed, "rate_per_s": 0.0},
        },
        "gauges": {},
        "histograms": {},
    }
    if p99_ns is not None:
        record["histograms"]["serve.score.latency_ns"] = {
            "count": count if count is not None else requests,
            "mean": 0.0,
            "max": 0.0,
            "unit": "ns",
            "window": {"quantiles": {"p50": p99_ns, "p95": p99_ns, "p99": p99_ns}},
        }
    return record


class TestSLO:
    def test_spec_loading(self, tmp_path):
        spec = {
            "objectives": [
                {"name": "avail", "kind": "availability", "objective": 0.99},
                {
                    "name": "lat",
                    "kind": "latency",
                    "objective": 0.95,
                    "op": "score",
                    "threshold_ms": 20.0,
                },
            ]
        }
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(spec))
        objectives = load_slo_spec(path)
        assert [o.name for o in objectives] == ["avail", "lat"]
        assert objectives[1].quantile == "p99"

    def test_spec_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(ValueError, match="unknown keys"):
            load_slo_spec({"objectives": [{"name": "x", "kind": "availability",
                                           "objective": 0.9, "bogus": 1}]})
        with pytest.raises(ValueError):
            load_slo_spec({"objectives": []})
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="latency", objective=0.9, op=None,
                        threshold_ms=10.0)
        with pytest.raises(ValueError):
            SLObjective(name="x", kind="availability", objective=1.5)

    def test_availability_violation_and_burn(self):
        records = [
            _record(ts=0.0, seq=1, requests=100, shed=0),
            _record(ts=10.0, seq=2, requests=100, shed=50),
        ]
        objective = SLObjective(name="avail", kind="availability", objective=0.9)
        (result,) = evaluate_slos(records, (objective,))
        assert result["events_total"] == 200 and result["events_bad"] == 50
        assert not result["ok"]
        # error rate 0.25 against a 0.1 budget = burning 2.5 budgets/period
        assert result["burn_rates"]["overall"] == pytest.approx(2.5)

    def test_latency_whole_interval_attribution(self):
        slow = 100 * 1e6  # 100ms
        fast = 1 * 1e6
        records = [
            _record(0.0, 1, requests=10, p99_ns=fast, count=10),
            _record(10.0, 2, requests=10, p99_ns=slow, count=20),
        ]
        objective = SLObjective(
            name="lat", kind="latency", objective=0.5, op="score", threshold_ms=50.0
        )
        (result,) = evaluate_slos(records, (objective,))
        # First interval: 10 good. Second: delta of 10, all bad.
        assert result["events_total"] == 20 and result["events_bad"] == 10
        assert result["ok"]  # 50% error rate == 50% budget exactly

    def test_all_good_series_is_ok(self):
        records = [_record(float(i * 10), i + 1, requests=50, p99_ns=1e6,
                           count=(i + 1) * 50) for i in range(3)]
        results = evaluate_slos(records, DEFAULT_OBJECTIVES)
        assert all(r["ok"] for r in results)
        assert all(r["events_bad"] == 0 for r in results)

    def test_empty_series(self):
        results = evaluate_slos([], DEFAULT_OBJECTIVES)
        assert all(r["events_total"] == 0 and r["ok"] for r in results)

    def test_render_report(self):
        records = [_record(0.0, 1, requests=100, shed=100)]
        results = evaluate_slos(
            records, (SLObjective(name="avail", kind="availability", objective=0.999),)
        )
        text = render_slo_report(results)
        assert "VIOLATED" in text and "avail" in text
        assert render_slo_report([]).startswith("slo report: no objectives")
