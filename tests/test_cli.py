"""Tests for the ``trajpattern`` command-line interface."""

import pytest

import repro.cli as cli


class TestArgumentHandling:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["table1", "--scale", "huge"])

    def test_help(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--help"])
        assert excinfo.value.code == 0
        assert "TrajPattern" in capsys.readouterr().out


class TestDispatch:
    def test_experiment_registry_complete(self):
        assert set(cli._EXPERIMENTS) == {"table1", "fig3", "fig4", "ablations"}

    def test_runs_stubbed_experiment(self, capsys, monkeypatch):
        monkeypatch.setitem(cli._EXPERIMENTS, "table1", lambda scale: f"T1@{scale}")
        assert cli.main(["table1", "--scale", "small"]) == 0
        assert "T1@small" in capsys.readouterr().out

    def test_all_runs_everything(self, capsys, monkeypatch):
        for name in list(cli._EXPERIMENTS):
            monkeypatch.setitem(
                cli._EXPERIMENTS, name, lambda scale, name=name: f"{name}@{scale}"
            )
        assert cli.main(["all"]) == 0
        out = capsys.readouterr().out
        for name in cli._EXPERIMENTS:
            assert f"{name}@small" in out
