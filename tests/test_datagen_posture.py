"""Tests for the human-posture sequence generator."""

import numpy as np
import pytest

from repro.datagen.posture import PostureConfig, PostureGenerator


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PostureConfig(n_postures=1)
        with pytest.raises(ValueError):
            PostureConfig(n_subjects=0)
        with pytest.raises(ValueError):
            PostureConfig(dwell_mean=0.0)
        with pytest.raises(ValueError):
            PostureConfig(transition_ticks=0)
        with pytest.raises(ValueError):
            PostureConfig(jitter=-0.1)


class TestGenerator:
    @pytest.fixture
    def generator(self):
        return PostureGenerator(
            PostureConfig(n_postures=4, n_subjects=6, n_ticks=60)
        )

    def test_anchor_layout(self, generator, rng):
        anchors = generator.make_anchors(rng)
        assert anchors.shape == (4, 2)
        diff = anchors[:, None, :] - anchors[None, :, :]
        dist = np.hypot(diff[..., 0], diff[..., 1])
        np.fill_diagonal(dist, np.inf)
        assert dist.min() > 0.1  # rejection sampling spreads them out

    def test_transition_matrix_stochastic(self, generator, rng):
        kernel = generator.make_transition_matrix(rng)
        assert kernel.shape == (4, 4)
        assert np.allclose(kernel.sum(axis=1), 1.0)
        assert np.allclose(np.diag(kernel), 0.0)  # self_avoid default

    def test_paths_shape(self, generator, rng):
        paths = generator.generate_paths(rng)
        assert len(paths) == 6
        assert all(p.positions.shape == (60, 2) for p in paths)

    def test_deterministic(self, generator):
        a = generator.generate_paths(np.random.default_rng(9))
        b = generator.generate_paths(np.random.default_rng(9))
        assert all(np.allclose(x.positions, y.positions) for x, y in zip(a, b))

    def test_dwell_structure(self, generator, rng):
        """Subjects spend most ticks nearly stationary (holding postures)."""
        paths = generator.generate_paths(rng)
        for path in paths:
            v = path.velocities()
            speed = np.hypot(v[:, 0], v[:, 1])
            holding = (speed < 0.05).mean()
            # Poisson dwells make the ratio noisy; holding still dominates
            # transitions clearly on average.
            assert holding > 0.4

    def test_positions_near_anchors_while_holding(self, rng):
        config = PostureConfig(n_postures=3, n_subjects=3, n_ticks=50, jitter=0.005)
        generator = PostureGenerator(config)
        anchor_rng = np.random.default_rng(4)
        anchors = generator.make_anchors(anchor_rng)
        # Regenerate with the same rng stream to keep anchors identical.
        paths = generator.generate_paths(np.random.default_rng(4))
        for path in paths:
            d = np.hypot(
                *(path.positions[:, None, :] - anchors[None, :, :]).transpose(2, 0, 1)
            ).min(axis=1)
            # Most ticks sit near some anchor (transitions are brief).
            assert (d < 0.05).mean() > 0.6

    def test_minable_patterns_exist(self, rng):
        """End-to-end: posture sequences recur, so the miner finds patterns
        with snapshots at more than one posture (a transition motif)."""
        from repro.core.engine import EngineConfig, NMEngine
        from repro.core.trajpattern import TrajPatternMiner
        from repro.datagen.observe import observe_paths

        config = PostureConfig(n_postures=4, n_subjects=10, n_ticks=80)
        paths = PostureGenerator(config).generate_paths(np.random.default_rng(2))
        dataset = observe_paths(paths, sigma=0.02, rng=np.random.default_rng(3))
        grid = dataset.make_grid(0.05)
        engine = NMEngine(dataset, grid, EngineConfig(delta=0.05, min_prob=1e-4))
        result = TrajPatternMiner(engine, k=15, min_length=3, max_length=5).mine()
        assert any(len(set(p.cells)) > 1 for p in result.patterns)
