"""Mobility substrate: the location reporting scheme of section 3.1.

A server tracks mobile objects by *dead reckoning*: object and server share
a motion-prediction model, the object compares its true position with the
model's prediction every tick and uplinks a location report only when the
deviation exceeds the tolerable uncertainty distance ``U``.  The server's
snapshot estimate of the object is then a Gaussian centred on the model
prediction with ``sigma = U / c``.

* :mod:`~repro.mobility.models` -- the three prediction models of the
  Fig. 3 experiment: linear (LM [12]), linear Kalman filter (LKF [2]) and
  recursive motion function (RMF [11]).
* :mod:`~repro.mobility.reporting` -- the dead-reckoning channel: protocol
  simulation for one object, including lossy uplinks and mis-prediction
  accounting.
* :mod:`~repro.mobility.server` -- :class:`FleetTracker`, tracking a
  whole fleet into a :class:`~repro.trajectory.dataset.TrajectoryDataset`
  (a simulation component -- the *network* server lives in
  :mod:`repro.serve`).
* :mod:`~repro.mobility.objects` -- ground-truth path containers produced
  by the data generators.
"""

from repro.mobility.models import (
    KalmanModel,
    LinearModel,
    MotionModel,
    RecursiveMotionModel,
    make_model,
)
from repro.mobility.objects import GroundTruthPath
from repro.mobility.reporting import ReportingConfig, TrackingLog, dead_reckon
from repro.mobility.server import FleetTracker, TrackingServer, track_fleet

__all__ = [
    "MotionModel",
    "LinearModel",
    "KalmanModel",
    "RecursiveMotionModel",
    "make_model",
    "GroundTruthPath",
    "ReportingConfig",
    "TrackingLog",
    "dead_reckon",
    "FleetTracker",
    "TrackingServer",  # deprecated alias of FleetTracker
    "track_fleet",
]
