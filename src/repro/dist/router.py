"""The replica router (``repro router``): one address, N pattern servers.

A thin asyncio tier speaking the same NDJSON protocol as
:class:`~repro.serve.server.PatternServer`.  Clients connect to the
router exactly as they would to a single server -- ``repro loadgen`` and
``repro top`` work unchanged -- and each request is forwarded to the
replica with the least load, measured as *local in-flight count plus the
replica's last-polled* ``stats.queue_depth`` (the router polls every
``stats_interval_s``, so a replica drowning in another client's traffic
is avoided even before our own requests pile up on it).

Routing policy by op:

* ``score`` / ``predict`` / ``health`` / ``describe`` -- least-loaded
  replica; on replica death the request is retried once on a survivor
  (every forwarded op is idempotent), counted in ``router.retries``;
* ``stats`` -- answered by the router: per-replica stats plus a
  ``router`` section (in-flight, forwarded, retries, replica health);
* ``swap`` -- **broadcast** to every replica and acknowledged only when
  all replicas land on the same snapshot version: one generation for the
  whole tier, never a mixed fleet (see :func:`publish_snapshot`);
* ``hello`` -- answered by the router (same protocol version and
  capabilities; the reply carries ``router: true``);
* ``shutdown`` -- refused (``forbidden``): stopping a whole tier is an
  operator action, not a protocol request.

Dead replicas reconnect in the background with capped exponential
backoff; a router with zero live replicas sheds with ``overloaded`` /
``no_replicas`` instead of queueing unboundedly.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import shutil
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs import logs, metrics
from repro.serve import protocol
from repro.serve.snapshot import ServingSnapshot

_log = logs.get_logger("dist.router")

#: Ops the router forwards to one replica (everything else is handled or
#: refused by the router itself).
_FORWARD_OPS = ("score", "predict", "health", "describe")

#: Backoff schedule for replica reconnects: doubling, capped.
_RECONNECT_BASE_S = 0.25
_RECONNECT_CAP_S = 5.0


@dataclass
class RouterConfig:
    host: str = "127.0.0.1"
    port: int = 0
    replicas: tuple[tuple[str, int], ...] = ()
    stats_interval_s: float = 2.0
    connect_timeout_s: float = 5.0
    swap_timeout_s: float = 60.0

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("a router needs at least one replica address")


@dataclass
class _Replica:
    name: str
    address: tuple[str, int]
    reader: asyncio.StreamReader | None = None
    writer: asyncio.StreamWriter | None = None
    up: bool = False
    inflight: int = 0
    queue_depth: int = 0
    forwarded: int = 0
    reconnects: int = 0
    last_stats: dict = field(default_factory=dict)
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)

    @property
    def load(self) -> int:
        return self.inflight + self.queue_depth


class _Pending:
    """One request in flight to a replica, correlated by rewritten id."""

    __slots__ = ("request", "original_id", "future", "retried")

    def __init__(self, request: dict, original_id) -> None:
        self.request = request
        self.original_id = original_id
        self.future: asyncio.Future = asyncio.get_running_loop().create_future()
        self.retried = False


class PatternRouter:
    """Fan requests across replicas; keep the tier on one snapshot."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.replicas = [
            _Replica(name=f"replica-{i}", address=addr)
            for i, addr in enumerate(config.replicas)
        ]
        self._server: asyncio.base_events.Server | None = None
        self._rid = itertools.count(1)
        self._rr = itertools.count()
        self._pending: dict[str, tuple[_Replica, _Pending]] = {}
        self._tasks: list[asyncio.Task] = []
        self._stopping = asyncio.Event()
        self.requests_routed = 0
        self.retries = 0
        self.sheds = 0
        self._started_at: float | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("router is not running")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> tuple[str, int]:
        for replica in self.replicas:
            try:
                await self._connect_replica(replica)
            except OSError:
                replica.up = False  # background reconnect will keep trying
        if not any(r.up for r in self.replicas):
            raise ConnectionError(
                "no replica reachable at startup: "
                + ", ".join(f"{h}:{p}" for h, p in self.config.replicas)
            )
        self._server = await asyncio.start_server(
            self._on_client,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        self._started_at = time.monotonic()
        for replica in self.replicas:
            self._tasks.append(
                asyncio.get_running_loop().create_task(self._reconnect_loop(replica))
            )
        self._tasks.append(
            asyncio.get_running_loop().create_task(self._stats_loop())
        )
        host, port = self._server.sockets[0].getsockname()[:2]
        _log.info(
            "router serving",
            extra={
                "host": host,
                "port": port,
                "replicas": [f"{h}:{p}" for h, p in self.config.replicas],
            },
        )
        return host, port

    async def stop(self) -> None:
        self._stopping.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._tasks = []
        for replica in self.replicas:
            await self._drop_replica(replica, reconnect=False)

    async def serve_until_stopped(self) -> None:
        await self._stopping.wait()

    # -- replica connections -----------------------------------------------

    async def _connect_replica(self, replica: _Replica) -> None:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(
                *replica.address, limit=protocol.MAX_LINE_BYTES
            ),
            timeout=self.config.connect_timeout_s,
        )
        replica.reader = reader
        replica.writer = writer
        replica.up = True
        replica.inflight = 0
        self._tasks.append(
            asyncio.get_running_loop().create_task(self._replica_reader(replica))
        )
        _log.info(
            "replica connected",
            extra={"replica": replica.name, "address": replica.address},
        )

    async def _drop_replica(self, replica: _Replica, reconnect: bool = True) -> None:
        """Mark a replica down and retry (once) whatever it still owed us."""
        was_up = replica.up
        replica.up = False
        if replica.writer is not None:
            replica.writer.close()
            try:
                await replica.writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError, OSError):
                pass
        replica.reader = None
        replica.writer = None
        if not was_up:
            return
        metrics.counter("router.replica_drops").inc()
        orphans = [
            (rid, pending)
            for rid, (owner, pending) in list(self._pending.items())
            if owner is replica
        ]
        for rid, pending in orphans:
            del self._pending[rid]
            replica.inflight = max(0, replica.inflight - 1)
            if pending.retried or not reconnect:
                self._fail_pending(pending, "replica lost")
            else:
                pending.retried = True
                self.retries += 1
                metrics.counter("router.retries").inc()
                try:
                    await self._forward(pending)
                except ConnectionError:
                    self._fail_pending(pending, "no replica available for retry")

    def _fail_pending(self, pending: _Pending, detail: str) -> None:
        if not pending.future.done():
            pending.future.set_result(
                protocol.error_response(
                    pending.original_id, "overloaded", detail, reason="replica_lost"
                )
            )

    async def _replica_reader(self, replica: _Replica) -> None:
        try:
            while replica.up:
                line = await replica.reader.readline()
                if not line:
                    break
                try:
                    response = protocol.decode_line(line)
                except protocol.ProtocolError:
                    continue
                rid = response.get("id")
                entry = self._pending.pop(rid, None) if rid is not None else None
                if entry is None:
                    continue
                owner, pending = entry
                owner.inflight = max(0, owner.inflight - 1)
                if (
                    response.get("ok") is False
                    and response.get("reason") == "shutdown"
                    and pending.original_id is not None
                    and not pending.retried
                ):
                    # A draining replica sheds with reason=shutdown; that
                    # is a routing signal, not an answer.  Retry once on
                    # another replica.
                    pending.retried = True
                    self.retries += 1
                    metrics.counter("router.retries").inc()
                    try:
                        await self._forward(pending, exclude=owner)
                    except ConnectionError:
                        self._fail_pending(
                            pending, "no replica available for retry"
                        )
                    continue
                if pending.original_id is None:
                    response.pop("id", None)
                else:
                    response["id"] = pending.original_id
                if not pending.future.done():
                    pending.future.set_result(response)
        except (ConnectionError, asyncio.CancelledError, OSError):
            pass
        finally:
            await self._drop_replica(replica)

    async def _reconnect_loop(self, replica: _Replica) -> None:
        """Capped exponential backoff reconnects for a down replica."""
        backoff = _RECONNECT_BASE_S
        while not self._stopping.is_set():
            if replica.up:
                backoff = _RECONNECT_BASE_S
                await asyncio.sleep(0.2)
                continue
            try:
                await self._connect_replica(replica)
                replica.reconnects += 1
                metrics.counter("router.replica_reconnects").inc()
            except (OSError, asyncio.TimeoutError):
                await asyncio.sleep(backoff)
                backoff = min(backoff * 2, _RECONNECT_CAP_S)

    async def _stats_loop(self) -> None:
        """Poll every live replica's ``stats`` for queue depths."""
        while not self._stopping.is_set():
            for replica in self.replicas:
                if not replica.up:
                    continue
                try:
                    response = await self._roundtrip(
                        replica, {"op": "stats"}, timeout=self.config.connect_timeout_s
                    )
                except (ConnectionError, asyncio.TimeoutError):
                    continue
                stats = response.get("stats")
                if isinstance(stats, dict):
                    replica.last_stats = stats
                    depth = stats.get("queue_depth")
                    if isinstance(depth, int):
                        replica.queue_depth = depth
            await asyncio.sleep(self.config.stats_interval_s)

    async def _roundtrip(
        self, replica: _Replica, request: dict, timeout: float
    ) -> dict:
        """One router-originated request to a specific replica."""
        pending = _Pending(dict(request), original_id=None)
        rid = f"router-{next(self._rid)}"
        pending.request["id"] = rid
        self._pending[rid] = (replica, pending)
        replica.inflight += 1
        try:
            async with replica.write_lock:
                if not replica.up:
                    raise ConnectionError(f"{replica.name} is down")
                replica.writer.write(protocol.encode(pending.request))
                await replica.writer.drain()
        except (ConnectionError, OSError) as exc:
            self._pending.pop(rid, None)
            replica.inflight = max(0, replica.inflight - 1)
            raise ConnectionError(str(exc)) from exc
        return await asyncio.wait_for(pending.future, timeout=timeout)

    # -- request routing ---------------------------------------------------

    def _pick_replica(self, exclude: _Replica | None = None) -> _Replica:
        live = [
            (i, r)
            for i, r in enumerate(self.replicas)
            if r.up and r is not exclude
        ]
        if not live:
            raise ConnectionError("no live replicas")
        # Ties on load rotate round-robin; otherwise a sequential client
        # (zero concurrency, so load is always 0 at pick time) would pin
        # every request to the first replica.
        n = len(self.replicas)
        offset = next(self._rr) % n
        return min(live, key=lambda ir: (ir[1].load, (ir[0] - offset) % n))[1]

    async def _forward(
        self, pending: _Pending, exclude: _Replica | None = None
    ) -> None:
        """Send one client request to the least-loaded replica."""
        replica = self._pick_replica(exclude)
        rid = f"router-{next(self._rid)}"
        pending.request["id"] = rid
        self._pending[rid] = (replica, pending)
        replica.inflight += 1
        replica.forwarded += 1
        try:
            async with replica.write_lock:
                if not replica.up:
                    raise ConnectionError(f"{replica.name} is down")
                replica.writer.write(protocol.encode(pending.request))
                await replica.writer.drain()
        except (ConnectionError, OSError):
            self._pending.pop(rid, None)
            replica.inflight = max(0, replica.inflight - 1)
            if pending.retried:
                raise ConnectionError("retry failed")
            pending.retried = True
            self.retries += 1
            metrics.counter("router.retries").inc()
            await self._forward(pending)

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        metrics.counter("router.connections").inc()
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._send(
                        writer,
                        write_lock,
                        protocol.error_response(
                            code="bad_request", detail="request line too long"
                        ),
                    )
                    break
                if not line:
                    break
                if not line.endswith(b"\n"):
                    break  # torn frame at EOF; never execute it
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError, OSError):
                pass

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        rid = None
        try:
            try:
                request = protocol.decode_line(line)
                rid = protocol.request_id(request)
                op = request.get("op")
                if op not in protocol.OPS:
                    raise protocol.ProtocolError(
                        f"unknown op {op!r}", code="unknown_op"
                    )
                protocol.check_version(request)
                response = await self._route(op, request, rid)
            except protocol.ProtocolError as exc:
                response = protocol.error_response(
                    rid, exc.code, exc.detail, **exc.fields
                )
            except ConnectionError as exc:
                self.sheds += 1
                metrics.counter("router.sheds").inc()
                response = protocol.error_response(
                    rid, "overloaded", str(exc), reason="no_replicas"
                )
            except Exception as exc:  # noqa: BLE001 - must answer the client
                response = protocol.error_response(
                    rid, "internal", f"{type(exc).__name__}: {exc}"
                )
            await self._send(writer, write_lock, response)
        finally:
            self.requests_routed += 1

    async def _route(self, op: str, request: dict, rid) -> dict:
        if op == "hello":
            protocol.parse_hello(request)
            return protocol.ok_response(
                rid,
                version=protocol.PROTOCOL_VERSION,
                capabilities=list(protocol.CAPABILITIES),
                router=True,
                replicas=[r.up for r in self.replicas],
            )
        if op == "stats":
            return protocol.ok_response(rid, stats=self.stats())
        if op == "swap":
            return await self._broadcast_swap(request, rid)
        if op == "ingest":
            return await self._broadcast_ingest(request, rid)
        if op == "shutdown":
            raise protocol.ProtocolError(
                "shutdown via the router is disabled; stop replicas directly",
                code="forbidden",
            )
        # score / predict / health / describe: forward to one replica.
        pending = _Pending(dict(request), original_id=rid)
        await self._forward(pending)
        return await pending.future

    async def _broadcast_swap(self, request: dict, rid) -> dict:
        """Swap every replica to one snapshot generation, atomically-ish.

        All replicas must acknowledge with the *same* version; a partial
        fleet (some replicas swapped, some not, or versions disagreeing)
        is reported as an error naming the per-replica outcome, so the
        operator never unknowingly serves mixed generations.
        """
        path = protocol.parse_swap(request)
        outcomes: dict[str, dict] = {}
        for replica in self.replicas:
            if not replica.up:
                outcomes[replica.name] = {"ok": False, "detail": "replica down"}
                continue
            try:
                response = await self._roundtrip(
                    replica,
                    {"op": "swap", "path": path},
                    timeout=self.config.swap_timeout_s,
                )
                outcomes[replica.name] = response
            except (ConnectionError, asyncio.TimeoutError) as exc:
                outcomes[replica.name] = {"ok": False, "detail": str(exc)}
        versions = {
            o.get("version") for o in outcomes.values() if o.get("ok")
        }
        all_ok = all(o.get("ok") for o in outcomes.values())
        if all_ok and len(versions) == 1:
            metrics.counter("router.swaps").inc()
            return protocol.ok_response(
                rid,
                version=versions.pop(),
                replicas={
                    name: o.get("version") for name, o in outcomes.items()
                },
            )
        return protocol.error_response(
            rid,
            "internal",
            "swap did not land on every replica",
            replicas={
                name: (o.get("version") if o.get("ok") else o.get("detail"))
                for name, o in outcomes.items()
            },
        )

    async def _broadcast_ingest(self, request: dict, rid) -> dict:
        """Fold one report batch into every replica's live index.

        Ingest is a *mutation*, so like ``swap`` it goes to the whole fleet
        rather than one replica: each replica folds the same batch into its
        own incremental engine and -- because folds are deterministic and
        batches arrive in router order -- republishes the same generation.
        Generation agreement is checked the way swap checks versions; a
        partial fold is reported per replica so the operator never serves a
        fleet with diverged live state.
        """
        protocol.parse_ingest(request)  # reject garbage before touching the fleet
        outcomes: dict[str, dict] = {}
        for replica in self.replicas:
            if not replica.up:
                outcomes[replica.name] = {"ok": False, "detail": "replica down"}
                continue
            try:
                response = await self._roundtrip(
                    replica,
                    {"op": "ingest", "reports": request.get("reports")},
                    timeout=self.config.swap_timeout_s,
                )
                outcomes[replica.name] = response
            except (ConnectionError, asyncio.TimeoutError) as exc:
                outcomes[replica.name] = {"ok": False, "detail": str(exc)}
        generations = {
            o.get("generation") for o in outcomes.values() if o.get("ok")
        }
        all_ok = all(o.get("ok") for o in outcomes.values())
        if all_ok and len(generations) == 1:
            metrics.counter("router.ingests").inc()
            first_ok = next(o for o in outcomes.values() if o.get("ok"))
            return protocol.ok_response(
                rid,
                appended=first_ok.get("appended"),
                evicted=first_ok.get("evicted"),
                republished=first_ok.get("republished"),
                generation=generations.pop(),
                version=first_ok.get("version"),
                replicas={
                    name: o.get("generation") for name, o in outcomes.items()
                },
            )
        return protocol.error_response(
            rid,
            "internal",
            "ingest did not land on every replica",
            replicas={
                name: (o.get("generation") if o.get("ok") else o.get("detail"))
                for name, o in outcomes.items()
            },
        )

    async def _send(
        self, writer: asyncio.StreamWriter, write_lock: asyncio.Lock, response: dict
    ) -> None:
        async with write_lock:
            try:
                writer.write(protocol.encode(response))
                await writer.drain()
            except (OSError, RuntimeError):
                metrics.counter("router.dropped_responses").inc()

    # -- introspection -----------------------------------------------------

    def stats(self) -> dict:
        return {
            "router": {
                "uptime_s": (
                    time.monotonic() - self._started_at
                    if self._started_at is not None
                    else 0.0
                ),
                "requests_routed": self.requests_routed,
                "retries": self.retries,
                "sheds": self.sheds,
                "replicas_up": sum(1 for r in self.replicas if r.up),
                "replicas": {
                    r.name: {
                        "address": list(r.address),
                        "up": r.up,
                        "inflight": r.inflight,
                        "queue_depth": r.queue_depth,
                        "forwarded": r.forwarded,
                        "reconnects": r.reconnects,
                    }
                    for r in self.replicas
                },
            },
            # Aggregates a dashboard can read like a single server's stats.
            "version": self._fleet_version(),
            "queue_depth": sum(r.queue_depth for r in self.replicas if r.up),
            "requests_served": self.requests_routed,
        }

    def _fleet_version(self) -> str:
        versions = {
            r.last_stats.get("version")
            for r in self.replicas
            if r.up and r.last_stats.get("version")
        }
        if not versions:
            return "unknown"
        if len(versions) == 1:
            return versions.pop()
        return "mixed:" + ",".join(sorted(versions))


# -- snapshot distribution ----------------------------------------------------------


def publish_snapshot(
    source: str | Path,
    dest_root: str | Path,
    generation: str,
    *,
    cache_dir: str | Path | None = None,
) -> Path:
    """Stage one snapshot directory as a generation for the replica tier.

    Copies ``source`` (a snapshot directory: dataset + ``patterns.json``
    + ``serve.json``) to ``dest_root/gen-<generation>/`` and pins the
    generation into the snapshot's ``version`` -- every replica that
    swaps to the returned path reports the identical version string, so
    "is the whole fleet on one generation?" is a string comparison.

    When ``cache_dir`` is given the snapshot is loaded once here, which
    persists its ``.npz`` index through the shared index cache: replicas
    started with the same ``--cache-dir`` then warm-load the pushed
    generation instead of re-enumerating probabilities.

    Returns the staged directory (hand it to the router's ``swap``).
    """
    source = Path(source)
    dest = Path(dest_root) / f"gen-{generation}"
    if dest.exists():
        raise FileExistsError(f"generation already published: {dest}")
    dest.parent.mkdir(parents=True, exist_ok=True)
    shutil.copytree(source, dest)
    config_path = dest / "serve.json"
    raw = {}
    if config_path.is_file():
        raw = json.loads(config_path.read_text())
    base = raw.get("version") or "snapshot"
    raw["version"] = f"{base}+gen-{generation}"
    config_path.write_text(json.dumps(raw, indent=2, sort_keys=True) + "\n")
    if cache_dir is not None:
        ServingSnapshot.load(str(dest), cache_dir=str(cache_dir))
    _log.info(
        "published snapshot generation",
        extra={"source": str(source), "dest": str(dest), "version": raw["version"]},
    )
    return dest


async def run_router(config: RouterConfig) -> None:
    """``repro router`` entry point: serve until interrupted."""
    router = PatternRouter(config)
    host, port = await router.start()
    print(f"router serving on {host}:{port}", flush=True)
    try:
        await router.serve_until_stopped()
    finally:
        await router.stop()
