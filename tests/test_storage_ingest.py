"""Streaming converters (JSONL/CSV/Porto) and their CLI subcommands."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import cli
from repro.storage import (
    convert_csv_to_store,
    convert_jsonl_to_store,
    ingest_porto_csv,
    open_store,
)
from repro.testkit.datasets import seeded_dataset
from repro.trajectory.io import iter_dataset_jsonl, save_dataset_jsonl


@pytest.fixture(scope="module")
def eager():
    return seeded_dataset(2, n_trajectories=6, n_ticks=12)


@pytest.fixture
def jsonl_file(eager, tmp_path):
    path = tmp_path / "d.jsonl"
    save_dataset_jsonl(eager, path)
    return path


class TestIterJsonl:
    def test_streams_header_then_trajectories(self, eager, jsonl_file):
        stream = iter_dataset_jsonl(jsonl_file)
        header = next(stream)
        assert isinstance(header, dict)
        trajs = list(stream)
        assert len(trajs) == len(eager)
        assert np.array_equal(
            np.asarray(trajs[0].means), np.asarray(eager.trajectories[0].means)
        )

    def test_malformed_line_reports_location(self, jsonl_file):
        lines = jsonl_file.read_text().splitlines()
        lines[3] = "{not json"
        jsonl_file.write_text("\n".join(lines) + "\n")
        stream = iter_dataset_jsonl(jsonl_file)
        next(stream)
        with pytest.raises(ValueError, match=r":4"):
            list(stream)


class TestConvertJsonl:
    def test_store_equals_eager_dataset(self, eager, jsonl_file, tmp_path):
        summary = convert_jsonl_to_store(jsonl_file, tmp_path / "d.tjc")
        assert summary["n_trajectories"] == len(eager)
        assert summary["total_snapshots"] == eager.total_snapshots()
        with open_store(tmp_path / "d.tjc") as store:
            assert np.array_equal(
                store.dataset().all_means(), eager.all_means()
            )


class TestConvertCsv:
    def _write_csv(self, path, rows, header="object_id,snapshot,x,y,sigma"):
        path.write_text(header + "\n" + "\n".join(rows) + "\n")

    def test_groups_and_sorts_rows(self, tmp_path):
        src = tmp_path / "d.csv"
        self._write_csv(
            src,
            [
                "a,1,0.2,0.3,0.01",
                "a,0,0.1,0.2,0.01",
                "b,0,0.5,0.5,0.02",
            ],
        )
        convert_csv_to_store(src, tmp_path / "d.tjc")
        with open_store(tmp_path / "d.tjc") as store:
            assert store.object_ids == ["a", "b"]
            first = store.trajectory(0)
            # rows sorted by snapshot index within the object
            assert np.array_equal(
                np.asarray(first.means), np.array([[0.1, 0.2], [0.2, 0.3]])
            )

    def test_default_sigma_fills_missing_column(self, tmp_path):
        src = tmp_path / "d.csv"
        self._write_csv(
            src, ["a,0,0.1,0.2", "a,1,0.2,0.3"], header="object_id,snapshot,x,y"
        )
        with pytest.raises(ValueError, match="sigma"):
            convert_csv_to_store(src, tmp_path / "d.tjc")
        convert_csv_to_store(src, tmp_path / "d.tjc", default_sigma=0.05)
        with open_store(tmp_path / "d.tjc") as store:
            assert np.array_equal(
                store.sigmas(0, 2, mode="read"), np.array([0.05, 0.05])
            )

    def test_interleaved_objects_raise_with_line(self, tmp_path):
        src = tmp_path / "d.csv"
        self._write_csv(
            src,
            ["a,0,0.1,0.2,0.01", "b,0,0.5,0.5,0.01", "a,1,0.2,0.3,0.01"],
        )
        with pytest.raises(ValueError, match=r":4.*not\s+contiguous"):
            convert_csv_to_store(src, tmp_path / "d.tjc")
        assert not (tmp_path / "d.tjc").exists()

    def test_bad_row_raises_with_line(self, tmp_path):
        src = tmp_path / "d.csv"
        self._write_csv(src, ["a,0,0.1,0.2,0.01", "a,oops,0.2,0.3,0.01"])
        with pytest.raises(ValueError, match=r":3"):
            convert_csv_to_store(src, tmp_path / "d.tjc")


class TestIngestPorto:
    def _write_porto(self, path, polylines):
        rows = [
            f'{i},"{json.dumps(p)}"' if p is not None else f"{i},"
            for i, p in enumerate(polylines)
        ]
        path.write_text("TRIP_ID,POLYLINE\n" + "\n".join(rows) + "\n")

    def test_ingests_and_counts_skips(self, tmp_path):
        src = tmp_path / "porto.csv"
        self._write_porto(
            src,
            [
                [[-8.61, 41.14], [-8.62, 41.15]],
                [],  # famously-empty polyline -> skipped
                [[-8.60, 41.13], [-8.60, 41.14], [-8.61, 41.14]],
            ],
        )
        summary = ingest_porto_csv(src, tmp_path / "p.tjc", sigma=1e-4)
        assert summary["n_trajectories"] == 2
        assert summary["total_snapshots"] == 5
        assert summary["n_skipped"] == 1
        with open_store(tmp_path / "p.tjc") as store:
            assert store.object_ids == ["0", "2"]
            assert np.allclose(store.sigmas(0, 5, mode="read"), 1e-4)
            assert store.metadata["source"] == "porto-csv"

    def test_strict_mode_raises_on_malformed(self, tmp_path):
        src = tmp_path / "porto.csv"
        self._write_porto(src, [[[-8.61, 41.14]], []])
        with pytest.raises(ValueError, match=r":3"):
            ingest_porto_csv(src, tmp_path / "p.tjc", sigma=1e-4, skip_malformed=False)

    def test_rejects_bad_sigma(self, tmp_path):
        src = tmp_path / "porto.csv"
        self._write_porto(src, [[[-8.61, 41.14]]])
        with pytest.raises(ValueError, match="sigma"):
            ingest_porto_csv(src, tmp_path / "p.tjc", sigma=0.0)


class TestCliSubcommands:
    def test_convert_then_store_info(self, jsonl_file, tmp_path, capsys):
        out_path = tmp_path / "d.tjc"
        assert (
            cli.main(
                ["convert", str(jsonl_file), str(out_path), "--compression", "zlib"]
            )
            == 0
        )
        assert out_path.exists()
        capsys.readouterr()
        assert cli.main(["store-info", str(out_path)]) == 0
        info = json.loads(capsys.readouterr().out)
        assert info["format"] == "repro.tjc"
        assert info["compression"] == "zlib"
        assert info["n_trajectories"] == 6

    def test_convert_csv_via_cli(self, tmp_path, capsys):
        src = tmp_path / "d.csv"
        src.write_text(
            "object_id,snapshot,x,y\n" "a,0,0.1,0.2\n" "a,1,0.2,0.3\n"
        )
        assert (
            cli.main(
                [
                    "convert",
                    str(src),
                    str(tmp_path / "d.tjc"),
                    "--default-sigma",
                    "0.05",
                ]
            )
            == 0
        )
        with open_store(tmp_path / "d.tjc") as store:
            assert store.n_trajectories == 1

    def test_ingest_via_cli(self, tmp_path, capsys):
        src = tmp_path / "porto.csv"
        src.write_text(
            'TRIP_ID,POLYLINE\n1,"[[-8.61, 41.14], [-8.62, 41.15]]"\n2,\n'
        )
        assert (
            cli.main(
                ["ingest", str(src), str(tmp_path / "p.tjc"), "--sigma", "1e-4"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "skipped 1" in out
        with open_store(tmp_path / "p.tjc") as store:
            assert store.n_trajectories == 1

    def test_mine_accepts_store(self, eager, jsonl_file, tmp_path, capsys):
        store_path = tmp_path / "d.tjc"
        cli.main(["convert", str(jsonl_file), str(store_path)])
        capsys.readouterr()
        patterns_out = tmp_path / "patterns.json"
        assert (
            cli.main(
                [
                    "mine",
                    str(store_path),
                    "-k",
                    "3",
                    "--cell-size",
                    "0.1",
                    "--delta",
                    "0.08",
                    "--gamma",
                    "0.1",
                    "--output",
                    str(patterns_out),
                ]
            )
            == 0
        )
        jsonl_patterns = tmp_path / "patterns-jsonl.json"
        cli.main(
            [
                "mine",
                str(jsonl_file),
                "-k",
                "3",
                "--cell-size",
                "0.1",
                "--delta",
                "0.08",
                "--gamma",
                "0.1",
                "--output",
                str(jsonl_patterns),
            ]
        )
        a = json.loads(patterns_out.read_text())
        b = json.loads(jsonl_patterns.read_text())
        assert a["patterns"] == b["patterns"]
