"""Traditional support-model sequential miner (section 3.3's straw man).

The classic support model counts a pattern as occurring in a trajectory
when the trajectory's positions *exactly* hit the pattern's grid cells.
On imprecise data this requires collapsing each Gaussian snapshot to its
most likely cell (the cell containing the mean), throwing the uncertainty
away -- which is precisely why the paper argues support "may not work well
due to the presence of noises" and introduces the NM measure instead.

We include the support miner (a) as the reference point for tests showing
NM's robustness to noise and (b) as an exact, fast miner for the noiseless
limit, where support and NM rankings coincide on well-separated data.

Mining is exact and simple: contiguous n-grams of the discretised cell
sequences are counted level by level; the Apriori property (support of a
super-pattern <= support of any sub-pattern) prunes the search.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.pattern import TrajectoryPattern
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset

Cells = tuple[int, ...]


@dataclass
class SupportMinerStats:
    """Instrumentation of a support-mining run."""

    levels: int = 0
    ngrams_counted: int = 0
    wall_time_s: float = 0.0


@dataclass
class SupportMiningResult:
    """Ranked top-k patterns under the support measure."""

    patterns: list[TrajectoryPattern]
    supports: list[int]
    stats: SupportMinerStats

    def __len__(self) -> int:
        return len(self.patterns)

    def as_pairs(self) -> list[tuple[TrajectoryPattern, int]]:
        return list(zip(self.patterns, self.supports))


def discretize(dataset: TrajectoryDataset, grid: Grid) -> list[Cells]:
    """Most-likely cell sequence of every trajectory (mean-cell collapse)."""
    return [tuple(int(c) for c in grid.locate_many(t.means)) for t in dataset]


class SupportMiner:
    """Exact top-k miner for contiguous patterns under the support measure.

    Support of ``P`` = number of trajectories whose discretised sequence
    contains ``P`` as a contiguous subsequence (the section 3.3 definition
    with every ``l_i`` collapsed to its cell).
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        grid: Grid,
        k: int,
        min_length: int = 1,
        max_length: int | None = None,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if min_length < 1:
            raise ValueError("min_length must be at least 1")
        if max_length is not None and max_length < min_length:
            raise ValueError("max_length must be >= min_length")
        self.dataset = dataset
        self.grid = grid
        self.k = k
        self.min_length = min_length
        self.max_length = max_length

    def mine(self) -> SupportMiningResult:
        """Count n-grams level by level with Apriori pruning."""
        stats = SupportMinerStats()
        t0 = time.perf_counter()
        sequences = discretize(self.dataset, self.grid)

        supports: dict[Cells, int] = {}
        threshold = 0
        length = 1
        frontier_exists = True
        while frontier_exists:
            if self.max_length is not None and length > self.max_length:
                break
            counts = self._count_level(sequences, length, supports, threshold)
            if not counts:
                break
            supports.update(counts)
            stats.ngrams_counted += len(counts)
            stats.levels = length
            threshold = self._threshold(supports)
            # Frontier survives while some pattern of this length could
            # still parent a qualifying longer pattern.
            frontier_exists = any(v >= max(threshold, 1) for v in counts.values())
            length += 1

        stats.wall_time_s = time.perf_counter() - t0
        qualifying = [
            (c, v) for c, v in supports.items() if len(c) >= self.min_length
        ]
        qualifying.sort(key=lambda item: (-item[1], len(item[0]), item[0]))
        top = qualifying[: self.k]
        return SupportMiningResult(
            patterns=[TrajectoryPattern(c) for c, _ in top],
            supports=[v for _, v in top],
            stats=stats,
        )

    # -- internals -------------------------------------------------------------

    def _count_level(
        self,
        sequences: list[Cells],
        length: int,
        supports: dict[Cells, int],
        threshold: int,
    ) -> dict[Cells, int]:
        """Per-trajectory-deduplicated n-gram counts at one level.

        Apriori pruning: an n-gram whose (n-1)-prefix or -suffix did not
        reach the current threshold cannot reach it either.
        """
        counts: dict[Cells, int] = {}
        for seq in sequences:
            seen_here: set[Cells] = set()
            for i in range(len(seq) - length + 1):
                gram = seq[i : i + length]
                if gram in seen_here:
                    continue
                if length > 1 and threshold > 0:
                    # Apriori: support(gram) <= min(prefix, suffix) support;
                    # grams pruned at earlier levels read as 0, which is a
                    # valid under-estimate (they were already below an
                    # earlier, lower threshold).
                    if (
                        supports.get(gram[:-1], 0) < threshold
                        or supports.get(gram[1:], 0) < threshold
                    ):
                        continue
                seen_here.add(gram)
                counts[gram] = counts.get(gram, 0) + 1
        return counts

    def _threshold(self, supports: dict[Cells, int]) -> int:
        """k-th best qualifying support so far (0 until k exist)."""
        qualifying = sorted(
            (v for c, v in supports.items() if len(c) >= self.min_length),
            reverse=True,
        )
        if len(qualifying) >= self.k:
            return qualifying[self.k - 1]
        return 0
