"""Periodic telemetry export: registry snapshots to JSONL + Prometheus text.

A long-running server's metrics registry only answers "what happened so
far"; operations wants "what is happening *now*" in files another tool
can scrape.  :class:`TelemetryExporter` bridges the two: on a fixed
cadence it snapshots a :class:`~repro.obs.metrics.MetricsRegistry` and
writes

* one record to a **JSONL time-series** (``telemetry.jsonl``): counters
  as cumulative value + per-interval delta + rate, gauges verbatim,
  histograms with count/mean/quantiles plus the rolling-window view of
  :class:`~repro.obs.metrics.SlidingQuantileHistogram` instruments.  The
  series is what ``repro slo`` evaluates and ``repro top --series``
  tails;
* a **Prometheus text file** (``metrics.prom``), atomically replaced
  each interval, for file-based scrape pipelines (node_exporter textfile
  collector style).

The JSONL series rotates by size: when the live file exceeds
``max_bytes`` it is renamed to ``<name>.1`` (replacing any previous
generation) and a fresh file begins -- bounded disk, two generations of
history.

The exporter runs on a plain daemon thread (the serving event loop must
never block on disk I/O for telemetry) and is safe to start/stop from
sync or async code.  :meth:`TelemetryExporter.export_once` is public so
tests and CLI one-shots can drive an export without the thread.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from repro.obs import logs, metrics

_log = logs.get_logger("obs.export")

#: Record shape marker carried by every series record.
TELEMETRY_KIND = "telemetry"

#: Default rotation bound for the JSONL series.
DEFAULT_MAX_BYTES = 8 << 20


def _prom_name(name: str) -> str:
    """A registry instrument name as a Prometheus metric name."""
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    prom = "".join(out)
    if prom and prom[0].isdigit():
        prom = "_" + prom
    return "repro_" + prom


class TelemetryExporter:
    """Snapshot a metrics registry on a cadence into telemetry artifacts.

    Parameters
    ----------
    out_dir:
        Directory receiving ``telemetry.jsonl`` (+ ``.1`` rotation) and
        ``metrics.prom``; created if missing.
    registry:
        Registry to snapshot; defaults to the process-global one.
    interval_s:
        Export cadence for the background thread.
    max_bytes:
        JSONL rotation threshold.
    clock:
        Injectable wall clock (seconds since epoch) for tests.
    """

    def __init__(
        self,
        out_dir: str | Path,
        registry: metrics.MetricsRegistry | None = None,
        interval_s: float = 10.0,
        max_bytes: int = DEFAULT_MAX_BYTES,
        clock=time.time,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.out_dir = Path(out_dir)
        self.out_dir.mkdir(parents=True, exist_ok=True)
        self.series_path = self.out_dir / "telemetry.jsonl"
        self.prom_path = self.out_dir / "metrics.prom"
        self.registry = registry if registry is not None else metrics.get_registry()
        self.interval_s = float(interval_s)
        self.max_bytes = int(max_bytes)
        self._clock = clock
        self._seq = 0
        self._last_counters: dict[str, int] = {}
        self._last_ts: float | None = None
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.exported_records = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the export thread (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="telemetry-exporter", daemon=True
        )
        self._thread.start()

    def stop(self, final_export: bool = True) -> None:
        """Stop the thread; by default write one last record on the way out."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(5.0, self.interval_s))
            self._thread = None
        if final_export:
            try:
                self.export_once()
            except OSError:  # pragma: no cover - disk full etc.
                _log.warning("final telemetry export failed")

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.export_once()
            except OSError:  # pragma: no cover - keep exporting next tick
                _log.warning("telemetry export failed; will retry")

    # -- one export --------------------------------------------------------

    def build_record(self) -> dict:
        """The next series record (advances the delta/rate baseline)."""
        now = self._clock()
        snapshot = self.registry.snapshot()
        interval = (
            now - self._last_ts if self._last_ts is not None else self.interval_s
        )
        interval = max(interval, 1e-9)
        counters = {}
        for name, value in snapshot.get("counters", {}).items():
            delta = value - self._last_counters.get(name, 0)
            counters[name] = {
                "value": value,
                "delta": delta,
                "rate_per_s": delta / interval,
            }
        histograms = {}
        for name, data in snapshot.get("histograms", {}).items():
            entry = {
                "count": data.get("count", 0),
                "mean": data.get("mean", 0.0),
                "max": data.get("max", 0.0),
                "unit": data.get("unit", ""),
            }
            if "quantiles" in data:
                entry["quantiles"] = data["quantiles"]
            if "window" in data:
                entry["window"] = data["window"]
            histograms[name] = entry
        self._seq += 1
        self._last_ts = now
        self._last_counters = {
            name: value for name, value in snapshot.get("counters", {}).items()
        }
        return {
            "kind": TELEMETRY_KIND,
            "seq": self._seq,
            "ts_unix": now,
            "interval_s": interval,
            "counters": counters,
            "gauges": snapshot.get("gauges", {}),
            "histograms": histograms,
        }

    def export_once(self) -> dict:
        """Build, append (with rotation) and scrape-publish one record."""
        record = self.build_record()
        self._rotate_if_needed()
        with self.series_path.open("a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._write_prometheus(record)
        self.exported_records += 1
        return record

    def _rotate_if_needed(self) -> None:
        try:
            size = self.series_path.stat().st_size
        except OSError:
            return
        if size < self.max_bytes:
            return
        os.replace(self.series_path, self.series_path.with_name(self.series_path.name + ".1"))

    def _write_prometheus(self, record: dict) -> None:
        """Render the record as Prometheus text and atomically replace."""
        lines: list[str] = []
        for name, data in sorted(record["counters"].items()):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} counter")
            lines.append(f"{prom} {data['value']}")
        for name, value in sorted(record["gauges"].items()):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} gauge")
            lines.append(f"{prom} {value}")
        for name, data in sorted(record["histograms"].items()):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} summary")
            lines.append(f"{prom}_count {data['count']}")
            lines.append(f"{prom}_mean {data['mean']}")
            for key, value in data.get("quantiles", {}).items():
                q = int(key.lstrip("p")) / 100.0
                lines.append(f'{prom}{{quantile="{q}"}} {value}')
            window = data.get("window")
            if window:
                for key, value in window.get("quantiles", {}).items():
                    q = int(key.lstrip("p")) / 100.0
                    lines.append(
                        f'{prom}_window{{quantile="{q}",window="{window["window_s"]}s"}} {value}'
                    )
        text = "\n".join(lines) + "\n"
        tmp = self.prom_path.with_name(self.prom_path.name + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, self.prom_path)


def load_series(path: str | Path) -> list[dict]:
    """Read a telemetry JSONL series (including the rotated generation).

    Returns records oldest-first; raises ``ValueError`` on records that
    do not carry the telemetry shape, so schema regressions fail loudly
    in CI.  A missing or empty file returns ``[]``.
    """
    path = Path(path)
    records: list[dict] = []
    for candidate in (path.with_name(path.name + ".1"), path):
        if not candidate.exists():
            continue
        with candidate.open("r", encoding="utf-8") as fh:
            for i, line in enumerate(fh):
                if not line.strip():
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise ValueError(
                        f"{candidate}:{i + 1}: not JSON: {exc}"
                    ) from exc
                if record.get("kind") != TELEMETRY_KIND:
                    raise ValueError(
                        f"{candidate}:{i + 1}: not a telemetry record"
                    )
                records.append(record)
    records.sort(key=lambda r: (r.get("ts_unix", 0.0), r.get("seq", 0)))
    return records
