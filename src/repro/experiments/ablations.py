"""Ablations of the design choices DESIGN.md calls out.

* A1/A2 -- the two pruning mechanisms of the miner: section 4.1's
  1-extension pruning of ``Q`` and the lazy min-max bound evaluation.
  Both are result-preserving; the ablation quantifies their cost impact
  and asserts result equality.
* A3 -- the geometry of ``Prob``: box (axis-separable, default) vs disk
  (exact Euclidean).  The measures differ by a bounded constant factor,
  so the mined rankings are expected to agree closely.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.trajpattern import TrajPatternMiner
from repro.experiments.datasets import make_engine, zebranet_dataset
from repro.experiments.fig4 import Fig4Config
from repro.uncertainty.gaussian import ProbModel


@dataclass
class PruningAblationRow:
    """One miner variant's cost profile."""

    variant: str
    wall_time_s: float
    candidates_evaluated: int
    final_q_size: int
    top_patterns: list[tuple[int, ...]]


@dataclass
class PruningAblationResult:
    rows: list[PruningAblationRow] = field(default_factory=list)

    def results_identical(self) -> bool:
        """All variants must mine the same top-k (they are result-preserving)."""
        tops = [row.top_patterns for row in self.rows]
        return all(t == tops[0] for t in tops)

    def render(self) -> str:
        lines = [
            "A1/A2: pruning ablation (identical results, different cost)",
            f"{'variant':<28}{'time (s)':>10}{'evaluated':>12}{'|Q| final':>12}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.variant:<28}{row.wall_time_s:>10.3f}"
                f"{row.candidates_evaluated:>12}{row.final_q_size:>12}"
            )
        lines.append(f"results identical: {self.results_identical()}")
        return "\n".join(lines)


def run_pruning_ablation(
    config: Fig4Config = Fig4Config(k=5, n_trajectories=25, n_ticks=40, target_cells=1024)
) -> PruningAblationResult:
    """Time the four on/off combinations of the two pruning mechanisms."""
    engine = config.make_engine()
    variants = [
        ("both prunings (default)", True, True),
        ("no 1-extension pruning", False, True),
        ("no bound pruning", True, False),
        ("no pruning at all", False, False),
    ]
    result = PruningAblationResult()
    for name, extension, bound in variants:
        t0 = time.perf_counter()
        mined = TrajPatternMiner(
            engine,
            k=config.k,
            max_length=config.trajpattern_max_length,
            use_extension_pruning=extension,
            use_bound_pruning=bound,
        ).mine()
        elapsed = time.perf_counter() - t0
        result.rows.append(
            PruningAblationRow(
                variant=name,
                wall_time_s=elapsed,
                candidates_evaluated=mined.stats.candidates_evaluated,
                final_q_size=mined.stats.final_q_size,
                top_patterns=[p.cells for p in mined.patterns],
            )
        )
    return result


@dataclass
class ProbModelAblationResult:
    box_top: list[tuple[int, ...]]
    disk_top: list[tuple[int, ...]]
    box_time_s: float
    disk_time_s: float

    def overlap(self) -> float:
        """Jaccard overlap of the two top-k sets."""
        a, b = set(self.box_top), set(self.disk_top)
        if not a and not b:
            return 1.0
        return len(a & b) / len(a | b)

    def render(self) -> str:
        return "\n".join(
            [
                "A3: Prob geometry ablation (box vs disk)",
                f"box time: {self.box_time_s:.3f}s, disk time: {self.disk_time_s:.3f}s",
                f"top-k Jaccard overlap: {self.overlap():.2f}",
            ]
        )


def run_prob_model_ablation(
    config: Fig4Config = Fig4Config(k=10, n_trajectories=25, n_ticks=40, target_cells=1024)
) -> ProbModelAblationResult:
    """Mine with box vs disk ``Prob`` and compare the top-k sets."""
    dataset = zebranet_dataset(
        n_trajectories=config.n_trajectories,
        n_ticks=config.n_ticks,
        sigma=config.sigma,
        seed=config.seed,
    )
    tops = {}
    times = {}
    for model in (ProbModel.BOX, ProbModel.DISK):
        engine = make_engine(
            dataset,
            cell_size=0.02,
            min_prob=config.min_prob,
            prob_model=model,
        )
        t0 = time.perf_counter()
        mined = TrajPatternMiner(engine, k=config.k).mine()
        times[model] = time.perf_counter() - t0
        tops[model] = [p.cells for p in mined.patterns]
    return ProbModelAblationResult(
        box_top=tops[ProbModel.BOX],
        disk_top=tops[ProbModel.DISK],
        box_time_s=times[ProbModel.BOX],
        disk_time_s=times[ProbModel.DISK],
    )
