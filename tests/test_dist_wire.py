"""Codec round-trips for the distributed wire protocol.

Every codec must survive an actual JSON hop bit-exactly: the tests below
push values through ``json.dumps``/``json.loads`` (not just the python
objects) because that is what travels on the socket.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.engine import EngineConfig, ExtensionTables
from repro.core.pattern import TrajectoryPattern
from repro.core.wildcards import Gap, GapPattern
from repro.dist import wire
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.uncertainty.gaussian import ProbModel


def _hop(obj):
    """One socket hop: encode to JSON text, parse back."""
    return json.loads(json.dumps(obj))


def test_grid_roundtrip():
    grid = Grid(BoundingBox(-1.5, 0.25, 9.75, 7.0), nx=11, ny=6)
    back = wire.grid_from_wire(_hop(wire.grid_to_wire(grid)))
    assert back.nx == grid.nx and back.ny == grid.ny
    assert back.bbox == grid.bbox


@pytest.mark.parametrize("bad", [None, [], {"min_x": 0.0}, {"nx": 2, "ny": 2}])
def test_grid_from_wire_rejects_malformed(bad):
    with pytest.raises(wire.ProtocolError):
        wire.grid_from_wire(bad)


def test_config_roundtrip_normalises_coordinator_fields():
    config = EngineConfig(
        delta=0.375,
        prob_model=ProbModel.DISK,
        min_prob=1e-7,
        jobs=8,
        cache_dir="/tmp/nope",
        store_path="/tmp/nope.tjc",
        trace_out="/tmp/trace.jsonl",
        metrics_out="/tmp/metrics.json",
        log_level="DEBUG",
    )
    shipped = _hop(wire.config_to_wire(config))
    back = wire.config_from_wire(shipped)
    # Worker-local engine: coordinator-side knobs are normalised away...
    assert back.jobs == 1
    assert back.cache_dir is None
    assert back.store_path is None
    assert back.trace_out is None and back.metrics_out is None
    assert back.log_level is None
    # ...while everything that affects numbers survives exactly.
    assert back.delta == config.delta
    assert back.prob_model is ProbModel.DISK
    assert back.min_prob == config.min_prob
    assert back.min_log_prob == config.min_log_prob


def test_config_from_wire_rejects_unknown_fields():
    shipped = wire.config_to_wire(EngineConfig(delta=0.5))
    shipped["surprise"] = 1
    with pytest.raises(wire.ProtocolError, match="unknown config fields"):
        wire.config_from_wire(shipped)


def test_spans_roundtrip_and_validation():
    spans = [(0, 3), (3, 7), (7, 8)]
    assert wire.spans_from_wire(_hop(wire.spans_to_wire(spans))) == spans
    for bad in ([], [[0, 0]], [[-1, 2]], [[2, 1]], [[0.0, 2]], [[0, True]], "x"):
        with pytest.raises(wire.ProtocolError):
            wire.spans_from_wire(bad)


def test_patterns_roundtrip_and_validation():
    pats = [(4,), (4, 5, 6)]
    assert wire.patterns_from_wire(_hop(wire.patterns_to_wire(pats))) == pats
    for bad in ("x", [[]], [["a"]], [[1.5]], [[True]]):
        with pytest.raises(wire.ProtocolError):
            wire.patterns_from_wire(bad)


def test_gap_pattern_roundtrip():
    gp = GapPattern(
        (TrajectoryPattern((1, 2)), TrajectoryPattern((9,))),
        (Gap(0, 3),),
    )
    back = wire.gap_pattern_from_wire(_hop(wire.gap_pattern_to_wire(gp)))
    assert back == gp
    with pytest.raises(wire.ProtocolError):
        wire.gap_pattern_from_wire({"segments": [[1]]})


def test_array_roundtrip_is_bit_exact():
    # Awkward doubles: denormals, huge magnitudes, ulp-separated values.
    values = np.array(
        [0.1, -1e300, 5e-324, math.pi, np.nextafter(1.0, 2.0), -0.0],
        dtype=np.float64,
    )
    back = wire.array_from_wire(_hop(wire.array_to_wire(values)))
    assert back.dtype == np.float64
    assert np.array_equal(back, values)
    assert np.signbit(back[-1])  # -0.0 survives


def test_table_roundtrip_is_bit_exact():
    table = {7: -0.1, 3: 1e-300, 12: math.e}
    assert wire.table_from_wire(_hop(wire.table_to_wire(table))) == table
    with pytest.raises(wire.ProtocolError):
        wire.table_from_wire({"3": 1.0})


def test_ext_tables_roundtrip():
    tables = ExtensionTables(
        nm_by_cell={1: -2.5, 4: -0.25},
        match_by_cell={1: 0.125},
        nm_base_total=-100.75,
        match_base_total=0.0625,
    )
    back = wire.ext_tables_from_wire(_hop(wire.ext_tables_to_wire(tables)))
    assert back == tables


def test_best_window_roundtrip():
    assert wire.best_window_from_wire(_hop(wire.best_window_to_wire(None))) is None
    assert wire.best_window_from_wire(_hop(wire.best_window_to_wire((3, -1.5)))) == (
        3,
        -1.5,
    )
    with pytest.raises(wire.ProtocolError):
        wire.best_window_from_wire([1])


def test_check_dist_version():
    wire.check_dist_version({"version": wire.DIST_PROTOCOL_VERSION})
    with pytest.raises(wire.ProtocolError):
        wire.check_dist_version({})
    with pytest.raises(wire.ProtocolError):
        wire.check_dist_version({"version": True})
    with pytest.raises(wire.ProtocolError) as exc:
        wire.check_dist_version({"version": wire.DIST_PROTOCOL_VERSION + 1})
    assert exc.value.fields["server_version"] == wire.DIST_PROTOCOL_VERSION
    assert exc.value.fields["client_version"] == wire.DIST_PROTOCOL_VERSION + 1
