"""Location forecasting and resource pre-allocation (introduction use-cases).

The paper's introduction motivates two deployments beyond prediction:
"the mobile communication network can allocate resources more efficiently"
and location-based advertisement ("distribute e-Flyers to potential
customers' mobile devices based on their locations").  Both reduce to the
same primitive: given an object's recent (imprecise) movement, a
*distribution over its next locations* -- the network pre-allocates
channels in the likely cells, the advertiser targets the likely shops.

:class:`LocationForecaster` derives that distribution from a mined pattern
library: every pattern whose prefix the recent history confirms votes for
its continuation cell, weighted by confirmation confidence; votes are
normalised into a categorical forecast.  :func:`coverage_allocation` then
picks the smallest cell set reaching a target probability mass -- the
pre-allocation decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.apps.confirm import ConfirmationIndex
from repro.core.pattern import TrajectoryPattern
from repro.geometry.grid import Grid
from repro.uncertainty.gaussian import ProbModel


@dataclass(frozen=True)
class CellForecast:
    """One entry of a forecast: a cell and its probability mass."""

    cell: int
    probability: float


class LocationForecaster:
    """Next-cell distribution from pattern-prefix confirmations.

    Parameters mirror :class:`~repro.apps.prediction.PatternLibrary` (the
    two share the confirmation machinery's semantics); the difference is
    the output: *all* confirmed continuations with weights, not a single
    override.

    Parameters
    ----------
    patterns:
        Mined patterns over ``grid`` (location patterns for cell
        pre-allocation, velocity patterns for movement forecasts).
    grid:
        The pattern grid.
    delta:
        Mining indifference distance.
    confirm_threshold:
        Minimum per-position (geometric-mean) confirmation confidence.
    min_prefix:
        Shortest usable context.
    confirm_sigma_factor:
        Confirmation probe scale (see the prediction module).
    """

    def __init__(
        self,
        patterns: Sequence[TrajectoryPattern],
        grid: Grid,
        delta: float,
        confirm_threshold: float = 0.5,
        min_prefix: int = 2,
        confirm_sigma_factor: float = 2.5,
        prob_model: ProbModel = ProbModel.BOX,
    ) -> None:
        if not 0.0 < confirm_threshold <= 1.0:
            raise ValueError("confirm_threshold must be in (0, 1]")
        if min_prefix < 1:
            raise ValueError("min_prefix must be at least 1")
        if confirm_sigma_factor <= 0:
            raise ValueError("confirm_sigma_factor must be positive")
        self.grid = grid
        self.delta = delta
        self.confirm_threshold = confirm_threshold
        self.min_prefix = min_prefix
        self.confirm_sigma_factor = confirm_sigma_factor
        self.prob_model = prob_model
        self.patterns = [
            p for p in patterns if len(p) > min_prefix and not p.has_wildcards
        ]
        # Shared vectorised confirmation path (see repro.apps.confirm).
        self._index = ConfirmationIndex(self.patterns, grid, min_prefix)
        self.max_prefix = max((len(p) - 1 for p in self.patterns), default=0)

    def __len__(self) -> int:
        return len(self.patterns)

    def forecast(
        self, recent_means: np.ndarray, sigma: float
    ) -> list[CellForecast]:
        """Categorical next-cell forecast, highest probability first.

        Parameters
        ----------
        recent_means:
            ``(h, 2)`` recent snapshot means (same space as the patterns),
            oldest first.
        sigma:
            Standard deviation of each snapshot estimate.

        Returns an empty list when nothing confirms (the caller falls back
        to its motion model).
        """
        recent_means = np.asarray(recent_means, dtype=float)
        h = len(recent_means)
        if h < self.min_prefix or not self.patterns:
            return []

        delta_eff = max(self.delta, self.confirm_sigma_factor * float(sigma))
        # One vectorised confirmation pass over every (pattern, prefix)
        # candidate; longer confirmed contexts vote more strongly (weight =
        # confidence compounded over the context length).
        votes = self._index.vote(
            recent_means, sigma, delta_eff, self.prob_model, self.confirm_threshold
        )
        total = sum(votes.values())
        if total <= 0:
            return []
        ranked = sorted(votes.items(), key=lambda kv: (-kv[1], kv[0]))
        return [CellForecast(cell, weight / total) for cell, weight in ranked]


def coverage_allocation(
    forecast: Sequence[CellForecast], coverage: float = 0.9
) -> list[int]:
    """Smallest prefix of the forecast reaching the target probability mass.

    This is the pre-allocation decision: reserve resources (channels,
    e-Flyers) in exactly these cells.  An empty forecast yields an empty
    allocation (nothing confident to reserve).
    """
    if not 0.0 < coverage <= 1.0:
        raise ValueError("coverage must be in (0, 1]")
    cells: list[int] = []
    mass = 0.0
    for entry in forecast:
        if mass >= coverage:
            break
        cells.append(entry.cell)
        mass += entry.probability
    return cells


def forecast_hit_rate(
    forecaster: LocationForecaster,
    trajectories,
    coverage: float = 0.9,
    horizon: int = 1,
) -> tuple[float, float]:
    """Evaluate a forecaster over uncertain trajectories.

    For each snapshot with a non-empty forecast, the forecast *hits* when
    the object's most-likely cell enters the coverage allocation within
    the next ``horizon`` snapshots.  ``horizon = 1`` is strict next-tick
    accuracy; the e-Flyer/pre-allocation use-cases care about "shows up
    soon", so they evaluate with a small horizon.  Returns
    ``(hit_rate, fire_rate)``: accuracy over fired snapshots and the
    fraction of snapshots that fired at all.
    """
    if horizon < 1:
        raise ValueError("horizon must be at least 1")
    hits = fires = opportunities = 0
    for trajectory in trajectories:
        cells = forecaster.grid.locate_many(trajectory.means)
        h = forecaster.max_prefix
        for t in range(forecaster.min_prefix, len(trajectory) - 1):
            opportunities += 1
            history = trajectory.means[max(0, t - h) : t + 1]
            sigma = float(trajectory.sigmas[t])
            forecast = forecaster.forecast(history, sigma)
            if not forecast:
                continue
            fires += 1
            allocated = set(coverage_allocation(forecast, coverage))
            upcoming = cells[t + 1 : t + 1 + horizon]
            if any(int(c) in allocated for c in upcoming):
                hits += 1
    hit_rate = hits / fires if fires else 0.0
    fire_rate = fires / opportunities if opportunities else 0.0
    return hit_rate, fire_rate
