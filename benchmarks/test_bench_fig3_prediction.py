"""Fig. 3: mis-prediction reduction from pattern-augmented prediction.

Paper: on held-out bus traces, augmenting LM / LKF / RMF with top-k NM
patterns removes 20-40% of mis-predictions; match patterns remove 10-20%.
The reproduced claims are (a) positive reductions and (b) NM patterns at
least matching the match patterns overall.
"""

import pytest

from repro.datagen.bus import BusFleetConfig
from repro.experiments.fig3 import Fig3Config, run_fig3

CONFIG = Fig3Config(
    k=50,
    max_length=7,
    fleet=BusFleetConfig(n_routes=3, buses_per_route=4, n_days=3, n_ticks=60),
)


@pytest.fixture(scope="module")
def fig3_result():
    return run_fig3(CONFIG)


def test_bench_fig3_full_protocol(benchmark):
    small = Fig3Config(
        k=20,
        max_length=6,
        models=("lm",),
        fleet=BusFleetConfig(n_routes=2, buses_per_route=3, n_days=2, n_ticks=50),
    )
    result = benchmark.pedantic(lambda: run_fig3(small), rounds=1, iterations=1)
    assert len(result.rows) == 2


def test_bench_fig3_reductions_nonnegative_overall(benchmark, fig3_result):
    """Patterns help overall: the summed reduction across models is
    positive for the NM library."""
    # The benchmark fixture keeps this shape assertion alive under
    # --benchmark-only; the measured time is the (cached) result access.
    fig3_result = benchmark.pedantic(lambda: fig3_result, rounds=1, iterations=1)
    nm_rows = [r for r in fig3_result.rows if r.measure == "nm"]
    total_base = sum(r.base_mispredictions for r in nm_rows)
    total_aug = sum(r.augmented_mispredictions for r in nm_rows)
    assert total_aug < total_base, fig3_result.render()


def test_bench_fig3_nm_vs_match(benchmark, fig3_result):
    """Summed over models, NM patterns save at least as many
    mis-predictions as match patterns (the Fig. 3 ordering)."""
    fig3_result = benchmark.pedantic(lambda: fig3_result, rounds=1, iterations=1)
    saved = {}
    for measure in ("nm", "match"):
        rows = [r for r in fig3_result.rows if r.measure == measure]
        saved[measure] = sum(
            r.base_mispredictions - r.augmented_mispredictions for r in rows
        )
    assert saved["nm"] >= saved["match"], fig3_result.render()
