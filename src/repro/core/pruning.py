"""The 1-extension pruning of section 4.1.

Without pruning the candidate set ``Q`` grows by a ``2k`` factor per
iteration.  Lemma 1 shows that every high pattern can be produced by
extending a high pattern with either a high pattern or a *low pattern
satisfying the 1-extension property* -- so every other low pattern can be
discarded from ``Q`` without losing completeness.

Definition 5: a ``j``-pattern (``j > 1``) satisfies the 1-extension property
iff the ``(j-1)``-pattern obtained by deleting its first or last position is
a high pattern; every 1-pattern satisfies it unconditionally.
"""

from __future__ import annotations

from typing import Iterable

Cells = tuple[int, ...]


def satisfies_one_extension(cells: Cells, high: set[Cells] | dict[Cells, float]) -> bool:
    """Definition 5 against the given set of high patterns."""
    if len(cells) == 1:
        return True
    return cells[1:] in high or cells[:-1] in high


def prune_low_patterns(
    low: Iterable[Cells], high: set[Cells] | dict[Cells, float]
) -> tuple[list[Cells], list[Cells]]:
    """Partition low patterns into (kept 1-extension patterns, pruned rest).

    The caller removes the pruned ones from ``Q``; their scores stay cached
    in the :class:`~repro.core.topk.PatternBook` so a later regeneration is
    free.
    """
    kept: list[Cells] = []
    pruned: list[Cells] = []
    for cells in low:
        if satisfies_one_extension(cells, high):
            kept.append(cells)
        else:
            pruned.append(cells)
    return kept, pruned
