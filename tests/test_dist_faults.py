"""Failover: a dying pool must not change a single bit of the answer.

The coordinator's merge is a flat left-fold over per-span results in
global span order; failover only changes *which pool* computes a span,
never the merge order.  So every scenario below demands
``np.array_equal`` / ``==`` against the healthy-run results -- if
failover introduced even a reordering, these tests would see it.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.parallel import ParallelNMEngine
from repro.core.pattern import TrajectoryPattern
from repro.dist import DistNMEngine, DistPoolError
from repro.dist.worker import WorkerPoolConfig, WorkerPoolServer
from repro.storage import open_store, write_store
from repro.testkit import faults
from repro.testkit.datasets import oracle_setup


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    s = oracle_setup(202, quick=True)
    store_path = str(tmp_path_factory.mktemp("dist-faults") / "data.tjc")
    write_store(s.dataset, store_path)
    return s, store_path, open_store(store_path).dataset()


@pytest.fixture(scope="module")
def expected(setup):
    s, _, store_dataset = setup
    with ParallelNMEngine(store_dataset, s.grid, s.config, jobs=4) as par:
        pats = [TrajectoryPattern((c,)) for c in par.active_cells[:5]]
        return pats, par.nm_batch(pats), par.singular_nm_table()


def test_remote_pool_death_redispatches_bit_identically(setup, expected):
    s, store_path, store_dataset = setup
    pats, expected_nm, expected_sing = expected
    s0 = WorkerPoolServer(WorkerPoolConfig(store_path=store_path, name="w0"))
    s1 = WorkerPoolServer(WorkerPoolConfig(store_path=store_path, name="w1"))
    h0, p0 = s0.start()
    h1, p1 = s1.start()
    try:
        with DistNMEngine(
            store_dataset,
            s.grid,
            s.config,
            pools=[f"{h0}:{p0}", f"{h1}:{p1}"],
            jobs=4,
        ) as dist:
            assert np.array_equal(dist.nm_batch(pats), expected_nm)
            s1.stop()  # kill one pool between ops
            assert np.array_equal(dist.nm_batch(pats), expected_nm)
            assert dist.singular_nm_table() == expected_sing
            assert dist.pool_names == ["remote-0"]
    finally:
        s0.stop()
        s1.stop()


def test_local_worker_sigkill_redispatches_bit_identically(setup, expected):
    s, _, store_dataset = setup
    pats, expected_nm, _ = expected
    # The fault registry is fork-inherited: arm before the engine forks its
    # workers, match one shard so exactly one worker dies, then disarm in
    # the parent so replacement workers fork with a clean registry.
    faults.arm(
        "parallel.worker.op",
        action="sigkill",
        match={"op": "nm_batch", "shard": 1},
        count=1,
    )
    try:
        with DistNMEngine(
            store_dataset, s.grid, s.config, pools=["local", "local"], jobs=4
        ) as dist:
            faults.disarm()
            assert np.array_equal(dist.nm_batch(pats), expected_nm)
            assert len(dist.pool_names) == 1  # the killed pool is retired
    finally:
        faults.disarm()


def test_all_pools_dead_raises_dist_pool_error(setup, expected):
    s, store_path, store_dataset = setup
    pats, _, _ = expected
    server = WorkerPoolServer(WorkerPoolConfig(store_path=store_path, name="w2"))
    host, port = server.start()
    dist = DistNMEngine(
        store_dataset, s.grid, s.config, pools=[f"{host}:{port}"], jobs=2
    )
    try:
        server.stop()
        with pytest.raises(DistPoolError):
            dist.nm_batch(pats)
    finally:
        dist.close()


def test_no_orphan_processes_after_failovers():
    assert not mp.active_children()
