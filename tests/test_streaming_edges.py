"""Chunk-boundary edge cases for the out-of-core streaming engine.

The chunking loop has three easy-to-regress edges: a file whose size is an
exact multiple of ``chunk_size`` (the final ``if batch:`` must not yield a
phantom empty chunk), a chunk size equal to or larger than the dataset
(one chunk, no second pass), and ``chunk_size=1`` (maximum fragmentation).
In every geometry the result must equal the monolithic in-memory engine,
and with a cache directory configured each chunk's content-keyed index
file must round-trip (second scan warm) without perturbing the values.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.core.streaming import StreamingNMEngine
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.io import save_dataset_jsonl
from repro.trajectory.trajectory import UncertainTrajectory

N_TRAJECTORIES = 8


@pytest.fixture(scope="module")
def scenario(tmp_path_factory):
    rng = np.random.default_rng(31)
    trajectories = []
    for i in range(N_TRAJECTORIES):
        start = rng.uniform(0.1, 0.5, 2)
        means = start + np.cumsum(rng.normal(0.015, 0.005, (12, 2)), axis=0)
        trajectories.append(UncertainTrajectory(means, 0.02, object_id=f"o{i}"))
    dataset = TrajectoryDataset(trajectories)
    grid = dataset.make_grid(0.05)
    config = EngineConfig(delta=0.05, min_prob=1e-6)
    path = tmp_path_factory.mktemp("stream") / "data.jsonl"
    save_dataset_jsonl(dataset, path)
    engine = NMEngine(dataset, grid, config)
    return path, grid, config, engine


def _patterns(engine, n=5):
    cells = engine.active_cells
    out = [TrajectoryPattern((int(c),)) for c in cells[:2]]
    out.append(TrajectoryPattern((int(cells[0]), int(cells[1]))))
    out.append(TrajectoryPattern((int(cells[1]), int(cells[2]), int(cells[0]))))
    return out[:n]


class TestChunkCount:
    def test_exact_multiple_has_no_phantom_final_chunk(self, scenario):
        # 8 trajectories at chunk_size=4: exactly 2 chunks, and the final
        # empty batch after the last full one must not be scanned.
        path, grid, config, engine = scenario
        streaming = StreamingNMEngine(path, grid, config, chunk_size=4)
        streaming.nm_many(_patterns(engine))
        assert streaming.n_chunks_scanned == 2

    def test_chunk_size_equal_to_dataset(self, scenario):
        path, grid, config, engine = scenario
        streaming = StreamingNMEngine(path, grid, config, chunk_size=N_TRAJECTORIES)
        streaming.nm_many(_patterns(engine))
        assert streaming.n_chunks_scanned == 1

    def test_chunk_size_larger_than_dataset(self, scenario):
        path, grid, config, engine = scenario
        streaming = StreamingNMEngine(path, grid, config, chunk_size=10_000)
        streaming.nm_many(_patterns(engine))
        assert streaming.n_chunks_scanned == 1

    def test_chunk_size_one(self, scenario):
        path, grid, config, engine = scenario
        streaming = StreamingNMEngine(path, grid, config, chunk_size=1)
        streaming.nm_many(_patterns(engine))
        assert streaming.n_chunks_scanned == N_TRAJECTORIES

    def test_ragged_final_chunk(self, scenario):
        # 8 = 3 + 3 + 2: the short tail is a real chunk.
        path, grid, config, engine = scenario
        streaming = StreamingNMEngine(path, grid, config, chunk_size=3)
        streaming.nm_many(_patterns(engine))
        assert streaming.n_chunks_scanned == 3


class TestBoundaryEquivalence:
    """Every chunk geometry sums to the monolithic engine's answer."""

    @pytest.mark.parametrize("chunk_size", [1, 3, 4, N_TRAJECTORIES, 10_000])
    def test_nm_equals_monolithic(self, scenario, chunk_size):
        path, grid, config, engine = scenario
        patterns = _patterns(engine)
        streaming = StreamingNMEngine(path, grid, config, chunk_size=chunk_size)
        np.testing.assert_allclose(
            streaming.nm_many(patterns), engine.nm_batch(patterns), rtol=1e-12
        )

    @pytest.mark.parametrize("chunk_size", [1, 4, N_TRAJECTORIES])
    def test_match_equals_monolithic(self, scenario, chunk_size):
        path, grid, config, engine = scenario
        patterns = _patterns(engine)
        streaming = StreamingNMEngine(path, grid, config, chunk_size=chunk_size)
        np.testing.assert_allclose(
            streaming.match_many(patterns), engine.match_batch(patterns), rtol=1e-12
        )

    def test_singular_table_at_exact_multiple(self, scenario):
        path, grid, config, engine = scenario
        streaming = StreamingNMEngine(path, grid, config, chunk_size=4)
        got = streaming.singular_nm_table()
        expected = engine.singular_nm_table()
        assert set(got) == set(expected)
        for cell, value in expected.items():
            assert got[cell] == pytest.approx(value, rel=1e-12, abs=1e-12)


class TestPerChunkCaching:
    def test_chunk_caches_round_trip(self, scenario, tmp_path):
        # With cache_dir set, each chunk persists its own content-keyed
        # index file; a second scan must hit every one of them and the
        # values must stay identical to both the cold scan and the
        # monolithic engine sharing the same cache directory.
        path, grid, config, engine = scenario
        patterns = _patterns(engine)
        cached = EngineConfig(
            delta=config.delta, min_prob=config.min_prob, cache_dir=str(tmp_path)
        )
        cold = StreamingNMEngine(path, grid, cached, chunk_size=3)
        cold_values = cold.nm_many(patterns)
        files = sorted(tmp_path.glob("index-*.npz"))
        assert len(files) == 3  # one per chunk
        assert list(tmp_path.glob("*.tmp")) == []
        mtimes = [f.stat().st_mtime_ns for f in files]

        warm = StreamingNMEngine(path, grid, cached, chunk_size=3)
        warm_values = warm.nm_many(patterns)
        assert sorted(tmp_path.glob("index-*.npz")) == files
        # A rebuild would overwrite in place: unchanged mtimes prove every
        # chunk loaded from disk instead.
        assert [f.stat().st_mtime_ns for f in files] == mtimes
        np.testing.assert_array_equal(warm_values, cold_values)
        np.testing.assert_allclose(
            warm_values, engine.nm_batch(patterns), rtol=1e-12
        )

    def test_monolithic_and_streaming_caches_coexist(self, scenario, tmp_path):
        # The full-dataset engine and the chunk engines have different
        # content fingerprints: they share a directory without colliding.
        path, grid, config, engine = scenario
        patterns = _patterns(engine)
        cached = EngineConfig(
            delta=config.delta, min_prob=config.min_prob, cache_dir=str(tmp_path)
        )
        streaming = StreamingNMEngine(path, grid, cached, chunk_size=4)
        streaming_values = streaming.nm_many(patterns)
        dataset = engine.dataset
        full = NMEngine(dataset, grid, cached)
        assert not full.index_cache_hit  # distinct key from the chunks
        assert len(list(tmp_path.glob("index-*.npz"))) == 3  # 2 chunks + full
        np.testing.assert_allclose(
            streaming_values, full.nm_batch(patterns), rtol=1e-12
        )
