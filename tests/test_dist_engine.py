"""DistNMEngine vs ParallelNMEngine: bit-identical across a real socket.

One worker pool runs in-process (threads + loopback TCP), one pool is
the local fork kind, so every test exercises the mixed-pool dispatch
path.  All comparisons are exact (``==`` / ``array_equal``): the dist
tier re-uses the parallel tier's merge functions over the same span
partition, so there is no tolerance to hide behind.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import NMEngine
from repro.core.parallel import ParallelNMEngine
from repro.core.pattern import TrajectoryPattern
from repro.core.trajpattern import TrajPatternMiner
from repro.core.wildcards import Gap, GapPattern
from repro.dist import DistNMEngine, DistPoolError, parse_pool_spec
from repro.dist.worker import WorkerPoolConfig, WorkerPoolServer
from repro.storage import open_store, write_store
from repro.testkit.datasets import oracle_setup


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    s = oracle_setup(101, quick=True)
    store_path = str(tmp_path_factory.mktemp("dist") / "data.tjc")
    write_store(s.dataset, store_path)
    return s, store_path, open_store(store_path).dataset()


@pytest.fixture(scope="module")
def pool_server(setup):
    _, store_path, _ = setup
    server = WorkerPoolServer(WorkerPoolConfig(store_path=store_path, name="w0"))
    host, port = server.start()
    yield f"{host}:{port}"
    server.stop()


@pytest.fixture(scope="module")
def engines(setup, pool_server):
    s, _, store_dataset = setup
    par = ParallelNMEngine(store_dataset, s.grid, s.config, jobs=4)
    dist = DistNMEngine(
        store_dataset, s.grid, s.config, pools=["local", pool_server], jobs=4
    )
    yield par, dist
    dist.close()
    par.close()


def _patterns(engine):
    cells = engine.active_cells[:6]
    return [TrajectoryPattern((c,)) for c in cells] + [
        TrajectoryPattern((cells[0], cells[1]))
    ]


def test_parse_pool_spec():
    assert parse_pool_spec("local") == ("local", None)
    assert parse_pool_spec("10.0.0.7:9000") == ("remote", ("10.0.0.7", 9000))
    for bad in ("", ":9000", "host:", "host:x"):
        with pytest.raises(ValueError):
            parse_pool_spec(bad)


def test_active_cells_and_metadata_match(engines):
    par, dist = engines
    assert dist.active_cells == par.active_cells
    assert dist.n_index_entries == par.n_index_entries
    assert len(dist.pool_names) == 2
    assert dist.heartbeat() == {"local-0": True, "remote-1": True}


def test_nm_and_match_batches_bitwise_equal(engines):
    par, dist = engines
    pats = _patterns(par)
    assert np.array_equal(par.nm_batch(pats), dist.nm_batch(pats))
    assert np.array_equal(par.match_batch(pats), dist.match_batch(pats))


def test_per_trajectory_bitwise_equal(engines):
    par, dist = engines
    pat = _patterns(par)[0]
    assert np.array_equal(par.nm_per_trajectory(pat), dist.nm_per_trajectory(pat))
    assert np.array_equal(
        par.match_per_trajectory(pat), dist.match_per_trajectory(pat)
    )


def test_singular_tables_equal(engines):
    par, dist = engines
    assert par.singular_nm_table() == dist.singular_nm_table()
    assert par.singular_match_table() == dist.singular_match_table()


def test_extension_tables_equal(engines):
    par, dist = engines
    pats = _patterns(par)[:2]
    assert par.extend_right_tables_many(pats) == dist.extend_right_tables_many(pats)


def test_gap_pattern_total_equal(engines):
    par, dist = engines
    cells = par.active_cells
    gp = GapPattern(
        (TrajectoryPattern((cells[0],)), TrajectoryPattern((cells[1],))),
        (Gap(0, 2),),
    )
    assert par.nm_gap_pattern_total(gp) == dist.nm_gap_pattern_total(gp)


def test_best_window_routed_to_owning_span(engines, setup):
    par, dist = engines
    _, _, store_dataset = setup
    pat = _patterns(par)[0]
    for ti in (0, len(store_dataset) // 2, len(store_dataset) - 1):
        assert par.best_window(pat, ti) == dist.best_window(pat, ti)


def test_miner_top_k_identical_to_parallel(setup, pool_server):
    """Full mining runs on the dist engine reproduce the parallel engine
    bit-for-bit (same span partition, same flat merge), and agree with a
    serial mine on which patterns win."""
    s, _, store_dataset = setup
    serial = TrajPatternMiner(NMEngine(s.dataset, s.grid, s.config), k=5).mine()
    with ParallelNMEngine(store_dataset, s.grid, s.config, jobs=3) as par:
        parallel = TrajPatternMiner(par, k=5).mine()
    with DistNMEngine(
        store_dataset, s.grid, s.config, pools=["local", pool_server], jobs=3
    ) as dist:
        mined = TrajPatternMiner(dist, k=5).mine()
    assert [p.cells for p, _ in mined.as_pairs()] == [
        p.cells for p, _ in serial.as_pairs()
    ]
    assert [p.cells for p, _ in mined.as_pairs()] == [
        p.cells for p, _ in parallel.as_pairs()
    ]
    for (_, nm_d), (_, nm_p) in zip(mined.as_pairs(), parallel.as_pairs()):
        assert nm_d == nm_p


def test_obs_snapshot_attributes_spans_to_pools(engines):
    _, dist = engines
    snap = dist.obs_snapshot()
    assert snap["n_spans"] == 4
    pools = {entry["pool"] for entry in snap["spans"]}
    assert pools == {"local-0", "remote-1"}


def test_requires_store_backed_dataset(setup):
    s, _, _ = setup
    with pytest.raises(ValueError, match="store"):
        DistNMEngine(s.dataset, s.grid, s.config, pools=["local"], jobs=2)


def test_remote_pool_rejects_mismatched_store(setup, tmp_path):
    """A worker serving different data must refuse the handshake loudly."""
    s, _, store_dataset = setup
    other = oracle_setup(777, quick=True)
    other_path = str(tmp_path / "other.tjc")
    write_store(other.dataset, other_path)
    server = WorkerPoolServer(WorkerPoolConfig(store_path=other_path, name="wx"))
    host, port = server.start()
    try:
        with pytest.raises((DistPoolError, RuntimeError), match="store"):
            DistNMEngine(
                store_dataset, s.grid, s.config, pools=[f"{host}:{port}"], jobs=2
            )
    finally:
        server.stop()


def test_no_processes_leak(setup, pool_server):
    import multiprocessing as mp

    s, _, store_dataset = setup
    before = set(mp.active_children())
    dist = DistNMEngine(
        store_dataset, s.grid, s.config, pools=["local", pool_server], jobs=4
    )
    dist.nm_batch([TrajectoryPattern((dist.active_cells[0],))])
    assert set(mp.active_children()) > before  # local pool forked workers
    dist.close()
    assert set(mp.active_children()) == before
