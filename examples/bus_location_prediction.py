"""Bus fleet: pattern-augmented location prediction (the Fig. 3 scenario).

End-to-end reproduction of the paper's headline application at laptop
scale:

1. simulate a bus fleet on fixed routes with stops;
2. track it with the dead-reckoning protocol (linear model, U / c);
3. transform the server-side location trajectories to velocity
   trajectories and mine top-k NM patterns;
4. track a held-out day with and without pattern augmentation and report
   the mis-prediction reduction per base model.

Run:  python examples/bus_location_prediction.py
"""

import numpy as np

from repro.apps.prediction import PatternLibrary, compare_prediction
from repro.core.engine import EngineConfig, NMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.datagen.bus import BusFleetConfig, BusFleetGenerator
from repro.mobility.models import LinearModel, make_model
from repro.mobility.reporting import ReportingConfig
from repro.mobility.server import track_fleet
from repro.trajectory.velocity import to_velocity_dataset


def main() -> None:
    rng = np.random.default_rng(42)
    fleet_config = BusFleetConfig(
        n_routes=3, buses_per_route=4, n_days=4, n_ticks=80
    )
    paths = BusFleetGenerator(fleet_config).generate_paths(rng)
    n_train = int(len(paths) * 0.9)
    train_paths, test_paths = paths[:n_train], paths[n_train:]
    print(f"{len(paths)} bus-day traces ({n_train} train, {len(test_paths)} test)")

    # Track the training fleet and reduce to velocity trajectories.
    reporting = ReportingConfig(uncertainty=0.01, confidence_c=2.0)
    tracked = track_fleet(train_paths, LinearModel, reporting)
    print(f"training mis-prediction rate: {tracked.misprediction_rate():.1%}")
    # Mining input: the report stream interpolated onto snapshots (the
    # paper's historical preprocessing), then reduced to velocities.
    velocities = to_velocity_dataset(tracked.to_dataset(interpolated=True))

    # Mine top-k velocity patterns of length >= 4 (section 6.1 protocol).
    grid = velocities.make_grid(0.006)
    engine = NMEngine(
        velocities,
        grid,
        EngineConfig(delta=0.006, min_prob=1e-4, max_cells_per_snapshot=64),
    )
    result = TrajPatternMiner(engine, k=50, min_length=4, max_length=6).mine()
    print(
        f"mined {len(result)} NM patterns, mean length "
        f"{result.mean_length():.2f}, in {result.stats.wall_time_s:.1f}s"
    )

    library = PatternLibrary(result.patterns, grid, engine.config.delta)
    print("\nmis-prediction reduction on held-out traces:")
    for model_name in ("lm", "lkf", "rmf"):
        comparison = compare_prediction(
            test_paths,
            lambda name=model_name: make_model(name),
            reporting,
            library,
        )
        print(
            f"  {model_name.upper():4}: {comparison.base_mispredictions:4d} -> "
            f"{comparison.augmented_mispredictions:4d} "
            f"({comparison.reduction:+.1%})"
        )


if __name__ == "__main__":
    main()
