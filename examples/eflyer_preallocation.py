"""e-Flyer pre-allocation: forecast where customers go next (introduction).

The paper's introduction: "retail stores will distribute e-Flyers to
potential customers' mobile devices based on their locations ... finding
common moving patterns of mobile devices is valuable for inferring
potential movement".  This example builds that pipeline:

1. simulate customers moving over a road network (shared corridors);
2. track them imprecisely and mine top-k location patterns;
3. forecast each held-out customer's next cell from their recent movement
   and pre-allocate e-Flyers to the smallest cell set covering 90% of the
   forecast mass;
4. report the hit rate (how often the customer actually shows up in an
   allocated cell) and the fire rate (how often the patterns speak at all).

Run:  python examples/eflyer_preallocation.py
"""

import numpy as np

from repro.apps.forecast import LocationForecaster, coverage_allocation, forecast_hit_rate
from repro.core.engine import EngineConfig, NMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.datagen.network import RoadNetworkConfig, RoadNetworkGenerator
from repro.datagen.observe import observe_paths


def main() -> None:
    rng = np.random.default_rng(23)
    config = RoadNetworkConfig(grid_side=4, n_objects=40, n_ticks=80)
    paths = RoadNetworkGenerator(config).generate_paths(rng)
    train_paths, test_paths = paths[:32], paths[32:]
    print(f"{len(train_paths)} training customers, {len(test_paths)} held out")

    sigma = 0.012
    train = observe_paths(train_paths, sigma=sigma, rng=rng)
    test = observe_paths(test_paths, sigma=sigma, rng=rng)

    grid = train.make_grid(0.05)
    engine = NMEngine(train, grid, EngineConfig(delta=0.05, min_prob=1e-4))
    result = TrajPatternMiner(engine, k=150, min_length=3, max_length=6).mine()
    print(
        f"mined {len(result)} location patterns "
        f"(mean length {result.mean_length():.1f}) over {grid}"
    )

    forecaster = LocationForecaster(
        result.patterns, grid, delta=0.05, confirm_threshold=0.5
    )
    hit_rate, fire_rate = forecast_hit_rate(
        forecaster, test, coverage=0.9, horizon=3
    )
    print(
        f"\npre-allocation at 90% coverage, 3-tick horizon: hit rate "
        f"{hit_rate:.0%} on the {fire_rate:.0%} of snapshots where patterns spoke"
    )

    # One concrete allocation decision, spelled out.
    customer = test[0]
    t = len(customer) // 2
    history = customer.means[max(0, t - forecaster.max_prefix) : t + 1]
    forecast = forecaster.forecast(history, sigma=sigma)
    if forecast:
        allocated = coverage_allocation(forecast, coverage=0.9)
        print(f"\ncustomer {customer.object_id} at tick {t}:")
        for entry in forecast[:5]:
            center = grid.cell_center(entry.cell)
            mark = "*" if entry.cell in allocated else " "
            print(
                f"  {mark} cell {entry.cell:4d} ({center.x:.2f},{center.y:.2f})"
                f"  p = {entry.probability:.2f}"
            )
        print(f"  -> e-Flyers pre-allocated to {len(allocated)} cell(s)")
    else:
        print(f"\ncustomer {customer.object_id}: no confident forecast at tick {t}")


if __name__ == "__main__":
    main()
