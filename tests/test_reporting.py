"""Tests for the dead-reckoning protocol (section 3.1)."""

import numpy as np
import pytest

from repro.mobility.models import LinearModel
from repro.mobility.objects import GroundTruthPath
from repro.mobility.reporting import ReportingConfig, dead_reckon


def linear_path(n=20, vx=0.1, vy=0.0):
    t = np.arange(n, dtype=float)
    return GroundTruthPath(np.column_stack([vx * t, vy * t]), object_id="o")


def turning_path(n=20, vx=0.1):
    """Straight, then an abrupt 90-degree turn halfway."""
    t = np.arange(n, dtype=float)
    xs = np.minimum(t, n // 2) * vx
    ys = np.maximum(t - n // 2, 0) * vx
    return GroundTruthPath(np.column_stack([xs, ys]))


class TestReportingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReportingConfig(uncertainty=0.0)
        with pytest.raises(ValueError):
            ReportingConfig(uncertainty=1.0, confidence_c=0.0)
        with pytest.raises(ValueError):
            ReportingConfig(uncertainty=1.0, p_loss=1.0)

    def test_sigma(self):
        assert ReportingConfig(uncertainty=0.5, confidence_c=2.0).sigma == 0.25


class TestDeadReckon:
    def test_linear_motion_never_reports(self):
        """Once the linear model has the velocity, a linear path needs no
        further uplinks."""
        log = dead_reckon(
            linear_path(), LinearModel(), ReportingConfig(uncertainty=0.05)
        )
        # One report at t=1 (model had zero velocity), then silence.
        assert log.n_mispredictions <= 1
        assert log.reported[2:].sum() == 0

    def test_turn_triggers_report(self):
        log = dead_reckon(
            turning_path(), LinearModel(), ReportingConfig(uncertainty=0.05)
        )
        assert log.n_mispredictions >= 1
        turn_tick = len(turning_path()) // 2
        assert log.reported[turn_tick : turn_tick + 3].any()

    def test_estimates_track_truth_within_u(self):
        path = turning_path()
        config = ReportingConfig(uncertainty=0.05)
        log = dead_reckon(path, LinearModel(), config)
        errors = np.hypot(*(log.estimates - path.positions).T)
        # Wherever no report was needed, the estimate was within U; on
        # delivery ticks it is exact.
        assert np.all(errors[log.delivered] < 1e-12)
        assert np.all(errors[~log.reported] <= config.uncertainty + 1e-9)

    def test_loss_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            dead_reckon(
                linear_path(),
                LinearModel(),
                ReportingConfig(uncertainty=0.05, p_loss=0.5),
            )

    def test_lossy_channel_retries(self):
        path = turning_path(40)
        clean = dead_reckon(path, LinearModel(), ReportingConfig(uncertainty=0.02))
        lossy = dead_reckon(
            path,
            LinearModel(),
            ReportingConfig(uncertainty=0.02, p_loss=0.6),
            rng=np.random.default_rng(0),
        )
        assert lossy.n_lost > 0
        # Losses force retries, so attempts can only go up.
        assert lossy.n_mispredictions >= clean.n_mispredictions

    def test_to_trajectory(self):
        config = ReportingConfig(uncertainty=0.05, confidence_c=2.0)
        log = dead_reckon(linear_path(), LinearModel(), config)
        traj = log.to_trajectory()
        assert len(traj) == len(linear_path())
        assert set(traj.sigmas) == {config.sigma}
        assert traj.object_id == "o"

    def test_override_hook_used(self):
        path = turning_path()
        config = ReportingConfig(uncertainty=0.05)

        calls = []

        def oracle(t, estimates, model, delivered):
            calls.append(t)
            return path.positions[t]  # perfect prediction

        log = dead_reckon(
            path, LinearModel(), config, override_prediction=oracle
        )
        assert log.n_mispredictions == 0
        assert len(calls) == len(path) - 1

    def test_override_none_falls_back(self):
        path = turning_path()
        config = ReportingConfig(uncertainty=0.05)
        base = dead_reckon(path, LinearModel(), config)
        same = dead_reckon(
            path,
            LinearModel(),
            config,
            override_prediction=lambda t, e, m, d: None,
        )
        assert same.n_mispredictions == base.n_mispredictions

    def test_first_tick_not_a_misprediction(self):
        log = dead_reckon(
            linear_path(3), LinearModel(), ReportingConfig(uncertainty=10.0)
        )
        assert log.n_mispredictions == 0
        assert log.delivered[0]
