"""Shared fixtures: small deterministic datasets, grids and engines."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def unit_grid():
    """10x10 grid over the unit square."""
    return Grid(BoundingBox.unit(), nx=10, ny=10)


@pytest.fixture
def small_dataset(rng):
    """12 drifting trajectories of 20 snapshots in the unit square."""
    trajectories = []
    for i in range(12):
        start = rng.uniform(0.1, 0.4, 2)
        steps = rng.normal(0.02, 0.004, (20, 2))
        means = start + np.cumsum(steps, axis=0)
        trajectories.append(
            UncertainTrajectory(means, 0.015, object_id=f"obj-{i}")
        )
    return TrajectoryDataset(trajectories)


@pytest.fixture
def small_engine(small_dataset):
    grid = small_dataset.make_grid(0.03)
    return NMEngine(
        small_dataset, grid, EngineConfig(delta=0.03, min_prob=1e-6)
    )


@pytest.fixture
def tiny_corridor_dataset(rng):
    """Trajectories confined to a tiny corridor => a handful of active cells.

    Small enough for brute-force oracles over all patterns up to length 4.
    """
    trajectories = []
    for i in range(8):
        xs = 0.05 + 0.1 * np.arange(8) + rng.normal(0, 0.01, 8)
        ys = np.full(8, 0.5) + rng.normal(0, 0.01, 8)
        trajectories.append(
            UncertainTrajectory(np.column_stack([xs, ys]), 0.05, object_id=f"c-{i}")
        )
    return TrajectoryDataset(trajectories)


@pytest.fixture
def tiny_engine(tiny_corridor_dataset):
    grid = Grid(BoundingBox(0.0, 0.3, 1.0, 0.7), nx=5, ny=2)
    return NMEngine(
        tiny_corridor_dataset, grid, EngineConfig(delta=0.1, min_prob=1e-4)
    )


def brute_force_top_k(engine, k, max_length, min_length=1):
    """Exhaustive top-k NM patterns over the active alphabet.

    Only usable with tiny alphabets; enumerates every pattern up to
    ``max_length`` and ranks with the miner's deterministic tie-break.
    """
    cells = engine.active_cells
    scored = []
    for length in range(min_length, max_length + 1):
        for combo in itertools.product(cells, repeat=length):
            pattern = TrajectoryPattern(combo)
            scored.append((combo, engine.nm(pattern)))
    scored.sort(key=lambda item: (-item[1], len(item[0]), item[0]))
    return scored[:k]
