"""Uncertainty substrate: the probabilistic location model of section 3.1.

At every snapshot the true location of a mobile object is a bivariate normal
distribution centred on the server's predicted location with per-axis
standard deviation ``sigma = U / c`` (section 3.1).  Every measure in the
paper reduces to ``Prob(l, sigma, p, delta)`` -- the probability that the
true location is within the indifference distance ``delta`` of a position
``p`` -- and products of such probabilities (Eq. 2).

This package provides:

* :func:`~repro.uncertainty.gaussian.prob_within_box` -- the default
  axis-separable "box" semantics of ``Prob``.
* :func:`~repro.uncertainty.gaussian.prob_within_disk` -- the exact
  Euclidean-disk semantics via the noncentral chi-square distribution.
* :class:`~repro.uncertainty.gaussian.ProbModel` -- the enum selecting
  between them.
* log-space helpers in :mod:`~repro.uncertainty.logspace` used to keep long
  products numerically sane.
"""

from repro.uncertainty.gaussian import (
    GaussianLocation,
    ProbModel,
    log_prob_within,
    prob_within,
    prob_within_box,
    prob_within_disk,
    sigma_from_uncertainty,
)
from repro.uncertainty.logspace import (
    LOG_ZERO,
    clamp_log_prob,
    log_mean_exp,
    log_sum_exp,
    safe_log,
)

__all__ = [
    "GaussianLocation",
    "ProbModel",
    "prob_within",
    "prob_within_box",
    "prob_within_disk",
    "log_prob_within",
    "sigma_from_uncertainty",
    "LOG_ZERO",
    "safe_log",
    "clamp_log_prob",
    "log_sum_exp",
    "log_mean_exp",
]
