"""The persistent index cache: hits, invalidation, corruption fallback.

Covers the satellite requirements: a cache hit reproduces the index
bit-for-bit; any change to the dataset or to an index-affecting config
knob invalidates the key; unreadable files of every stripe fall back to a
fresh build instead of crashing; and serial and parallel engines share
one cache file in both directions.
"""

from __future__ import annotations

import glob
from dataclasses import replace

import numpy as np
import pytest

from repro.core import index_cache
from repro.core.engine import EngineConfig, NMEngine
from repro.core.parallel import ParallelNMEngine
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory


@pytest.fixture
def dataset(rng):
    trajectories = []
    for i in range(6):
        means = rng.uniform(0.2, 0.4, 2) + np.cumsum(
            rng.normal(0.02, 0.005, (15, 2)), axis=0
        )
        trajectories.append(UncertainTrajectory(means, 0.02, object_id=f"t{i}"))
    return TrajectoryDataset(trajectories)


@pytest.fixture
def grid(dataset):
    return dataset.make_grid(0.04)


@pytest.fixture
def config(tmp_path):
    return EngineConfig(delta=0.04, min_prob=1e-5, cache_dir=tmp_path / "cache")


class TestCacheHit:
    def test_cold_build_writes_then_warm_hit_is_identical(
        self, dataset, grid, config
    ):
        cold = NMEngine(dataset, grid, config)
        assert not cold.index_cache_hit
        key = index_cache.cache_key(dataset, grid, config)
        assert index_cache.cache_path(config.cache_dir, key).exists()

        warm = NMEngine(dataset, grid, config)
        assert warm.index_cache_hit
        for a, b in zip(warm.index_arrays(), cold.index_arrays()):
            np.testing.assert_array_equal(a, b)
        assert warm.active_cells == cold.active_cells

        patterns_cells = cold.active_cells[:3]
        from repro.core.pattern import TrajectoryPattern

        patterns = [TrajectoryPattern((c,)) for c in patterns_cells]
        np.testing.assert_array_equal(
            warm.nm_batch(patterns), cold.nm_batch(patterns)
        )

    def test_no_cache_dir_means_no_files(self, dataset, grid, tmp_path):
        config = EngineConfig(delta=0.04, min_prob=1e-5)
        engine = NMEngine(dataset, grid, config)
        assert not engine.index_cache_hit
        assert list(tmp_path.iterdir()) == []

    def test_no_stray_temp_files_after_save(self, dataset, grid, config):
        NMEngine(dataset, grid, config)
        leftovers = [
            p for p in config.cache_dir.iterdir() if not p.name.endswith(".npz")
        ]
        assert leftovers == []


class TestInvalidation:
    def test_grid_resolution_changes_key(self, dataset, grid, config):
        other_grid = dataset.make_grid(0.08)
        assert index_cache.cache_key(dataset, grid, config) != index_cache.cache_key(
            dataset, other_grid, config
        )

    @pytest.mark.parametrize(
        "change",
        [
            dict(min_prob=1e-4),
            dict(delta=0.05),
            dict(radius_sigmas=2.5),
            dict(max_cells_per_snapshot=7),
        ],
    )
    def test_index_affecting_config_changes_key(self, dataset, grid, config, change):
        changed = replace(config, **change)
        assert index_cache.cache_key(dataset, grid, config) != index_cache.cache_key(
            dataset, grid, changed
        )

    @pytest.mark.parametrize(
        "change",
        [dict(jobs=4), dict(cache_dir=None), dict(column_cache_size=3)],
    )
    def test_non_index_knobs_do_not_change_key(self, dataset, grid, config, change):
        changed = replace(config, **change)
        assert index_cache.cache_key(dataset, grid, config) == index_cache.cache_key(
            dataset, grid, changed
        )

    def test_sigma_change_invalidates(self, dataset, grid, config):
        key = index_cache.cache_key(dataset, grid, config)
        bumped = [
            UncertainTrajectory(t.means, t.sigmas * (1.001 if i == 3 else 1.0))
            for i, t in enumerate(dataset)
        ]
        assert key != index_cache.cache_key(TrajectoryDataset(bumped), grid, config)

    def test_mean_change_invalidates(self, dataset, grid, config):
        key = index_cache.cache_key(dataset, grid, config)
        moved = [
            UncertainTrajectory(
                t.means + (1e-9 if i == 0 else 0.0), t.sigmas
            )
            for i, t in enumerate(dataset)
        ]
        assert key != index_cache.cache_key(TrajectoryDataset(moved), grid, config)

    def test_trajectory_reordering_invalidates(self, dataset, grid, config):
        key = index_cache.cache_key(dataset, grid, config)
        reordered = dataset.subset(list(reversed(range(len(dataset)))))
        assert key != index_cache.cache_key(reordered, grid, config)

    def test_engine_rebuilds_on_changed_config(self, dataset, grid, config):
        NMEngine(dataset, grid, config)
        changed = replace(config, min_prob=1e-4)
        engine = NMEngine(dataset, grid, changed)
        assert not engine.index_cache_hit  # different key => cold build


class TestCorruptionFallback:
    def _populate(self, dataset, grid, config):
        NMEngine(dataset, grid, config)
        key = index_cache.cache_key(dataset, grid, config)
        return index_cache.cache_path(config.cache_dir, key)

    def test_truncated_file_falls_back(self, dataset, grid, config):
        path = self._populate(dataset, grid, config)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        engine = NMEngine(dataset, grid, config)
        assert not engine.index_cache_hit
        # ... and the fresh build healed the file for the next run.
        assert NMEngine(dataset, grid, config).index_cache_hit

    def test_garbage_file_falls_back(self, dataset, grid, config):
        path = self._populate(dataset, grid, config)
        path.write_text("this is not a zip archive")
        assert not NMEngine(dataset, grid, config).index_cache_hit

    def test_missing_payload_key_falls_back(self, dataset, grid, config):
        path = self._populate(dataset, grid, config)
        np.savez(path, cells=np.zeros(1, dtype=np.int64))  # rows/vals missing
        assert index_cache.load_index(config.cache_dir, path.stem[6:]) is None
        assert not NMEngine(dataset, grid, config).index_cache_hit

    def test_wrong_shape_or_dtype_falls_back(self, dataset, grid, config):
        path = self._populate(dataset, grid, config)
        key = path.stem[len("index-") :]
        np.savez(
            path,
            cells=np.zeros((2, 2), dtype=np.int64),
            rows=np.zeros(4, dtype=np.int64),
            vals=np.zeros(4),
        )
        assert index_cache.load_index(config.cache_dir, key) is None
        np.savez(
            path,
            cells=np.zeros(4, dtype=np.float64),  # float cells
            rows=np.zeros(4, dtype=np.int64),
            vals=np.zeros(4),
        )
        assert index_cache.load_index(config.cache_dir, key) is None
        np.savez(
            path,
            cells=np.zeros(4, dtype=np.int64),
            rows=np.zeros(3, dtype=np.int64),  # length mismatch
            vals=np.zeros(4),
        )
        assert index_cache.load_index(config.cache_dir, key) is None

    def test_missing_file_is_a_miss(self, config):
        assert index_cache.load_index(config.cache_dir, "0" * 64) is None


class TestSerialParallelSharing:
    def test_parallel_cold_write_serial_warm_read(self, dataset, grid, config):
        with ParallelNMEngine(dataset, grid, config, jobs=3) as par:
            assert not par.index_cache_hit
        reference = NMEngine(dataset, grid, replace(config, cache_dir=None))
        warm = NMEngine(dataset, grid, config)
        assert warm.index_cache_hit
        for a, b in zip(warm.index_arrays(), reference.index_arrays()):
            np.testing.assert_array_equal(a, b)
        assert glob.glob("/dev/shm/repro-shm-*") == []

    def test_serial_cold_write_parallel_warm_read(self, dataset, grid, config):
        reference = NMEngine(dataset, grid, config)
        assert not reference.index_cache_hit
        with ParallelNMEngine(dataset, grid, config, jobs=4) as par:
            assert par.index_cache_hit
            assert par.n_index_entries == reference.n_index_entries
            from repro.core.pattern import TrajectoryPattern

            patterns = [TrajectoryPattern((c,)) for c in reference.active_cells[:4]]
            np.testing.assert_allclose(
                par.nm_batch(patterns), reference.nm_batch(patterns), rtol=1e-12
            )
        assert glob.glob("/dev/shm/repro-shm-*") == []
