"""Equivalence of the vectorised confirmation index vs the scalar loops.

:class:`~repro.apps.confirm.ConfirmationIndex` replaced per-(pattern, q)
Python loops in the prediction library and the forecaster.  These tests
pin the refactor: the scalar reference below re-implements the historical
loop verbatim, and the vectorised path must reproduce it exactly up to the
final geometric-mean root (array-pow vs scalar-pow differ in the last ULP;
everything upstream -- ``prob_within`` inputs, sequential product order,
tie-breaking -- is identical).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.confirm import ConfirmationIndex
from repro.core.pattern import TrajectoryPattern
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.uncertainty.gaussian import ProbModel, prob_within


@pytest.fixture()
def grid():
    return Grid(BoundingBox(-1.0, -1.0, 1.0, 1.0), nx=8, ny=8)


@pytest.fixture()
def patterns(grid):
    rng = np.random.default_rng(42)
    out = []
    for length in (3, 3, 4, 5, 6, 4):
        cells = tuple(int(c) for c in rng.integers(0, grid.n_cells, size=length))
        out.append(TrajectoryPattern(cells))
    # One pattern with a constant prefix, for the nonconstant gate.
    out.append(TrajectoryPattern((5, 5, 9)))
    return out


def _scalar_confidences(patterns, grid, min_prefix, history, sigma, delta_eff, model):
    """The historical loop: one prob_within call per (pattern, q) pair."""
    h = len(history)
    conf, valid, meta = [], [], []
    for i, pattern in enumerate(patterns):
        centers = pattern.centers(grid)
        for q in range(min_prefix, len(pattern)):
            meta.append((i, q))
            if q > h:
                conf.append(0.0)
                valid.append(False)
                continue
            probs = prob_within(
                history[h - q : h],
                np.asarray(sigma, dtype=float),
                centers[:q],
                delta_eff,
                model=model,
            )
            conf.append(float(np.prod(probs)) ** (1.0 / q))
            valid.append(True)
    return np.asarray(conf), np.asarray(valid), meta


@pytest.mark.parametrize("model", [ProbModel.BOX, ProbModel.DISK])
@pytest.mark.parametrize("h", [2, 3, 5, 8])
def test_confidences_match_scalar_reference(grid, patterns, model, h):
    rng = np.random.default_rng(h)
    history = rng.uniform(-1.0, 1.0, size=(h, 2))
    sigma, delta_eff, min_prefix = 0.15, 0.4, 2

    index = ConfirmationIndex(patterns, grid, min_prefix)
    conf, valid = index.confidences(history, sigma, delta_eff, model)
    ref_conf, ref_valid, meta = _scalar_confidences(
        patterns, grid, min_prefix, history, sigma, delta_eff, model
    )

    assert [(int(i), int(q)) for i, q in zip(index.pattern_idx, index.q)] == meta
    np.testing.assert_array_equal(valid, ref_valid)
    # Same inputs and product order; the final root may differ by 1 ULP
    # (numpy array-pow vs scalar-pow code paths).
    np.testing.assert_allclose(conf[valid], ref_conf[ref_valid], rtol=5e-16, atol=0.0)


def test_best_candidate_matches_scalar_argmax(grid, patterns):
    """Longest confirmed context wins, ties by confidence, first wins."""
    rng = np.random.default_rng(7)
    min_prefix = 2
    index = ConfirmationIndex(patterns, grid, min_prefix)
    hits = 0
    for trial in range(50):
        history = rng.uniform(-1.0, 1.0, size=(rng.integers(2, 7), 2))
        sigma = float(rng.uniform(0.05, 0.3))
        delta_eff = float(rng.uniform(0.2, 0.8))
        threshold = float(rng.uniform(0.1, 0.6))

        conf, valid, meta = _scalar_confidences(
            patterns, grid, min_prefix, history, sigma, delta_eff, ProbModel.BOX
        )
        best_ref = None
        best_key = None
        for j, ((_, q), c, v) in enumerate(zip(meta, conf, valid)):
            if not v or c < threshold:
                continue
            key = (q, c)
            if best_key is None or key > best_key:  # strict: first wins ties
                best_key, best_ref = key, j

        got = index.best_candidate(
            history, sigma, delta_eff, ProbModel.BOX, threshold
        )
        assert got == best_ref
        hits += got is not None
    assert hits, "trial parameters never confirmed anything -- test is vacuous"


def test_nonconstant_gate_excludes_constant_prefixes(grid):
    # Pattern (5, 5, 9): its only prefix is the constant (5, 5).
    index = ConfirmationIndex([TrajectoryPattern((5, 5, 9))], grid, min_prefix=2)
    center = TrajectoryPattern((5, 5, 9)).centers(grid)[0]
    history = np.vstack([center, center])  # perfectly confirming history
    assert (
        index.best_candidate(history, 0.05, 0.5, ProbModel.BOX, 0.5)
        is not None
    )
    assert (
        index.best_candidate(
            history, 0.05, 0.5, ProbModel.BOX, 0.5, require_nonconstant=True
        )
        is None
    )


def test_vote_matches_scalar_accumulation(grid, patterns):
    rng = np.random.default_rng(3)
    min_prefix = 2
    index = ConfirmationIndex(patterns, grid, min_prefix)
    nonempty = 0
    for trial in range(30):
        history = rng.uniform(-1.0, 1.0, size=(rng.integers(2, 7), 2))
        sigma = float(rng.uniform(0.05, 0.3))
        delta_eff = float(rng.uniform(0.3, 0.9))
        threshold = float(rng.uniform(0.1, 0.5))

        conf, valid, meta = _scalar_confidences(
            patterns, grid, min_prefix, history, sigma, delta_eff, ProbModel.BOX
        )
        ref: dict[int, float] = {}
        for ((i, q), c, v) in zip(meta, conf, valid):
            if not v or c < threshold:
                continue
            cell = patterns[i].cells[q]
            ref[cell] = ref.get(cell, 0.0) + float(c * q)

        votes = index.vote(history, sigma, delta_eff, ProbModel.BOX, threshold)
        assert votes.keys() == ref.keys()
        for cell in ref:
            assert votes[cell] == pytest.approx(ref[cell], rel=1e-15)
        nonempty += bool(votes)
    assert nonempty, "no trial produced votes -- test is vacuous"


def test_empty_library_yields_no_candidates(grid):
    index = ConfirmationIndex([], grid, min_prefix=2)
    history = np.zeros((4, 2))
    conf, valid = index.confidences(history, 0.1, 0.3, ProbModel.BOX)
    assert len(index) == 0 and conf.size == 0
    assert index.best_candidate(history, 0.1, 0.3, ProbModel.BOX, 0.5) is None
    assert index.vote(history, 0.1, 0.3, ProbModel.BOX, 0.5) == {}
