"""Round-trip, atomicity and format-validation tests for the .tjc store."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core.index_cache import dataset_fingerprint
from repro.storage import (
    FORMAT_VERSION,
    StoreFormatError,
    StoreWriter,
    is_store_path,
    open_store,
    write_store,
)
from repro.testkit.datasets import seeded_dataset
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

CODECS = [
    dict(compression="none", positions="f64"),
    dict(compression="zlib", positions="f64"),
    dict(compression="zlib", positions="q32", quant_scale=1e-9),
]


@pytest.fixture(scope="module")
def dataset():
    return seeded_dataset(11, n_trajectories=9, n_ticks=23)


class TestRoundTrip:
    @pytest.mark.parametrize("codec", CODECS, ids=lambda c: f"{c['positions']}-{c['compression']}")
    def test_materialised_trajectories_match(self, dataset, tmp_path, codec):
        path = write_store(dataset, tmp_path / "d.tjc", **codec)
        with open_store(path) as store:
            assert store.n_trajectories == len(dataset)
            assert store.total_snapshots == dataset.total_snapshots()
            back = store.materialise()
        for orig, got in zip(dataset, back):
            assert got.object_id == orig.object_id
            assert np.array_equal(np.asarray(got.sigmas), np.asarray(orig.sigmas))
            if codec["positions"] == "f64":
                assert np.array_equal(np.asarray(got.means), np.asarray(orig.means))
            else:
                # q32 is lossy by quant_scale; the error bound is half an ULP
                # of the quantisation grid.
                err = np.abs(np.asarray(got.means) - np.asarray(orig.means))
                assert err.max() <= codec["quant_scale"]

    def test_lossless_columns_bit_identical(self, dataset, tmp_path):
        path = write_store(dataset, tmp_path / "d.tjc", compression="zlib")
        with open_store(path) as store:
            assert np.array_equal(
                store.means(0, store.total_snapshots, mode="read"),
                dataset.all_means(),
            )
            assert np.array_equal(
                store.sigmas(0, store.total_snapshots, mode="read"),
                dataset.all_sigmas(),
            )
            assert np.array_equal(store.lengths, dataset.lengths())

    def test_timestamps_round_trip(self, tmp_path):
        means = np.linspace(0.1, 0.9, 10).reshape(5, 2)
        with StoreWriter(tmp_path / "t.tjc", store_times=True, tick=0.5) as writer:
            writer.append_arrays(means, 0.01, object_id="a", start_time=100.0, dt=2.5)
            writer.append_arrays(means, 0.02, object_id="b", start_time=-3.0, dt=0.5)
        with open_store(tmp_path / "t.tjc") as store:
            # times() yields int64 ticks of the writer's `tick` unit:
            # start 100.0 / 0.5 = 200 ticks, dt 2.5 / 0.5 = 5 ticks.
            times = store.times(0, store.total_snapshots)
            assert times.dtype == np.int64
            assert np.array_equal(times[:5], 200 + 5 * np.arange(5))
            assert np.array_equal(times[5:], -6 + 1 * np.arange(5))

    def test_times_unavailable_without_store_times(self, dataset, tmp_path):
        path = write_store(dataset, tmp_path / "d.tjc")
        with open_store(path) as store:
            with pytest.raises(ValueError, match="without timestamps"):
                store.times(0, 1)

    def test_multi_chunk_store(self, dataset, tmp_path):
        path = write_store(dataset, tmp_path / "d.tjc", chunk_rows=16, compression="zlib")
        with open_store(path) as store:
            assert store.describe()["n_chunks"] > 1
            assert np.array_equal(
                store.means(0, store.total_snapshots, mode="read"),
                dataset.all_means(),
            )
            # straddling reads cross chunk boundaries
            assert np.array_equal(
                store.means(10, 40, mode="read"), dataset.all_means()[10:40]
            )

    def test_content_hash_matches_dataset_fingerprint(self, dataset, tmp_path):
        path = write_store(dataset, tmp_path / "d.tjc", compression="zlib")
        with open_store(path) as store:
            assert store.content_hash == dataset_fingerprint(dataset)

    def test_stats_are_exact(self, dataset, tmp_path):
        path = write_store(dataset, tmp_path / "d.tjc")
        means = dataset.all_means()
        with open_store(path) as store:
            stats = store.stats
            assert stats["min_x"] == means[:, 0].min()
            assert stats["max_x"] == means[:, 0].max()
            assert stats["min_y"] == means[:, 1].min()
            assert stats["max_y"] == means[:, 1].max()
            assert stats["max_sigma"] == dataset.all_sigmas().max()

    def test_describe_summarises_header(self, dataset, tmp_path):
        path = write_store(dataset, tmp_path / "d.tjc", compression="zlib")
        with open_store(path) as store:
            info = store.describe()
        assert info["format"] == "repro.tjc"
        assert info["version"] == FORMAT_VERSION
        assert info["n_trajectories"] == len(dataset)
        assert info["compression"] == "zlib"
        assert info["supports_mmap"] is False

    def test_mmap_only_for_raw_f64(self, dataset, tmp_path):
        raw = write_store(dataset, tmp_path / "raw.tjc")
        packed = write_store(dataset, tmp_path / "z.tjc", compression="zlib")
        with open_store(raw) as store:
            assert store.supports_mmap
            assert np.array_equal(
                store.means(3, 17, mode="mmap"), dataset.all_means()[3:17]
            )
        with open_store(packed) as store:
            assert not store.supports_mmap
            with pytest.raises(ValueError, match="mmap"):
                store.means(0, 1, mode="mmap")


class TestWriterValidation:
    def test_rejects_unknown_codecs(self, tmp_path):
        with pytest.raises(ValueError, match="compression"):
            StoreWriter(tmp_path / "x.tjc", compression="lz77")
        with pytest.raises(ValueError, match="position codec"):
            StoreWriter(tmp_path / "x.tjc", positions="f16")
        with pytest.raises(ValueError, match="quant_scale"):
            StoreWriter(tmp_path / "x.tjc", positions="q32")

    def test_rejects_bad_arrays(self, tmp_path):
        with StoreWriter(tmp_path / "x.tjc") as writer:
            with pytest.raises(ValueError, match=r"shape \(n, 2\)"):
                writer.append_arrays(np.zeros(4), 0.1)
            with pytest.raises(ValueError, match="finite"):
                writer.append_arrays(np.full((3, 2), np.nan), 0.1)
            with pytest.raises(ValueError, match="positive"):
                writer.append_arrays(np.zeros((3, 2)), -1.0)
            writer.append_arrays(np.zeros((3, 2)), 0.1)

    def test_abort_leaves_nothing(self, tmp_path):
        target = tmp_path / "x.tjc"
        with pytest.raises(RuntimeError, match="boom"):
            with StoreWriter(target) as writer:
                writer.append_arrays(np.zeros((3, 2)), 0.1)
                raise RuntimeError("boom")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_commit_is_atomic_over_existing(self, dataset, tmp_path):
        target = tmp_path / "x.tjc"
        write_store(dataset, target)
        first = target.read_bytes()
        # A failed rewrite must leave the original intact.
        with pytest.raises(RuntimeError):
            with StoreWriter(target) as writer:
                writer.append_arrays(np.zeros((2, 2)) + 0.5, 0.2)
                raise RuntimeError("interrupted")
        assert target.read_bytes() == first


class TestFormatRejection:
    def test_sniffs_store_paths(self, dataset, tmp_path):
        path = write_store(dataset, tmp_path / "d.tjc")
        assert is_store_path(path)
        other = tmp_path / "d.jsonl"
        other.write_text('{"format": "repro.trajectory"}\n')
        assert not is_store_path(other)
        assert not is_store_path(tmp_path / "missing.tjc")

    def test_rejects_non_store(self, tmp_path):
        junk = tmp_path / "x.tjc"
        junk.write_bytes(b"definitely not a store, but long enough to scan")
        with pytest.raises(StoreFormatError, match="bad magic"):
            open_store(junk)
        tiny = tmp_path / "tiny.tjc"
        tiny.write_bytes(b"hi")
        with pytest.raises(StoreFormatError, match="too small"):
            open_store(tiny)

    def test_rejects_truncated_store(self, dataset, tmp_path):
        path = write_store(dataset, tmp_path / "d.tjc")
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 7])
        with pytest.raises(StoreFormatError, match="trailing magic"):
            open_store(path)

    def test_rejects_future_format_version(self, dataset, tmp_path):
        path = write_store(dataset, tmp_path / "d.tjc")
        blob = bytearray(path.read_bytes())
        # Surgically bump the footer's version field in place: the footer
        # is compact JSON, so rewrite `"version":1` keeping the byte length.
        needle = b'"version":%d' % FORMAT_VERSION
        at = blob.rindex(needle)
        blob[at : at + len(needle)] = b'"version":%d' % (FORMAT_VERSION + 8)
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreFormatError, match="unsupported"):
            open_store(path)

    def test_rejects_corrupt_footer_length(self, dataset, tmp_path):
        path = write_store(dataset, tmp_path / "d.tjc")
        blob = bytearray(path.read_bytes())
        tail = len(blob) - 8 - 8  # 8-byte magic + uint64 footer_len
        blob[tail : tail + 8] = struct.pack("<Q", 2**40)
        path.write_bytes(bytes(blob))
        with pytest.raises(StoreFormatError, match="footer"):
            open_store(path)


class TestEmptyAndEdge:
    def test_empty_store_round_trips(self, tmp_path):
        with StoreWriter(tmp_path / "e.tjc"):
            pass
        with open_store(tmp_path / "e.tjc") as store:
            assert store.n_trajectories == 0
            assert store.total_snapshots == 0
            assert len(store.materialise()) == 0

    def test_single_snapshot_trajectory(self, tmp_path):
        traj = UncertainTrajectory(np.array([[0.5, 0.5]]), 0.01, object_id="solo")
        write_store(TrajectoryDataset([traj]), tmp_path / "s.tjc")
        with open_store(tmp_path / "s.tjc") as store:
            got = store.trajectory(0)
            assert got.object_id == "solo"
            assert np.array_equal(np.asarray(got.means), np.asarray(traj.means))

    def test_row_range_validation(self, dataset, tmp_path):
        path = write_store(dataset, tmp_path / "d.tjc")
        with open_store(path) as store:
            with pytest.raises(IndexError):
                store.means(0, store.total_snapshots + 1)
            with pytest.raises(IndexError):
                store.trajectory(store.n_trajectories)

    def test_closed_store_rejects_reads(self, dataset, tmp_path):
        path = write_store(dataset, tmp_path / "d.tjc")
        store = open_store(path)
        store.close()
        with pytest.raises(ValueError):
            store.means(0, 1, mode="read")
