"""Fig. 3: mis-prediction reduction from pattern-augmented prediction.

Protocol (section 6.1): mine top-k velocity patterns (length >= 4) on 450
training traces; for each of the three base models (LM, LKF, RMF), track
the 50 held-out traces with and without pattern augmentation and report the
fraction of mis-predictions removed.  The paper reports 20-40% reduction
with NM patterns and 10-20% with match patterns, across all three models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.apps.prediction import PatternLibrary, compare_prediction
from repro.baselines.match_miner import MatchMiner
from repro.core.trajpattern import TrajPatternMiner
from repro.datagen.bus import BusFleetConfig
from repro.experiments.datasets import (
    DEFAULT_BUS_REPORTING,
    bus_fleet_paths,
    bus_velocity_dataset,
    make_engine,
)
from repro.mobility.models import make_model
from repro.mobility.reporting import ReportingConfig


@dataclass(frozen=True)
class Fig3Config:
    """Scale and protocol knobs; defaults mirror the paper's setup."""

    k: int = 50
    min_length: int = 4
    max_length: int = 8
    cell_size: float = 0.006
    train_fraction: float = 0.9  # 450 / 500
    confirm_threshold: float = 0.9
    min_prefix: int = 2
    reporting: ReportingConfig = DEFAULT_BUS_REPORTING
    seed: int = 42
    fleet: BusFleetConfig = BusFleetConfig()
    models: tuple[str, ...] = ("lm", "lkf", "rmf")


@dataclass
class Fig3Row:
    """One bar pair of Fig. 3."""

    model: str
    measure: str  # "nm" or "match"
    base_mispredictions: int
    augmented_mispredictions: int
    reduction: float


@dataclass
class Fig3Result:
    """All bars, plus the paper's reported ranges for reference."""

    rows: list[Fig3Row] = field(default_factory=list)
    paper_nm_range: tuple[float, float] = (0.20, 0.40)
    paper_match_range: tuple[float, float] = (0.10, 0.20)

    def reduction(self, model: str, measure: str) -> float:
        for row in self.rows:
            if row.model == model and row.measure == measure:
                return row.reduction
        raise KeyError(f"no row for {model}/{measure}")

    def render(self) -> str:
        lines = [
            "Fig. 3: mis-prediction reduction by pattern-augmented prediction",
            f"paper: NM patterns {self.paper_nm_range[0]:.0%}-"
            f"{self.paper_nm_range[1]:.0%}, match patterns "
            f"{self.paper_match_range[0]:.0%}-{self.paper_match_range[1]:.0%}",
            f"{'model':<8}{'measure':<10}{'base':>8}{'augmented':>12}{'reduction':>12}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.model:<8}{row.measure:<10}{row.base_mispredictions:>8}"
                f"{row.augmented_mispredictions:>12}{row.reduction:>12.1%}"
            )
        return "\n".join(lines)


def run_fig3(config: Fig3Config = Fig3Config()) -> Fig3Result:
    """Run the full Fig. 3 protocol; see the module docstring."""
    paths = bus_fleet_paths(seed=config.seed, config=config.fleet)
    n_train = int(len(paths) * config.train_fraction)
    train_paths, test_paths = paths[:n_train], paths[n_train:]

    train_dataset = bus_velocity_dataset(
        train_paths, reporting=config.reporting, seed=config.seed
    )
    engine = make_engine(
        train_dataset,
        cell_size=config.cell_size,
        min_prob=1e-4,
        max_cells_per_snapshot=64,
    )

    nm_patterns = TrajPatternMiner(
        engine, k=config.k, min_length=config.min_length, max_length=config.max_length
    ).mine().patterns
    match_patterns = MatchMiner(
        engine, k=config.k, min_length=config.min_length, max_length=config.max_length
    ).mine().patterns

    libraries = {
        "nm": PatternLibrary(
            nm_patterns,
            engine.grid,
            engine.config.delta,
            confirm_threshold=config.confirm_threshold,
            min_prefix=config.min_prefix,
        ),
        "match": PatternLibrary(
            match_patterns,
            engine.grid,
            engine.config.delta,
            confirm_threshold=config.confirm_threshold,
            min_prefix=config.min_prefix,
        ),
    }

    result = Fig3Result()
    for model_name in config.models:
        for measure, library in libraries.items():
            comparison = compare_prediction(
                test_paths,
                lambda name=model_name: make_model(name),
                config.reporting,
                library,
                seed=config.seed,
            )
            result.rows.append(
                Fig3Row(
                    model=model_name,
                    measure=measure,
                    base_mispredictions=comparison.base_mispredictions,
                    augmented_mispredictions=comparison.augmented_mispredictions,
                    reduction=comparison.reduction,
                )
            )
    return result
