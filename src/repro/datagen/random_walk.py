"""Correlated random walks -- the simplest ground-truth generator.

Used by tests and micro-benchmarks that need unstructured but
movement-shaped data quickly; heavier structure comes from the bus,
ZebraNet and road-network generators.
"""

from __future__ import annotations

import numpy as np

from repro.mobility.objects import GroundTruthPath


def correlated_random_walks(
    n_paths: int,
    n_ticks: int,
    rng: np.random.Generator,
    step: float = 0.01,
    turn_sigma: float = 0.3,
    extent: float = 1.0,
) -> list[GroundTruthPath]:
    """Constant-speed walks with Gaussian heading persistence.

    Parameters
    ----------
    n_paths, n_ticks:
        Fleet size and path length.
    step:
        Per-tick displacement magnitude.
    turn_sigma:
        Heading-change standard deviation (radians); 0 gives straight
        lines, large values approach isotropic random walks.
    extent:
        Starting positions are uniform in ``[0, extent]^2`` (walks may
        leave the box; grids are built over the data's bounding box).
    """
    if n_paths < 1 or n_ticks < 2:
        raise ValueError("need at least one path of at least two ticks")
    if step < 0 or turn_sigma < 0 or extent <= 0:
        raise ValueError("step and turn_sigma must be >= 0, extent > 0")

    starts = rng.uniform(0, extent, size=(n_paths, 2))
    headings = rng.uniform(0, 2 * np.pi, size=n_paths)
    positions = np.empty((n_paths, n_ticks, 2))
    positions[:, 0, :] = starts
    for t in range(1, n_ticks):
        headings = headings + rng.normal(scale=turn_sigma, size=n_paths)
        positions[:, t, 0] = positions[:, t - 1, 0] + step * np.cos(headings)
        positions[:, t, 1] = positions[:, t - 1, 1] + step * np.sin(headings)
    return [
        GroundTruthPath(positions[i], object_id=f"walker-{i}")
        for i in range(n_paths)
    ]
