"""Top-k pattern mining under the *match* measure of [14].

The match of a pattern in a trajectory is the maximum joint probability of
the pattern over all equal-length windows (Eq. 2 without normalisation),
summed over the data set.  Unlike NM, match is monotone: appending a
position multiplies each window probability by a factor <= 1, so

    ``match(P') >= match(P)``  for every contiguous sub-pattern ``P'`` of ``P``

-- the Apriori property (section 3.3).  A level-wise miner that extends
only patterns whose match still clears the running top-k threshold is
therefore exact; the border-collapsing algorithm of [14] accelerates the
same search and finds the same answer, so this implementation is a faithful
stand-in for the paper's comparison baseline (DESIGN.md, substitutions).

Because match shrinks with pattern length, an unconstrained top-k is
dominated by singular patterns; the experiments therefore mine with a
minimum length (e.g. "top-1000 match patterns with length at least 3"),
which this miner supports directly.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass, field

from repro.core.engine import NMEngine
from repro.core.pattern import TrajectoryPattern

Cells = tuple[int, ...]


@dataclass
class MatchMinerStats:
    """Instrumentation of a match-mining run."""

    levels: int = 0
    candidates_evaluated: int = 0
    frontier_sizes: list[int] = field(default_factory=list)
    wall_time_s: float = 0.0


@dataclass
class MatchMiningResult:
    """Ranked top-k patterns under the match measure."""

    patterns: list[TrajectoryPattern]
    match_values: list[float]
    threshold: float
    stats: MatchMinerStats

    def __len__(self) -> int:
        return len(self.patterns)

    def as_pairs(self) -> list[tuple[TrajectoryPattern, float]]:
        return list(zip(self.patterns, self.match_values))

    def mean_length(self) -> float:
        """Average pattern length (compared against NM patterns in T1)."""
        if not self.patterns:
            return 0.0
        return sum(len(p) for p in self.patterns) / len(self.patterns)


class _TopKTracker:
    """Min-heap of the k best qualifying scores; O(log k) per update."""

    def __init__(self, k: int, min_length: int) -> None:
        self.k = k
        self.min_length = min_length
        self._heap: list[float] = []

    def note(self, cells: Cells, value: float) -> None:
        if len(cells) < self.min_length:
            return
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, value)
        elif value > self._heap[0]:
            heapq.heapreplace(self._heap, value)

    @property
    def threshold(self) -> float:
        """k-th best qualifying score so far (``-inf`` until k exist)."""
        if len(self._heap) == self.k:
            return self._heap[0]
        return -math.inf


class MatchMiner:
    """Exact level-wise top-k miner for the match measure.

    Parameters
    ----------
    engine:
        Evaluation engine over the target dataset (shared with TrajPattern).
    k:
        Number of patterns to mine.
    min_length:
        Only patterns at least this long qualify for the top-k (shorter
        patterns are still grown through, as Apriori requires).
    max_length:
        Hard cap on the search depth; ``None`` searches until the frontier
        empties (guaranteed, since match decays with length while the
        threshold only rises).
    """

    def __init__(
        self,
        engine: NMEngine,
        k: int,
        min_length: int = 1,
        max_length: int | None = None,
    ) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if min_length < 1:
            raise ValueError("min_length must be at least 1")
        if max_length is not None and max_length < min_length:
            raise ValueError("max_length must be >= min_length")
        self.engine = engine
        self.k = k
        self.min_length = min_length
        self.max_length = max_length

    def mine(self) -> MatchMiningResult:
        """Run the level-wise search and return the ranked top-k."""
        stats = MatchMinerStats()
        t0 = time.perf_counter()
        tracker = _TopKTracker(self.k, self.min_length)

        singulars = sorted(self.engine.singular_match_table().items())
        cells_alphabet = [c for c, _ in singulars]
        scores: dict[Cells, float] = {}
        for cell, value in singulars:
            scores[(cell,)] = value
            tracker.note((cell,), value)
        stats.candidates_evaluated += len(scores)
        if self.min_length > 1:
            self._warm_start(scores, tracker, stats)

        frontier = [c for c, m in scores.items() if m >= tracker.threshold]
        stats.levels = 1
        stats.frontier_sizes.append(len(frontier))

        while frontier:
            if self.max_length is not None and stats.levels >= self.max_length:
                break
            next_frontier: list[Cells] = []
            for pos in range(0, len(frontier), self.FRONTIER_BATCH):
                # The threshold may have risen past a prefix mid-level;
                # Apriori then rules out every extension of it.  Batching
                # in chunks (re-filtered between them) keeps that pruning
                # while the chunk's extension tables share one engine pass.
                live = [
                    p
                    for p in frontier[pos : pos + self.FRONTIER_BATCH]
                    if scores[p] >= tracker.threshold
                ]
                if not live:
                    continue
                tables = self.engine.extend_right_tables_many(
                    [TrajectoryPattern(p) for p in live]
                )
                for prefix, (_, match_table) in zip(live, tables):
                    for cell in cells_alphabet:
                        candidate = prefix + (cell,)
                        if candidate in scores:
                            value = scores[candidate]  # warm-started earlier
                        else:
                            value = match_table[cell]
                            scores[candidate] = value
                            tracker.note(candidate, value)
                            stats.candidates_evaluated += 1
                        if value >= tracker.threshold:
                            next_frontier.append(candidate)
            frontier = [c for c in next_frontier if scores[c] >= tracker.threshold]
            stats.levels += 1
            stats.frontier_sizes.append(len(frontier))

        stats.wall_time_s = time.perf_counter() - t0
        qualifying = [
            (c, m) for c, m in scores.items() if len(c) >= self.min_length
        ]
        qualifying.sort(key=lambda item: (-item[1], len(item[0]), item[0]))
        top = qualifying[: self.k]
        return MatchMiningResult(
            patterns=[TrajectoryPattern(c) for c, _ in top],
            match_values=[m for _, m in top],
            threshold=tracker.threshold,
            stats=stats,
        )

    #: Cap on warm-start candidates (most frequent discretised n-grams).
    WARM_START_CAP = 2000
    #: Frontier prefixes whose extension tables share one batched engine
    #: pass; the threshold is re-checked between chunks so the mid-level
    #: Apriori pruning is preserved.
    FRONTIER_BATCH = 64

    def _warm_start(
        self, scores: dict[Cells, float], tracker: _TopKTracker, stats: MatchMinerStats
    ) -> None:
        """Bootstrap the threshold for min-length mining.

        Identical in spirit to the TrajPattern warm start: until ``k``
        patterns of length >= ``min_length`` exist the threshold is
        ``-inf``, which makes the first levels a full cross product.
        Evaluating the most frequent *observed* cell n-grams first gives a
        realistic threshold that Apriori can prune against from level 1 on;
        the final top-k is unchanged because every warm value is exact and
        the threshold is a lower bound of the true one.
        """
        grid = self.engine.grid
        length = self.min_length
        counts: dict[Cells, int] = {}
        for traj in self.engine.dataset:
            cells = tuple(int(c) for c in grid.locate_many(traj.means))
            for i in range(len(cells) - length + 1):
                gram = cells[i : i + length]
                counts[gram] = counts.get(gram, 0) + 1
        frequent = sorted(counts.items(), key=lambda item: (-item[1], item[0]))
        seeds = [
            gram
            for gram, _ in frequent[: self.WARM_START_CAP]
            if gram not in scores
        ]
        values = self.engine.match_batch(
            [TrajectoryPattern(gram) for gram in seeds]
        )
        for gram, value in zip(seeds, values):
            scores[gram] = float(value)
            tracker.note(gram, float(value))
            stats.candidates_evaluated += 1
