"""Pattern-based trajectory classification.

The introduction motivates "constructing a classifier based on the
discovered patterns".  This module builds that classifier: per class, the
top-k NM patterns are mined from the training trajectories; a test
trajectory is scored against each class by the mean per-trajectory NM of
that class's patterns (computed with the shared grid and delta), and
assigned to the best-scoring class.

The per-trajectory NM is exactly Eq. 4, so a trajectory that traverses a
class's characteristic cells in order scores near zero (log of a high
probability) while alien trajectories score deeply negative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import EngineConfig, NMEngine
from repro.core.measures import nm_pattern_trajectory
from repro.core.pattern import TrajectoryPattern
from repro.core.trajpattern import TrajPatternMiner
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory
from repro.uncertainty.gaussian import ProbModel


@dataclass
class _ClassModel:
    label: str
    patterns: list[TrajectoryPattern]


class PatternClassifier:
    """Nearest-pattern-library classifier over uncertain trajectories.

    Parameters
    ----------
    cell_size:
        Grid cell side for mining and scoring (shared across classes).
    delta:
        Indifference distance; defaults to ``cell_size``.
    k:
        Patterns mined per class.
    min_length:
        Minimum mined pattern length; >= 2 keeps the libraries sequential
        rather than positional.
    min_prob:
        Probability floor (passed to the engines).
    prob_model:
        Geometry of ``Prob``.
    """

    def __init__(
        self,
        cell_size: float,
        delta: float | None = None,
        k: int = 10,
        min_length: int = 2,
        min_prob: float = 1e-6,
        prob_model: ProbModel = ProbModel.BOX,
    ) -> None:
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        if k <= 0:
            raise ValueError("k must be positive")
        self.cell_size = cell_size
        self.delta = delta if delta is not None else cell_size
        self.k = k
        self.min_length = min_length
        self.min_prob = min_prob
        self.prob_model = prob_model
        self._classes: list[_ClassModel] = []
        self._grid: Grid | None = None

    @property
    def classes(self) -> list[str]:
        """Labels seen during :meth:`fit`, in training order."""
        return [c.label for c in self._classes]

    def fit(self, dataset: TrajectoryDataset, labels: list[str]) -> "PatternClassifier":
        """Mine one pattern library per label.

        Parameters
        ----------
        dataset:
            Training trajectories.
        labels:
            One label per trajectory, aligned with ``dataset``.
        """
        if len(labels) != len(dataset):
            raise ValueError(
                f"{len(labels)} labels for {len(dataset)} trajectories"
            )
        if not dataset:
            raise ValueError("cannot fit on an empty dataset")

        # One shared grid so class scores are comparable.
        self._grid = dataset.make_grid(self.cell_size)
        config = EngineConfig(
            delta=self.delta, min_prob=self.min_prob, prob_model=self.prob_model
        )

        self._classes = []
        for label in dict.fromkeys(labels):  # unique, order-preserving
            indices = [i for i, candidate in enumerate(labels) if candidate == label]
            class_data = dataset.subset(indices)
            engine = NMEngine(class_data, self._grid, config)
            result = TrajPatternMiner(
                engine, k=self.k, min_length=self.min_length
            ).mine()
            self._classes.append(_ClassModel(label=label, patterns=result.patterns))
        return self

    def score(self, trajectory: UncertainTrajectory) -> dict[str, float]:
        """Mean per-pattern NM of ``trajectory`` against every class library."""
        if self._grid is None:
            raise RuntimeError("classifier is not fitted")
        scores: dict[str, float] = {}
        floor = float(np.log(self.min_prob))
        for model in self._classes:
            if model.patterns:
                values = [
                    nm_pattern_trajectory(
                        p,
                        trajectory,
                        self._grid,
                        self.delta,
                        model=self.prob_model,
                        min_log_prob=floor,
                    )
                    for p in model.patterns
                ]
                scores[model.label] = float(np.mean(values))
            else:
                scores[model.label] = floor
        return scores

    def predict(self, trajectory: UncertainTrajectory) -> str:
        """Label of the best-scoring class (ties broken by training order)."""
        scores = self.score(trajectory)
        best = max(self._classes, key=lambda m: scores[m.label])
        return best.label

    def accuracy(self, dataset: TrajectoryDataset, labels: list[str]) -> float:
        """Fraction of trajectories classified into their true label."""
        if len(labels) != len(dataset):
            raise ValueError(
                f"{len(labels)} labels for {len(dataset)} trajectories"
            )
        if not dataset:
            raise ValueError("cannot score an empty dataset")
        hits = sum(
            1 for t, label in zip(dataset, labels) if self.predict(t) == label
        )
        return hits / len(dataset)
