"""ServingSnapshot loading from .tjc stores: sniffing, precedence, serve.json."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.serve.snapshot import ServingSnapshot
from repro.storage import write_store
from repro.testkit.datasets import seeded_dataset
from repro.trajectory.io import save_dataset_jsonl


@pytest.fixture(scope="module")
def eager():
    return seeded_dataset(6, n_trajectories=8, n_ticks=20)


def _same_snapshot(a: ServingSnapshot, b: ServingSnapshot) -> None:
    assert a.grid == b.grid
    assert a.engine.active_cells == b.engine.active_cells
    assert np.array_equal(
        a.engine.index_arrays()[2], b.engine.index_arrays()[2]
    )


def test_bare_store_path_is_sniffed(eager, tmp_path):
    jsonl = tmp_path / "d.jsonl"
    save_dataset_jsonl(eager, jsonl)
    store = write_store(eager, tmp_path / "d.tjc")
    _same_snapshot(
        ServingSnapshot.load(store),
        ServingSnapshot.load(jsonl),
    )


def test_dataset_tjc_wins_over_jsonl(eager, tmp_path):
    snapdir = tmp_path / "snap"
    snapdir.mkdir()
    # deliberately different JSONL twin: if the loader picked the JSONL the
    # grids would differ.
    other = seeded_dataset(7, n_trajectories=5, n_ticks=10)
    save_dataset_jsonl(other, snapdir / "dataset.jsonl")
    write_store(eager, snapdir / "dataset.tjc")
    snap = ServingSnapshot.load(snapdir)
    assert snap.describe()["n_trajectories"] == len(eager)


def test_serve_json_store_key(eager, tmp_path):
    snapdir = tmp_path / "snap"
    snapdir.mkdir()
    write_store(eager, snapdir / "taxis.tjc")
    (snapdir / "serve.json").write_text(json.dumps({"store": "taxis.tjc"}))
    snap = ServingSnapshot.load(snapdir)
    assert snap.describe()["n_trajectories"] == len(eager)
    assert snap.describe()["total_snapshots"] == eager.total_snapshots()


def test_serve_json_missing_store_raises(tmp_path):
    snapdir = tmp_path / "snap"
    snapdir.mkdir()
    (snapdir / "serve.json").write_text(json.dumps({"store": "missing.tjc"}))
    with pytest.raises(ValueError, match="missing.tjc"):
        ServingSnapshot.load(snapdir)


def test_directory_without_dataset_raises(tmp_path):
    snapdir = tmp_path / "snap"
    snapdir.mkdir()
    with pytest.raises(ValueError, match="dataset.tjc or"):
        ServingSnapshot.load(snapdir)


def test_describe_serves_from_store(eager, tmp_path):
    store = write_store(eager, tmp_path / "d.tjc")
    info = ServingSnapshot.load(store).describe()
    assert info["n_trajectories"] == len(eager)
    assert info["sigma_typical"] == float(np.median(eager.all_sigmas()))
