"""Fig. 4(d): runtime vs the number of grids G.

Paper: TrajPattern scales linearly with G while PB grows exponentially
(every extra candidate position multiplies PB's extensible prefixes).
"""

import pytest

from repro.baselines.pb import PBMiner
from repro.core.trajpattern import TrajPatternMiner

from benchmarks.conftest import BENCH_FIG4


@pytest.mark.parametrize("grids", [256, 1024, 4096])
def test_bench_fig4d_trajpattern(benchmark, grids):
    benchmark.group = "fig4d-trajpattern"
    engine = BENCH_FIG4.make_engine(target_cells=grids)
    result = benchmark.pedantic(
        lambda: TrajPatternMiner(engine, k=BENCH_FIG4.k).mine(),
        rounds=2,
        iterations=1,
    )
    assert len(result) == BENCH_FIG4.k


@pytest.mark.parametrize("grids", [256, 1024, 4096])
def test_bench_fig4d_pb(benchmark, grids):
    benchmark.group = "fig4d-pb"
    engine = BENCH_FIG4.make_engine(target_cells=grids)
    result, _ = benchmark.pedantic(
        lambda: PBMiner(
            engine, k=BENCH_FIG4.k, max_length=BENCH_FIG4.pb_max_length
        ).mine(),
        rounds=1,
        iterations=1,
    )
    assert len(result) == BENCH_FIG4.k


def test_bench_fig4d_pb_prefix_growth(benchmark):
    """PB's prefix set (not just its runtime) grows with G -- the paper's
    G^c explanation of the exponential curve."""

    def measure():
        sizes = []
        for grids in (256, 1024):
            engine = BENCH_FIG4.make_engine(target_cells=grids)
            _, stats = PBMiner(
                engine, k=BENCH_FIG4.k, max_length=BENCH_FIG4.pb_max_length
            ).mine()
            sizes.append(max(stats.prefix_set_sizes))
        return sizes

    sizes = benchmark.pedantic(measure, rounds=1, iterations=1)
    assert sizes[1] > sizes[0]
