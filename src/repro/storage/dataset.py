"""Lazy, store-backed :class:`TrajectoryDataset` -- same API, O(1) open.

:class:`StoreDataset` subclasses the in-RAM dataset but never materialises
its trajectories up front: ``dataset.trajectories`` is a lazy sequence that
builds :class:`UncertainTrajectory` objects on access (with a tiny LRU),
and the aggregate queries the engine layer actually uses -- ``all_means``,
``all_sigmas``, ``lengths``, ``total_snapshots``, ``bounding_box``,
``max_sigma`` -- are answered from the store's columns or footer stats
without touching Python objects at all.

Exactness contract: every override returns values bit-identical to what
the eager base class would compute over :meth:`TrajectoryStore.materialise`
of the same span.  The footer's bounding-box/sigma stats are running
float64 min/max -- the same exact reduction ``BoundingBox.of_points``
performs -- so grids built from a store match grids built in RAM and the
differential oracle can hold the ``store`` path to 0 ULP.

A full-span ``StoreDataset`` also exposes :attr:`content_fingerprint`
(the store's ``content_hash``), which :func:`repro.core.index_cache.
dataset_fingerprint` short-circuits on -- cache keys match the in-RAM
twin without hashing gigabytes.  Partial spans deliberately do *not*
expose it (their fingerprint is a different value); span-grained caching
uses ``span_cache_key`` instead.

The functional helpers (``filter``/``subset``/``shuffled``/``split``)
inherit the eager base implementations and therefore materialise what
they touch -- acceptable, since they are experiment-setup conveniences,
not mining hot paths.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, Sequence

import numpy as np

from repro.geometry.bbox import BoundingBox
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

#: Materialised trajectories kept alive per lazy sequence.
_TRAJ_LRU = 8


class _LazySpanTrajectories(Sequence):
    """Sequence view of store trajectories ``[traj_lo, traj_hi)``.

    Integer access materialises one trajectory (LRU-cached); slice access
    materialises the slice eagerly as a tuple, which keeps the base
    class's ``split``/``subset`` semantics intact.
    """

    __slots__ = ("_store", "_lo", "_hi", "_cache")

    def __init__(self, store, traj_lo: int, traj_hi: int) -> None:
        self._store = store
        self._lo = traj_lo
        self._hi = traj_hi
        self._cache: OrderedDict[int, UncertainTrajectory] = OrderedDict()

    def __len__(self) -> int:
        return self._hi - self._lo

    def __getitem__(self, index):
        if isinstance(index, slice):
            return tuple(self[i] for i in range(*index.indices(len(self))))
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError(f"trajectory index {index} out of range [0, {len(self)})")
        cached = self._cache.get(index)
        if cached is not None:
            self._cache.move_to_end(index)
            return cached
        traj = self._store.trajectory(self._lo + index)
        self._cache[index] = traj
        while len(self._cache) > _TRAJ_LRU:
            self._cache.popitem(last=False)
        return traj

    def __iter__(self) -> Iterator[UncertainTrajectory]:
        # Sequential iteration rides the store's decoded-chunk cache; skip
        # the per-trajectory LRU so a full scan doesn't churn it.
        for i in range(self._lo, self._hi):
            yield self._store.trajectory(i)


class StoreDataset(TrajectoryDataset):
    """A ``TrajectoryDataset`` served lazily from a :class:`TrajectoryStore`."""

    __slots__ = ("store", "traj_lo", "traj_hi", "mode")

    def __init__(self, store, traj_lo: int, traj_hi: int, *, mode: str = "auto") -> None:
        if not 0 <= traj_lo <= traj_hi <= store.n_trajectories:
            raise IndexError(
                f"trajectory span [{traj_lo}, {traj_hi}) out of range "
                f"[0, {store.n_trajectories})"
            )
        store._resolve_mode(mode)  # fail fast on mmap over a compressed store
        self.store = store
        self.traj_lo = int(traj_lo)
        self.traj_hi = int(traj_hi)
        self.mode = mode
        # Base-class slots, assigned directly: the lazy sequence stands in
        # for the usual tuple (everything downstream duck-types on
        # len/iter/getitem/slicing).
        self.trajectories = _LazySpanTrajectories(store, self.traj_lo, self.traj_hi)
        self.metadata = dict(store.metadata)

    # -- span plumbing -------------------------------------------------------------

    @property
    def is_full_span(self) -> bool:
        return self.traj_lo == 0 and self.traj_hi == self.store.n_trajectories

    @property
    def store_ref(self) -> tuple[str, int, int]:
        """``(path, traj_lo, traj_hi)`` -- the parallel-worker span handle."""
        return (str(self.store.path), self.traj_lo, self.traj_hi)

    @property
    def content_fingerprint(self) -> str:
        """The store's ``content_hash``; only a full span may claim it."""
        if not self.is_full_span:
            raise AttributeError(
                "content_fingerprint is only defined for full-store spans"
            )
        return self.store.content_hash

    def _row_span(self) -> tuple[int, int]:
        offsets = self.store.row_offsets
        return int(offsets[self.traj_lo]), int(offsets[self.traj_hi])

    def __repr__(self) -> str:
        span = (
            "full"
            if self.is_full_span
            else f"[{self.traj_lo}, {self.traj_hi})"
        )
        return (
            f"StoreDataset({self.store.path.name!r}, {span}, "
            f"{len(self)} trajectories, {self.total_snapshots()} snapshots)"
        )

    # -- aggregate statistics, served from columns/footer --------------------------

    def total_snapshots(self) -> int:
        lo, hi = self._row_span()
        return hi - lo

    def mean_length(self) -> float:
        n = len(self)
        return self.total_snapshots() / n if n else 0.0

    def all_means(self) -> np.ndarray:
        lo, hi = self._row_span()
        return self.store.means(lo, hi, mode=self.mode)

    def all_sigmas(self) -> np.ndarray:
        lo, hi = self._row_span()
        return self.store.sigmas(lo, hi, mode=self.mode)

    def row_columns(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """Decode span rows ``[lo, hi)`` of the mean/sigma columns on demand.

        The engine's chunked index build probes for this method so that an
        out-of-core build touches one row chunk at a time instead of
        materialising the whole span via :meth:`all_means`.  Row indices
        are span-local; values are bit-identical to ``all_means()[lo:hi]``.
        Bounded pread decoding keeps worker RSS independent of span size.
        """
        base, top = self._row_span()
        if not 0 <= lo <= hi <= top - base:
            raise IndexError(f"row span [{lo}, {hi}) out of range [0, {top - base})")
        return (
            self.store.means(base + lo, base + hi, mode="read"),
            self.store.sigmas(base + lo, base + hi, mode="read"),
        )

    def lengths(self) -> np.ndarray:
        return np.asarray(
            self.store.lengths[self.traj_lo : self.traj_hi], dtype=np.int64
        )

    def max_sigma(self) -> float:
        if len(self) == 0 or self.total_snapshots() == 0:
            raise ValueError("empty dataset has no sigmas")
        stats = self.store.stats
        if self.is_full_span and stats.get("max_sigma") is not None:
            return float(stats["max_sigma"])
        return float(self.all_sigmas().max())

    def bounding_box(self, n_sigmas: float = 0.0) -> BoundingBox:
        if len(self) == 0 or self.total_snapshots() == 0:
            raise ValueError("empty dataset has no bounding box")
        stats = self.store.stats
        if self.is_full_span and stats.get("min_x") is not None:
            box = BoundingBox(
                float(stats["min_x"]),
                float(stats["min_y"]),
                float(stats["max_x"]),
                float(stats["max_y"]),
            )
        else:
            means = self.all_means()
            box = BoundingBox.of_points(means)
        if n_sigmas > 0:
            box = box.expand(n_sigmas * self.max_sigma())
        return box
