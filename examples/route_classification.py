"""Route classification from mined patterns (the introduction's use-case).

The paper's introduction motivates "constructing a classifier based on the
discovered patterns".  This example builds one: per bus route, the top-k
NM patterns are mined from tracked (imprecise) location trajectories, and
a held-out day of traces is classified by pattern affinity.

Run:  python examples/route_classification.py
"""

import numpy as np

from repro.apps.classification import PatternClassifier
from repro.datagen.bus import BusFleetConfig, BusFleetGenerator
from repro.mobility.models import LinearModel
from repro.mobility.reporting import ReportingConfig
from repro.mobility.server import track_fleet


def main() -> None:
    rng = np.random.default_rng(17)
    config = BusFleetConfig(
        n_routes=4, buses_per_route=4, n_days=4, n_ticks=60
    )
    paths = BusFleetGenerator(config).generate_paths(rng)

    # Hold out every bus's last day.
    train_paths = [p for p in paths if not p.object_id.endswith("day3")]
    test_paths = [p for p in paths if p.object_id.endswith("day3")]
    print(f"{len(train_paths)} training traces, {len(test_paths)} held-out traces")

    # Track everything (the classifier sees only imprecise trajectories).
    reporting = ReportingConfig(uncertainty=0.015, confidence_c=2.0)
    train_tracked = track_fleet(train_paths, LinearModel, reporting)
    test_tracked = track_fleet(test_paths, LinearModel, reporting)
    train_dataset = train_tracked.to_dataset()
    test_dataset = test_tracked.to_dataset()
    train_labels = [p.label for p in train_paths]
    test_labels = [p.label for p in test_paths]

    classifier = PatternClassifier(cell_size=0.04, k=8, min_length=2)
    classifier.fit(train_dataset, train_labels)
    print(f"classes: {classifier.classes}")

    accuracy = classifier.accuracy(test_dataset, test_labels)
    print(f"\nheld-out accuracy: {accuracy:.0%}")

    print("\nper-trace scores (mean pattern NM per class):")
    for trajectory, label in list(zip(test_dataset, test_labels))[:6]:
        scores = classifier.score(trajectory)
        predicted = classifier.predict(trajectory)
        ranked = sorted(scores.items(), key=lambda kv: -kv[1])
        summary = ", ".join(f"{k}={v:.0f}" for k, v in ranked[:2])
        flag = "ok " if predicted == label else "MISS"
        print(f"  {flag} true={label:8} predicted={predicted:8} ({summary})")


if __name__ == "__main__":
    main()
