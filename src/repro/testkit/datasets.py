"""Seeded datasets the differential oracle (and ``repro selfcheck``) runs on.

Every builder is a pure function of its seed: the same seed always yields
the same trajectories, grid and engine configuration, so an oracle failure
reported by CI reproduces locally with one command.  Seeds cycle through
three motion regimes -- drifting walks, a shared corridor, closed loops --
because the execution paths under test stress different index shapes
(sparse wide grids, dense hot cells, revisited cells) and one regime would
not exercise them all.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import EngineConfig
from repro.geometry.grid import Grid
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

#: Motion regimes, selected by ``seed % len(REGIMES)``.
REGIMES = ("drift", "corridor", "loop")

#: The seeds ``repro selfcheck`` runs by default -- one per regime.
DEFAULT_SEEDS = (101, 202, 303)


def seeded_dataset(
    seed: int, *, n_trajectories: int = 12, n_ticks: int = 20
) -> TrajectoryDataset:
    """A deterministic uncertain-trajectory dataset for ``seed``."""
    rng = np.random.default_rng(seed)
    regime = REGIMES[seed % len(REGIMES)]
    trajectories = []
    for i in range(n_trajectories):
        if regime == "drift":
            start = rng.uniform(0.1, 0.5, 2)
            steps = rng.normal(0.03, 0.008, (n_ticks, 2))
            means = start + np.cumsum(steps, axis=0)
        elif regime == "corridor":
            xs = 0.05 + (0.9 / n_ticks) * np.arange(n_ticks)
            xs = xs + rng.normal(0.0, 0.01, n_ticks)
            ys = rng.uniform(0.45, 0.55) + rng.normal(0.0, 0.015, n_ticks)
            means = np.column_stack([xs, ys])
        else:  # loop
            phase = rng.uniform(0.0, 2.0 * np.pi)
            angles = phase + np.linspace(0.0, 2.0 * np.pi, n_ticks, endpoint=False)
            radius = rng.uniform(0.15, 0.3)
            center = rng.uniform(0.4, 0.6, 2)
            means = center + radius * np.column_stack(
                [np.cos(angles), np.sin(angles)]
            )
            means = means + rng.normal(0.0, 0.01, (n_ticks, 2))
        sigmas = rng.uniform(0.02, 0.05, n_ticks)
        trajectories.append(
            UncertainTrajectory(means, sigmas, object_id=f"s{seed}-{regime}-{i}")
        )
    return TrajectoryDataset(trajectories)


@dataclass(frozen=True)
class OracleSetup:
    """One fully specified oracle scenario: data, geometry, configuration."""

    seed: int
    regime: str
    dataset: TrajectoryDataset
    grid: Grid
    config: EngineConfig


def oracle_setup(seed: int, *, quick: bool = False) -> OracleSetup:
    """The scenario ``run_oracle`` evaluates for ``seed``.

    ``quick`` shrinks the dataset (CI / pre-commit); every execution path
    is still exercised, just over fewer trajectories and snapshots.
    """
    n_trajectories, n_ticks = (8, 12) if quick else (12, 20)
    dataset = seeded_dataset(seed, n_trajectories=n_trajectories, n_ticks=n_ticks)
    grid = dataset.make_grid(0.1)
    # jobs/cache_dir deliberately unset: the oracle itself decides which
    # paths run sharded or cached, against this as the common baseline.
    config = EngineConfig(delta=0.08, min_prob=1e-6)
    return OracleSetup(
        seed=seed,
        regime=REGIMES[seed % len(REGIMES)],
        dataset=dataset,
        grid=grid,
        config=config,
    )
