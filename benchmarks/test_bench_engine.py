"""Micro-benchmarks of the NM engine primitives.

Not a paper figure -- these quantify the building blocks that every
experiment stands on: index construction, single-pattern evaluation, the
bulk singular tables and the bulk extension tables.
"""

import pytest

from repro.core.engine import EngineConfig, NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.experiments.datasets import zebranet_dataset


@pytest.fixture(scope="module")
def dataset():
    return zebranet_dataset(n_trajectories=50, n_ticks=60, sigma=0.01, seed=7)


@pytest.fixture(scope="module")
def engine(dataset):
    grid = dataset.make_grid(0.02)
    return NMEngine(dataset, grid, EngineConfig(delta=0.02, min_prob=1e-4))


def test_bench_engine_index_build(benchmark, dataset):
    benchmark.group = "engine"
    grid = dataset.make_grid(0.02)

    def build():
        return NMEngine(dataset, grid, EngineConfig(delta=0.02, min_prob=1e-4))

    built = benchmark.pedantic(build, rounds=3, iterations=1)
    assert built.n_index_entries > 0


def test_bench_engine_index_entries_scalar(benchmark, engine):
    """Reference per-snapshot collection loop, kept for perf comparison."""
    benchmark.group = "engine"
    cells, _, _ = benchmark.pedantic(
        engine._collect_index_entries_scalar, rounds=3, iterations=1
    )
    assert sum(len(c) for c in cells) == engine.n_index_entries


def test_bench_engine_index_entries_vectorised(benchmark, engine):
    benchmark.group = "engine"
    cells, _, _ = benchmark.pedantic(
        engine._collect_index_entries, rounds=3, iterations=1
    )
    assert sum(len(c) for c in cells) == engine.n_index_entries


def test_bench_engine_nm_evaluation(benchmark, engine):
    benchmark.group = "engine"
    cells = engine.active_cells
    pattern = TrajectoryPattern(tuple(cells[i] for i in (0, 5, 9, 13)))
    value = benchmark(lambda: engine.nm(pattern))
    assert value < 0


def _frontier(engine, n=256, seed=11):
    import numpy as np

    rng = np.random.default_rng(seed)
    cells = engine.active_cells
    return [
        TrajectoryPattern(
            tuple(int(c) for c in rng.choice(cells, size=rng.integers(2, 6)))
        )
        for _ in range(n)
    ]


def test_bench_engine_nm_scalar_frontier(benchmark, engine):
    """Per-pattern loop over a frontier -- the pre-batching evaluation path."""
    benchmark.group = "engine"
    patterns = _frontier(engine)
    values = benchmark(lambda: [engine.nm(p) for p in patterns])
    assert len(values) == len(patterns)


def test_bench_engine_nm_batch_frontier(benchmark, engine):
    benchmark.group = "engine"
    patterns = _frontier(engine)
    values = benchmark(lambda: engine.nm_batch(patterns))
    assert values.shape == (len(patterns),)


def test_bench_engine_singular_table(benchmark, engine):
    benchmark.group = "engine"
    table = benchmark(engine.singular_nm_table)
    assert len(table) == len(engine.active_cells)


def test_bench_engine_extension_tables(benchmark, engine):
    benchmark.group = "engine"
    base = TrajectoryPattern(tuple(engine.active_cells[:2]))
    nm_table, _ = benchmark(lambda: engine.extend_right_tables(base))
    assert len(nm_table) == len(engine.active_cells)
