"""Tests for the one-call reproduction report."""

import pytest

from repro.datagen.bus import BusFleetConfig
from repro.experiments.fig4 import Fig4Config
from repro.experiments.loss_sensitivity import LossSensitivityConfig
from repro.experiments.report import Report, ReportConfig, ReportSection, build_report
from repro.experiments.table1 import Table1Config

TINY_FLEET = BusFleetConfig(n_routes=2, buses_per_route=2, n_days=1, n_ticks=40)
TINY = ReportConfig(
    table1=Table1Config(k=5, max_length=3, fleet=TINY_FLEET),
    fig4=Fig4Config(k=3, n_trajectories=8, n_ticks=20, target_cells=256),
    fig4_ks=(2, 3),
    fig4_sizes=(5, 8),
    fig4_lengths=(15, 20),
    fig4_grids=(100, 256),
    fig4_deltas=(1.0, 2.0),
    loss=LossSensitivityConfig(loss_rates=(0.0, 0.3), fleet=TINY_FLEET),
    include_fig3=False,  # the slow section is covered by its own tests
)


@pytest.fixture(scope="module")
def report():
    return build_report(TINY)


class TestBuildReport:
    def test_all_sections_present(self, report):
        titles = [s.title for s in report.sections]
        assert any("T1" in t for t in titles)
        assert sum("Fig. 4" in t for t in titles) == 5
        assert any("A1/A2" in t for t in titles)
        assert any("A3" in t for t in titles)
        assert any("A4" in t for t in titles)
        assert not any("Fig. 3" in t for t in titles)  # disabled above

    def test_sections_timed(self, report):
        assert all(s.wall_time_s > 0 for s in report.sections)

    def test_render_is_markdown(self, report):
        text = report.render()
        assert text.startswith("# TrajPattern reproduction report")
        assert text.count("```") == 2 * len(report.sections)

    def test_write_roundtrip(self, report, tmp_path):
        path = tmp_path / "report.md"
        report.write(path)
        assert path.read_text() == report.render()

    def test_manual_assembly(self):
        report = Report(sections=[ReportSection("x", "body", 0.1)])
        assert "## x" in report.render()
