"""Unit tests for repro.uncertainty.gaussian."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.uncertainty.gaussian import (
    GaussianLocation,
    ProbModel,
    log_prob_within,
    prob_within,
    prob_within_box,
    prob_within_disk,
    sigma_from_uncertainty,
)

coords = st.floats(min_value=-10, max_value=10, allow_nan=False)
sigmas = st.floats(min_value=0.01, max_value=5.0, allow_nan=False)
deltas = st.floats(min_value=0.01, max_value=5.0, allow_nan=False)


class TestBoxProbability:
    def test_centered_matches_erf(self):
        # P(|X| <= delta) for standard normal, squared for two axes.
        from scipy.stats import norm

        p1 = norm.cdf(1.0) - norm.cdf(-1.0)
        got = prob_within_box(np.zeros(2), np.asarray(1.0), np.zeros(2), 1.0)
        assert float(got) == pytest.approx(p1**2, rel=1e-12)

    def test_far_away_is_tiny(self):
        got = prob_within_box(np.zeros(2), np.asarray(0.1), np.array([5.0, 5.0]), 0.1)
        assert float(got) < 1e-100 or float(got) == 0.0

    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(0)
        mean = np.array([0.3, -0.2])
        sigma = 0.5
        center = np.array([0.5, 0.1])
        delta = 0.4
        samples = rng.normal(mean, sigma, size=(200_000, 2))
        inside = np.all(np.abs(samples - center) <= delta, axis=1)
        got = float(prob_within_box(mean, np.asarray(sigma), center, delta))
        assert got == pytest.approx(inside.mean(), abs=0.01)

    def test_vectorised_shapes(self):
        means = np.zeros((7, 2))
        sigma = np.full(7, 0.3)
        centers = np.tile([0.1, 0.1], (7, 1))
        out = prob_within_box(means, sigma, centers, 0.2)
        assert out.shape == (7,)
        assert np.all((0 < out) & (out < 1))

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            prob_within_box(np.zeros(2), np.asarray(0.0), np.zeros(2), 0.1)

    def test_invalid_delta_rejected(self):
        with pytest.raises(ValueError):
            prob_within_box(np.zeros(2), np.asarray(1.0), np.zeros(2), 0.0)


class TestDiskProbability:
    def test_monte_carlo_agreement(self):
        rng = np.random.default_rng(1)
        mean = np.array([0.0, 0.4])
        sigma = 0.6
        center = np.array([0.3, 0.0])
        delta = 0.5
        samples = rng.normal(mean, sigma, size=(200_000, 2))
        inside = np.hypot(*(samples - center).T) <= delta
        got = float(prob_within_disk(mean, np.asarray(sigma), center, delta))
        assert got == pytest.approx(inside.mean(), abs=0.01)

    def test_disk_leq_box(self):
        # The delta-disk is inscribed in the delta-box.
        rng = np.random.default_rng(2)
        for _ in range(25):
            mean = rng.normal(size=2)
            sigma = rng.uniform(0.1, 2.0)
            center = rng.normal(size=2)
            delta = rng.uniform(0.05, 1.0)
            disk = float(prob_within_disk(mean, np.asarray(sigma), center, delta))
            box = float(prob_within_box(mean, np.asarray(sigma), center, delta))
            assert disk <= box + 1e-12


class TestDispatch:
    def test_prob_within_dispatch(self):
        mean, sigma, center = np.zeros(2), np.asarray(1.0), np.zeros(2)
        assert prob_within(mean, sigma, center, 1.0, ProbModel.BOX) == pytest.approx(
            float(prob_within_box(mean, sigma, center, 1.0))
        )
        assert prob_within(mean, sigma, center, 1.0, ProbModel.DISK) == pytest.approx(
            float(prob_within_disk(mean, sigma, center, 1.0))
        )

    def test_log_prob_within(self):
        mean, sigma, center = np.zeros(2), np.asarray(1.0), np.zeros(2)
        log_p = log_prob_within(mean, sigma, center, 1.0)
        p = prob_within(mean, sigma, center, 1.0)
        assert float(log_p) == pytest.approx(np.log(float(p)))


class TestProbabilityProperties:
    @settings(max_examples=50)
    @given(coords, coords, sigmas, coords, coords, deltas)
    def test_in_unit_interval(self, lx, ly, sigma, px, py, delta):
        p = float(
            prob_within_box(
                np.array([lx, ly]), np.asarray(sigma), np.array([px, py]), delta
            )
        )
        assert 0.0 <= p <= 1.0

    @settings(max_examples=50)
    @given(coords, coords, sigmas, deltas)
    def test_maximised_at_center(self, lx, ly, sigma, delta):
        mean = np.array([lx, ly])
        at_mean = float(prob_within_box(mean, np.asarray(sigma), mean, delta))
        off = float(
            prob_within_box(mean, np.asarray(sigma), mean + [3 * sigma, 0], delta)
        )
        assert at_mean >= off

    @settings(max_examples=50)
    @given(coords, coords, sigmas, deltas, deltas)
    def test_monotone_in_delta(self, lx, ly, sigma, d1, d2):
        lo, hi = sorted([d1, d2])
        mean = np.array([lx, ly])
        center = mean + 0.5
        p_lo = float(prob_within_box(mean, np.asarray(sigma), center, lo))
        p_hi = float(prob_within_box(mean, np.asarray(sigma), center, hi))
        assert p_lo <= p_hi + 1e-12


class TestSigmaFromUncertainty:
    def test_basic(self):
        assert sigma_from_uncertainty(1.0, 2.0) == pytest.approx(0.5)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            sigma_from_uncertainty(0.0, 2.0)
        with pytest.raises(ValueError):
            sigma_from_uncertainty(1.0, 0.0)


class TestGaussianLocation:
    def test_prob_near(self):
        loc = GaussianLocation(0.0, 0.0, 1.0)
        assert loc.prob_near(0.0, 0.0, 1.0) == pytest.approx(
            float(prob_within_box(np.zeros(2), np.asarray(1.0), np.zeros(2), 1.0))
        )

    def test_sample_shape_and_spread(self):
        loc = GaussianLocation(1.0, -1.0, 0.5)
        samples = loc.sample(np.random.default_rng(0), n=10_000)
        assert samples.shape == (10_000, 2)
        assert samples.mean(axis=0) == pytest.approx([1.0, -1.0], abs=0.02)
        assert samples.std(axis=0) == pytest.approx([0.5, 0.5], abs=0.02)

    def test_invalid_sigma(self):
        with pytest.raises(ValueError):
            GaussianLocation(0.0, 0.0, 0.0)
