"""A1/A2: ablation of the miner's two pruning mechanisms.

* A1 -- section 4.1's 1-extension pruning of the candidate set Q;
* A2 -- the lazy min-max bound evaluation (DESIGN.md 4.3).

Both are result-preserving; the benchmark quantifies their cost impact and
asserts the mined top-k is identical across all four on/off combinations.
"""

import pytest

from repro.core.trajpattern import TrajPatternMiner

VARIANTS = {
    "both": (True, True),
    "no-extension-pruning": (False, True),
    "no-bound-pruning": (True, False),
    "no-pruning": (False, False),
}


@pytest.mark.parametrize("variant", sorted(VARIANTS))
def test_bench_ablation_pruning(benchmark, zebra_engine, variant):
    benchmark.group = "ablation-pruning"
    extension, bound = VARIANTS[variant]
    result = benchmark.pedantic(
        lambda: TrajPatternMiner(
            zebra_engine,
            k=5,
            max_length=4,
            use_extension_pruning=extension,
            use_bound_pruning=bound,
        ).mine(),
        rounds=1,
        iterations=1,
    )
    assert len(result) == 5


def test_bench_ablation_results_identical(benchmark, zebra_engine):
    def run_all():
        tops = []
        evaluated = {}
        for name, (extension, bound) in VARIANTS.items():
            result = TrajPatternMiner(
                zebra_engine,
                k=5,
                max_length=4,
                use_extension_pruning=extension,
                use_bound_pruning=bound,
            ).mine()
            tops.append([p.cells for p in result.patterns])
            evaluated[name] = result.stats.candidates_evaluated
        return tops, evaluated

    tops, evaluated = benchmark.pedantic(run_all, rounds=1, iterations=1)
    assert all(t == tops[0] for t in tops), "pruning must not change the answer"
    # The bound pruning is the big saver: evaluations drop by orders of
    # magnitude relative to the literal evaluate-everything loop.
    assert evaluated["both"] < evaluated["no-bound-pruning"]
