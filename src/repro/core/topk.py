"""Top-k bookkeeping for the miner: the pattern set ``Q`` and threshold ``omega``.

The TrajPattern algorithm maintains a growing set ``Q`` of patterns, a
dynamic NM threshold ``omega`` (the k-th largest NM seen so far), and the
induced split of ``Q`` into *high* (NM >= omega) and *low* patterns
(section 4, observation 2).  :class:`PatternBook` centralises that
bookkeeping with deterministic tie-breaking so mining results are stable
across runs and match the brute-force oracle in tests.

Lazy evaluation: a pattern may be stored with an *exact* NM or with an
*upper bound* (from the min-max property's weighted-mean inequality).
Bounded patterns were provably below ``omega`` when inserted, and ``omega``
never decreases, so they are permanently low: they participate in candidate
generation (their bound is a valid ingredient of further concatenation
bounds) and in the 1-extension pruning, but never in ``omega`` or the final
top-k.  This is what keeps the paper's ``O(kG)`` low-pattern population from
costing ``O(kG)`` full dataset scans per iteration.

The minimum-length variant of section 5 changes only how ``omega`` is
computed: it is the k-th largest NM *among patterns of length >= d*, while
the high/low split of the whole book still uses plain NM comparison.
"""

from __future__ import annotations

import math
from typing import Iterator

Cells = tuple[int, ...]


def sort_key(cells: Cells, nm: float) -> tuple:
    """Deterministic "better first" ordering: NM desc, shorter first, cells asc."""
    return (-nm, len(cells), cells)


class PatternBook:
    """The pattern store behind the miner's ``Q`` / ``H`` / ``L`` sets.

    Patterns are raw cell tuples here; the miner wraps them into
    :class:`~repro.core.pattern.TrajectoryPattern` only at the API surface.
    """

    def __init__(self, k: int, min_length: int = 1) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        if min_length < 1:
            raise ValueError("min_length must be at least 1")
        self.k = k
        self.min_length = min_length
        self._exact: dict[Cells, float] = {}  # active, exactly evaluated
        self._bounded: dict[Cells, float] = {}  # active, upper-bounded (provably low)
        self._evaluated: dict[Cells, float] = {}  # every exact score ever computed
        self._omega = -math.inf

    # -- insertion / lookup --------------------------------------------------

    def __contains__(self, cells: Cells) -> bool:
        return cells in self._exact or cells in self._bounded

    def __len__(self) -> int:
        return len(self._exact) + len(self._bounded)

    @property
    def n_exact(self) -> int:
        return len(self._exact)

    @property
    def n_bounded(self) -> int:
        return len(self._bounded)

    def value(self, cells: Cells) -> float:
        """Exact NM or upper bound of an active pattern."""
        v = self._exact.get(cells)
        if v is not None:
            return v
        return self._bounded[cells]

    def is_evaluated(self, cells: Cells) -> bool:
        """Whether the pattern has ever been scored exactly (active or pruned)."""
        return cells in self._evaluated

    def insert_exact(self, cells: Cells, nm: float) -> None:
        """Add (or promote to) an exactly evaluated pattern."""
        self._bounded.pop(cells, None)
        self._exact[cells] = nm
        self._evaluated[cells] = nm

    def insert_bounded(self, cells: Cells, bound: float) -> None:
        """Add a provably-low pattern known only through its upper bound."""
        if cells in self._exact:
            return
        self._bounded[cells] = bound

    def reactivate(self, cells: Cells) -> None:
        """Bring a previously pruned exact pattern back into ``Q`` (cache hit)."""
        self._exact[cells] = self._evaluated[cells]

    def remove(self, cells: Cells) -> None:
        """Drop a pattern from ``Q`` (an exact score stays cached)."""
        if cells in self._exact:
            del self._exact[cells]
        else:
            del self._bounded[cells]

    # -- threshold and split ----------------------------------------------------

    @property
    def omega(self) -> float:
        """Current NM threshold (non-decreasing over the run)."""
        return self._omega

    def update_omega(self) -> float:
        """Recompute ``omega`` as the k-th largest exact NM among qualifying patterns.

        With fewer than ``k`` qualifying patterns the threshold stays at
        ``-inf`` (everything counts as high), matching section 5's treatment
        of the minimum-length variant before enough long patterns exist.
        """
        qualifying = sorted(
            (nm for cells, nm in self._exact.items() if len(cells) >= self.min_length),
            reverse=True,
        )
        if len(qualifying) >= self.k:
            self._omega = max(self._omega, qualifying[self.k - 1])
        return self._omega

    def high_patterns(self) -> dict[Cells, float]:
        """Patterns with exact NM >= omega, i.e. the seed set ``H``."""
        if math.isinf(self._omega):
            return dict(self._exact)
        return {c: v for c, v in self._exact.items() if v >= self._omega}

    def low_patterns(self) -> dict[Cells, float]:
        """The complement of :meth:`high_patterns` within ``Q`` (bounds included)."""
        if math.isinf(self._omega):
            return dict(self._bounded)
        low = {c: v for c, v in self._exact.items() if v < self._omega}
        low.update(self._bounded)
        return low

    def membership(self) -> tuple[frozenset[Cells], frozenset[Cells]]:
        """Snapshot of the active pattern set (exact keys, bounded keys).

        The miner filters this down to the relevant extension partners
        (Lemma 1) and compares successive snapshots to detect convergence:
        candidates are a function of the high set *and* of the available
        partners, so the loop is at a fixed point only when both are
        unchanged.
        """
        return frozenset(self._exact), frozenset(self._bounded)

    # -- candidate-generation support -----------------------------------------------

    def partners_by_length(self) -> dict[int, tuple[list[float], list[Cells]]]:
        """Active patterns grouped by length, each group sorted by value desc.

        The miner binary-searches these groups for extension partners whose
        concatenation bound can still reach ``omega``.
        """
        groups: dict[int, list[tuple[float, Cells]]] = {}
        for source in (self._exact, self._bounded):
            for cells, v in source.items():
                groups.setdefault(len(cells), []).append((v, cells))
        out: dict[int, tuple[list[float], list[Cells]]] = {}
        for length, items in groups.items():
            items.sort(key=lambda it: (-it[0], it[1]))
            out[length] = ([v for v, _ in items], [c for _, c in items])
        return out

    # -- results -----------------------------------------------------------------

    def top_k(self) -> list[tuple[Cells, float]]:
        """The final answer: k best qualifying patterns, deterministically ordered."""
        qualifying = [
            (c, v) for c, v in self._exact.items() if len(c) >= self.min_length
        ]
        qualifying.sort(key=lambda item: sort_key(item[0], item[1]))
        return qualifying[: self.k]

    def iter_sorted(self) -> Iterator[tuple[Cells, float]]:
        """All active patterns (exact then bounded), best first within each class."""
        yield from sorted(self._exact.items(), key=lambda item: sort_key(item[0], item[1]))
        yield from sorted(self._bounded.items(), key=lambda item: sort_key(item[0], item[1]))
