"""Fleet-level tracking: ground-truth paths -> uncertain trajectory dataset.

:class:`FleetTracker` runs the dead-reckoning protocol of
:mod:`repro.mobility.reporting` for every object of a fleet and assembles
the server-side view into the :class:`~repro.trajectory.dataset.TrajectoryDataset`
that the miner consumes, together with the per-object mis-prediction
accounting the Fig. 3 experiment needs.

Naming note: this is the *paper's* "server" -- the simulated tracking
party of the section 3.1 reporting scheme, a batch simulation component
with no network surface.  It was historically exported as
``TrackingServer``, which collides conceptually with the actual network
service in :mod:`repro.serve`; ``FleetTracker`` is the primary name now
and ``TrackingServer`` remains as a deprecated alias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.mobility.models import MotionModel
from repro.mobility.objects import GroundTruthPath
from repro.mobility.reporting import ReportingConfig, TrackingLog, dead_reckon
from repro.trajectory.dataset import TrajectoryDataset


@dataclass
class FleetTrackingResult:
    """Everything the server learned about a fleet."""

    logs: list[TrackingLog]
    config: ReportingConfig

    @property
    def total_mispredictions(self) -> int:
        return sum(log.n_mispredictions for log in self.logs)

    def misprediction_rate(self) -> float:
        """Uplink attempts per tracked tick (excluding the handshake tick)."""
        ticks = sum(len(log.estimates) - 1 for log in self.logs)
        if ticks == 0:
            return 0.0
        return self.total_mispredictions / ticks

    def to_dataset(self, interpolated: bool = False) -> TrajectoryDataset:
        """Server-side location trajectories as a mining dataset.

        ``interpolated`` selects the offline report-interpolation view
        (the paper's mining preprocessing) over the live estimates.
        """
        if interpolated:
            trajectories = [log.to_interpolated_trajectory() for log in self.logs]
        else:
            trajectories = [log.to_trajectory() for log in self.logs]
        return TrajectoryDataset(
            trajectories,
            metadata={
                "kind": "location",
                "sigma": self.config.sigma,
                "uncertainty": self.config.uncertainty,
                "interpolated": interpolated,
            },
        )


class FleetTracker:
    """Tracks a fleet of objects with one motion-model family.

    This simulates the paper's tracking server over a whole fleet; it is
    not a network server (that is :class:`repro.serve.PatternServer`).

    Parameters
    ----------
    model_factory:
        Zero-argument callable producing a fresh model per object (e.g.
        ``KalmanModel`` or ``lambda: make_model("rmf")``).
    config:
        Reporting protocol parameters shared by the fleet.
    """

    def __init__(
        self, model_factory: Callable[[], MotionModel], config: ReportingConfig
    ) -> None:
        self.model_factory = model_factory
        self.config = config

    def track(
        self,
        paths: Sequence[GroundTruthPath],
        rng: np.random.Generator | None = None,
        override_prediction=None,
    ) -> FleetTrackingResult:
        """Dead-reckon every path; see :func:`repro.mobility.reporting.dead_reckon`."""
        logs = [
            dead_reckon(
                path,
                self.model_factory(),
                self.config,
                rng=rng,
                override_prediction=override_prediction,
            )
            for path in paths
        ]
        return FleetTrackingResult(logs=logs, config=self.config)


def track_fleet(
    paths: Sequence[GroundTruthPath],
    model_factory: Callable[[], MotionModel],
    config: ReportingConfig,
    rng: np.random.Generator | None = None,
) -> FleetTrackingResult:
    """One-call convenience wrapper around :class:`FleetTracker`."""
    return FleetTracker(model_factory, config).track(paths, rng=rng)


#: Deprecated alias -- the class predates the network serving layer
#: (:mod:`repro.serve`); "server" now means that, not this simulator.
TrackingServer = FleetTracker
