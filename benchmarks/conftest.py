"""Shared benchmark fixtures.

Every paper table/figure has one benchmark module; parameters are scaled
for minutes-long total runtime.  The experiment harness functions in
:mod:`repro.experiments` accept larger configs for paper-scale runs (see
EXPERIMENTS.md).
"""

import pytest

from repro.experiments.datasets import make_engine, zebranet_dataset
from repro.experiments.fig4 import Fig4Config

#: Baseline workload for the Fig. 4 benchmarks.
BENCH_FIG4 = Fig4Config(k=5, n_trajectories=30, n_ticks=40, target_cells=1024)


@pytest.fixture(scope="session")
def zebra_engine():
    """One shared ZebraNet engine for the miner micro-benchmarks."""
    dataset = zebranet_dataset(n_trajectories=30, n_ticks=40, sigma=0.01, seed=7)
    return make_engine(dataset, cell_size=0.02, min_prob=1e-4)
