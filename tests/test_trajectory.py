"""Unit tests for repro.trajectory.trajectory."""

import numpy as np
import pytest

from repro.trajectory.trajectory import UncertainTrajectory
from repro.uncertainty.gaussian import GaussianLocation


@pytest.fixture
def traj():
    means = np.array([[0.0, 0.0], [1.0, 0.5], [2.0, 1.0], [3.0, 1.5]])
    return UncertainTrajectory(means, [0.1, 0.2, 0.3, 0.4], object_id="t")


class TestConstruction:
    def test_basic(self, traj):
        assert len(traj) == 4
        assert traj.object_id == "t"
        assert traj.means.shape == (4, 2)

    def test_scalar_sigma_broadcast(self):
        t = UncertainTrajectory([[0, 0], [1, 1]], 0.5)
        assert list(t.sigmas) == [0.5, 0.5]

    def test_bad_means_shape(self):
        with pytest.raises(ValueError, match=r"\(n, 2\)"):
            UncertainTrajectory(np.zeros((3, 3)), 0.1)

    def test_sigma_length_mismatch(self):
        with pytest.raises(ValueError, match="shape"):
            UncertainTrajectory([[0, 0], [1, 1]], [0.1, 0.2, 0.3])

    def test_nonpositive_sigma(self):
        with pytest.raises(ValueError, match="positive"):
            UncertainTrajectory([[0, 0], [1, 1]], [0.1, 0.0])

    def test_nonfinite_means(self):
        with pytest.raises(ValueError, match="finite"):
            UncertainTrajectory([[0, 0], [np.nan, 1]], 0.1)

    def test_bad_dt(self):
        with pytest.raises(ValueError, match="dt"):
            UncertainTrajectory([[0, 0], [1, 1]], 0.1, dt=0.0)

    def test_arrays_frozen(self, traj):
        with pytest.raises(ValueError):
            traj.means[0, 0] = 99.0

    def test_input_not_aliased(self):
        means = np.array([[0.0, 0.0], [1.0, 1.0]])
        t = UncertainTrajectory(means, 0.1)
        means[0, 0] = 42.0
        assert t.means[0, 0] == 0.0


class TestSequenceProtocol:
    def test_getitem(self, traj):
        snap = traj[1]
        assert isinstance(snap, GaussianLocation)
        assert (snap.x, snap.y, snap.sigma) == (1.0, 0.5, 0.2)

    def test_iter(self, traj):
        snaps = list(traj)
        assert len(snaps) == 4
        assert snaps[-1].sigma == 0.4

    def test_equality(self, traj):
        clone = UncertainTrajectory(traj.means, traj.sigmas, object_id="t")
        assert traj == clone
        other = UncertainTrajectory(traj.means, traj.sigmas, object_id="u")
        assert traj != other


class TestWindow:
    def test_window_contents(self, traj):
        w = traj.window(1, 2)
        assert len(w) == 2
        assert w.means[0, 0] == 1.0
        assert w.sigmas[1] == 0.3

    def test_window_time_shift(self, traj):
        w = traj.window(2, 2)
        assert w.start_time == pytest.approx(traj.start_time + 2 * traj.dt)

    def test_window_bounds(self, traj):
        with pytest.raises(IndexError):
            traj.window(2, 5)
        with pytest.raises(IndexError):
            traj.window(-1, 2)
        with pytest.raises(ValueError):
            traj.window(0, 0)

    def test_full_window_equals_self_content(self, traj):
        w = traj.window(0, len(traj))
        assert np.array_equal(w.means, traj.means)


class TestHelpers:
    def test_times(self, traj):
        assert list(traj.times()) == [0.0, 1.0, 2.0, 3.0]

    def test_bounding_box(self, traj):
        box = traj.bounding_box()
        assert (box.min_x, box.max_x) == (0.0, 3.0)

    def test_bounding_box_padded(self, traj):
        box = traj.bounding_box(n_sigmas=2.0)
        assert box.min_x == pytest.approx(-0.8)  # 2 * max sigma 0.4

    def test_sample_true_path_statistics(self):
        t = UncertainTrajectory(np.zeros((2000, 2)), 0.3)
        rng = np.random.default_rng(0)
        sample = t.sample_true_path(rng)
        assert sample.shape == (2000, 2)
        assert sample.std() == pytest.approx(0.3, abs=0.02)
