"""Render observability artifacts into human-readable tables.

``trajpattern report <files...>`` routes here: a JSONL span trace becomes
a per-phase timing table (plus a span tree for small traces and a
per-shard breakdown when worker spans are present), a run manifest
becomes a key/metric summary, a metrics snapshot or telemetry series
becomes counter/histogram tables.  Several trace files render as one
merged tree -- the client (loadgen) and server write separate files, but
wire-propagated trace ids stitch their spans into a single request tree.

The loaders validate schemas strictly and raise ``ValueError`` on
malformed records -- CI runs ``report`` over the artifacts of traced
runs, so a schema regression fails the build instead of shipping
silently.  *Empty* artifacts, though, are a fact of life (a server that
served nothing, a run with tracing off) and render as an explicit "no
spans recorded" instead of raising.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.manifest import MANIFEST_FORMAT, load_manifest
from repro.obs.metrics import NS_PER_S
from repro.obs.tracing import SPAN_RECORD_KEYS


# -- trace loading -----------------------------------------------------------


def load_trace(path: str | Path) -> list[dict]:
    """Parse and validate a span JSONL file.

    Every line must be a JSON object carrying all of
    :data:`~repro.obs.tracing.SPAN_RECORD_KEYS`; anything else raises
    ``ValueError`` with the offending line number.  A zero-byte or
    blank-lines-only file is a *valid empty trace* and returns ``[]`` --
    rendering decides how to say "nothing here".
    """
    path = Path(path)
    spans: list[dict] = []
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(record, dict) or record.get("kind") != "span":
                raise ValueError(f"{path}:{lineno}: not a span record")
            missing = [k for k in SPAN_RECORD_KEYS if k not in record]
            if missing:
                raise ValueError(
                    f"{path}:{lineno}: span record missing {missing}"
                )
            spans.append(record)
    return spans


def span_children(spans: list[dict]) -> dict[str | None, list[dict]]:
    """Parent span id -> child records (roots under ``None``/unknown ids)."""
    ids = {s["span"] for s in spans}
    children: dict[str | None, list[dict]] = {}
    for s in spans:
        parent = s.get("parent")
        key = parent if parent in ids else None
        children.setdefault(key, []).append(s)
    return children


# -- formatting helpers -------------------------------------------------------


def _fmt_s(ns: float) -> str:
    return f"{ns / NS_PER_S:.3f}s"


def _fmt_ms(ns: float) -> str:
    return f"{ns / 1e6:.1f}ms"


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [
        max(len(h), *(len(r[i]) for r in rows)) if rows else len(h)
        for i, h in enumerate(headers)
    ]
    def line(cells):
        # First column left-aligned, numbers right-aligned.
        out = [cells[0].ljust(widths[0])]
        out += [c.rjust(w) for c, w in zip(cells[1:], widths[1:])]
        return "  ".join(out)

    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


# -- trace rendering ----------------------------------------------------------


#: Traces up to this many spans also render an indented span tree.
_TREE_LIMIT = 200


def _span_tree_lines(spans: list[dict]) -> list[str]:
    """Indented parent->child rendering of a (small) trace."""
    children = span_children(spans)
    for group in children.values():
        group.sort(key=lambda s: s["ts_ns"])
    lines: list[str] = []

    def walk(span: dict, depth: int) -> None:
        attrs = span.get("attrs") or {}
        bits = "".join(f" {k}={v}" for k, v in sorted(attrs.items()))
        lines.append(
            f"  {'  ' * depth}{span['name']}  {_fmt_ms(span['dur_ns'])}{bits}"
        )
        for child in children.get(span["span"], []):
            walk(child, depth + 1)

    for root in children.get(None, []):
        walk(root, 0)
    return lines


def render_trace_report(spans: list[dict]) -> str:
    """Per-phase timing table (and per-shard breakdown) of one trace.

    An empty span list renders as an explicit "no spans recorded" line --
    the honest answer for a server that served nothing or a run that
    never opened a span.
    """
    if not spans:
        return "trace: no spans recorded"
    t_start = min(s["ts_ns"] for s in spans)
    t_end = max(s["ts_ns"] + s["dur_ns"] for s in spans)
    wall_ns = max(t_end - t_start, 1)

    by_name: dict[str, list[dict]] = {}
    for s in spans:
        by_name.setdefault(s["name"], []).append(s)

    rows = []
    for name, group in sorted(
        by_name.items(), key=lambda item: -sum(s["dur_ns"] for s in item[1])
    ):
        total = sum(s["dur_ns"] for s in group)
        rows.append(
            [
                name,
                str(len(group)),
                _fmt_s(total),
                _fmt_ms(total / len(group)),
                _fmt_ms(max(s["dur_ns"] for s in group)),
                f"{100.0 * total / wall_ns:.1f}%",
            ]
        )
    traces = {s["trace"] for s in spans}
    trace_label = (
        spans[0]["trace"] if len(traces) == 1 else f"{len(traces)} trace ids"
    )
    lines = [
        f"trace {trace_label}: {len(spans)} spans over "
        f"{wall_ns / NS_PER_S:.3f}s wall "
        f"({len({s['pid'] for s in spans})} process(es))",
        "",
        _table(["phase", "count", "total", "mean", "max", "wall%"], rows),
    ]
    if len(spans) <= _TREE_LIMIT:
        lines += ["", "span tree:"] + _span_tree_lines(spans)

    sharded: dict[tuple[str, object], list[int]] = {}
    for s in spans:
        shard = (s.get("attrs") or {}).get("shard")
        if shard is not None:
            sharded.setdefault((s["name"], shard), []).append(s["dur_ns"])
    if sharded:
        shard_rows = [
            [name, str(shard), str(len(durs)), _fmt_s(sum(durs))]
            for (name, shard), durs in sorted(sharded.items())
        ]
        lines += [
            "",
            "per-shard spans:",
            _table(["phase", "shard", "count", "total"], shard_rows),
        ]
    return "\n".join(lines)


# -- manifest rendering -------------------------------------------------------


def render_manifest_report(manifest: dict) -> str:
    """Key facts plus a timing table derived from the metric snapshot."""
    runtime = manifest.get("runtime") or {}
    lines = [
        f"run manifest: {manifest.get('command')}",
        f"  git sha:     {manifest.get('git_sha')}",
        f"  dataset:     {manifest.get('dataset_fingerprint', '')[:16]}…",
        f"  timestamp:   {runtime.get('timestamp')}",
        f"  wall time:   {runtime.get('wall_time_s'):.3f}s"
        if runtime.get("wall_time_s") is not None
        else "  wall time:   n/a",
        f"  cpu time:    {runtime.get('cpu_time_s'):.3f}s"
        if runtime.get("cpu_time_s") is not None
        else "  cpu time:    n/a",
        f"  peak rss:    {runtime.get('peak_rss_bytes', 0) / 2**20:.1f} MiB",
    ]
    arguments = manifest.get("arguments") or {}
    if arguments:
        rendered = ", ".join(f"{k}={v}" for k, v in sorted(arguments.items()))
        lines.append(f"  arguments:   {rendered}")

    metrics = manifest.get("metrics") or {}
    histograms = metrics.get("histograms") or {}
    timer_rows = [
        [
            name,
            str(data.get("count", 0)),
            _fmt_s(data.get("total", 0.0)),
            _fmt_ms(data.get("mean", 0.0)),
            _fmt_ms(data.get("max", 0.0)),
        ]
        for name, data in sorted(
            histograms.items(), key=lambda item: -item[1].get("total", 0.0)
        )
        if data.get("unit") == "ns"
    ]
    if timer_rows:
        lines += [
            "",
            "phase timings (metric snapshot):",
            _table(["phase", "count", "total", "mean", "max"], timer_rows),
        ]
    counters = metrics.get("counters") or {}
    if counters:
        counter_rows = [[n, str(v)] for n, v in sorted(counters.items())]
        lines += ["", "counters:", _table(["counter", "value"], counter_rows)]
    gauges = metrics.get("gauges") or {}
    if gauges:
        gauge_rows = [[n, f"{v:g}"] for n, v in sorted(gauges.items())]
        lines += ["", "gauges:", _table(["gauge", "value"], gauge_rows)]
    return "\n".join(lines)


# -- metrics snapshot / telemetry rendering -----------------------------------


def render_metrics_report(snapshot: dict) -> str:
    """Counter/gauge/histogram tables from a bare metrics-snapshot JSON.

    An all-empty snapshot (metrics enabled but nothing recorded) renders
    as an explicit one-liner instead of raising.
    """
    lines: list[str] = ["metrics snapshot:"]
    counters = snapshot.get("counters") or {}
    if counters:
        rows = [[n, str(v)] for n, v in sorted(counters.items())]
        lines += ["", _table(["counter", "value"], rows)]
    gauges = snapshot.get("gauges") or {}
    if gauges:
        rows = [[n, f"{v:g}"] for n, v in sorted(gauges.items())]
        lines += ["", _table(["gauge", "value"], rows)]
    histograms = snapshot.get("histograms") or {}
    if histograms:
        rows = []
        for name, data in sorted(histograms.items()):
            quantiles = data.get("quantiles") or {}
            rows.append(
                [
                    name,
                    str(data.get("count", 0)),
                    f"{data.get('mean', 0.0):.3g}",
                    f"{quantiles.get('p99', 0.0):.3g}" if quantiles else "-",
                    data.get("unit", ""),
                ]
            )
        lines += ["", _table(["histogram", "count", "mean", "p99", "unit"], rows)]
    if len(lines) == 1:
        return "metrics snapshot: no metrics recorded"
    return "\n".join(lines)


def render_series_report(records: list[dict]) -> str:
    """Summary of a telemetry JSONL series (see :mod:`repro.obs.export`)."""
    if not records:
        return "telemetry series: no records"
    first, last = records[0], records[-1]
    duration = last.get("ts_unix", 0.0) - first.get("ts_unix", 0.0)
    lines = [
        f"telemetry series: {len(records)} records over {duration:.1f}s",
    ]
    counters = last.get("counters") or {}
    if counters:
        rows = [
            [name, str(data.get("value", 0)), f"{data.get('rate_per_s', 0.0):.2f}/s"]
            for name, data in sorted(counters.items())
        ]
        lines += ["", _table(["counter", "value", "last rate"], rows)]
    histograms = last.get("histograms") or {}
    rows = []
    for name, data in sorted(histograms.items()):
        window = data.get("window") or {}
        quantiles = window.get("quantiles") or data.get("quantiles") or {}
        rows.append(
            [
                name,
                str(data.get("count", 0)),
                f"{quantiles.get('p50', 0.0):.3g}" if quantiles else "-",
                f"{quantiles.get('p99', 0.0):.3g}" if quantiles else "-",
                data.get("unit", ""),
            ]
        )
    if rows:
        lines += ["", _table(["histogram", "count", "p50", "p99", "unit"], rows)]
    return "\n".join(lines)


# -- dispatch -----------------------------------------------------------------


def _sniff_whole_json(path: Path) -> dict | None:
    """The file as one JSON object, or ``None`` (JSONL, empty, not a dict)."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        return None  # multi-line JSONL (or empty) fails the single parse
    except OSError as exc:
        raise ValueError(f"{path}: unreadable: {exc}") from exc
    return document if isinstance(document, dict) else None


def render_file(path: str | Path) -> str:
    """Pretty-print one observability artifact, dispatching on content.

    Recognises (in order): a run manifest (format tag), a metrics
    snapshot (``counters``/``gauges``/``histograms`` object, even empty),
    a telemetry series (JSONL of ``kind: "telemetry"`` records) and a
    span trace (JSONL of ``kind: "span"`` records; empty files count).
    Raises ``ValueError`` for anything else.
    """
    path = Path(path)
    document = _sniff_whole_json(path)
    if document is not None:
        if document.get("format") == MANIFEST_FORMAT:
            return render_manifest_report(load_manifest(path))
        if document.get("kind") == "telemetry":
            return render_series_report([document])  # one-record series
        snapshot_keys = {"counters", "gauges", "histograms"}
        if snapshot_keys & set(document) or not document:
            # A metrics snapshot -- possibly with extra sections (e.g.
            # 'kernel_backend'), possibly entirely empty.
            return render_metrics_report(document)
        if document.get("kind") == "span":
            return render_trace_report(load_trace(path))
        raise ValueError(f"{path}: not a recognised observability artifact")
    # JSONL (or empty): telemetry series vs span trace by first record.
    first_line = None
    with path.open("r", encoding="utf-8") as fh:
        for line in fh:
            if line.strip():
                first_line = line
                break
    if first_line is not None:
        try:
            first = json.loads(first_line)
        except ValueError:
            first = None
        if isinstance(first, dict) and first.get("kind") == "telemetry":
            from repro.obs.export import load_series

            return render_series_report(load_series(path))
    return render_trace_report(load_trace(path))


def render_files(paths: list) -> str:
    """Render one or more artifact files.

    A single path dispatches as :func:`render_file`.  Several paths must
    all be span traces: their spans merge into one report, which is how
    the client (loadgen) and server halves of a wire-propagated trace
    become a single request tree.
    """
    if len(paths) == 1:
        return render_file(paths[0])
    spans: list[dict] = []
    for path in paths:
        spans.extend(load_trace(path))
    return render_trace_report(spans)
