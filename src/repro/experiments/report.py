"""One-call reproduction report: every experiment, one markdown document.

``trajpattern all`` prints each experiment's table; :func:`build_report`
goes one step further and assembles a single markdown report mirroring the
structure of EXPERIMENTS.md, so a user can regenerate the whole
paper-vs-measured comparison (at their chosen scale) with one function
call and diff it against the committed document.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.datagen.bus import BusFleetConfig
from repro.experiments.ablations import run_prob_model_ablation, run_pruning_ablation
from repro.experiments.fig3 import Fig3Config, run_fig3
from repro.experiments.fig4 import (
    Fig4Config,
    run_fig4a_k,
    run_fig4b_trajectories,
    run_fig4c_length,
    run_fig4d_grids,
    run_fig4e_delta,
)
from repro.experiments.loss_sensitivity import LossSensitivityConfig, run_loss_sensitivity
from repro.experiments.table1 import Table1Config, run_table1


@dataclass(frozen=True)
class ReportConfig:
    """Scales for one full reproduction run."""

    table1: Table1Config = Table1Config(
        k=30,
        max_length=6,
        fleet=BusFleetConfig(n_routes=3, buses_per_route=4, n_days=3, n_ticks=60),
    )
    fig3: Fig3Config = Fig3Config(
        k=25,
        max_length=6,
        fleet=BusFleetConfig(n_routes=3, buses_per_route=4, n_days=3, n_ticks=60),
    )
    fig4: Fig4Config = Fig4Config(
        k=5, n_trajectories=25, n_ticks=40, target_cells=1024
    )
    fig4_ks: tuple[int, ...] = (3, 5, 10)
    fig4_sizes: tuple[int, ...] = (15, 25, 50)
    fig4_lengths: tuple[int, ...] = (20, 40, 80)
    fig4_grids: tuple[int, ...] = (256, 1024, 4096)
    fig4_deltas: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
    loss: LossSensitivityConfig = LossSensitivityConfig(
        fleet=BusFleetConfig(n_routes=2, buses_per_route=3, n_days=2, n_ticks=60)
    )
    include_fig3: bool = True  # the slowest section; skippable


@dataclass
class ReportSection:
    """One experiment's rendered output and its wall time."""

    title: str
    body: str
    wall_time_s: float


@dataclass
class Report:
    sections: list[ReportSection] = field(default_factory=list)

    def render(self) -> str:
        lines = ["# TrajPattern reproduction report", ""]
        total = sum(s.wall_time_s for s in self.sections)
        lines.append(f"Generated in {total:.0f}s total.")
        for section in self.sections:
            lines.append("")
            lines.append(f"## {section.title}  ({section.wall_time_s:.1f}s)")
            lines.append("")
            lines.append("```")
            lines.append(section.body)
            lines.append("```")
        return "\n".join(lines) + "\n"

    def write(self, path: str | Path) -> None:
        Path(path).write_text(self.render(), encoding="utf-8")


def build_report(config: ReportConfig = ReportConfig()) -> Report:
    """Run every experiment at the configured scale and collect the tables."""
    report = Report()

    def add(title, runner):
        t0 = time.perf_counter()
        body = runner()
        report.sections.append(
            ReportSection(title=title, body=body, wall_time_s=time.perf_counter() - t0)
        )

    add("T1: pattern lengths", lambda: run_table1(config.table1).render())
    if config.include_fig3:
        add("Fig. 3: mis-prediction reduction", lambda: run_fig3(config.fig3).render())
    add(
        "Fig. 4(a): runtime vs k",
        lambda: run_fig4a_k(config.fig4, ks=config.fig4_ks).render(),
    )
    add(
        "Fig. 4(b): runtime vs S",
        lambda: run_fig4b_trajectories(config.fig4, sizes=config.fig4_sizes).render(),
    )
    add(
        "Fig. 4(c): runtime vs L",
        lambda: run_fig4c_length(config.fig4, lengths=config.fig4_lengths).render(),
    )
    add(
        "Fig. 4(d): runtime vs G",
        lambda: run_fig4d_grids(config.fig4, grid_counts=config.fig4_grids).render(),
    )
    add(
        "Fig. 4(e): groups vs delta",
        lambda: run_fig4e_delta(config.fig4, delta_factors=config.fig4_deltas).render(),
    )
    add("A1/A2: pruning ablation", lambda: run_pruning_ablation().render())
    add("A3: Prob geometry ablation", lambda: run_prob_model_ablation().render())
    add("A4: uplink-loss sensitivity", lambda: run_loss_sensitivity(config.loss).render())
    return report
