"""Axis-aligned bounding boxes.

Bounding boxes describe the spatial extent of a data set and are the usual
way a :class:`~repro.geometry.grid.Grid` is constructed (``Grid.cover``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class BoundingBox:
    """An axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.max_x < self.min_x or self.max_y < self.min_y:
            raise ValueError(
                f"degenerate bounding box: ({self.min_x}, {self.min_y}) .. "
                f"({self.max_x}, {self.max_y})"
            )

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    @property
    def center(self) -> Point:
        return Point((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)

    def contains(self, x: float, y: float) -> bool:
        """Whether the point ``(x, y)`` lies inside the box (borders included)."""
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def expand(self, margin: float) -> "BoundingBox":
        """Return a copy grown by ``margin`` on every side."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    @classmethod
    def of_points(cls, points: np.ndarray) -> "BoundingBox":
        """Bounding box of an ``(n, 2)`` array of points.

        Raises ``ValueError`` on an empty array (an empty box has no
        meaningful extent).
        """
        points = np.asarray(points, dtype=float)
        if points.size == 0:
            raise ValueError("cannot compute the bounding box of zero points")
        if points.ndim != 2 or points.shape[1] != 2:
            raise ValueError(f"expected an (n, 2) array, got shape {points.shape}")
        mins = points.min(axis=0)
        maxs = points.max(axis=0)
        return cls(float(mins[0]), float(mins[1]), float(maxs[0]), float(maxs[1]))

    @classmethod
    def unit(cls) -> "BoundingBox":
        """The unit square ``[0, 1] x [0, 1]`` used throughout the examples."""
        return cls(0.0, 0.0, 1.0, 1.0)
