"""Unit tests for the adaptive micro-batcher (no sockets involved)."""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.batcher import MicroBatcher, OverloadedError


class _Recorder:
    """A batch handler that records every call it receives."""

    def __init__(self, delay: float = 0.0, fail: Exception | None = None):
        self.calls: list[tuple[object, list]] = []
        self.delay = delay
        self.fail = fail

    async def __call__(self, key, payloads):
        self.calls.append((key, list(payloads)))
        if self.delay:
            await asyncio.sleep(self.delay)
        if self.fail is not None:
            raise self.fail
        return [(key, p) for p in payloads]


def test_concurrent_submissions_coalesce():
    handler = _Recorder()

    async def scenario():
        batcher = MicroBatcher(handler, max_batch=64, max_delay=0.05)
        batcher.start()
        results = await asyncio.gather(
            *(batcher.submit("k", i) for i in range(16))
        )
        await batcher.close()
        return results

    results = asyncio.run(scenario())
    assert results == [("k", i) for i in range(16)]
    # 16 concurrent submissions must land in far fewer handler calls; with
    # everything enqueued before the worker wakes, typically exactly one.
    assert len(handler.calls) < 16
    assert sum(len(p) for _, p in handler.calls) == 16


def test_max_batch_bounds_each_call():
    handler = _Recorder()

    async def scenario():
        batcher = MicroBatcher(handler, max_batch=4, max_delay=0.05)
        batcher.start()
        await asyncio.gather(*(batcher.submit("k", i) for i in range(10)))
        await batcher.close()

    asyncio.run(scenario())
    assert all(len(payloads) <= 4 for _, payloads in handler.calls)
    assert handler.calls, "handler never ran"


def test_batches_never_mix_keys():
    handler = _Recorder()

    async def scenario():
        batcher = MicroBatcher(handler, max_batch=64, max_delay=0.02)
        batcher.start()
        results = await asyncio.gather(
            *(batcher.submit(f"key-{i % 3}", i) for i in range(12))
        )
        await batcher.close()
        return results

    results = asyncio.run(scenario())
    assert results == [(f"key-{i % 3}", i) for i in range(12)]
    for key, payloads in handler.calls:
        assert all(f"key-{p % 3}" == key for p in payloads)


def test_lone_request_closes_on_delay():
    handler = _Recorder()

    async def scenario():
        batcher = MicroBatcher(handler, max_batch=64, max_delay=0.005)
        batcher.start()
        result = await asyncio.wait_for(batcher.submit("k", 7), timeout=2.0)
        await batcher.close()
        return result

    assert asyncio.run(scenario()) == ("k", 7)


def test_queue_full_sheds_explicitly():
    handler = _Recorder(delay=0.2)

    async def scenario():
        batcher = MicroBatcher(handler, max_batch=1, max_delay=0.0, max_queue=2)
        batcher.start()
        # Saturate: one batch in flight (slow), two queued, then overflow.
        first = asyncio.ensure_future(batcher.submit("k", 0))
        await asyncio.sleep(0.02)  # let the worker pick it up
        queued = [asyncio.ensure_future(batcher.submit("k", i)) for i in (1, 2)]
        await asyncio.sleep(0)
        with pytest.raises(OverloadedError) as excinfo:
            await batcher.submit("k", 3)
        reason = excinfo.value.reason
        await asyncio.gather(first, *queued)
        await batcher.close()
        return reason

    assert asyncio.run(scenario()) == "queue_full"
    assert handler.calls  # admitted work still ran


def test_hopeless_deadline_sheds_at_admission():
    async def scenario():
        batcher = MicroBatcher(_Recorder(), max_batch=4, max_delay=0.0)
        batcher.start()
        with pytest.raises(OverloadedError) as excinfo:
            # A deadline already in the past can never be met.
            await batcher.submit("k", 0, deadline=-1.0)
        await batcher.close()
        return excinfo.value.reason

    assert asyncio.run(scenario()) == "deadline"


def test_handler_exception_reaches_every_waiter():
    boom = RuntimeError("engine exploded")
    handler = _Recorder(fail=boom)

    async def scenario():
        batcher = MicroBatcher(handler, max_batch=8, max_delay=0.01)
        batcher.start()
        results = await asyncio.gather(
            *(batcher.submit("k", i) for i in range(4)), return_exceptions=True
        )
        await batcher.close()
        return results

    results = asyncio.run(scenario())
    assert all(r is boom for r in results)


def test_close_sheds_pending_with_shutdown():
    handler = _Recorder(delay=0.5)

    async def scenario():
        batcher = MicroBatcher(handler, max_batch=1, max_delay=0.0, max_queue=8)
        batcher.start()
        inflight = asyncio.ensure_future(batcher.submit("k", 0))
        await asyncio.sleep(0.02)
        queued = asyncio.ensure_future(batcher.submit("k", 1))
        await asyncio.sleep(0)
        await batcher.close()
        results = await asyncio.gather(inflight, queued, return_exceptions=True)
        # Submitting after close is refused outright.
        with pytest.raises(OverloadedError):
            await batcher.submit("k", 2)
        return results

    results = asyncio.run(scenario())
    assert any(
        isinstance(r, OverloadedError) and r.reason == "shutdown" for r in results
    )


def test_stats_track_batches_and_sheds():
    handler = _Recorder()

    async def scenario():
        batcher = MicroBatcher(handler, max_batch=8, max_delay=0.01)
        batcher.start()
        await asyncio.gather(*(batcher.submit("k", i) for i in range(6)))
        stats = batcher.stats.as_dict()
        await batcher.close()
        return stats

    stats = asyncio.run(scenario())
    assert stats["items"] == 6
    assert 1 <= stats["batches"] <= 6
    assert stats["max_batch_size"] >= 1
    assert stats["ema_batch_s"] > 0.0
