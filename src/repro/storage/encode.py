"""Column codecs for the ``.tjc`` trajectory store.

Three small, exactly-invertible transforms (plus one deliberately lossy
one) that make trajectory columns either smaller or byte-stable:

* **Delta encoding** (:func:`delta_encode` / :func:`delta_decode`): within
  each trajectory the first value is stored verbatim and every later value
  as the difference to its predecessor.  Regular timestamps become a run
  of identical deltas and smooth positions become small integers -- which
  is what makes the optional zlib stage effective.  Integer arithmetic
  only, so the round trip is exact.
* **Quantisation** (:func:`quantise` / :func:`dequantise`): float64
  positions snapped to an ``int32`` lattice ``origin + scale * q``.  This
  is the one *lossy* codec in the format (error bounded by ``scale / 2``
  per axis) and is therefore opt-in; the store records the decoded values
  in its content hash so every reader agrees on what the file contains.
* **Blob compression** (:func:`compress_blob` / :func:`decompress_blob`):
  per-chunk zlib over the encoded bytes.  Stdlib only -- no new
  dependencies.

All segment-aware helpers take a ``lengths`` array (one entry per
trajectory in the block) instead of explicit boundaries; blocks always
align to trajectory boundaries so a chunk decodes independently.
"""

from __future__ import annotations

import zlib

import numpy as np

#: Compression methods understood by the blob helpers.
COMPRESSIONS = ("none", "zlib")

#: zlib level used by the writer: 6 is the stdlib default trade-off.
_ZLIB_LEVEL = 6


def _segment_starts(lengths: np.ndarray) -> np.ndarray:
    """Start offset of each trajectory segment within the block."""
    lengths = np.asarray(lengths, dtype=np.int64)
    if np.any(lengths < 0):
        raise ValueError("segment lengths must be non-negative")
    return np.concatenate([[0], np.cumsum(lengths)[:-1]]) if len(lengths) else np.empty(0, dtype=np.int64)


def delta_encode(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment delta transform of an integer column (exact inverse below).

    ``values`` is the concatenation of per-trajectory columns; ``lengths``
    delimits the trajectories.  Works on the last axis' rows, so a
    ``(rows, 2)`` position block encodes both axes at once.
    """
    values = np.asarray(values)
    if values.dtype.kind != "i":
        raise ValueError(f"delta_encode expects an integer column, got {values.dtype}")
    lengths = np.asarray(lengths, dtype=np.int64)
    if int(lengths.sum()) != len(values):
        raise ValueError("segment lengths do not cover the column")
    out = np.empty_like(values)
    if len(values) == 0:
        return out
    out[0] = values[0]
    out[1:] = values[1:] - values[:-1]
    # Segment firsts are stored verbatim, not as a diff across the boundary.
    starts = _segment_starts(lengths)
    starts = starts[(starts > 0) & (starts < len(values))]
    out[starts] = values[starts]
    return out


def delta_decode(deltas: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Exact inverse of :func:`delta_encode` (vectorised per-segment cumsum)."""
    deltas = np.asarray(deltas)
    if deltas.dtype.kind != "i":
        raise ValueError(f"delta_decode expects an integer column, got {deltas.dtype}")
    lengths = np.asarray(lengths, dtype=np.int64)
    if int(lengths.sum()) != len(deltas):
        raise ValueError("segment lengths do not cover the column")
    if len(deltas) == 0:
        return deltas.copy()
    cum = np.cumsum(deltas.astype(np.int64, copy=False), axis=0)
    nonzero = lengths > 0
    seg_lengths = lengths[nonzero]
    starts = _segment_starts(lengths)[nonzero]
    # Each segment after the first must shed the running total accumulated
    # before it -- the cumsum value just before its first element.
    carries = np.zeros((len(seg_lengths),) + deltas.shape[1:], dtype=np.int64)
    if len(seg_lengths) > 1:
        carries[1:] = cum[starts[1:] - 1]
    out = cum - np.repeat(carries, seg_lengths, axis=0)
    return out.astype(deltas.dtype, copy=False)


def quantise(
    values: np.ndarray, origin: np.ndarray | float, scale: float
) -> np.ndarray:
    """Snap float positions to the ``int32`` lattice ``origin + scale * q``.

    Raises when a value lands outside the int32 range -- the caller picked
    a scale too fine for the data's extent.
    """
    if not (np.isfinite(scale) and scale > 0):
        raise ValueError("quantisation scale must be a positive finite float")
    q = np.rint((np.asarray(values, dtype=np.float64) - origin) / scale)
    info = np.iinfo(np.int32)
    if len(q) and (q.min() < info.min or q.max() > info.max):
        raise ValueError(
            "quantised positions overflow int32; use a coarser scale "
            f"(scale={scale!r})"
        )
    return q.astype(np.int32)


def dequantise(
    quantised: np.ndarray, origin: np.ndarray | float, scale: float
) -> np.ndarray:
    """Decode :func:`quantise` output back to float64 lattice positions."""
    return quantised.astype(np.float64) * float(scale) + origin


def compress_blob(data: bytes, method: str) -> bytes:
    """Compress one chunk blob (``"none"`` is the identity)."""
    if method == "none":
        return data
    if method == "zlib":
        return zlib.compress(data, _ZLIB_LEVEL)
    raise ValueError(f"unknown compression {method!r}; expected one of {COMPRESSIONS}")


def decompress_blob(data: bytes, method: str, raw_nbytes: int) -> bytes:
    """Inverse of :func:`compress_blob`; validates the decoded size."""
    if method == "none":
        out = data
    elif method == "zlib":
        out = zlib.decompress(data)
    else:
        raise ValueError(
            f"unknown compression {method!r}; expected one of {COMPRESSIONS}"
        )
    if len(out) != raw_nbytes:
        raise ValueError(
            f"chunk blob decoded to {len(out)} bytes, expected {raw_nbytes}"
        )
    return out
