"""Unit tests for repro.trajectory.io (JSONL / CSV round trips)."""

import numpy as np
import pytest

from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.io import (
    load_dataset_csv,
    load_dataset_jsonl,
    save_dataset_csv,
    save_dataset_jsonl,
)
from repro.trajectory.trajectory import UncertainTrajectory


@pytest.fixture
def dataset(rng):
    trajectories = [
        UncertainTrajectory(
            rng.normal(size=(5 + i, 2)),
            rng.uniform(0.05, 0.2, 5 + i),
            object_id=f"obj-{i}",
            start_time=float(i),
            dt=0.5,
        )
        for i in range(4)
    ]
    return TrajectoryDataset(trajectories, metadata={"kind": "velocity", "seed": 1})


class TestJsonl:
    def test_roundtrip(self, dataset, tmp_path):
        path = tmp_path / "data.jsonl"
        save_dataset_jsonl(dataset, path)
        loaded = load_dataset_jsonl(path)
        assert len(loaded) == len(dataset)
        assert loaded.metadata == dataset.metadata
        for a, b in zip(dataset, loaded):
            assert a == b
            assert a.start_time == b.start_time
            assert a.dt == b.dt

    def test_empty_dataset_roundtrip(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        save_dataset_jsonl(TrajectoryDataset([]), path)
        assert len(load_dataset_jsonl(path)) == 0

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "nothing.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty file"):
            load_dataset_jsonl(path)

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(ValueError, match="not a repro trajectory file"):
            load_dataset_jsonl(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "repro.trajectory", "version": 99}\n')
        with pytest.raises(ValueError, match="version"):
            load_dataset_jsonl(path)

    def test_corrupt_record_rejected_with_line_number(self, tmp_path, dataset):
        path = tmp_path / "corrupt.jsonl"
        save_dataset_jsonl(dataset, path)
        lines = path.read_text().splitlines()
        lines[2] = '{"means": [[0, 0]], "sigmas": [-1.0]}'
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match=":3:"):
            load_dataset_jsonl(path)

    def test_whitespace_only_file_rejected(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text("   \n")
        with pytest.raises(ValueError, match="empty file"):
            load_dataset_jsonl(path)

    def test_unparseable_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(ValueError, match=":1: header is not JSON"):
            load_dataset_jsonl(path)

    @pytest.mark.parametrize("header", ['["repro.trajectory"]', '"repro.trajectory"', "42"])
    def test_non_object_header_rejected(self, tmp_path, header):
        path = tmp_path / "bad.jsonl"
        path.write_text(header + "\n")
        with pytest.raises(ValueError, match="header must be a JSON object"):
            load_dataset_jsonl(path)

    def test_non_object_metadata_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro.trajectory", "version": 1, "metadata": [1, 2]}\n'
        )
        with pytest.raises(ValueError, match="metadata must be a JSON object"):
            load_dataset_jsonl(path)

    def test_unparseable_record_rejected_with_line_number(self, tmp_path, dataset):
        path = tmp_path / "bad.jsonl"
        save_dataset_jsonl(dataset, path)
        with path.open("a") as fh:
            fh.write("{truncated\n")
        with pytest.raises(ValueError, match=rf":{len(dataset) + 2}: not JSON"):
            load_dataset_jsonl(path)

    @pytest.mark.parametrize("record", ["[1, 2, 3]", '"a string"', "3.5", "null"])
    def test_non_object_record_rejected(self, tmp_path, record):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro.trajectory", "version": 1}\n' + record + "\n"
        )
        with pytest.raises(ValueError, match=":2: trajectory record must be"):
            load_dataset_jsonl(path)

    @pytest.mark.parametrize(
        "record",
        [
            '{"sigmas": [0.1]}',  # missing means
            '{"means": [[0, 0]]}',  # missing sigmas
            '{"means": [[0, 0], [1]], "sigmas": [0.1, 0.1]}',  # ragged means
            '{"means": [[0, 0], [1, 1]], "sigmas": [0.1]}',  # length mismatch
            '{"means": "nope", "sigmas": [0.1]}',  # non-numeric means
        ],
    )
    def test_malformed_record_fields_rejected(self, tmp_path, record):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"format": "repro.trajectory", "version": 1}\n' + record + "\n"
        )
        with pytest.raises(ValueError, match=":2: bad trajectory record"):
            load_dataset_jsonl(path)


class TestCsv:
    def test_roundtrip_values(self, dataset, tmp_path):
        path = tmp_path / "data.csv"
        save_dataset_csv(dataset, path)
        loaded = load_dataset_csv(path)
        assert len(loaded) == len(dataset)
        for a, b in zip(dataset, loaded):
            assert np.allclose(a.means, b.means)
            assert np.allclose(a.sigmas, b.sigmas)
            assert a.object_id == b.object_id

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="expected columns"):
            load_dataset_csv(path)

    def test_bad_row_rejected_with_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "object_id,snapshot,x,y,sigma\no,0,0.0,0.0,0.1\no,oops,1.0,1.0,0.1\n"
        )
        with pytest.raises(ValueError, match=":3:"):
            load_dataset_csv(path)

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="expected columns"):
            load_dataset_csv(path)

    def test_short_row_rejected_with_line(self, tmp_path):
        # A row with fewer fields than the header: DictReader fills the
        # missing columns with None, which must be rejected, not crash.
        path = tmp_path / "short.csv"
        path.write_text("object_id,snapshot,x,y,sigma\no,0\n")
        with pytest.raises(ValueError, match=":2:"):
            load_dataset_csv(path)

    def test_non_numeric_coordinates_rejected_with_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text(
            "object_id,snapshot,x,y,sigma\no,0,0.0,0.0,0.1\no,1,east,1.0,0.1\n"
        )
        with pytest.raises(ValueError, match=":3:"):
            load_dataset_csv(path)

    def test_rows_sorted_by_snapshot(self, tmp_path):
        path = tmp_path / "shuffled.csv"
        path.write_text(
            "object_id,snapshot,x,y,sigma\n"
            "o,1,1.0,1.0,0.1\n"
            "o,0,0.0,0.0,0.1\n"
        )
        loaded = load_dataset_csv(path)
        assert np.allclose(loaded[0].means, [[0, 0], [1, 1]])

    def test_anonymous_trajectories_get_ids(self, tmp_path, rng):
        ds = TrajectoryDataset([UncertainTrajectory(rng.normal(size=(3, 2)), 0.1)])
        path = tmp_path / "anon.csv"
        save_dataset_csv(ds, path)
        loaded = load_dataset_csv(path)
        assert loaded[0].object_id == "object-0"
