"""Multi-core sharded evaluation: parallel index build + frontier scoring.

NM and match are *sums of per-trajectory terms* (Eq. 4 summed over the
dataset): per trajectory a window maximum, then one dataset sum.  Any
partition of the dataset along the trajectory axis therefore evaluates
independently, and the partition results combine by plain addition -- an
**exact reduction**, not an approximation.  The out-of-core engine
(:mod:`repro.core.streaming`) already exploits this sequentially; this
module exploits it *concurrently*:

* :func:`shard_dataset` splits the dataset into contiguous trajectory
  spans balanced by snapshot count;
* each shard is owned by one long-lived worker process that builds (or
  adopts) the shard's sparse index once and then serves candidate batches
  over it -- the sharded index build runs in all workers concurrently,
  which is where the multi-core construction speedup comes from;
* :class:`ParallelNMEngine` exposes the familiar evaluation surface
  (``nm_batch``, ``match_batch``, the singular tables,
  ``extend_right_tables_many``, per-trajectory arrays, gap-pattern NM) by
  broadcasting each request to all workers and reducing the replies in
  the parent.  The miners and the wildcard DP run on it unchanged.

Shared memory
-------------
Dense arrays never travel through pickles:

* the parent places the dataset's stacked means/sigmas in
  ``multiprocessing.shared_memory`` segments; workers attach and slice
  their trajectory span zero-copy;
* a dataset backed by a ``.tjc`` columnar store (:mod:`repro.storage`)
  skips ``/dev/shm`` entirely: workers receive ``(path, traj_lo,
  traj_hi)`` file-range spans, memory-map the same file read-only and
  share its page cache -- the parent never materialises the arrays at
  all, which is what keeps a sharded mine's resident set independent of
  dataset size;
* on an index-cache hit the parent also shares the cached flat entry
  arrays; each worker filters its row range out of the shared view and
  skips the probability enumeration entirely;
* after a cold build each worker exports its flat index through a
  shared-memory segment it creates; the parent merges the shards into the
  canonical full-dataset arrays and persists them through
  :mod:`repro.core.index_cache` -- so serial and parallel runs share one
  cache file, in either direction.

Lifetime rules: every segment is unlinked by its creator, exactly once.
The parent unlinks its segments in :meth:`ParallelNMEngine.close`
(also wired to ``atexit`` and ``__exit__``); workers unlink their export
segments after the parent confirms the merge.  Attaching never registers
with the resource tracker on CPython >= 3.9, so no spurious cleanups or
leak warnings occur.  After ``close()`` no ``/dev/shm`` segment with the
``repro-shm-`` prefix survives -- the test suite asserts this.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import secrets
import traceback
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np
from multiprocessing import shared_memory

from repro.core import index_cache, kernels
from repro.core.engine import EngineConfig, ExtensionTables, NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.geometry.grid import Grid
from repro.obs import logs, metrics, tracing
from repro.testkit import faults
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

#: Prefix of every shared-memory segment this module creates (the leak
#: check in the tests globs ``/dev/shm`` for it).
SHM_PREFIX = "repro-shm-"

_log = logs.get_logger("parallel")


class WorkerCrashError(RuntimeError):
    """A shard worker died mid-conversation (crash, OOM-kill, SIGKILL).

    Raised instead of a bare ``EOFError``/``BrokenPipeError`` whenever the
    pipe to a worker breaks.  By the time the caller sees it the engine has
    torn itself down: remaining workers are stopped, every parent-owned
    shared-memory segment is unlinked, and the engine is closed -- a dead
    shard means every subsequent reduction would be silently wrong, so the
    only safe state is "loudly unusable".
    """


# -- shared-memory plumbing -----------------------------------------------------


@dataclass(frozen=True)
class ShmArraySpec:
    """Address of one ndarray living in a shared-memory segment."""

    name: str
    shape: tuple[int, ...]
    dtype: str


def share_array(
    array: np.ndarray, registry: list[shared_memory.SharedMemory]
) -> ShmArraySpec:
    """Copy ``array`` into a fresh shared-memory segment.

    The segment object is appended to ``registry``; the registry owner is
    responsible for ``close()`` + ``unlink()`` (creator-unlinks rule).
    """
    arr = np.ascontiguousarray(array)
    shm = shared_memory.SharedMemory(
        create=True,
        size=max(arr.nbytes, 1),  # zero-byte segments are invalid
        name=SHM_PREFIX + secrets.token_hex(8),
    )
    view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
    view[...] = arr
    registry.append(shm)
    return ShmArraySpec(shm.name, tuple(arr.shape), arr.dtype.str)


def attach_array(
    spec: ShmArraySpec,
) -> tuple[np.ndarray, shared_memory.SharedMemory]:
    """Zero-copy ndarray view over an existing segment (caller closes)."""
    shm = shared_memory.SharedMemory(name=spec.name)
    view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    return view, shm


# -- sharding ----------------------------------------------------------------------


def shard_dataset(dataset: TrajectoryDataset, n_shards: int) -> list[tuple[int, int]]:
    """Contiguous trajectory spans ``[lo, hi)`` balanced by snapshot count.

    Degenerate inputs shrink the plan instead of producing unusable spans:
    ``n_shards`` is capped at the trajectory count (no shard is ever empty
    -- the engine refuses empty datasets), and a span that would hold only
    zero-length trajectories is merged into its neighbour, so every
    returned span contains at least one snapshot whenever the dataset has
    any.  A dataset of *only* empty trajectories collapses to the single
    span ``[(0, n)]``.  The result may therefore have fewer than
    ``n_shards`` entries.  Spans stay contiguous and ordered, so
    concatenating per-shard per-trajectory results reproduces dataset
    order.
    """
    n = len(dataset)
    if n == 0:
        raise ValueError("cannot shard an empty dataset")
    n_shards = max(1, min(n_shards, n))
    cum = np.cumsum(dataset.lengths())
    total = int(cum[-1])
    if total == 0:
        return [(0, n)]
    bounds = [0]
    for s in range(1, n_shards):
        cut = int(np.searchsorted(cum, total * s / n_shards))
        cut = max(cut, bounds[-1] + 1)  # at least one trajectory per shard
        cut = min(cut, n - (n_shards - s))  # leave one for each later shard
        bounds.append(cut)
    bounds.append(n)
    spans = [(bounds[i], bounds[i + 1]) for i in range(n_shards)]

    def _snapshots(lo: int, hi: int) -> int:
        return int(cum[hi - 1] - (cum[lo - 1] if lo else 0))

    merged: list[tuple[int, int]] = []
    carry_lo: int | None = None  # leading all-empty spans extend the next one
    for lo, hi in spans:
        start = lo if carry_lo is None else carry_lo
        if _snapshots(lo, hi) == 0:
            if merged:
                merged[-1] = (merged[-1][0], hi)
            else:
                carry_lo = start
            continue
        merged.append((start, hi))
        carry_lo = None
    return merged


def _skew(values: Sequence[float]) -> float:
    """Imbalance ratio ``max / mean`` of per-shard quantities.

    ``1.0`` is perfectly balanced; shards are balanced by *snapshot count*,
    so skewed cell density shows up here as index-entry (and therefore
    work) skew even though the spans look fair.
    """
    if not len(values):
        return 1.0
    mean = sum(values) / len(values)
    return float(max(values) / mean) if mean > 0 else 1.0


# -- exact merges -------------------------------------------------------------------
#
# NM and match are sums of per-trajectory terms, so per-span results merge
# by addition.  These module-level functions are the *only* merge
# implementations: ParallelNMEngine (fork workers) and
# repro.dist.DistNMEngine (remote pools) both call them, which is what
# makes the distributed path bit-identical to the single-box parallel one.
#
# Determinism contract: every function folds its inputs **in the order
# given**, and callers pass per-span results in global span order
# (ascending ``lo``).  Floating-point addition is order-sensitive, so a
# coordinator must always perform one flat merge over per-span results --
# never merge partial merges -- and then *which process computed a span*
# (fork worker, remote pool, or a survivor after a re-dispatch) cannot
# change a single bit of the reduction.


def merge_batch_sums(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Elementwise left-fold sum of per-span ``nm_batch``/``match_batch`` rows.

    ``parts`` must be ordered by span.  The fold is a plain sequential
    ``out += part`` so the reduction order is a pure function of the span
    partition, independent of arrival order or worker placement.
    """
    arrays = [np.asarray(p) for p in parts]
    out = arrays[0].copy()
    for part in arrays[1:]:
        out += part
    return out


def merge_per_trajectory(parts: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate per-span per-trajectory arrays back into dataset order."""
    return np.concatenate([np.asarray(p) for p in parts])


def merge_scalar_sums(parts: Sequence[float]) -> float:
    """Left-fold sum of per-span scalar totals (gap-pattern NM)."""
    total = 0.0
    for part in parts:
        total += float(part)
    return total


def merge_singular_tables(
    tables: Sequence[dict[int, float]],
    span_sizes: Sequence[int],
    floor: float,
    n_total: int,
) -> dict[int, float]:
    """Merge per-span singular tables with floor completion.

    A span where a cell is inactive contributes the floor once per span
    trajectory -- the same accounting the out-of-core engine uses.
    ``floor`` is ``min_log_prob`` for NM tables and ``exp(min_log_prob)``
    for match tables; ``tables`` and ``span_sizes`` must be in span order.
    """
    totals: dict[int, float] = {}
    counted: dict[int, int] = {}
    for table, n_span in zip(tables, span_sizes):
        for cell, value in table.items():
            totals[cell] = totals.get(cell, 0.0) + value
            counted[cell] = counted.get(cell, 0) + n_span
    return {
        cell: total + floor * (n_total - counted[cell])
        for cell, total in totals.items()
    }


def merge_extension_tables(
    span_tables: Sequence[ExtensionTables],
) -> tuple[dict[int, float], dict[int, float]]:
    """Merge one prefix's per-span extension tables into full-dataset ones.

    Each span reports its extension tables *plus* the base totals an
    inactive cell would score there; a cell missing from a span's table
    contributes that span's base -- making the merged table exactly the
    full-dataset one.  ``span_tables`` must be in span order.
    """
    nm_merged: dict[int, float] = {}
    match_merged: dict[int, float] = {}
    active: set[int] = set()
    for t in span_tables:
        active.update(t.nm_by_cell)
    for cell in active:
        nm_merged[cell] = sum(
            t.nm_by_cell.get(cell, t.nm_base_total) for t in span_tables
        )
        match_merged[cell] = sum(
            t.match_by_cell.get(cell, t.match_base_total) for t in span_tables
        )
    return nm_merged, match_merged


# -- the worker process ---------------------------------------------------------------


@dataclass(frozen=True)
class _WorkerInit:
    """Everything a shard worker needs to build its engine.

    The shard's data arrives one of two ways:

    * **shm mode** -- ``means``/``sigmas`` address the parent's
      shared-memory copies of the stacked dataset arrays (``store`` is
      ``None``);
    * **store mode** -- ``store`` is a ``(path, traj_lo, traj_hi)`` span
      of a ``.tjc`` columnar store; the worker memory-maps the same file
      read-only, so no dataset bytes are copied anywhere and the page
      cache is shared across all workers.  ``means``/``sigmas`` are
      ``None``.
    """

    grid: Grid
    config: EngineConfig
    means: ShmArraySpec | None
    sigmas: ShmArraySpec | None
    lengths: tuple[int, ...]  # trajectory lengths of this shard, in order
    row_lo: int  # global row range [row_lo, row_hi) of the shard
    row_hi: int
    index: tuple[ShmArraySpec, ShmArraySpec, ShmArraySpec] | None
    store: tuple[str, int, int] | None = None  # (.tjc path, traj_lo, traj_hi)
    shard: int = 0  # shard ordinal, stamped on worker spans/logs
    trace: tracing.SpanContext | None = None  # parent trace propagation
    metrics_enabled: bool = False  # mirror the parent registry's state


def _shared_index_slice(init: _WorkerInit):
    """This shard's rows of the parent's cache-loaded index, re-based to 0."""
    if init.index is None:
        return None
    attachments = [attach_array(spec) for spec in init.index]
    try:
        cells, rows, vals = (view for view, _ in attachments)
        keep = (rows >= init.row_lo) & (rows < init.row_hi)
        return (
            cells[keep].copy(),
            rows[keep] - init.row_lo,
            vals[keep].copy(),
        )
    finally:
        for _, shm in attachments:
            shm.close()


def _worker_build_engine(init: _WorkerInit) -> NMEngine:
    """Construct the shard dataset and engine from shared arrays or a store span."""
    if init.store is not None:
        from repro.storage import open_store  # deferred: storage is optional here

        path, traj_lo, traj_hi = init.store
        shard = open_store(path).span(traj_lo, traj_hi)
        return NMEngine(shard, init.grid, init.config, prebuilt=_shared_index_slice(init))
    means, means_shm = attach_array(init.means)
    sigmas, sigmas_shm = attach_array(init.sigmas)
    try:
        trajectories = []
        row = init.row_lo
        for length in init.lengths:
            trajectories.append(
                UncertainTrajectory(means[row : row + length], sigmas[row : row + length])
            )
            row += length
        shard = TrajectoryDataset(trajectories)
        return NMEngine(
            shard, init.grid, init.config, prebuilt=_shared_index_slice(init)
        )
    finally:
        means_shm.close()
        sigmas_shm.close()


def _worker_main(conn, init: _WorkerInit) -> None:
    """Shard worker loop: build once, then serve evaluation requests."""
    from repro.core.wildcards import nm_gap_pattern  # deferred: avoids cycles

    # Fresh per-process observability: forget (never close -- the file
    # handle is shared under fork) any inherited tracer, trace into a
    # local buffer the parent drains over the pipe, and reset the metrics
    # registry so counters are per-shard.
    tracing.forget_tracer()
    trace_sink: tracing.BufferSink | None = None
    if init.trace is not None:
        trace_sink = tracing.BufferSink()
        tracing.configure_tracing(
            sink=trace_sink,
            trace_id=init.trace.trace_id,
            ambient_parent=init.trace.span_id,
            base_attrs={"shard": init.shard},
        )
    registry = metrics.get_registry()
    registry.reset()
    registry.enabled = init.metrics_enabled

    exported: list[shared_memory.SharedMemory] = []
    try:
        faults.fire("parallel.worker.start", shard=init.shard)
        engine = _worker_build_engine(init)
        _log.debug(
            "shard worker ready",
            extra={
                "shard": init.shard,
                "n_traj": len(engine.dataset),
                "n_entries": engine.n_index_entries,
            },
        )
        conn.send(
            (
                "ok",
                {
                    "n_traj": len(engine.dataset),
                    "n_entries": engine.n_index_entries,
                    "active_cells": np.asarray(engine.active_cells, dtype=np.int64),
                    "backend": engine.backend_name,
                },
            )
        )
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, ValueError):
            pass  # parent already gone; exit quietly
        conn.close()
        return

    def patterns_of(cells_list) -> list[TrajectoryPattern]:
        return [TrajectoryPattern(cells) for cells in cells_list]

    running = True
    try:
        while running:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op, payload = msg
            try:
                faults.fire("parallel.worker.op", shard=init.shard, op=op)
                if op == "close":
                    result, running = None, False
                elif op == "nm_batch":
                    result = engine.nm_batch(patterns_of(payload))
                elif op == "match_batch":
                    result = engine.match_batch(patterns_of(payload))
                elif op == "nm_per_traj":
                    result = engine.nm_per_trajectory(TrajectoryPattern(payload))
                elif op == "match_per_traj":
                    result = engine.match_per_trajectory(TrajectoryPattern(payload))
                elif op == "singular_nm":
                    result = engine.singular_nm_table()
                elif op == "singular_match":
                    result = engine.singular_match_table()
                elif op == "ext_tables":
                    result = engine.extension_tables_many(patterns_of(payload))
                elif op == "gap_nm":
                    result = nm_gap_pattern(engine, payload)
                elif op == "best_window":
                    cells, local_index = payload
                    result = engine.best_window(TrajectoryPattern(cells), local_index)
                elif op == "export_index":
                    specs = tuple(
                        share_array(a, exported) for a in engine.index_arrays()
                    )
                    result = specs
                elif op == "release_index":
                    for shm in exported:
                        shm.close()
                        shm.unlink()
                    exported.clear()
                    result = None
                elif op == "stats":
                    result = (engine.n_evaluations, engine.n_batches)
                elif op == "obs_snapshot":
                    result = {
                        "shard": init.shard,
                        "backend": engine.backend_name,
                        "n_traj": len(engine.dataset),
                        "n_entries": engine.n_index_entries,
                        "n_evaluations": engine.n_evaluations,
                        "n_batches": engine.n_batches,
                        "metrics": metrics.get_registry().snapshot(),
                    }
                elif op == "obs_drain":
                    result = trace_sink.drain() if trace_sink is not None else []
                else:
                    raise ValueError(f"unknown worker op {op!r}")
                conn.send(("ok", result))
            except BaseException:
                try:
                    conn.send(("error", traceback.format_exc()))
                except (OSError, ValueError):
                    # Parent is gone: nothing to report to; the finally
                    # below still releases any exported segments.
                    break
    finally:
        # Runs on every exit path -- clean shutdown, broken pipe, crash in
        # a result send -- so a worker never leaks an export segment it
        # created.  FileNotFoundError (the parent reclaimed the segment by
        # name first) is an OSError and ignored like any double-unlink.
        for shm in exported:
            try:
                shm.close()
                shm.unlink()
            except OSError:
                pass
        try:
            conn.close()
        except OSError:
            pass


# -- the parent-side engine ---------------------------------------------------------


class ParallelNMEngine:
    """Sharded, multi-process NM/match evaluation with an NMEngine-like API.

    Parameters
    ----------
    dataset, grid, config:
        Exactly as for :class:`~repro.core.engine.NMEngine`.  ``config.jobs``
        sets the worker count (capped at the trajectory count);
        ``config.cache_dir`` enables the shared on-disk index cache.
    jobs:
        Optional override of ``config.jobs``.

    The instance owns worker processes and shared-memory segments; call
    :meth:`close` (or use it as a context manager) to release them.  All
    evaluation results equal the single-process engine to floating-point
    accuracy -- the merge is an exact reduction over per-trajectory terms.
    """

    def __init__(
        self,
        dataset: TrajectoryDataset,
        grid: Grid,
        config: EngineConfig,
        jobs: int | None = None,
    ) -> None:
        if len(dataset) == 0:
            raise ValueError("cannot build an engine over an empty dataset")
        jobs = config.jobs if jobs is None else jobs
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.dataset = dataset
        self.grid = grid
        self.config = config
        self.shard_bounds = shard_dataset(dataset, jobs)
        self.n_shards = len(self.shard_bounds)
        self.index_cache_hit = False
        self._own_shm: list[shared_memory.SharedMemory] = []
        self._conns: list = []
        self._workers: list = []
        self._closed = False
        try:
            self._start_workers()
        except BaseException:
            self.close()
            raise
        atexit.register(self.close)

    # -- startup ---------------------------------------------------------------

    def _start_workers(self) -> None:
        methods = mp.get_all_start_methods()
        ctx = mp.get_context("fork" if "fork" in methods else "spawn")

        lengths = self.dataset.lengths().tolist()
        row_offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(int)
        # Store-backed datasets skip /dev/shm entirely: workers receive a
        # (path, lo, hi) span and mmap the same file read-only, so the
        # parent never materialises the dataset arrays at all.
        store_ref = getattr(self.dataset, "store_ref", None)
        means_spec = sigmas_spec = None
        if store_ref is None:
            means_spec = share_array(self.dataset.all_means(), self._own_shm)
            sigmas_spec = share_array(self.dataset.all_sigmas(), self._own_shm)

        cache_dir, key, index_specs = self.config.cache_dir, None, None
        if cache_dir is not None:
            key = index_cache.cache_key(
                self.dataset,
                self.grid,
                self.config,
                kernel_tag=kernels.prob_kernel_tag(self.config),
            )
            loaded = index_cache.load_index(
                cache_dir,
                key,
                n_rows=int(row_offsets[-1]),
                n_cells=self.grid.n_cells,
            )
            if loaded is not None:
                self.index_cache_hit = True
                index_specs = tuple(share_array(a, self._own_shm) for a in loaded)

        # Workers are plain single-process engines: no recursive pools, no
        # per-shard cache files (the parent owns the canonical cache), and
        # no file-writing observability of their own (spans buffer in the
        # worker and drain through the pipe; see _worker_main).
        worker_config = replace(
            self.config, jobs=1, cache_dir=None, trace_out=None, metrics_out=None
        )
        self._trace_ctx = tracing.current_context()
        metrics_enabled = metrics.get_registry().enabled
        for shard, (lo, hi) in enumerate(self.shard_bounds):
            store_span = None
            if store_ref is not None:
                path, base_lo, _base_hi = store_ref
                store_span = (path, base_lo + lo, base_lo + hi)
            init = _WorkerInit(
                grid=self.grid,
                config=worker_config,
                means=means_spec,
                sigmas=sigmas_spec,
                lengths=tuple(lengths[lo:hi]),
                row_lo=int(row_offsets[lo]),
                row_hi=int(row_offsets[hi]),
                index=index_specs,
                store=store_span,
                shard=shard,
                trace=self._trace_ctx,
                metrics_enabled=metrics_enabled,
            )
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main, args=(child_conn, init), daemon=True
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._workers.append(proc)

        metas = [self._recv(i) for i in range(self.n_shards)]
        self._shard_sizes = [meta["n_traj"] for meta in metas]
        self._shard_entries = [int(meta["n_entries"]) for meta in metas]
        # Workers re-resolve the kernel backend in their own process (fork
        # or spawn), so a "compiled"/"auto" config may land differently
        # there than in the parent; report what the shards actually run.
        self._backend_name = str(metas[0].get("backend", "numpy"))
        self.n_index_entries = int(sum(self._shard_entries))
        cells: set[int] = set()
        for meta in metas:
            cells.update(int(c) for c in meta["active_cells"])
        self._active_cells = sorted(cells)

        self.shard_skew = _skew(self._shard_entries)
        metrics.gauge("parallel.shard_skew").set(self.shard_skew)
        metrics.counter("parallel.workers_started").inc(self.n_shards)
        _log.info(
            "shard workers ready",
            extra={
                "jobs": self.n_shards,
                "shard_bounds": self.shard_bounds,
                "shard_entries": self._shard_entries,
                "shard_skew": self.shard_skew,
                "index_cache_hit": self.index_cache_hit,
                "backend": self._backend_name,
                "dtype": self.config.dtype,
            },
        )

        if key is not None and not self.index_cache_hit:
            self._persist_cold_index(cache_dir, key, row_offsets)

    def _persist_cold_index(self, cache_dir, key: str, row_offsets) -> None:
        """Merge the freshly built shard indexes and write the shared cache.

        Shard arrays come back through worker-created shared memory (no
        pickling); rows are shifted to global coordinates, concatenated and
        (cell, row)-sorted -- byte-identical to what a serial engine would
        persist, so either path can warm-start the other.

        The export segments belong to the *workers* (creator-unlinks), so
        a worker killed between exporting and releasing would orphan them.
        Until the release round-trip confirms, the parent keeps the segment
        names and reclaims any survivor by name on the way out -- a segment
        already unlinked by its worker is simply skipped.
        """
        specs_per_shard = self._broadcast(("export_index", None))
        handoff = [spec.name for specs in specs_per_shard for spec in specs]
        try:
            faults.fire("parallel.parent.merge", key=key)
            parts = []
            for (lo, _hi), specs in zip(self.shard_bounds, specs_per_shard):
                attachments = [attach_array(spec) for spec in specs]
                cells, rows, vals = (view for view, _ in attachments)
                parts.append((cells.copy(), rows + int(row_offsets[lo]), vals.copy()))
                for _, shm in attachments:
                    shm.close()
            self._broadcast(("release_index", None))
            handoff = []  # every worker confirmed its own unlink
        finally:
            for name in handoff:
                try:
                    orphan = shared_memory.SharedMemory(name=name)
                except FileNotFoundError:
                    continue
                orphan.close()
                orphan.unlink()
        all_cells = np.concatenate([p[0] for p in parts])
        all_rows = np.concatenate([p[1] for p in parts])
        all_vals = np.concatenate([p[2] for p in parts])
        order = np.lexsort((all_rows, all_cells))
        index_cache.save_index(
            cache_dir, key, all_cells[order], all_rows[order], all_vals[order]
        )

    # -- messaging -------------------------------------------------------------

    def _worker_crashed(self, i: int, cause: BaseException) -> WorkerCrashError:
        """Tear the engine down after worker ``i``'s pipe broke.

        A broken pipe means the worker is dead (crash, OOM-kill, SIGKILL):
        no further reduction over the shards can be trusted, so the engine
        closes itself -- stopping the surviving workers and unlinking every
        parent-owned segment -- before surfacing a :class:`WorkerCrashError`.
        """
        exitcode = None
        if i < len(self._workers):
            self._workers[i].join(timeout=5)
            exitcode = self._workers[i].exitcode
        metrics.counter("parallel.worker_crash").inc()
        _log.error(
            "shard worker died; closing engine",
            extra={"shard": i, "exitcode": exitcode},
        )
        self._abort()
        return WorkerCrashError(
            f"shard worker {i} died (exitcode {exitcode}); engine closed"
        )

    def _recv(self, i: int):
        try:
            status, payload = self._conns[i].recv()
        except (EOFError, OSError) as exc:
            raise self._worker_crashed(i, exc) from exc
        if status == "error":
            raise RuntimeError(f"shard worker {i} failed:\n{payload}")
        return payload

    def _broadcast(self, msg) -> list:
        """Send one request to every worker, then gather all replies.

        Requests are sent before any reply is read so the workers compute
        concurrently.  A worker whose pipe breaks at either step raises
        :class:`WorkerCrashError` after closing the engine (see
        :meth:`_worker_crashed`).
        """
        if self._closed:
            raise RuntimeError("ParallelNMEngine is closed")
        for i, conn in enumerate(self._conns):
            try:
                conn.send(msg)
            except (OSError, ValueError) as exc:
                raise self._worker_crashed(i, exc) from exc
        return [self._recv(i) for i in range(len(self._conns))]

    # -- metadata --------------------------------------------------------------

    @property
    def active_cells(self) -> list[int]:
        """Cells with at least one above-floor entry, ascending (union)."""
        return list(self._active_cells)

    @property
    def floor_log_prob(self) -> float:
        """The log-space probability floor."""
        return self.config.min_log_prob

    @property
    def backend_name(self) -> str:
        """Kernel backend the shard workers resolved to ("numpy", "cnative", ...)."""
        return self._backend_name

    @property
    def backend_dtype(self) -> str:
        """Value dtype the shard workers' evaluation kernels run in."""
        return self.config.dtype

    @property
    def n_evaluations(self) -> int:
        """Total pattern evaluations across all shard workers."""
        return sum(n for n, _ in self._broadcast(("stats", None)))

    @property
    def n_batches(self) -> int:
        """Total batched-evaluation rounds across all shard workers."""
        return sum(b for _, b in self._broadcast(("stats", None)))

    # -- observability ------------------------------------------------------------

    def obs_snapshot(self) -> dict:
        """Per-shard counters plus imbalance gauges, in one round-trip.

        The aggregate ``n_evaluations`` / ``n_batches`` properties hide
        *where* the work happened; this snapshot keeps the per-shard
        numbers (trajectory span, index entries, evaluations, batches and
        each worker's metric snapshot) so shard imbalance is visible:
        snapshot-balanced spans over skewed cell density give uneven
        ``n_entries``, surfaced as the ``shard_skew`` gauge (max/mean of
        per-shard index entries) and ``eval_skew`` (max/mean of per-shard
        evaluation counts).
        """
        replies = self._broadcast(("obs_snapshot", None))
        shards = [
            {**reply, "trajectories": list(self.shard_bounds[i])}
            for i, reply in enumerate(replies)
        ]
        entry_skew = _skew([s["n_entries"] for s in shards])
        eval_skew = _skew([s["n_evaluations"] for s in shards])
        metrics.gauge("parallel.shard_skew").set(entry_skew)
        metrics.gauge("parallel.eval_skew").set(eval_skew)
        return {
            "n_shards": self.n_shards,
            "backend": self._backend_name,
            "dtype": self.config.dtype,
            "n_index_entries": self.n_index_entries,
            "n_evaluations": sum(s["n_evaluations"] for s in shards),
            "n_batches": sum(s["n_batches"] for s in shards),
            "shard_skew": entry_skew,
            "eval_skew": eval_skew,
            "shards": shards,
        }

    def drain_trace(self) -> int:
        """Pull buffered worker span records into the parent's trace sink.

        Workers trace into in-memory buffers (their file handles are the
        parent's under fork); this drains every buffer over the pipe
        protocol and writes the records verbatim, so shard-side
        ``index.build`` / ``engine.nm_batch`` spans land in the parent's
        JSONL file already parented to the span that was current when the
        engine was constructed.  Returns the number of records written.
        Called automatically by :meth:`close`.
        """
        if getattr(self, "_trace_ctx", None) is None or tracing.get_tracer() is None:
            return 0
        if self._closed:
            return 0
        # Per-connection, not _broadcast: draining is best-effort (it runs
        # from close(), possibly with dead workers) and must never trigger
        # the crash teardown itself.  Spans from live workers still land.
        pending = []
        for conn in self._conns:
            try:
                conn.send(("obs_drain", None))
            except (OSError, ValueError):
                continue
            pending.append(conn)
        total = 0
        for conn in pending:
            try:
                status, records = conn.recv()
            except (EOFError, OSError):
                continue
            if status != "ok":
                continue
            tracing.emit_foreign(records)
            total += len(records)
        return total

    # -- batched measures --------------------------------------------------------

    def nm_batch(self, patterns: Sequence[TrajectoryPattern]) -> np.ndarray:
        """``NM(P)`` of a whole candidate batch: sum of per-shard NM sums."""
        patterns = list(patterns)
        if not patterns:
            return np.empty(0)
        cells_list = [p.cells for p in patterns]
        return merge_batch_sums(self._broadcast(("nm_batch", cells_list)))

    def match_batch(self, patterns: Sequence[TrajectoryPattern]) -> np.ndarray:
        """Dataset match of a whole candidate batch, in order."""
        patterns = list(patterns)
        if not patterns:
            return np.empty(0)
        cells_list = [p.cells for p in patterns]
        return merge_batch_sums(self._broadcast(("match_batch", cells_list)))

    def nm_many(self, patterns: Sequence[TrajectoryPattern]) -> np.ndarray:
        """NM of several patterns, in order (alias of :meth:`nm_batch`)."""
        return self.nm_batch(patterns)

    def nm(self, pattern: TrajectoryPattern) -> float:
        """``NM(P)`` over the dataset."""
        return float(self.nm_batch([pattern])[0])

    def match(self, pattern: TrajectoryPattern) -> float:
        """Dataset match of ``pattern``."""
        return float(self.match_batch([pattern])[0])

    def nm_per_trajectory(self, pattern: TrajectoryPattern) -> np.ndarray:
        """Eq. 4 per trajectory; shard arrays concatenate in dataset order."""
        return merge_per_trajectory(self._broadcast(("nm_per_traj", pattern.cells)))

    def match_per_trajectory(self, pattern: TrajectoryPattern) -> np.ndarray:
        """Un-normalised match per trajectory, in dataset order."""
        return merge_per_trajectory(
            self._broadcast(("match_per_traj", pattern.cells))
        )

    def best_window(
        self, pattern: TrajectoryPattern, traj_index: int
    ) -> tuple[int, float] | None:
        """Best (start, NM) window in one trajectory (routed to its shard)."""
        if not 0 <= traj_index < len(self.dataset):
            raise IndexError(f"trajectory index {traj_index} out of range")
        for i, (lo, hi) in enumerate(self.shard_bounds):
            if lo <= traj_index < hi:
                self._conns[i].send(("best_window", (pattern.cells, traj_index - lo)))
                return self._recv(i)
        raise AssertionError("unreachable: shard bounds cover the dataset")

    # -- singular tables -----------------------------------------------------------

    def singular_nm_table(self) -> dict[int, float]:
        """NM of every active singular pattern (exact sharded reduction).

        A shard where a cell is inactive contributes the floor once per
        shard trajectory -- the same accounting the out-of-core engine uses.
        """
        tables = self._broadcast(("singular_nm", None))
        return merge_singular_tables(
            tables, self._shard_sizes, self.config.min_log_prob, len(self.dataset)
        )

    def singular_match_table(self) -> dict[int, float]:
        """Match of every active singular pattern (exact sharded reduction)."""
        tables = self._broadcast(("singular_match", None))
        floor_p = float(np.exp(self.config.min_log_prob))
        return merge_singular_tables(
            tables, self._shard_sizes, floor_p, len(self.dataset)
        )

    # -- extension tables ----------------------------------------------------------

    def extend_right_tables(
        self, pattern: TrajectoryPattern
    ) -> tuple[dict[int, float], dict[int, float]]:
        """NM and match of ``pattern + (c,)`` for every active cell ``c``."""
        return self.extend_right_tables_many([pattern])[0]

    def extend_right_tables_many(
        self, patterns: Sequence[TrajectoryPattern]
    ) -> list[tuple[dict[int, float], dict[int, float]]]:
        """Sharded :meth:`NMEngine.extend_right_tables_many`.

        Per prefix, each shard reports its extension tables *plus* the base
        totals an inactive cell would score there; a cell missing from a
        shard's table contributes that shard's base -- making the merged
        table exactly the full-dataset one.
        """
        patterns = list(patterns)
        if not patterns:
            return []
        cells_list = [p.cells for p in patterns]
        per_shard: list[list[ExtensionTables]] = self._broadcast(
            ("ext_tables", cells_list)
        )
        return [
            merge_extension_tables([tables[i] for tables in per_shard])
            for i in range(len(patterns))
        ]

    # -- gap patterns ------------------------------------------------------------

    def nm_gap_pattern_total(self, pattern) -> float:
        """Dataset NM of a :class:`~repro.core.wildcards.GapPattern`.

        Each worker runs the alignment DP over its shard; per-trajectory
        bests sum exactly.  :func:`repro.core.wildcards.nm_gap_pattern`
        dispatches here automatically.
        """
        return merge_scalar_sums(self._broadcast(("gap_nm", pattern)))

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Shut workers down and unlink every owned shared-memory segment.

        Idempotent; also registered with ``atexit`` and invoked by the
        context-manager exit and the finaliser.
        """
        if self._closed:
            return
        try:
            # Last chance to collect worker spans; tolerate dead workers
            # or an already-shut tracer (close may run from atexit).
            self.drain_trace()
        except Exception:
            pass
        self._abort()

    def _abort(self) -> None:
        """Unconditional teardown: stop workers, unlink segments, mark closed.

        The no-courtesies half of :meth:`close` -- no trace drain, nothing
        that needs a live worker conversation -- so it is safe to call from
        :meth:`_worker_crashed` while a pipe is broken.  Sets ``_closed``
        *first*: any teardown step that indirectly re-enters messaging hits
        the closed guard instead of recursing.
        """
        if self._closed:
            return
        self._closed = True
        _log.debug("closing shard workers", extra={"jobs": len(self._workers)})
        for conn in self._conns:
            try:
                conn.send(("close", None))
            except (OSError, ValueError):
                pass
        for conn, proc in zip(self._conns, self._workers):
            try:
                conn.close()
            except OSError:
                pass
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join(timeout=5)
        for shm in self._own_shm:
            try:
                shm.close()
                shm.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
        self._own_shm.clear()
        try:
            atexit.unregister(self.close)
        except Exception:  # pragma: no cover
            pass

    def __enter__(self) -> "ParallelNMEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
