"""Human-posture sequence generator (the paper's second real dataset).

Section 6.1 mentions a second real dataset -- human postures -- with
"similar results" (not shown).  Posture tracking produces exactly the kind
of data TrajPattern consumes: a low-dimensional feature trajectory (here a
2-D pose-space embedding) that dwells near discrete postures and moves
smoothly between them, observed with sensor noise.

:class:`PostureGenerator` synthesises that structure as a regime-switching
process: ``n_postures`` anchor points in pose space, a Markov transition
matrix over them, dwell periods with jitter at each anchor, and linear
interpolation during transitions.  Recurring posture sequences (e.g.
sit -> stand -> walk) become the mineable patterns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mobility.objects import GroundTruthPath


@dataclass(frozen=True)
class PostureConfig:
    """Pose-space structure and dynamics."""

    n_postures: int = 5
    n_subjects: int = 20
    n_ticks: int = 100
    dwell_mean: float = 4.0  # mean ticks spent holding a posture
    transition_ticks: int = 2  # ticks to move between postures
    jitter: float = 0.01  # pose-space noise while holding
    extent: float = 1.0  # anchors are placed in [0, extent]^2
    self_avoid: bool = True  # forbid transitions back to the same posture

    def __post_init__(self) -> None:
        if self.n_postures < 2:
            raise ValueError("need at least two postures")
        if min(self.n_subjects, self.n_ticks) < 1:
            raise ValueError("subjects and ticks must be positive")
        if self.dwell_mean <= 0:
            raise ValueError("dwell_mean must be positive")
        if self.transition_ticks < 1:
            raise ValueError("transition_ticks must be at least 1")
        if self.jitter < 0:
            raise ValueError("jitter must be non-negative")


class PostureGenerator:
    """Regime-switching pose trajectories with a shared transition habit.

    All subjects share the anchor layout and the (randomly drawn, sparse)
    transition matrix, so posture sequences recur across subjects -- the
    population-level patterns the miner should recover.
    """

    def __init__(self, config: PostureConfig = PostureConfig()) -> None:
        self.config = config

    def make_anchors(self, rng: np.random.Generator) -> np.ndarray:
        """Well-separated posture anchors, shape ``(n_postures, 2)``."""
        cfg = self.config
        # Rejection-sample a spread-out layout for stable separability.
        best, best_sep = None, -1.0
        for _ in range(32):
            anchors = rng.uniform(0.1 * cfg.extent, 0.9 * cfg.extent, (cfg.n_postures, 2))
            diff = anchors[:, None, :] - anchors[None, :, :]
            dist = np.hypot(diff[..., 0], diff[..., 1])
            np.fill_diagonal(dist, np.inf)
            sep = float(dist.min())
            if sep > best_sep:
                best, best_sep = anchors, sep
        return best

    def make_transition_matrix(self, rng: np.random.Generator) -> np.ndarray:
        """Sparse, shared Markov kernel over postures (rows sum to 1)."""
        cfg = self.config
        n = cfg.n_postures
        # Each posture strongly prefers ~2 successors: recurring sequences.
        matrix = np.full((n, n), 0.02)
        for i in range(n):
            favourites = rng.choice(
                [j for j in range(n) if j != i or not cfg.self_avoid],
                size=min(2, n - 1),
                replace=False,
            )
            matrix[i, favourites] += 1.0
            if cfg.self_avoid:
                matrix[i, i] = 0.0
        return matrix / matrix.sum(axis=1, keepdims=True)

    def generate_paths(self, rng: np.random.Generator) -> list[GroundTruthPath]:
        """One pose trajectory per subject."""
        cfg = self.config
        anchors = self.make_anchors(rng)
        kernel = self.make_transition_matrix(rng)

        paths = []
        for subject in range(cfg.n_subjects):
            positions = np.empty((cfg.n_ticks, 2))
            posture = int(rng.integers(cfg.n_postures))
            t = 0
            while t < cfg.n_ticks:
                dwell = max(1, int(rng.poisson(cfg.dwell_mean)))
                hold = min(dwell, cfg.n_ticks - t)
                positions[t : t + hold] = anchors[posture] + rng.normal(
                    scale=cfg.jitter, size=(hold, 2)
                )
                t += hold
                if t >= cfg.n_ticks:
                    break
                next_posture = int(rng.choice(cfg.n_postures, p=kernel[posture]))
                steps = min(cfg.transition_ticks, cfg.n_ticks - t)
                w = (np.arange(1, steps + 1) / (cfg.transition_ticks + 1))[:, None]
                positions[t : t + steps] = (
                    (1 - w) * anchors[posture] + w * anchors[next_posture]
                ) + rng.normal(scale=cfg.jitter, size=(steps, 2))
                t += steps
                posture = next_posture
            paths.append(
                GroundTruthPath(positions, object_id=f"subject-{subject}")
            )
        return paths
