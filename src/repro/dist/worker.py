"""The remote worker pool (``repro worker --listen``).

One process per pool, one TCP listener, one session per connection.  A
session begins with ``hello`` (protocol version, store identity, grid,
engine config, Prob-kernel tag -- all refused on mismatch, see
:mod:`repro.dist.wire`), then ``open`` builds one single-process
:class:`~repro.core.engine.NMEngine` per assigned trajectory span.  The
worker opens its **local** copy of the ``.tjc`` store and memory-maps the
span -- the coordinator ships span coordinates, never data, so the wire
cost of a mine is the op stream, not the dataset.

Sessions are handled in their own threads, so a monitoring connection
can ``ping`` while a coordinator session computes (numpy releases the
GIL in the hot loops).  Session state -- engines, trace buffer -- dies
with the connection; a coordinator that reconnects after a network blip
simply replays ``hello`` + ``open``.

Observability mirrors the fork workers of :mod:`repro.core.parallel`:
when the ``hello`` carries a trace context the session traces into an
in-memory buffer drained by ``obs_drain``, so remote ``index.build`` /
``engine.nm_batch`` spans land in the coordinator's JSONL file parented
under the coordinator's span -- one ``repro report`` renders the whole
cluster's tree.
"""

from __future__ import annotations

import socket
import threading
import traceback
from dataclasses import dataclass, field

import numpy as np

from repro.core import kernels
from repro.core.engine import NMEngine
from repro.core.pattern import TrajectoryPattern
from repro.core.wildcards import nm_gap_pattern
from repro.dist import wire
from repro.obs import logs, metrics, tracing
from repro.serve.protocol import ProtocolError
from repro.storage import open_store
from repro.testkit import faults

_log = logs.get_logger("dist.worker")


@dataclass
class WorkerPoolConfig:
    """Listener + store binding of one worker pool.

    ``port = 0`` asks the OS for a free port (available as
    :attr:`WorkerPoolServer.port` after :meth:`~WorkerPoolServer.start`).
    ``name`` labels the pool in logs and trace spans.
    """

    store_path: str
    host: str = "127.0.0.1"
    port: int = 0
    name: str = ""
    accept_timeout_s: float = 0.5
    extra_span_attrs: dict = field(default_factory=dict)


class WorkerPoolServer:
    """Serve the distributed worker op set for one local ``.tjc`` store."""

    def __init__(self, config: WorkerPoolConfig) -> None:
        self.config = config
        self.store = open_store(config.store_path)
        self._sock: socket.socket | None = None
        self._stopping = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._sessions: set[socket.socket] = set()
        self._sessions_lock = threading.Lock()
        self.sessions_served = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def port(self) -> int:
        if self._sock is None:
            raise RuntimeError("worker pool is not listening")
        return self._sock.getsockname()[1]

    def start(self) -> tuple[str, int]:
        """Bind the listener and start accepting coordinator sessions."""
        sock = socket.create_server(
            (self.config.host, self.config.port), reuse_port=False
        )
        sock.settimeout(self.config.accept_timeout_s)
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="dist-worker-accept", daemon=True
        )
        self._accept_thread.start()
        host, port = sock.getsockname()[:2]
        _log.info(
            "worker pool listening",
            extra={
                "host": host,
                "port": port,
                "store": str(self.config.store_path),
                "n_traj": self.store.n_trajectories,
                "store_hash": self.store.content_hash,
            },
        )
        return host, port

    def stop(self) -> None:
        """Stop accepting, drop every live session, close the listener."""
        self._stopping.set()
        with self._sessions_lock:
            sessions = list(self._sessions)
        for conn in sessions:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None

    def serve_forever(self) -> None:
        """Blocking entry point for ``repro worker``."""
        if self._sock is None:
            self.start()
        try:
            while not self._stopping.is_set():
                self._stopping.wait(0.5)
        finally:
            self.stop()

    def __enter__(self) -> "WorkerPoolServer":
        if self._sock is None:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- accept / session loops --------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, peer = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            with self._sessions_lock:
                self._sessions.add(conn)
            self.sessions_served += 1
            threading.Thread(
                target=self._session_loop,
                args=(conn, peer),
                name=f"dist-worker-session-{self.sessions_served}",
                daemon=True,
            ).start()

    def _session_loop(self, conn: socket.socket, peer) -> None:
        session = _Session(self)
        reader = conn.makefile("rb")
        try:
            while not self._stopping.is_set():
                line = reader.readline(wire.MAX_LINE_BYTES + 1)
                if not line:
                    break
                if len(line) > wire.MAX_LINE_BYTES:
                    conn.sendall(
                        wire.encode(
                            wire.error_response(
                                code="bad_request", detail="request line too long"
                            )
                        )
                    )
                    break
                if not line.strip():
                    continue
                response = session.handle_line(line)
                conn.sendall(wire.encode(response))
        except (OSError, ValueError):
            pass  # peer vanished mid-frame; session state dies with it
        finally:
            session.teardown()
            with self._sessions_lock:
                self._sessions.discard(conn)
            try:
                reader.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass


class _Session:
    """Per-connection state: handshake, span engines, trace buffer."""

    def __init__(self, server: WorkerPoolServer) -> None:
        self.server = server
        self.store = server.store
        self.engines: dict[tuple[int, int], NMEngine] = {}
        self.greeted = False
        self.grid = None
        self.config = None
        self.trace_sink: tracing.BufferSink | None = None

    # -- dispatch ----------------------------------------------------------

    def handle_line(self, line: bytes) -> dict:
        rid = None
        op = "unknown"
        try:
            request = wire.decode_line(line)
            rid = request.get("id")
            op = request.get("op")
            if op not in wire.DIST_OPS:
                raise ProtocolError(f"unknown op {op!r}", code="unknown_op")
            faults.fire("dist.worker.op", op=op, pool=self.server.config.name)
            return self._dispatch(op, request, rid)
        except ProtocolError as exc:
            return wire.error_response(rid, exc.code, exc.detail, **exc.fields)
        except Exception as exc:  # noqa: BLE001 - must answer the coordinator
            _log.warning(
                "worker op failed",
                extra={"op": op, "error": type(exc).__name__},
            )
            return wire.error_response(
                rid,
                "internal",
                f"{type(exc).__name__}: {exc}",
                trace=traceback.format_exc(limit=8),
            )

    def _dispatch(self, op: str, request: dict, rid) -> dict:
        if op == "hello":
            return self._handle_hello(request, rid)
        if op == "ping":
            return wire.ok_response(rid, pong=True)
        if not self.greeted:
            raise ProtocolError(f"op {op!r} before hello")
        if op == "open":
            return self._handle_open(request, rid)
        if op == "close":
            self.engines.clear()
            return wire.ok_response(rid, closed=True)
        if op == "obs_drain":
            records = self.trace_sink.drain() if self.trace_sink is not None else []
            return wire.ok_response(rid, records=records)
        # Everything else is span-scoped.
        engines = self._span_engines(request)
        if op == "best_window":
            (span, engine), = engines  # single span by construction
            cells = tuple(wire.patterns_from_wire([request.get("cells")])[0])
            traj = request.get("traj")
            if not isinstance(traj, int) or isinstance(traj, bool):
                raise ProtocolError("traj must be an integer")
            if not 0 <= traj < len(engine.dataset):
                raise ProtocolError(f"traj {traj} outside span {span}")
            result = engine.best_window(TrajectoryPattern(cells), traj)
            return wire.ok_response(rid, results=[wire.best_window_to_wire(result)])
        results = [self._eval(op, request, engine) for _, engine in engines]
        return wire.ok_response(rid, results=results)

    def _eval(self, op: str, request: dict, engine: NMEngine):
        if op in ("nm_batch", "match_batch"):
            patterns = [
                TrajectoryPattern(cells)
                for cells in wire.patterns_from_wire(request.get("patterns"))
            ]
            values = (
                engine.nm_batch(patterns)
                if op == "nm_batch"
                else engine.match_batch(patterns)
            )
            return wire.array_to_wire(values)
        if op in ("nm_per_traj", "match_per_traj"):
            cells = tuple(wire.patterns_from_wire([request.get("cells")])[0])
            pattern = TrajectoryPattern(cells)
            values = (
                engine.nm_per_trajectory(pattern)
                if op == "nm_per_traj"
                else engine.match_per_trajectory(pattern)
            )
            return wire.array_to_wire(values)
        if op == "singular_nm":
            return wire.table_to_wire(engine.singular_nm_table())
        if op == "singular_match":
            return wire.table_to_wire(engine.singular_match_table())
        if op == "ext_tables":
            patterns = [
                TrajectoryPattern(cells)
                for cells in wire.patterns_from_wire(request.get("patterns"))
            ]
            return [
                wire.ext_tables_to_wire(t)
                for t in engine.extension_tables_many(patterns)
            ]
        if op == "gap_nm":
            pattern = wire.gap_pattern_from_wire(request.get("pattern"))
            return float(nm_gap_pattern(engine, pattern))
        if op == "stats":
            return [int(engine.n_evaluations), int(engine.n_batches)]
        if op == "obs_snapshot":
            return {
                "n_traj": len(engine.dataset),
                "n_entries": int(engine.n_index_entries),
                "n_evaluations": int(engine.n_evaluations),
                "n_batches": int(engine.n_batches),
                "backend": engine.backend_name,
                "metrics": metrics.get_registry().snapshot(),
            }
        raise AssertionError(f"unreachable: op {op!r}")  # pragma: no cover

    # -- handshake / span management ---------------------------------------

    def _handle_hello(self, request: dict, rid) -> dict:
        wire.check_dist_version(request)
        store_hash = request.get("store_hash")
        if store_hash != self.store.content_hash:
            raise ProtocolError(
                "store mismatch: coordinator and worker are not looking at "
                "the same dataset",
                coordinator_store_hash=store_hash,
                worker_store_hash=self.store.content_hash,
            )
        self.grid = wire.grid_from_wire(request.get("grid"))
        self.config = wire.config_from_wire(request.get("config"))
        kernel_tag = kernels.prob_kernel_tag(self.config)
        shipped_tag = request.get("kernel_tag")
        if shipped_tag is not None and shipped_tag != kernel_tag:
            raise ProtocolError(
                "Prob-kernel mismatch: the pool would build a different "
                "index than the coordinator expects",
                coordinator_kernel_tag=shipped_tag,
                worker_kernel_tag=kernel_tag,
            )
        trace = request.get("trace")
        if trace is not None:
            ctx = tracing.SpanContext.from_wire(trace)
            tracing.forget_tracer()
            self.trace_sink = tracing.BufferSink()
            tracing.configure_tracing(
                sink=self.trace_sink,
                trace_id=ctx.trace_id,
                ambient_parent=ctx.span_id,
                base_attrs={
                    "pool": self.server.config.name,
                    **self.server.config.extra_span_attrs,
                },
            )
        registry = metrics.get_registry()
        registry.enabled = bool(request.get("metrics", False))
        self.greeted = True
        self.engines.clear()
        return wire.ok_response(
            rid,
            version=wire.DIST_PROTOCOL_VERSION,
            capabilities=list(wire.DIST_OPS),
            store_hash=self.store.content_hash,
            n_trajectories=int(self.store.n_trajectories),
            kernel_tag=kernel_tag,
            pool=self.server.config.name,
        )

    def _handle_open(self, request: dict, rid) -> dict:
        spans = wire.spans_from_wire(request.get("spans"))
        n = int(self.store.n_trajectories)
        metas = []
        for lo, hi in spans:
            if hi > n:
                raise ProtocolError(f"span [{lo}, {hi}) outside store (n={n})")
            faults.fire(
                "dist.worker.open", span=(lo, hi), pool=self.server.config.name
            )
            if (lo, hi) not in self.engines:
                shard = self.store.span(lo, hi)
                self.engines[(lo, hi)] = NMEngine(shard, self.grid, self.config)
            engine = self.engines[(lo, hi)]
            metas.append(
                {
                    "span": [lo, hi],
                    "n_traj": len(engine.dataset),
                    "n_entries": int(engine.n_index_entries),
                    "active_cells": [int(c) for c in engine.active_cells],
                    "backend": engine.backend_name,
                }
            )
        return wire.ok_response(rid, metas=metas)

    def _span_engines(self, request: dict) -> list[tuple[tuple[int, int], NMEngine]]:
        spans = wire.spans_from_wire(request.get("spans"))
        out = []
        for span in spans:
            engine = self.engines.get(span)
            if engine is None:
                raise ProtocolError(f"span {list(span)} was never opened")
            out.append((span, engine))
        return out

    def teardown(self) -> None:
        self.engines.clear()
        self.trace_sink = None


def run_worker(
    store_path: str, host: str = "127.0.0.1", port: int = 0, name: str = ""
) -> None:
    """``repro worker`` entry point: listen until interrupted."""
    server = WorkerPoolServer(
        WorkerPoolConfig(store_path=store_path, host=host, port=port, name=name)
    )
    bound_host, bound_port = server.start()
    print(f"worker pool listening on {bound_host}:{bound_port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
