"""End-to-end integration tests spanning the full pipeline.

These run the whole chain at miniature scale: data generation ->
dead-reckoning tracking -> velocity transform -> engine -> miners ->
groups / applications, and check cross-component invariants.
"""

import numpy as np
import pytest

from repro.baselines.match_miner import MatchMiner
from repro.baselines.pb import PBMiner
from repro.baselines.support import SupportMiner
from repro.core.engine import EngineConfig, NMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.datagen.bus import BusFleetConfig, BusFleetGenerator
from repro.datagen.observe import observe_paths
from repro.datagen.zebranet import ZebraNetConfig, ZebraNetGenerator
from repro.mobility.models import LinearModel
from repro.mobility.reporting import ReportingConfig
from repro.mobility.server import track_fleet
from repro.trajectory.io import load_dataset_jsonl, save_dataset_jsonl
from repro.trajectory.velocity import to_velocity_dataset


@pytest.fixture(scope="module")
def bus_pipeline():
    """Generate -> track -> velocities -> engine, shared by this module."""
    config = BusFleetConfig(
        n_routes=2, buses_per_route=2, n_days=2, n_ticks=40
    )
    paths = BusFleetGenerator(config).generate_paths(np.random.default_rng(11))
    tracked = track_fleet(
        paths, LinearModel, ReportingConfig(uncertainty=0.01, confidence_c=2.0)
    )
    locations = tracked.to_dataset()
    velocities = to_velocity_dataset(locations)
    grid = velocities.make_grid(0.006)
    engine = NMEngine(
        velocities,
        grid,
        EngineConfig(delta=0.006, min_prob=1e-4, max_cells_per_snapshot=64),
    )
    return paths, locations, velocities, engine


class TestPipeline:
    def test_tracking_preserves_shape(self, bus_pipeline):
        paths, locations, velocities, _ = bus_pipeline
        assert len(locations) == len(paths)
        assert all(len(v) == len(l) - 1 for v, l in zip(velocities, locations))

    def test_engine_has_signal(self, bus_pipeline):
        *_, engine = bus_pipeline
        assert len(engine.active_cells) > 10
        assert engine.n_index_entries > 0

    def test_mining_end_to_end(self, bus_pipeline):
        *_, engine = bus_pipeline
        result = TrajPatternMiner(engine, k=10, max_length=4).mine(
            discover_groups=True
        )
        assert len(result) == 10
        assert result.groups
        # All mined patterns draw from the active alphabet.
        active = set(engine.active_cells)
        for pattern in result.patterns:
            assert set(pattern.cells) <= active

    def test_miners_agree_on_best_pattern(self, bus_pipeline):
        """TrajPattern and PB (same measure) must return identical top-k;
        the match miner ranks by a different measure but its top pattern's
        NM can never exceed TrajPattern's best."""
        *_, engine = bus_pipeline
        tp = TrajPatternMiner(engine, k=5, max_length=3).mine()
        pb, _ = PBMiner(engine, k=5, max_length=3).mine()
        assert [p.cells for p in tp.patterns] == [p.cells for p in pb.patterns]
        match_top = MatchMiner(engine, k=1, max_length=3).mine().patterns[0]
        assert engine.nm(match_top) <= tp.nm_values[0] + 1e-9

    def test_roundtrip_through_disk(self, bus_pipeline, tmp_path):
        """Mining results are identical after a JSONL save/load cycle."""
        *_, velocities, engine = bus_pipeline
        file_path = tmp_path / "velocities.jsonl"
        save_dataset_jsonl(velocities, file_path)
        reloaded = load_dataset_jsonl(file_path)
        engine2 = NMEngine(reloaded, engine.grid, engine.config)
        a = TrajPatternMiner(engine, k=5, max_length=3).mine()
        b = TrajPatternMiner(engine2, k=5, max_length=3).mine()
        assert [p.cells for p in a.patterns] == [p.cells for p in b.patterns]
        assert a.nm_values == pytest.approx(b.nm_values)


class TestZebraNetPipeline:
    def test_observe_and_mine(self):
        config = ZebraNetConfig(n_groups=3, zebras_per_group=3, n_ticks=40)
        rng = np.random.default_rng(2)
        paths = ZebraNetGenerator(config).generate_paths(rng)
        dataset = observe_paths(paths, sigma=0.01, rng=rng)
        grid = dataset.make_grid(0.02)
        engine = NMEngine(
            dataset, grid, EngineConfig(delta=0.02, min_prob=1e-4)
        )
        result = TrajPatternMiner(engine, k=5, max_length=4).mine(
            discover_groups=True
        )
        assert len(result) == 5
        assert result.groups

    def test_support_vs_nm_on_same_grid(self):
        config = ZebraNetConfig(n_groups=2, zebras_per_group=4, n_ticks=30)
        rng = np.random.default_rng(3)
        paths = ZebraNetGenerator(config).generate_paths(rng)
        dataset = observe_paths(paths, sigma=0.01, rng=rng)
        grid = dataset.make_grid(0.02)
        support = SupportMiner(dataset, grid, k=5, min_length=2).mine()
        engine = NMEngine(dataset, grid, EngineConfig(delta=0.02, min_prob=1e-4))
        nm = TrajPatternMiner(engine, k=5, min_length=2, max_length=4).mine()
        assert len(support) > 0 and len(nm) == 5
