"""Quantile-histogram tests: merges, the error bound, the sliding window.

Pins the two promises the serving telemetry leans on: (1) the 1.2x
geometric bucket scheme bounds the quantile estimate within a factor of
``sqrt(1.2)`` of the true empirical quantile, and (2) the rolling window
of :class:`~repro.obs.metrics.SlidingQuantileHistogram` decays after load
stops while the all-time view never forgets.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    _QUANTILE_BUCKET_BASE,
    MetricsRegistry,
    QuantileHistogram,
    SlidingQuantileHistogram,
    _quantile_from_buckets,
)


def _bucket_quantile(histogram: QuantileHistogram, q: float) -> float:
    """Quantile straight off the bucket table (no min/max clamping).

    ``merge_buckets`` alone does not advance ``count`` -- the registry
    merge path fixes count/total/min/max up separately -- so these tests
    walk the buckets directly with the true merged count.
    """
    count = sum(histogram._buckets.values())
    return _quantile_from_buckets(
        histogram._buckets, count, 0.0, float("inf"), q
    )


class FakeClock:
    """Hand-driven monotonic clock for deterministic epoch rotation."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# -- merge_buckets -------------------------------------------------------------


class TestMergeBuckets:
    def test_disjoint_ranges(self):
        low = QuantileHistogram("h")
        high = QuantileHistogram("h")
        for _ in range(100):
            low.observe(1.0)
        for _ in range(100):
            high.observe(1000.0)
        low.merge_buckets(dict(high._buckets))
        # The bucket tables are disjoint, so the merged table holds both
        # populations and the quantiles straddle them.
        assert sum(low._buckets.values()) == 200
        assert _bucket_quantile(low, 0.25) < 2.0
        assert _bucket_quantile(low, 0.99) > 500.0

    def test_overlapping_ranges(self):
        a = QuantileHistogram("h")
        b = QuantileHistogram("h")
        for v in (1.0, 2.0, 4.0):
            a.observe(v)
            b.observe(v)
        before = dict(a._buckets)
        a.merge_buckets(dict(b._buckets))
        assert a._buckets == {bucket: 2 * n for bucket, n in before.items()}

    def test_registry_merge_snapshot_roundtrip(self):
        src = MetricsRegistry(enabled=True)
        for v in (1.0, 10.0, 100.0):
            src.quantile_histogram("lat", unit="ns").observe(v)
        dst = MetricsRegistry(enabled=True)
        dst.quantile_histogram("lat", unit="ns").observe(5.0)
        dst.merge_snapshot(src.snapshot())
        merged = dst.snapshot()["histograms"]["lat"]
        assert merged["count"] == 4
        assert merged["min"] == 1.0 and merged["max"] == 100.0
        # String bucket keys from the JSON snapshot merge as ints.
        histogram = dst.quantile_histogram("lat", unit="ns")
        assert all(isinstance(b, int) for b in histogram._buckets)

    def test_merge_string_keys(self):
        h = QuantileHistogram("h")
        h.observe(3.0)
        h.merge_buckets({"6": 5})  # bucket 6 = values around 1.2^6 ~ 3
        assert sum(h._buckets.values()) == 6


# -- error bound ---------------------------------------------------------------


#: One bucket spans a 1.2x range; the reported geometric midpoint is at
#: most sqrt(1.2) away from any value in the bucket (~ +/-9.5%).  The
#: tiny slack absorbs float error in the log-floor bucket assignment.
_ERROR_FACTOR = math.sqrt(_QUANTILE_BUCKET_BASE) * (1.0 + 1e-6)


@settings(max_examples=200, deadline=None)
@given(
    values=st.lists(
        st.floats(min_value=1e-6, max_value=1e12),
        min_size=1,
        max_size=200,
    ),
    q=st.sampled_from([0.5, 0.9, 0.95, 0.99, 1.0]),
)
def test_quantile_error_bound(values, q):
    """The estimate is within sqrt(base) of the true empirical quantile."""
    histogram = QuantileHistogram("h")
    for v in values:
        histogram.observe(v)
    estimate = histogram.quantile(q)
    true = sorted(values)[math.ceil(q * len(values)) - 1]
    assert true / _ERROR_FACTOR <= estimate <= true * _ERROR_FACTOR


def test_quantile_underflow_reports_zero():
    histogram = QuantileHistogram("h")
    histogram.observe(0.0)
    histogram.observe(-5.0)
    assert histogram.quantile(0.5) == 0.0


# -- sliding window ------------------------------------------------------------


class TestSlidingWindow:
    def make(self, window_s=60.0, n_epochs=6):
        clock = FakeClock()
        histogram = SlidingQuantileHistogram(
            "h", window_s=window_s, n_epochs=n_epochs, clock=clock
        )
        return histogram, clock

    def test_window_decays_all_time_persists(self):
        histogram, clock = self.make()
        for v in (10.0, 20.0, 30.0):
            histogram.observe(v)
        assert histogram.window_count() == 3
        assert histogram.window_quantile(0.5) == pytest.approx(20.0, rel=0.1)
        clock.advance(61.0)
        assert histogram.window_count() == 0
        assert histogram.window_quantile(0.5) == 0.0
        # The inherited all-time view never forgets.
        assert histogram.count == 3
        assert histogram.quantile(0.5) == pytest.approx(20.0, rel=0.1)

    def test_partial_decay_keeps_recent_epochs(self):
        histogram, clock = self.make(window_s=60.0, n_epochs=6)
        histogram.observe(100.0)
        clock.advance(30.0)  # 3 of 6 epochs expire under the old value
        histogram.observe(1.0)
        assert histogram.window_count() == 2
        clock.advance(40.0)  # the first observation ages out, not the second
        assert histogram.window_count() == 1
        assert histogram.window_quantile(1.0) == pytest.approx(1.0, rel=0.1)

    def test_long_idle_gap_resets_ring(self):
        histogram, clock = self.make()
        histogram.observe(5.0)
        clock.advance(1e6)
        assert histogram.window_count() == 0
        histogram.observe(7.0)
        assert histogram.window_count() == 1

    def test_exemplars_tail_first_newest_wins(self):
        histogram, clock = self.make()
        histogram.observe(1.0, exemplar="fast-old")
        histogram.observe(1000.0, exemplar="slow")
        clock.advance(15.0)  # next observations land in a newer epoch
        histogram.observe(1.0, exemplar="fast-new")
        exemplars = histogram.window_exemplars()
        assert exemplars[0] == "slow"  # highest bucket = the tail
        assert "fast-new" in exemplars and "fast-old" not in exemplars

    def test_window_snapshot_shape(self):
        histogram, _ = self.make()
        histogram.observe(10.0, exemplar="t1")
        snapshot = histogram.window_snapshot()
        assert snapshot["window_s"] == 60.0
        assert snapshot["count"] == 1
        assert snapshot["rate_per_s"] == pytest.approx(1 / 60.0)
        assert set(snapshot["quantiles"]) == {"p50", "p95", "p99"}
        assert snapshot["exemplars"] == ["t1"]

    def test_registry_snapshot_includes_window(self):
        registry = MetricsRegistry(enabled=True)
        registry.sliding_quantile_histogram("lat", unit="ns").observe(42.0)
        data = registry.snapshot()["histograms"]["lat"]
        assert "window" in data and data["window"]["count"] == 1

    def test_find_histogram_never_creates(self):
        registry = MetricsRegistry(enabled=True)
        assert registry.find_histogram("absent") is None
        registry.sliding_quantile_histogram("present")
        assert registry.find_histogram("present") is not None
        disabled = MetricsRegistry(enabled=False)
        assert disabled.find_histogram("anything") is None
