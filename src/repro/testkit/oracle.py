"""The differential oracle: every execution path, one frontier, pinned ULPs.

The repo evaluates NM/match through several independent implementations:
the scalar reference (:mod:`repro.core.measures`), the batched
:class:`~repro.core.engine.NMEngine`, sharded
:class:`~repro.core.parallel.ParallelNMEngine` workers, cold- and
warm-cache index loads, out-of-core streaming chunks, engines over
``.tjc`` columnar stores (serial and store-span sharded,
:mod:`repro.storage`), and a live
:class:`~repro.serve.server.PatternServer` round-trip.  The paper's
guarantees hold only if they all agree; this module checks that they do,
for a seeded dataset and a seeded candidate frontier, and pins *how much*
they may disagree in ULPs (units in the last place -- the spacing between
adjacent float64 values).

ULP budgets, not tolerances: paths that merely reorder an exact reduction
(shard sums, chunk sums, the per-window scalar max) are allowed a small
float-associativity budget; paths that should be bit-identical (cache
round-trips, the JSON serve round-trip over the same engine) get a budget
of **zero**, so a single flipped mantissa bit fails the check.  A relative
tolerance would hide exactly the class of bug this oracle exists to catch.

Entry points: :func:`run_oracle` (one seed, one report) drives both the
pytest suite (``tests/test_testkit_oracle.py``) and the ``repro
selfcheck`` CLI command.
"""

from __future__ import annotations

import asyncio
import json
import math
import tempfile
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core import kernels, measures
from repro.core.engine import NMEngine
from repro.core.incremental import IncrementalIndexer
from repro.core.parallel import ParallelNMEngine
from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.core.streaming import StreamingNMEngine
from repro.core.trajpattern import TrajPatternMiner
from repro.trajectory.dataset import TrajectoryDataset
from repro.serve import protocol
from repro.serve.server import PatternServer, ServeConfig
from repro.serve.snapshot import ServingSnapshot, SnapshotStore
from repro.storage import open_store, write_store
from repro.testkit.datasets import DEFAULT_SEEDS, OracleSetup, oracle_setup
from repro.trajectory.io import save_dataset_jsonl

__all__ = [
    "DEFAULT_SEEDS",
    "ULP_BUDGETS",
    "PathCheck",
    "OracleReport",
    "candidate_frontier",
    "max_ulps",
    "max_ulps32",
    "run_oracle",
    "ulps_between",
]

#: Maximum allowed ULP distance from the batched-engine baseline, per path.
#:
#: * ``scalar`` re-derives every window max with Python-loop arithmetic in
#:   a different evaluation order than the vectorised engine; the worst
#:   observed disagreement across the default seeds is 64 ULPs, so 4096
#:   (~1e-12 relative) is two orders of magnitude of headroom while still
#:   catching any real divergence.
#: * ``parallel`` and ``streaming`` are exact reductions re-associated
#:   across shards/chunks; observed disagreement is <= 4 ULPs, budget 512.
#: * cache and serve round-trips move bits, not values: zero -- one
#:   flipped mantissa bit anywhere fails the check.
ULP_BUDGETS = {
    "scalar": 4096,
    "parallel": 512,
    "cache-cold": 0,
    "cache-warm": 0,
    "streaming": 512,
    "serve": 0,
    # The columnar store moves bytes, not values: an engine over the
    # store-backed dataset reads back the exact float64 arrays it was
    # written from, so the serial path is bit-identical to the baseline.
    "store": 0,
    # Store-span parallel workers shard the same trajectory boundaries as
    # the shm-backed engine and reduce in the same order, so each width is
    # compared against *its own* in-RAM parallel run -- also bit-identical
    # (the re-association budget already lives on the ``parallel`` paths).
    "store-parallel": 0,
    # The distributed coordinator partitions on the same boundaries and
    # re-uses the parallel tier's merge functions in one flat fold over
    # global span order; the NDJSON wire round-trips float64 exactly
    # (shortest-repr).  Compared against the same-width parallel run:
    # a socket hop must not move a bit, whichever pool computed a span.
    "dist": 0,
    # Kernel-backend paths (``--backends all``).  ``kernel`` covers
    # float64 engines on alternative backends building their *own* index:
    # compiled Prob kernels use libm ``erf`` (<= 2 ULPs from scipy in
    # probability space), which propagates to a handful of float64 ULPs in
    # the final scores; 4096 keeps the scalar path's headroom policy.  The
    # evaluation kernels themselves are bit-identical over a shared index
    # (pinned at 0 ULPs in tests/test_kernels.py, not here).
    "kernel": 4096,
    # Incremental index maintenance splices already-computed entries into
    # already-sorted arrays -- no value is recomputed, so the index after
    # any append/evict sequence must be *bit-identical* to a from-scratch
    # build over the surviving trajectories, and warm-started mining must
    # return the cold run's exact top-k.
    "incremental": 0,
    # ``kernel32`` paths run the evaluation kernels in float32 and are
    # compared in *float32* ULPs against the float64 baseline rounded to
    # float32.  Accumulating ~100-snapshot windows in float32 costs a few
    # float32 ULPs; 1024 (~1e-4 relative) is generous headroom while still
    # catching wrong-kernel bugs (which show up as >1e6 ULPs).
    "kernel32": 1024,
}

#: ULP distance reported for a NaN-vs-number disagreement (worse than any
#: finite budget, so the check always fails).
_ULPS_INCOMPARABLE = 1 << 63


def _ordered(x: float) -> int:
    """Map a float64 onto integers so ULP distance is plain subtraction.

    The IEEE-754 trick: reinterpret the bits as a signed int64; negative
    floats (sign bit set) order backwards, so reflect them with
    ``-2**63 - bits``.  Adjacent floats map to adjacent integers across
    the whole line, and +0.0 / -0.0 both map to 0.  Python ints carry the
    arithmetic, so nothing overflows.
    """
    bits = int(np.float64(x).view(np.int64))
    return bits if bits >= 0 else -(1 << 63) - bits


def ulps_between(a: float, b: float) -> int:
    """ULP distance between two float64 values (0 means bit-identical)."""
    if math.isnan(a) or math.isnan(b):
        return 0 if (math.isnan(a) and math.isnan(b)) else _ULPS_INCOMPARABLE
    return abs(_ordered(float(a)) - _ordered(float(b)))


def max_ulps(a: Sequence[float], b: Sequence[float]) -> int:
    """The worst per-element ULP distance between two equal-length vectors."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return max(
        (ulps_between(float(x), float(y)) for x, y in zip(a, b)), default=0
    )


def _ordered32(x: np.float32) -> int:
    """:func:`_ordered` for float32 (int32 bits, reflected negatives)."""
    bits = int(np.float32(x).view(np.int32))
    return bits if bits >= 0 else -(1 << 31) - bits


def max_ulps32(a: Sequence[float], b: Sequence[float]) -> int:
    """Worst per-element *float32* ULP distance.

    Both vectors are rounded to float32 first; this is the right ruler for
    the ``dtype="float32"`` kernel paths, whose outputs carry float32
    precision however they are transported (a float64 ULP count against a
    float64 baseline would be a meaningless ~1e9).
    """
    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    worst = 0
    for x, y in zip(a, b):
        if np.isnan(x) or np.isnan(y):
            if not (np.isnan(x) and np.isnan(y)):
                return _ULPS_INCOMPARABLE
            continue
        worst = max(worst, abs(_ordered32(x) - _ordered32(y)))
    return worst


# -- frontier -----------------------------------------------------------------


def candidate_frontier(
    engine: NMEngine, seed: int, n_patterns: int
) -> list[TrajectoryPattern]:
    """A seeded candidate frontier over the engine's active alphabet.

    Mixes every pattern shape the paths must agree on: singulars (the
    miner's level 1), seeded multi-cell candidates of lengths 2-4 (level-k
    extensions, including repeated cells), and a few wildcard-bearing
    patterns (the serve protocol admits ``-1`` positions, so the oracle
    must too).
    """
    rng = np.random.default_rng(seed * 7919 + 1)
    cells = [int(c) for c in engine.active_cells]
    if not cells:
        raise ValueError("engine has no active cells; dataset/grid mismatch")
    frontier = [TrajectoryPattern((c,)) for c in cells[: max(4, n_patterns // 3)]]
    while len(frontier) < n_patterns:
        length = int(rng.integers(2, 5))
        chosen = [int(c) for c in rng.choice(cells, size=length)]
        if length >= 3 and rng.random() < 0.25:
            chosen[length // 2] = WILDCARD
        frontier.append(TrajectoryPattern(tuple(chosen)))
    return frontier[:n_patterns]


# -- report types -------------------------------------------------------------


@dataclass(frozen=True)
class PathCheck:
    """Agreement of one execution path against the batched baseline.

    ``skipped`` marks a path that could not run on this machine (e.g. the
    compiled backend without a toolchain): it counts as passing but is
    reported loudly with the reason in ``detail`` -- a skip is a notice,
    never a silent pass.
    """

    path: str
    budget_ulps: int
    nm_ulps: int
    match_ulps: int
    detail: str = ""
    skipped: bool = False

    @property
    def ok(self) -> bool:
        if self.skipped:
            return True
        return self.nm_ulps <= self.budget_ulps and self.match_ulps <= self.budget_ulps

    def describe(self) -> str:
        if self.skipped:
            return (
                f"SKIP {self.path:<12s} not run"
                + (f" [{self.detail}]" if self.detail else "")
            )
        status = "ok" if self.ok else "FAIL"
        return (
            f"{status:4s} {self.path:<12s} nm={self.nm_ulps} "
            f"match={self.match_ulps} (budget {self.budget_ulps} ulps)"
            + (f" [{self.detail}]" if self.detail else "")
        )


@dataclass(frozen=True)
class OracleReport:
    """Every path's agreement for one seeded scenario."""

    seed: int
    regime: str
    n_trajectories: int
    n_patterns: int
    checks: tuple[PathCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def describe(self) -> str:
        head = (
            f"seed {self.seed} ({self.regime}): {self.n_trajectories} "
            f"trajectories, {self.n_patterns} candidates"
        )
        return "\n".join([head] + [f"  {c.describe()}" for c in self.checks])


# -- the oracle ---------------------------------------------------------------


def run_oracle(
    seed: int,
    *,
    quick: bool = False,
    jobs_grid: Sequence[int] = (1, 2, 4),
    include_serve: bool = True,
    include_dist: bool = False,
    work_dir: str | Path | None = None,
    budgets: dict[str, int] | None = None,
    backends: str = "default",
) -> OracleReport:
    """Evaluate one seeded frontier through every path and report agreement.

    ``work_dir`` hosts the cache directory and the streaming JSONL file; a
    temporary directory is used (and removed) when it is ``None``.
    ``include_serve=False`` skips the live-server round-trip (the one path
    needing an event loop), for callers already inside one.

    ``include_dist=True`` adds the distributed coordinator paths
    (``repro selfcheck --dist``): for each width in ``jobs_grid`` a
    :class:`~repro.dist.coordinator.DistNMEngine` mixing one local fork
    pool with one loopback socket worker pool scores the frontier,
    compared bit-for-bit against the same-width in-RAM parallel run.

    ``backends="all"`` additionally scores the frontier on every kernel
    backend x dtype combination (``repro selfcheck --backends all``):
    ``kernel[...]`` paths for float64 engines on non-default backends and
    ``kernel32[...]`` paths for float32 engines, the latter judged in
    float32 ULPs.  Combinations the machine cannot run (no compiled
    toolchain) are reported as explicit skips, never silently dropped.
    """
    if backends not in ("default", "all"):
        raise ValueError(
            f"backends must be 'default' or 'all', got {backends!r}"
        )
    budgets = {**ULP_BUDGETS, **(budgets or {})}
    setup = oracle_setup(seed, quick=quick)
    baseline = NMEngine(setup.dataset, setup.grid, setup.config)
    frontier = candidate_frontier(baseline, seed, 12 if quick else 36)
    nm_ref = np.asarray(baseline.nm_batch(frontier), dtype=np.float64)
    match_ref = np.asarray(baseline.match_batch(frontier), dtype=np.float64)
    if not (np.isfinite(nm_ref).all() and np.isfinite(match_ref).all()):
        raise RuntimeError(f"seed {seed}: baseline produced non-finite scores")

    def check(path: str, nm, match, detail: str = "") -> PathCheck:
        budget = budgets[path.split("[")[0]]
        return PathCheck(
            path=path,
            budget_ulps=budget,
            nm_ulps=max_ulps(nm_ref, nm),
            match_ulps=max_ulps(match_ref, match),
            detail=detail,
        )

    checks: list[PathCheck] = []

    # Path 1: the scalar reference, straight off the paper's equations.
    cfg = setup.config
    scalar_kwargs = dict(
        model=cfg.prob_model, min_log_prob=cfg.min_log_prob
    )
    nm_scalar = [
        measures.nm_pattern_dataset(
            p, setup.dataset, setup.grid, cfg.delta, **scalar_kwargs
        )
        for p in frontier
    ]
    match_scalar = [
        measures.match_pattern_dataset(
            p, setup.dataset, setup.grid, cfg.delta, **scalar_kwargs
        )
        for p in frontier
    ]
    checks.append(check("scalar", nm_scalar, match_scalar))

    with tempfile.TemporaryDirectory(prefix="repro-oracle-") as tmp:
        work = Path(work_dir) if work_dir is not None else Path(tmp)
        work.mkdir(parents=True, exist_ok=True)

        # Paths 2+3: cold cache (build + persist), then warm (pure load).
        cached_cfg = replace(cfg, cache_dir=str(work / "cache"))
        cold = NMEngine(setup.dataset, setup.grid, cached_cfg)
        checks.append(
            check(
                "cache-cold",
                cold.nm_batch(frontier),
                cold.match_batch(frontier),
                detail="hit" if cold.index_cache_hit else "build+persist",
            )
        )
        warm = NMEngine(setup.dataset, setup.grid, cached_cfg)
        detail = "hit" if warm.index_cache_hit else "UNEXPECTED MISS"
        checks.append(
            check(
                "cache-warm",
                warm.nm_batch(frontier),
                warm.match_batch(frontier),
                detail=detail,
            )
        )
        if not warm.index_cache_hit:
            checks[-1] = replace(checks[-1], nm_ulps=_ULPS_INCOMPARABLE)

        # Path 4: sharded workers at every requested width.  Results are
        # kept per width: the store-parallel paths below compare against
        # the *same-width* in-RAM run, where agreement is exact.
        par_results: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for jobs in jobs_grid:
            with ParallelNMEngine(setup.dataset, setup.grid, cfg, jobs=jobs) as par:
                nm_par = np.asarray(par.nm_batch(frontier), dtype=np.float64)
                match_par = np.asarray(par.match_batch(frontier), dtype=np.float64)
                par_results[jobs] = (nm_par, match_par)
                checks.append(
                    check(
                        f"parallel[{jobs}]",
                        nm_par,
                        match_par,
                        detail=f"{par.n_shards} shards",
                    )
                )

        # Path 5: out-of-core streaming, forced through multiple chunks.
        stream_path = work / "oracle-dataset.jsonl"
        save_dataset_jsonl(setup.dataset, stream_path)
        chunk_size = max(1, len(setup.dataset) // 3)
        stream = StreamingNMEngine(stream_path, setup.grid, cfg, chunk_size=chunk_size)
        checks.append(
            check(
                "streaming",
                stream.nm_many(frontier),
                stream.match_many(frontier),
                detail=f"{stream.n_chunks_scanned} chunks",
            )
        )

        # Path 5b: incremental index maintenance.  Build over a prefix,
        # fold the remaining trajectories in as two report waves, evict the
        # oldest -- the live engine must agree with a from-scratch build of
        # the surviving dataset bit-for-bit (budget 0), and the flat arrays
        # themselves must be identical.  The frontier is scored on both
        # engines directly (nm_ref covers the *full* dataset, not this one).
        trajs = list(setup.dataset)
        n_base = max(2, len(trajs) - 4)
        n_evict = min(2, n_base - 1)
        base_dataset = TrajectoryDataset(trajs[:n_base])
        indexer = IncrementalIndexer(NMEngine(base_dataset, setup.grid, cfg))
        wave_split = n_base + (len(trajs) - n_base) // 2
        indexer.append(trajs[n_base:wave_split])
        indexer.append(trajs[wave_split:])
        indexer.evict(n_evict)
        live = indexer.engine
        final_dataset = TrajectoryDataset(trajs[n_evict:])
        fresh = NMEngine(final_dataset, setup.grid, cfg)
        arrays_equal = all(
            np.array_equal(a, b)
            for a, b in zip(live.index_arrays(), fresh.index_arrays())
        )
        inc_check = PathCheck(
            path="incremental",
            budget_ulps=budgets["incremental"],
            nm_ulps=max_ulps(fresh.nm_batch(frontier), live.nm_batch(frontier)),
            match_ulps=max_ulps(
                fresh.match_batch(frontier), live.match_batch(frontier)
            ),
            detail=(
                f"{indexer.appends} appends + {n_evict} evicted; arrays "
                + ("identical" if arrays_equal else "DIVERGED")
            ),
        )
        if not arrays_equal:
            inc_check = replace(inc_check, nm_ulps=_ULPS_INCOMPARABLE)
        checks.append(inc_check)

        # Path 5c: warm-started mining over the incremental engine must
        # return exactly the cold top-k (patterns and NM values) over the
        # same final dataset -- seeding only raises the starting threshold.
        mine_k = 4
        previous = TrajPatternMiner(
            NMEngine(base_dataset, setup.grid, cfg), k=mine_k
        ).mine()
        warm_run = TrajPatternMiner(
            live, k=mine_k, warm_state=previous.warm_state
        ).mine()
        cold_run = TrajPatternMiner(fresh, k=mine_k).mine()
        warm_pairs = [(p.cells, nm) for p, nm in warm_run.as_pairs()]
        cold_pairs = [(p.cells, nm) for p, nm in cold_run.as_pairs()]
        identical = warm_pairs == cold_pairs
        checks.append(
            PathCheck(
                path="incremental[warm-mine]",
                budget_ulps=budgets["incremental"],
                nm_ulps=0 if identical else _ULPS_INCOMPARABLE,
                match_ulps=0,
                detail=(
                    f"warm {warm_run.stats.iterations} vs cold "
                    f"{cold_run.stats.iterations} iterations, "
                    f"{len(previous.warm_state)} seeds"
                    if identical
                    else "top-k DIVERGED"
                ),
            )
        )

        # Paths 6+7: the columnar store.  Writing the dataset to a ``.tjc``
        # file and evaluating over the store-backed (lazy, memory-mapped)
        # dataset must not move a bit; store-*span* parallel workers (no
        # /dev/shm copies) must agree bit-for-bit with the shm-backed
        # parallel engine of the same width.
        store_file = work / "oracle-dataset.tjc"
        write_store(setup.dataset, store_file)
        with open_store(store_file) as store:
            store_dataset = store.dataset()
            store_engine = NMEngine(store_dataset, setup.grid, cfg)
            checks.append(
                check(
                    "store",
                    store_engine.nm_batch(frontier),
                    store_engine.match_batch(frontier),
                    detail=f"{store.positions}/{store.compression}",
                )
            )
            for jobs in jobs_grid:
                with ParallelNMEngine(
                    store_dataset, setup.grid, cfg, jobs=jobs
                ) as spar:
                    nm_ram, match_ram = par_results[jobs]
                    checks.append(
                        PathCheck(
                            path=f"store-parallel[{jobs}]",
                            budget_ulps=budgets["store-parallel"],
                            nm_ulps=max_ulps(nm_ram, spar.nm_batch(frontier)),
                            match_ulps=max_ulps(
                                match_ram, spar.match_batch(frontier)
                            ),
                            detail=f"{spar.n_shards} spans vs parallel[{jobs}]",
                        )
                    )

            # Path 8 (``--dist``): the distributed coordinator over mixed
            # pools -- one local fork pool plus one socket worker pool on
            # loopback -- at every width, against the same-width in-RAM
            # parallel run.  The coordinator shards on the same trajectory
            # boundaries and folds per-span results in the same global
            # order, so a socket in the middle must not move a bit.
            if include_dist:
                from repro.dist.coordinator import DistNMEngine
                from repro.dist.worker import WorkerPoolConfig, WorkerPoolServer

                with WorkerPoolServer(
                    WorkerPoolConfig(store_path=str(store_file), name="oracle")
                ) as pool_server:
                    pool = f"{pool_server.config.host}:{pool_server.port}"
                    for jobs in jobs_grid:
                        with DistNMEngine(
                            store_dataset,
                            setup.grid,
                            cfg,
                            pools=["local", pool],
                            jobs=jobs,
                        ) as dist_engine:
                            nm_ram, match_ram = par_results[jobs]
                            checks.append(
                                PathCheck(
                                    path=f"dist[{jobs}]",
                                    budget_ulps=budgets["dist"],
                                    nm_ulps=max_ulps(
                                        nm_ram, dist_engine.nm_batch(frontier)
                                    ),
                                    match_ulps=max_ulps(
                                        match_ram,
                                        dist_engine.match_batch(frontier),
                                    ),
                                    detail=(
                                        f"{len(dist_engine.pool_names)} pools"
                                        f" vs parallel[{jobs}]"
                                    ),
                                )
                            )

    # Path 6: every kernel backend x dtype combination beyond the numpy
    # float64 baseline.  Each engine builds its own index (so a compiled
    # combination also exercises its Prob kernel); float32 paths are judged
    # in float32 ULPs.  Unavailable combinations become explicit skips.
    if backends == "all":
        unavailable = kernels.compiled_unavailable_reason()
        for backend_name in ("numpy", "compiled"):
            for dt in ("float64", "float32"):
                if backend_name == "numpy" and dt == "float64":
                    continue  # the baseline itself
                if backend_name == "compiled" and unavailable is not None:
                    checks.append(
                        PathCheck(
                            path=f"kernel[compiled-{dt}]",
                            budget_ulps=0,
                            nm_ulps=0,
                            match_ulps=0,
                            detail=unavailable,
                            skipped=True,
                        )
                    )
                    continue
                eng = NMEngine(
                    setup.dataset,
                    setup.grid,
                    replace(cfg, backend=backend_name, dtype=dt),
                )
                nm_k = eng.nm_batch(frontier)
                match_k = eng.match_batch(frontier)
                if dt == "float32":
                    path = f"kernel32[{eng.backend_name}]"
                    checks.append(
                        PathCheck(
                            path=path,
                            budget_ulps=budgets["kernel32"],
                            nm_ulps=max_ulps32(nm_ref, nm_k),
                            match_ulps=max_ulps32(match_ref, match_k),
                            detail="float32 ulps",
                        )
                    )
                else:
                    checks.append(
                        check(f"kernel[{eng.backend_name}]", nm_k, match_k)
                    )

    # Path 7: a live server round-trip over the baseline engine -- isolates
    # the protocol + batcher + JSON layers, which must not move a bit.
    if include_serve:
        nm_serve, match_serve = _serve_roundtrip(setup, baseline, frontier)
        checks.append(check("serve", nm_serve, match_serve))

    return OracleReport(
        seed=seed,
        regime=setup.regime,
        n_trajectories=len(setup.dataset),
        n_patterns=len(frontier),
        checks=tuple(checks),
    )


def _serve_roundtrip(
    setup: OracleSetup, engine: NMEngine, frontier: Sequence[TrajectoryPattern]
) -> tuple[np.ndarray, np.ndarray]:
    """Score the frontier through a real socket against a live server.

    The snapshot wraps the *baseline* engine, so any disagreement is
    attributable to the serving stack alone (admission, batching, JSON
    encode/decode) -- and JSON round-trips float64 exactly (shortest-repr),
    so the budget is zero.
    """
    snapshot = ServingSnapshot(
        f"oracle-{setup.seed}", setup.dataset, setup.grid, engine
    )

    async def go() -> tuple[np.ndarray, np.ndarray]:
        server = PatternServer(
            SnapshotStore(snapshot), ServeConfig(default_timeout_ms=None)
        )
        host, port = await server.start()
        try:
            reader, writer = await asyncio.open_connection(host, port)
            cells = [[int(c) for c in p.cells] for p in frontier]
            for measure in ("nm", "match"):
                writer.write(
                    protocol.encode(
                        {
                            "op": "score",
                            "id": measure,
                            "measure": measure,
                            "patterns": cells,
                        }
                    )
                )
            await writer.drain()
            values: dict[str, np.ndarray] = {}
            for _ in range(2):
                line = await reader.readline()
                response = json.loads(line)
                if not response.get("ok"):
                    raise RuntimeError(f"serve path failed: {response}")
                values[response["id"]] = np.asarray(
                    response["values"], dtype=np.float64
                )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            return values["nm"], values["match"]
        finally:
            await server.stop()

    return asyncio.run(go())
