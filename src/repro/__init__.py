"""repro: a full reproduction of TrajPattern (Yang & Hu, EDBT 2006).

Mining sequential patterns from imprecise trajectories of mobile objects.

Public API highlights
---------------------
* :class:`repro.trajectory.UncertainTrajectory`, :class:`repro.trajectory.TrajectoryDataset`
* :class:`repro.geometry.Grid`
* :class:`repro.core.NMEngine`, :class:`repro.core.TrajPatternMiner`
* :func:`repro.core.discover_pattern_groups`
* baselines in :mod:`repro.baselines`, mobility simulation in
  :mod:`repro.mobility`, data generators in :mod:`repro.datagen`,
  applications in :mod:`repro.apps` and the paper's experiments in
  :mod:`repro.experiments`.
"""

from repro.core.engine import EngineConfig, NMEngine, build_engine
from repro.core.parallel import ParallelNMEngine
from repro.core.groups import PatternGroup, discover_pattern_groups
from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.core.parameters import SuggestedParameters, suggest_parameters
from repro.core.results_io import load_mining_result, save_mining_result
from repro.core.wildcards import Gap, GapPattern
from repro.core.trajpattern import MiningResult, TrajPatternMiner
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.geometry.point import Point
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory
from repro.trajectory.velocity import to_velocity_dataset, to_velocity_trajectory
from repro.uncertainty.gaussian import ProbModel

__version__ = "1.0.0"

__all__ = [
    "UncertainTrajectory",
    "TrajectoryDataset",
    "to_velocity_trajectory",
    "to_velocity_dataset",
    "Point",
    "BoundingBox",
    "Grid",
    "ProbModel",
    "EngineConfig",
    "NMEngine",
    "ParallelNMEngine",
    "build_engine",
    "TrajectoryPattern",
    "WILDCARD",
    "Gap",
    "GapPattern",
    "SuggestedParameters",
    "suggest_parameters",
    "save_mining_result",
    "load_mining_result",
    "TrajPatternMiner",
    "MiningResult",
    "PatternGroup",
    "discover_pattern_groups",
    "__version__",
]
