"""Store-span parallel mining: same bits as /dev/shm sharding, no copies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.engine import EngineConfig, NMEngine
from repro.core.parallel import ParallelNMEngine
from repro.core.pattern import TrajectoryPattern
from repro.storage import open_store, write_store
from repro.testkit.datasets import seeded_dataset


@pytest.fixture(scope="module")
def eager():
    return seeded_dataset(9, n_trajectories=13, n_ticks=26)


@pytest.fixture(scope="module")
def setup(eager, tmp_path_factory):
    path = write_store(eager, tmp_path_factory.mktemp("store") / "d.tjc")
    grid = eager.make_grid(0.1)
    config = EngineConfig(delta=0.08, min_prob=1e-6)
    serial = NMEngine(eager, grid, config)
    cells = serial.active_cells
    patterns = [TrajectoryPattern((c,)) for c in cells[:5]] + [
        TrajectoryPattern((cells[0], cells[1])),
        TrajectoryPattern((cells[2], cells[0], cells[1])),
    ]
    return path, grid, config, serial, patterns


@pytest.mark.parametrize("jobs", [2, 3])
class TestStoreSpanParallel:
    def test_bit_identical_to_shm_parallel(self, eager, setup, jobs):
        path, grid, config, _, patterns = setup
        with open_store(path) as store:
            with ParallelNMEngine(store.dataset(), grid, config, jobs=jobs) as spans, \
                    ParallelNMEngine(eager, grid, config, jobs=jobs) as shm:
                assert spans.n_shards == shm.n_shards
                assert np.array_equal(spans.nm_batch(patterns), shm.nm_batch(patterns))
                assert np.array_equal(
                    spans.match_batch(patterns), shm.match_batch(patterns)
                )
                assert spans.active_cells == shm.active_cells

    def test_matches_serial_engine(self, setup, jobs):
        path, grid, config, serial, patterns = setup
        with open_store(path) as store:
            with ParallelNMEngine(store.dataset(), grid, config, jobs=jobs) as spans:
                nm_serial = serial.nm_batch(patterns)
                nm_spans = spans.nm_batch(patterns)
                # shard-summed reductions may reassociate; allow only
                # nextafter-level drift (the oracle holds this at 0 ULP for
                # identical shard layouts, but serial is a single sum).
                np.testing.assert_allclose(nm_spans, nm_serial, rtol=1e-12)


class TestSpanPlumbing:
    def test_workers_receive_spans_not_shm(self, setup):
        path, grid, config, _, _ = setup
        with open_store(path) as store:
            with ParallelNMEngine(store.dataset(), grid, config, jobs=2) as spans:
                # store-backed datasets skip /dev/shm entirely
                assert spans._own_shm == [] or all(
                    s is None for s in spans._own_shm
                )

    def test_partial_span_parallel(self, eager, setup):
        path, grid, config, _, _ = setup
        with open_store(path) as store:
            span = store.span(3, 11)
            sub_cells = NMEngine(span, grid, config).active_cells
            patterns = [TrajectoryPattern((c,)) for c in sub_cells[:4]]
            with ParallelNMEngine(span, grid, config, jobs=2) as par:
                sub = eager.subset(range(3, 11))
                with ParallelNMEngine(sub, grid, config, jobs=2) as shm:
                    assert np.array_equal(
                        par.nm_batch(patterns), shm.nm_batch(patterns)
                    )
