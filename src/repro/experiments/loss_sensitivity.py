"""A4: sensitivity to uplink loss and the confidence constant c (section 3.1).

Section 3.1 motivates the confidence constant: with a 5% message-loss
probability, ``c`` should be 2, so that the chance the object is more than
``U`` from the prediction matches the loss rate.  This extra experiment
quantifies the protocol's behaviour across loss rates: how many uplink
attempts are lost-and-retried, how tracking error degrades, and whether
the mining input stays usable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.bus import BusFleetConfig, BusFleetGenerator
from repro.mobility.models import LinearModel
from repro.mobility.reporting import ReportingConfig
from repro.mobility.server import track_fleet


@dataclass(frozen=True)
class LossSensitivityConfig:
    """Sweep parameters."""

    uncertainty: float = 0.01
    confidence_c: float = 2.0
    loss_rates: tuple[float, ...] = (0.0, 0.05, 0.2, 0.5)
    fleet: BusFleetConfig = BusFleetConfig(
        n_routes=2, buses_per_route=3, n_days=2, n_ticks=60
    )
    seed: int = 11


@dataclass
class LossSensitivityRow:
    """One loss-rate point."""

    p_loss: float
    attempts: int
    lost: int
    mean_tracking_error: float


@dataclass
class LossSensitivityResult:
    rows: list[LossSensitivityRow] = field(default_factory=list)

    def render(self) -> str:
        lines = [
            "A4: dead-reckoning sensitivity to uplink loss (section 3.1)",
            f"{'p_loss':>8}{'attempts':>10}{'lost':>8}{'mean err':>12}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.p_loss:>8.2f}{row.attempts:>10}{row.lost:>8}"
                f"{row.mean_tracking_error:>12.5f}"
            )
        return "\n".join(lines)


def run_loss_sensitivity(
    config: LossSensitivityConfig = LossSensitivityConfig(),
) -> LossSensitivityResult:
    """Track one fleet under increasing uplink loss and compare."""
    paths = BusFleetGenerator(config.fleet).generate_paths(
        np.random.default_rng(config.seed)
    )
    result = LossSensitivityResult()
    for p_loss in config.loss_rates:
        reporting = ReportingConfig(
            uncertainty=config.uncertainty,
            confidence_c=config.confidence_c,
            p_loss=p_loss,
        )
        tracked = track_fleet(
            paths,
            LinearModel,
            reporting,
            rng=np.random.default_rng(config.seed + 1),
        )
        attempts = tracked.total_mispredictions
        lost = sum(log.n_lost for log in tracked.logs)
        errors = [
            float(
                np.hypot(*(log.estimates - path.positions).T).mean()
            )
            for log, path in zip(tracked.logs, paths)
        ]
        result.rows.append(
            LossSensitivityRow(
                p_loss=p_loss,
                attempts=attempts,
                lost=lost,
                mean_tracking_error=float(np.mean(errors)),
            )
        )
    return result
