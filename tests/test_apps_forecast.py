"""Tests for the location forecaster and pre-allocation (intro use-cases)."""

import numpy as np
import pytest

from repro.apps.forecast import (
    CellForecast,
    LocationForecaster,
    coverage_allocation,
    forecast_hit_rate,
)
from repro.core.pattern import TrajectoryPattern
from repro.geometry.bbox import BoundingBox
from repro.geometry.grid import Grid
from repro.trajectory.trajectory import UncertainTrajectory

GRID = Grid(BoundingBox.unit(), nx=10, ny=10)
DELTA = 0.1


def center(cell):
    return GRID.cell_center(cell).as_tuple()


@pytest.fixture
def corridor_patterns():
    """Two patterns sharing the prefix (0, 1): continue to 2 or to 11."""
    return [
        TrajectoryPattern((0, 1, 2)),
        TrajectoryPattern((0, 1, 11)),
        TrajectoryPattern((55, 56, 57)),  # unrelated corridor
    ]


@pytest.fixture
def forecaster(corridor_patterns):
    return LocationForecaster(corridor_patterns, GRID, DELTA)


class TestValidation:
    def test_bad_parameters(self, corridor_patterns):
        with pytest.raises(ValueError):
            LocationForecaster(corridor_patterns, GRID, DELTA, confirm_threshold=0.0)
        with pytest.raises(ValueError):
            LocationForecaster(corridor_patterns, GRID, DELTA, min_prefix=0)
        with pytest.raises(ValueError):
            LocationForecaster(
                corridor_patterns, GRID, DELTA, confirm_sigma_factor=0.0
            )

    def test_short_patterns_dropped(self):
        forecaster = LocationForecaster(
            [TrajectoryPattern((0, 1))], GRID, DELTA, min_prefix=2
        )
        assert len(forecaster) == 0


class TestForecast:
    def test_matching_history_votes_both_continuations(self, forecaster):
        history = np.array([center(0), center(1)])
        forecast = forecaster.forecast(history, sigma=0.03)
        cells = {f.cell for f in forecast}
        assert cells == {2, 11}
        assert sum(f.probability for f in forecast) == pytest.approx(1.0)
        # Equal evidence: both continuations share the mass.
        assert forecast[0].probability == pytest.approx(0.5, abs=0.05)

    def test_unrelated_history_is_silent(self, forecaster):
        history = np.array([center(90), center(91)])
        assert forecaster.forecast(history, sigma=0.03) == []

    def test_history_too_short(self, forecaster):
        assert forecaster.forecast(np.array([center(0)]), sigma=0.03) == []

    def test_sorted_by_probability(self):
        """Three patterns continue to cell 2, one to cell 11: 2 wins."""
        patterns = [
            TrajectoryPattern((0, 1, 2)),
            TrajectoryPattern((0, 1, 2, 3)),
            TrajectoryPattern((9, 0, 1, 2)),
            TrajectoryPattern((0, 1, 11)),
        ]
        forecaster = LocationForecaster(patterns, GRID, DELTA)
        history = np.array([center(0), center(1)])
        forecast = forecaster.forecast(history, sigma=0.03)
        assert forecast[0].cell == 2
        assert forecast[0].probability > forecast[-1].probability


class TestCoverageAllocation:
    def test_validation(self):
        with pytest.raises(ValueError):
            coverage_allocation([], coverage=0.0)

    def test_empty_forecast_empty_allocation(self):
        assert coverage_allocation([], coverage=0.9) == []

    def test_takes_smallest_prefix(self):
        forecast = [
            CellForecast(1, 0.6),
            CellForecast(2, 0.3),
            CellForecast(3, 0.1),
        ]
        assert coverage_allocation(forecast, coverage=0.5) == [1]
        assert coverage_allocation(forecast, coverage=0.7) == [1, 2]
        assert coverage_allocation(forecast, coverage=1.0) == [1, 2, 3]


class TestHitRate:
    def test_perfect_on_pattern_following_data(self, rng):
        """Objects literally walking a pattern's cells get forecast
        correctly at every fired snapshot."""
        pattern = TrajectoryPattern((0, 1, 2, 3, 4))
        forecaster = LocationForecaster([pattern], GRID, DELTA)
        means = GRID.cell_centers(list(pattern.cells)).copy()
        means = means + rng.normal(0, 0.002, means.shape)
        trajectory = UncertainTrajectory(means, 0.02)
        hit_rate, fire_rate = forecast_hit_rate(forecaster, [trajectory])
        assert fire_rate > 0
        assert hit_rate == 1.0

    def test_silent_forecaster_zero_fire_rate(self, rng):
        forecaster = LocationForecaster(
            [TrajectoryPattern((97, 98, 99))], GRID, DELTA
        )
        trajectory = UncertainTrajectory(
            rng.uniform(0.0, 0.3, (10, 2)), 0.02
        )
        hit_rate, fire_rate = forecast_hit_rate(forecaster, [trajectory])
        assert fire_rate == 0.0
        assert hit_rate == 0.0
