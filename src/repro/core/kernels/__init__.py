"""Pluggable numeric kernel backends behind the NM engine's hot loops.

The engine's measured hot loops -- the deviation gather/sort/segment-reduce
behind ``nm_batch``/``match_batch``, the stacked window-score scatter, the
per-segment maxima sweep, the chunked ``prob_within`` evaluation of index
construction, and the wildcard gap DP -- are isolated behind the narrow
:class:`KernelBackend` protocol.  Everything else in the engine is
orchestration and stays numpy.

Backends
--------
``numpy``
    The reference implementation (:mod:`repro.core.kernels.numpy_ref`);
    ground truth for the differential oracle.
``compiled``
    Tight native loops (:mod:`repro.core.kernels.compiled`): numba
    ``@njit(cache=True)`` when numba is importable, else a small C library
    built once with the system compiler and driven through ``ctypes``.
    When neither toolchain works the registry degrades to ``numpy`` and
    logs a structured warning.
``auto``
    ``compiled`` when available, else ``numpy`` -- silently (debug log).

Selection is config-driven end to end: ``EngineConfig(backend=...,
dtype=...)``, CLI ``--backend/--dtype``, the ``serve.json`` snapshot
fields, and the obs manifest record what actually ran.  The environment
variable ``REPRO_KERNELS`` overrides provider choice for operational
escape hatches: ``numba`` / ``cnative`` force one provider, ``none``
disables compiled kernels entirely (useful to assert the fallback path).

Precision modes
---------------
``dtype="float32"`` stores the flat index values (and runs the evaluation
kernels) in float32; the index is always *built* in float64 and cached in
float64, so the cache is dtype-independent and a float32 engine warm-starts
from a float64-built file.  API outputs remain float64.  See
``docs/KERNELS.md`` for the ULP policy.
"""

from __future__ import annotations

import os
from typing import Protocol, runtime_checkable

import numpy as np

from repro.obs import logs
from repro.core.kernels.arena import ScratchArena
from repro.core.kernels.numpy_ref import NumpyKernels
from repro.uncertainty.gaussian import ProbModel

__all__ = [
    "BACKEND_CHOICES",
    "DTYPE_CHOICES",
    "KernelBackend",
    "NumpyKernels",
    "ScratchArena",
    "available_backends",
    "backend_summary",
    "compiled_unavailable_reason",
    "prob_kernel_tag",
    "resolve_backend",
]

_log = logs.get_logger("kernels")

#: Values accepted by ``EngineConfig.backend`` / ``--backend``.
BACKEND_CHOICES = ("numpy", "compiled", "auto")
#: Values accepted by ``EngineConfig.dtype`` / ``--dtype``.
DTYPE_CHOICES = ("float64", "float32")


@runtime_checkable
class KernelBackend(Protocol):
    """The narrow surface a backend must implement.

    Array arguments follow the engine's flat-index layout: ``start`` /
    ``count`` are dense per-cell entry bounds, ``rows`` / ``vals`` the
    entry arrays sorted by (cell, row), ``floor`` the log-space floor and
    ``win_traj`` the owning trajectory of each global row.  ``arena`` is
    the calling engine's :class:`ScratchArena`; implementations draw any
    per-call scratch from it so steady-state calls allocate nothing.
    """

    name: str        #: resolved implementation ("numpy", "numba", "cnative")
    provider: str    #: toolchain behind it (same as name today)
    dtype: np.dtype  #: value dtype the evaluation kernels run in
    compiled: bool   #: True for native implementations
    prob_tag: str    #: identity of the Prob kernel ("ref" = scipy erf)

    def batch_devmax(self, cells_matrix, start, count, rows, vals, floor,
                     valid, n_windows, win_traj, arena, out) -> None:
        """Max summed window deviation per (pattern, trajectory) into ``out``."""

    def stacked_scores(self, cells_matrix, n_spec, start, count, rows, vals,
                       floor, n_windows, out) -> None:
        """Unmasked window log-sums of equal-length patterns into ``out``."""

    def segment_maxima(self, vals, seg_starts) -> np.ndarray:
        """Max entry per (cell, trajectory) segment."""

    def prob_within(self, mean, sigma, center, delta,
                    model: ProbModel = ProbModel.BOX, out=None) -> np.ndarray:
        """``Prob(l, sigma, p, delta)`` over (n, 2) pair arrays (float64)."""

    def gap_dp(self, seg_scores, seg_lens, gap_mins, gap_maxs,
               length: int, arena) -> float:
        """Best summed log-prob over admissible gap alignments, or ``-inf``."""


# -- provider resolution ------------------------------------------------------

#: Cached (provider | None, unavailable-reason | None) per REPRO_KERNELS value.
_provider_state: dict[str, tuple[object | None, str | None]] = {}
#: Cached backend instances keyed by (resolved name, dtype).
_instances: dict[tuple[str, str], KernelBackend] = {}


def _forced() -> str:
    return os.environ.get("REPRO_KERNELS", "").strip().lower()


def _load_provider_state(forced: str) -> tuple[object | None, str | None]:
    if forced == "none":
        return None, "disabled via REPRO_KERNELS=none"
    from repro.core.kernels import compiled

    if forced and forced not in compiled.PROVIDER_CHOICES:
        return None, (
            f"unknown REPRO_KERNELS value {forced!r} "
            f"(expected one of {('none',) + compiled.PROVIDER_CHOICES})"
        )
    candidates = (forced,) if forced else compiled.PROVIDER_CHOICES
    reasons = []
    for name in candidates:
        try:
            provider = compiled.load_provider(name)
        except Exception as exc:  # toolchain probing: any failure is a reason
            reasons.append(f"{name}: {exc}")
        else:
            _log.debug(
                "compiled kernel provider ready", extra={"provider": name}
            )
            return provider, None
    return None, "; ".join(reasons)


def _provider() -> tuple[object | None, str | None]:
    forced = _forced()
    state = _provider_state.get(forced)
    if state is None:
        state = _load_provider_state(forced)
        _provider_state[forced] = state
    return state


def compiled_unavailable_reason() -> str | None:
    """Why the compiled backend cannot run here, or ``None`` if it can."""
    provider, reason = _provider()
    return None if provider is not None else (reason or "unavailable")


def available_backends() -> list[str]:
    """Backend names that resolve to themselves on this machine."""
    out = ["numpy"]
    if _provider()[0] is not None:
        out.append("compiled")
    return out


def resolve_backend(backend: str, dtype: str = "float64") -> KernelBackend:
    """The backend instance a config ``(backend, dtype)`` pair runs on.

    ``"compiled"`` degrades to numpy with a structured warning when no
    native provider is available; ``"auto"`` degrades silently.  Instances
    are cached per (implementation, dtype), so resolution is cheap enough
    to call per engine construction (including inside forked workers,
    where it naturally re-resolves against the worker's own process).
    """
    if backend not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown kernel backend {backend!r} (expected one of {BACKEND_CHOICES})"
        )
    if dtype not in DTYPE_CHOICES:
        raise ValueError(
            f"unknown kernel dtype {dtype!r} (expected one of {DTYPE_CHOICES})"
        )
    if backend == "numpy":
        return _instance("numpy", dtype)
    provider, reason = _provider()
    if provider is None:
        if backend == "compiled":
            _log.warning(
                "compiled kernel backend unavailable; falling back to numpy",
                extra={"requested": backend, "dtype": dtype, "reason": reason},
            )
        else:
            _log.debug(
                "auto backend resolved to numpy",
                extra={"dtype": dtype, "reason": reason},
            )
        return _instance("numpy", dtype)
    return _instance(provider.name, dtype, provider)


def _instance(name: str, dtype: str, provider=None) -> KernelBackend:
    key = (name, dtype)
    inst = _instances.get(key)
    if inst is None:
        if name == "numpy":
            inst = NumpyKernels(dtype)
        else:
            from repro.core.kernels.compiled import CompiledKernels

            inst = CompiledKernels(provider, dtype)
        _instances[key] = inst
    return inst


def prob_kernel_tag(config) -> str:
    """Identity of the Prob kernel that would build ``config``'s index.

    ``"ref"`` is the scipy path the index cache has always stored (so
    default configurations keep their existing cache keys); compiled box
    kernels use libm ``erf`` (within ~2 ULPs of scipy, not bit-identical)
    and are tagged by provider name so reference- and compiled-built
    index files never alias.  The disk geometry always evaluates through
    scipy regardless of backend.
    """
    if config.prob_model is not ProbModel.BOX:
        return "ref"
    return resolve_backend(config.backend, config.dtype).prob_tag


def backend_summary(config) -> dict:
    """What a config resolves to on this machine (for manifests/metrics)."""
    resolved = resolve_backend(config.backend, config.dtype)
    summary = {
        "requested": config.backend,
        "resolved": resolved.name,
        "dtype": str(resolved.dtype),
        "compiled": bool(resolved.compiled),
    }
    reason = compiled_unavailable_reason()
    if reason is not None and config.backend in ("compiled", "auto"):
        summary["fallback_reason"] = reason
    return summary
