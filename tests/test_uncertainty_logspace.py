"""Unit tests for repro.uncertainty.logspace."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.uncertainty.logspace import (
    LOG_ZERO,
    clamp_log_prob,
    log_mean_exp,
    log_sum_exp,
    safe_log,
)


class TestSafeLog:
    def test_positive(self):
        assert safe_log(np.e) == pytest.approx(1.0)

    def test_zero_maps_to_floor(self):
        assert safe_log(0.0) == LOG_ZERO

    def test_custom_floor(self):
        assert safe_log(0.0, floor=-50.0) == -50.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            safe_log(-0.1)

    def test_array(self):
        out = safe_log(np.array([1.0, 0.0, np.e]))
        assert out[0] == 0.0
        assert out[1] == LOG_ZERO
        assert out[2] == pytest.approx(1.0)

    def test_scalar_returns_float(self):
        assert isinstance(safe_log(0.5), float)


class TestClamp:
    def test_clamps_below(self):
        assert clamp_log_prob(-100.0, -10.0) == -10.0

    def test_keeps_above(self):
        assert clamp_log_prob(-5.0, -10.0) == -5.0

    def test_array(self):
        out = clamp_log_prob(np.array([-100.0, -1.0]), -10.0)
        assert list(out) == [-10.0, -1.0]


class TestLogSumExp:
    def test_matches_direct(self):
        v = np.array([-1.0, -2.0, -3.0])
        assert log_sum_exp(v) == pytest.approx(np.log(np.exp(v).sum()))

    def test_extreme_values_stable(self):
        v = np.array([-1000.0, -1000.0])
        assert log_sum_exp(v) == pytest.approx(-1000.0 + np.log(2.0))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            log_sum_exp(np.array([]))

    def test_axis(self):
        v = np.array([[0.0, 0.0], [-1.0, -1.0]])
        out = log_sum_exp(v, axis=1)
        assert out == pytest.approx([np.log(2.0), -1.0 + np.log(2.0)])

    @given(
        st.lists(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    def test_bounds(self, values):
        v = np.array(values)
        out = log_sum_exp(v)
        assert out >= v.max() - 1e-9
        assert out <= v.max() + np.log(len(values)) + 1e-9


class TestLogMeanExp:
    def test_matches_direct(self):
        v = np.array([-1.0, -2.0])
        assert log_mean_exp(v) == pytest.approx(np.log(np.exp(v).mean()))

    def test_constant_is_identity(self):
        v = np.full(5, -3.0)
        assert log_mean_exp(v) == pytest.approx(-3.0)
