"""Sharded parallel engine == serial engine, and shared-memory hygiene.

The merge in :class:`~repro.core.parallel.ParallelNMEngine` is an exact
reduction over per-trajectory terms, so every evaluation surface must
equal the single-process engine to floating-point accuracy -- across
shard counts, including degenerate shardings (one worker, one trajectory
per worker, more workers than trajectories) and wildcard patterns.
"""

from __future__ import annotations

import glob

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import EngineConfig, NMEngine
from repro.core.parallel import ParallelNMEngine, shard_dataset
from repro.core.pattern import WILDCARD, TrajectoryPattern
from repro.core.trajpattern import TrajPatternMiner
from repro.core.wildcards import GapPattern, nm_gap_pattern
from repro.trajectory.dataset import TrajectoryDataset
from repro.trajectory.trajectory import UncertainTrajectory

JOB_COUNTS = (1, 2, 3, 5, 12, 30)  # 12 = one trajectory per shard, 30 > |D|


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave /dev/shm free of our segments."""
    yield
    assert glob.glob("/dev/shm/repro-shm-*") == []


@pytest.fixture(scope="module")
def serial():
    dataset = _drifting_dataset(np.random.default_rng(1234), n=12, length=20)
    grid = dataset.make_grid(0.03)
    return NMEngine(dataset, grid, EngineConfig(delta=0.03, min_prob=1e-6))


def _drifting_dataset(rng, n, length) -> TrajectoryDataset:
    trajectories = []
    for i in range(n):
        start = rng.uniform(0.1, 0.4, 2)
        means = start + np.cumsum(rng.normal(0.02, 0.004, (length, 2)), axis=0)
        trajectories.append(UncertainTrajectory(means, 0.015, object_id=f"o{i}"))
    return TrajectoryDataset(trajectories)


def _candidates(engine, n=24, seed=5):
    rng = np.random.default_rng(seed)
    cells = engine.active_cells
    out = [TrajectoryPattern((c,)) for c in cells[:4]]
    while len(out) < n:
        out.append(
            TrajectoryPattern(
                tuple(int(c) for c in rng.choice(cells, size=rng.integers(2, 5)))
            )
        )
    return out


def _parallel(serial, jobs) -> ParallelNMEngine:
    return ParallelNMEngine(serial.dataset, serial.grid, serial.config, jobs=jobs)


class TestShardDataset:
    def test_bounds_cover_dataset_contiguously(self, serial):
        bounds = shard_dataset(serial.dataset, 5)
        assert bounds[0][0] == 0
        assert bounds[-1][1] == len(serial.dataset)
        for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
            assert hi == lo

    def test_no_empty_shards_even_with_excess_workers(self, serial):
        n = len(serial.dataset)
        for jobs in (1, n - 1, n, n + 5, 10 * n):
            bounds = shard_dataset(serial.dataset, jobs)
            assert len(bounds) == min(jobs, n)
            assert all(hi > lo for lo, hi in bounds)

    def test_single_trajectory_dataset(self, serial):
        single = serial.dataset.subset([0])
        assert shard_dataset(single, 8) == [(0, 1)]

    def test_empty_dataset_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            shard_dataset(TrajectoryDataset([]), 2)

    def test_balances_by_snapshot_count(self, rng):
        # One long trajectory dominating: it must not drag the whole rest
        # of the dataset into its shard.
        trajs = [UncertainTrajectory(rng.uniform(0, 1, (100, 2)), 0.01)]
        trajs += [
            UncertainTrajectory(rng.uniform(0, 1, (10, 2)), 0.01) for _ in range(10)
        ]
        bounds = shard_dataset(TrajectoryDataset(trajs), 2)
        assert bounds == [(0, 1), (1, 11)]


@pytest.mark.parametrize("jobs", JOB_COUNTS)
class TestParallelEqualsSerial:
    def test_metadata(self, serial, jobs):
        with _parallel(serial, jobs) as par:
            assert par.n_shards == min(jobs, len(serial.dataset))
            assert par.active_cells == serial.active_cells
            assert par.n_index_entries == serial.n_index_entries
            assert par.floor_log_prob == serial.floor_log_prob

    def test_nm_and_match_batches(self, serial, jobs):
        patterns = _candidates(serial)
        with _parallel(serial, jobs) as par:
            np.testing.assert_allclose(
                par.nm_batch(patterns), serial.nm_batch(patterns), rtol=1e-12
            )
            np.testing.assert_allclose(
                par.match_batch(patterns), serial.match_batch(patterns), rtol=1e-12
            )

    def test_per_trajectory_arrays(self, serial, jobs):
        pattern = _candidates(serial)[5]
        with _parallel(serial, jobs) as par:
            np.testing.assert_allclose(
                par.nm_per_trajectory(pattern),
                serial.nm_per_trajectory(pattern),
                rtol=1e-12,
            )
            np.testing.assert_allclose(
                par.match_per_trajectory(pattern),
                serial.match_per_trajectory(pattern),
                rtol=1e-12,
            )

    def test_singular_tables(self, serial, jobs):
        with _parallel(serial, jobs) as par:
            for name in ("singular_nm_table", "singular_match_table"):
                expected = getattr(serial, name)()
                got = getattr(par, name)()
                assert set(got) == set(expected)
                for cell, value in expected.items():
                    assert got[cell] == pytest.approx(value, rel=1e-12, abs=1e-12)

    def test_extension_tables(self, serial, jobs):
        prefixes = _candidates(serial)[:6]
        expected = serial.extend_right_tables_many(prefixes)
        with _parallel(serial, jobs) as par:
            got = par.extend_right_tables_many(prefixes)
        for (nm_e, match_e), (nm_g, match_g) in zip(expected, got):
            assert set(nm_g) == set(nm_e)
            for cell in nm_e:
                assert nm_g[cell] == pytest.approx(nm_e[cell], rel=1e-12, abs=1e-12)
                assert match_g[cell] == pytest.approx(
                    match_e[cell], rel=1e-12, abs=1e-12
                )

    def test_wildcard_patterns(self, serial, jobs):
        cells = serial.active_cells
        patterns = [
            TrajectoryPattern((cells[0], WILDCARD, cells[1])),
            TrajectoryPattern((WILDCARD, cells[2])),
            TrajectoryPattern((cells[3], WILDCARD, WILDCARD, cells[0])),
        ]
        with _parallel(serial, jobs) as par:
            np.testing.assert_allclose(
                par.nm_batch(patterns), serial.nm_batch(patterns), rtol=1e-12
            )

    def test_gap_pattern_dp(self, serial, jobs):
        cells = serial.active_cells
        pattern = GapPattern.parse(f"{cells[0]} [0-3] {cells[1]} {cells[2]}")
        with _parallel(serial, jobs) as par:
            assert nm_gap_pattern(par, pattern) == pytest.approx(
                nm_gap_pattern(serial, pattern), rel=1e-12
            )

    def test_best_window_routing(self, serial, jobs):
        pattern = _candidates(serial)[4]
        with _parallel(serial, jobs) as par:
            for traj_index in (0, 5, len(serial.dataset) - 1):
                expected = serial.best_window(pattern, traj_index)
                got = par.best_window(pattern, traj_index)
                assert got[0] == expected[0]
                assert got[1] == pytest.approx(expected[1], rel=1e-12)


class TestTopKMining:
    @pytest.mark.parametrize("jobs", (2, 5, 30))
    def test_identical_top_k(self, serial, jobs):
        expected = TrajPatternMiner(serial, k=6, max_length=4).mine()
        with _parallel(serial, jobs) as par:
            got = TrajPatternMiner(par, k=6, max_length=4).mine()
        assert [p.cells for p, _ in got.as_pairs()] == [
            p.cells for p, _ in expected.as_pairs()
        ]
        np.testing.assert_allclose(
            [v for _, v in got.as_pairs()],
            [v for _, v in expected.as_pairs()],
            rtol=1e-10,
        )


class TestLifecycle:
    def test_close_is_idempotent_and_rejects_use(self, serial):
        par = _parallel(serial, 2)
        par.close()
        par.close()
        with pytest.raises(RuntimeError, match="closed"):
            par.nm_batch(_candidates(serial)[:2])

    def test_workers_die_with_close(self, serial):
        par = _parallel(serial, 3)
        workers = list(par._workers)
        par.close()
        assert all(not proc.is_alive() for proc in workers)

    def test_invalid_jobs_rejected(self, serial):
        with pytest.raises(ValueError, match="jobs"):
            ParallelNMEngine(serial.dataset, serial.grid, serial.config, jobs=0)

    def test_empty_dataset_rejected(self, serial):
        with pytest.raises(ValueError, match="empty"):
            ParallelNMEngine(TrajectoryDataset([]), serial.grid, serial.config)


class TestPropertyEquivalence:
    @settings(max_examples=8, deadline=None)
    @given(seed=st.integers(0, 10_000), jobs=st.integers(1, 9))
    def test_random_datasets_and_shardings(self, seed, jobs):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 8))
        trajectories = []
        for _ in range(n):
            length = int(rng.integers(3, 15))
            means = rng.uniform(0.1, 0.9, 2) + np.cumsum(
                rng.normal(0, 0.03, (length, 2)), axis=0
            )
            trajectories.append(
                UncertainTrajectory(means, float(rng.uniform(0.01, 0.05)))
            )
        dataset = TrajectoryDataset(trajectories)
        grid = dataset.make_grid(0.05)
        config = EngineConfig(delta=0.05, min_prob=1e-5)
        serial = NMEngine(dataset, grid, config)
        cells = serial.active_cells
        patterns = [TrajectoryPattern((c,)) for c in cells[:3]]
        if len(cells) >= 2:
            patterns.append(TrajectoryPattern((cells[0], cells[1])))
            patterns.append(TrajectoryPattern((cells[1], WILDCARD, cells[0])))
        with ParallelNMEngine(dataset, grid, config, jobs=jobs) as par:
            np.testing.assert_allclose(
                par.nm_batch(patterns), serial.nm_batch(patterns), rtol=1e-12
            )
            np.testing.assert_allclose(
                par.match_batch(patterns), serial.match_batch(patterns), rtol=1e-12
            )
        assert glob.glob("/dev/shm/repro-shm-*") == []
