"""T1: average length of top-k match vs NM patterns (section 6.1 text).

The paper reports, on the bus data with a minimum pattern length of 3,
an average length of ~3.18 for the top-1000 *match* patterns and ~4.2 for
the top-1000 *NM* patterns -- the headline qualitative claim that NM
surfaces longer (more informative) patterns because it does not penalise
length.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.match_miner import MatchMiner
from repro.core.trajpattern import TrajPatternMiner
from repro.datagen.bus import BusFleetConfig
from repro.experiments.datasets import bus_fleet_paths, bus_velocity_dataset, make_engine


@dataclass(frozen=True)
class Table1Config:
    """Scale knobs; defaults fit a laptop run in minutes."""

    k: int = 100
    min_length: int = 3
    max_length: int = 8  # search depth cap for both miners
    cell_size: float = 0.006
    seed: int = 42
    fleet: BusFleetConfig = BusFleetConfig()


@dataclass
class Table1Result:
    """Measured average lengths next to the paper's."""

    nm_mean_length: float
    match_mean_length: float
    k: int
    nm_wall_time_s: float
    match_wall_time_s: float
    paper_nm_mean_length: float = 4.2
    paper_match_mean_length: float = 3.18

    def render(self) -> str:
        lines = [
            "T1: average length of top-k patterns (min length 3), bus velocity data",
            f"{'measure':<10}{'paper':>10}{'measured':>12}{'time (s)':>12}",
            f"{'match':<10}{self.paper_match_mean_length:>10.2f}"
            f"{self.match_mean_length:>12.2f}{self.match_wall_time_s:>12.2f}",
            f"{'NM':<10}{self.paper_nm_mean_length:>10.2f}"
            f"{self.nm_mean_length:>12.2f}{self.nm_wall_time_s:>12.2f}",
        ]
        return "\n".join(lines)


def run_table1(config: Table1Config = Table1Config()) -> Table1Result:
    """Mine both measures on the bus velocity data and compare lengths."""
    paths = bus_fleet_paths(seed=config.seed, config=config.fleet)
    dataset = bus_velocity_dataset(paths, seed=config.seed)
    engine = make_engine(
        dataset,
        cell_size=config.cell_size,
        min_prob=1e-4,
        max_cells_per_snapshot=64,
    )

    nm_result = TrajPatternMiner(
        engine,
        k=config.k,
        min_length=config.min_length,
        max_length=config.max_length,
    ).mine()
    match_result = MatchMiner(
        engine,
        k=config.k,
        min_length=config.min_length,
        max_length=config.max_length,
    ).mine()

    return Table1Result(
        nm_mean_length=nm_result.mean_length(),
        match_mean_length=match_result.mean_length(),
        k=config.k,
        nm_wall_time_s=nm_result.stats.wall_time_s,
        match_wall_time_s=match_result.stats.wall_time_s,
    )
